//! Seeded property tests for the adaptive pre-copy control plane (PR 4).
//!
//! Three properties, each over deterministic seeded inputs:
//!
//! 1. **Budget safety** — across 200 random (dirty-rate, budget, wire
//!    mode) configurations, a migration with a downtime budget lands at
//!    or under `floor + budget + one-frame quantum`, where `floor` is
//!    the incompressible downtime of an empty stop set (UISR blob,
//!    activation, link latency).
//! 2. **Auto-converge byte dominance** — on the same trace, an
//!    auto-converging migration never puts more total bytes on the wire
//!    than the static configuration (throttling only shrinks dirty sets,
//!    and the forced stop only removes rounds). Budgeted runs are
//!    excluded by design: a budget legitimately trades extra pre-copy
//!    bytes for bounded downtime.
//! 3. **Fleet determinism** — `migrate_fleet` schedules are invariant
//!    under the worker-pool width, and the destination guest contents
//!    are byte-identical whether the fleet was admitted FIFO or
//!    shortest-predicted-first.

use hypertp::prelude::*;
use hypertp_migrate::{migrate_fleet, FleetOrder, FleetPolicy, FleetVm, Link};
use hypertp_sim::{SimRng, WorkerPool};

fn pair() -> (Machine, Machine) {
    let clock = SimClock::new();
    let mut spec = MachineSpec::m1();
    spec.ram_gb = 4;
    (
        Machine::with_clock(spec.clone(), clock.clone()),
        Machine::with_clock(spec, clock),
    )
}

/// One 1 GiB migration Xen→kvmtool with the given knobs; returns the
/// report.
fn one_migration(
    dirty_rate: f64,
    budget: Option<SimDuration>,
    wire_mode: WireMode,
    auto_converge: bool,
) -> hypertp_migrate::MigrationReport {
    let (mut src_m, mut dst_m) = pair();
    let mut src = XenHypervisor::new(&mut src_m);
    let mut dst = KvmHypervisor::new(&mut dst_m);
    let id = src.create_vm(&mut src_m, &VmConfig::small("prop")).unwrap();
    // A little real content so the content-aware path sees non-zero
    // pages from round 0.
    for k in 0..32u64 {
        src.write_guest(&mut src_m, id, Gfn(k * 101), k ^ 0x9e37_79b9)
            .unwrap();
    }
    let mut cfg = MigrationConfig {
        dirty_rate_pages_per_sec: dirty_rate,
        downtime_budget: budget,
        wire_mode,
        ..MigrationConfig::default()
    };
    cfg.control.auto_converge = auto_converge;
    let tp = MigrationTp::new().with_config(cfg);
    tp.migrate(&mut src_m, &mut src, id, &mut dst_m, &mut dst)
        .unwrap()
}

#[test]
fn property_budgeted_downtime_stays_under_budget_plus_floor() {
    // The incompressible floor: a rate-0 guest pauses with an empty
    // stop set, so its downtime is pure UISR + activation + latency.
    let floor = one_migration(0.0, None, WireMode::Raw, false).downtime;
    // One stop-copy quantum of slack: the budget→pages conversion
    // floors to whole pages and the blob transfer adds a second link
    // latency the fixed-cost estimate only counts once.
    let quantum = Link::gigabit().transfer(2 * 4112, 1);
    let bound = |budget: SimDuration| floor + budget + quantum;

    let mut rng = SimRng::new(0xada0_0001);
    for i in 0..200u32 {
        let rate = 100.0 + rng.gen_range(3900) as f64; // 100..4000 pages/s
        let budget = SimDuration::from_millis(5 + rng.gen_range(196)); // 5..200 ms
        let mode = if i % 2 == 0 {
            WireMode::Raw
        } else {
            WireMode::ContentAware
        };
        let r = one_migration(rate, Some(budget), mode, false);
        assert!(
            r.downtime <= bound(budget),
            "config {i} (rate {rate}, budget {budget:?}, {}): downtime {:?} \
             exceeds floor {floor:?} + budget + quantum",
            mode.name(),
            r.downtime,
        );
        assert!(
            r.stop_pages <= r.rounds.last().unwrap().stop_threshold,
            "config {i}: stop set exceeded the adaptive threshold"
        );
    }
}

#[test]
fn property_auto_converge_never_ships_more_bytes_than_static() {
    // High dirty rates where the static config burns the round cap; the
    // throttle can only shrink dirty sets, so adaptive bytes are a
    // lower bound. (No budget: a budget trades bytes for downtime.)
    for &rate in &[2.0e4, 8.0e4, 2.5e5] {
        for &mode in &[WireMode::Raw, WireMode::ContentAware] {
            let stat = one_migration(rate, None, mode, false);
            let adap = one_migration(rate, None, mode, true);
            assert!(
                adap.bytes_sent <= stat.bytes_sent,
                "rate {rate} {}: adaptive {} > static {}",
                mode.name(),
                adap.bytes_sent,
                stat.bytes_sent
            );
            assert!(
                adap.downtime <= stat.downtime,
                "rate {rate} {}: throttling must not worsen downtime",
                mode.name()
            );
            assert!(adap.final_throttle < 1.0, "rate {rate}: throttle engaged");
        }
    }
    // Convergent guests are untouched: the controller observes but the
    // streak never fires, so the runs are byte-identical.
    let stat = one_migration(500.0, None, WireMode::Raw, false);
    let adap = one_migration(500.0, None, WireMode::Raw, true);
    assert_eq!(adap.bytes_sent, stat.bytes_sent);
    assert_eq!(adap.downtime, stat.downtime);
    assert_eq!(adap.total, stat.total);
}

/// Runs a 3-VM heterogeneous fleet and returns (reports, destination
/// probe words per VM).
fn fleet_run(order: FleetOrder, pool: WorkerPool) -> (hypertp_migrate::FleetReport, Vec<Vec<u64>>) {
    let (mut src_m, mut dst_m) = pair();
    let mut src = XenHypervisor::new(&mut src_m);
    let mut dst = KvmHypervisor::new(&mut dst_m);
    let ids: Vec<VmId> = (0..3)
        .map(|i| {
            let id = src
                .create_vm(&mut src_m, &VmConfig::small(format!("fleet{i}")))
                .unwrap();
            for k in 0..24u64 {
                src.write_guest(
                    &mut src_m,
                    id,
                    Gfn(k * 37 + i),
                    k ^ (u64::from(i as u32) << 20),
                )
                .unwrap();
            }
            id
        })
        .collect();
    let vms = vec![
        FleetVm::with_dirty_rate(ids[0], 3000.0),
        FleetVm::with_dirty_rate(ids[1], 1.0),
        FleetVm::with_dirty_rate(ids[2], 800.0),
    ];
    let tp = MigrationTp::new().with_pool(pool);
    let fleet = migrate_fleet(
        &tp,
        &mut src_m,
        &mut src,
        &vms,
        &mut dst_m,
        &mut dst,
        FleetPolicy {
            order,
            max_concurrent: 2,
            compression_hint: 1.0,
        },
    )
    .unwrap();
    let probes = (0..3)
        .map(|i| {
            let id = dst.find_vm(&format!("fleet{i}")).expect("VM arrived");
            (0..24u64)
                .map(|k| dst.read_guest(&dst_m, id, Gfn(k * 37 + i)).unwrap())
                .collect()
        })
        .collect();
    (fleet, probes)
}

#[test]
fn property_fleet_schedule_is_worker_count_invariant() {
    for order in [FleetOrder::Fifo, FleetOrder::ShortestPredictedFirst] {
        let (serial, probes_serial) = fleet_run(order, WorkerPool::serial());
        let (pooled, probes_pooled) = fleet_run(order, WorkerPool::new(8));
        assert_eq!(serial.admission, pooled.admission, "{}", order.name());
        assert_eq!(serial.makespan, pooled.makespan, "{}", order.name());
        assert_eq!(probes_serial, probes_pooled, "{}", order.name());
        for (a, b) in serial.reports.iter().zip(&pooled.reports) {
            assert_eq!(a.vm_name, b.vm_name);
            assert_eq!(a.rounds, b.rounds);
            assert_eq!(a.downtime, b.downtime);
            assert_eq!(a.total, b.total);
            assert_eq!(a.bytes_sent, b.bytes_sent);
        }
    }
}

#[test]
fn property_fleet_order_never_changes_destination_contents() {
    let (fifo, probes_fifo) = fleet_run(FleetOrder::Fifo, WorkerPool::serial());
    let (spdf, probes_spdf) = fleet_run(FleetOrder::ShortestPredictedFirst, WorkerPool::serial());
    assert_eq!(
        probes_fifo, probes_spdf,
        "admission order must never change what lands on the destination"
    );
    assert_ne!(fifo.admission, spdf.admission, "orders actually differ");
    // Raw mode: each VM's data phase is order-independent, so per-VM
    // bytes agree exactly.
    for (a, b) in fifo.reports.iter().zip(&spdf.reports) {
        assert_eq!(a.vm_name, b.vm_name);
        assert_eq!(a.bytes_sent, b.bytes_sent);
    }
    // The predicted-fastest VM (idle fleet1) reaches the destination no
    // later under SPDF than under FIFO.
    assert!(spdf.reports[1].total <= fifo.reports[1].total);
}
