//! Determinism and identity contracts of the sharded campaign engine.
//!
//! The tentpole guarantee: sharding is a *performance* knob, never a
//! semantics knob. For any seed, the planner, the executor and the
//! campaign orchestrator must produce byte-identical reports across
//! every shard count, worker-pool size and `HYPERTP_WORKERS` setting —
//! and a lazily-derived [`SyntheticCluster`] must behave exactly like
//! its materialized twin.

use hypertp_cluster::exec::{
    execute, execute_sharded, execute_sharded_with, ExecConfig, ExecReport,
};
use hypertp_cluster::{plan_upgrade, Cluster, ClusterView, Plan};
use hypertp_sim::fault::FaultPlan;
use hypertp_sim::pool::WorkerPool;

fn fleet_plan(hosts: usize, seed: u64) -> (impl ClusterView, Plan) {
    let view = Cluster::synthetic(hosts, seed).with_compat_percent(80);
    let plan = plan_upgrade(&view, 4).expect("synthetic fleet plans");
    (view, plan)
}

#[test]
fn exec_report_is_byte_identical_across_shards_and_workers() {
    let (view, plan) = fleet_plan(200, 0x5ca1_e001);
    let cfg = ExecConfig::default();
    let base = execute(&view, &plan, &cfg);
    let mut renders: Vec<String> = Vec::new();
    for shards in [1usize, 2, 7, 32, 200] {
        for workers in [1usize, 2, 8] {
            let r = execute_sharded_with(
                &view,
                &plan,
                &cfg,
                &FaultPlan::disarmed(),
                shards,
                &WorkerPool::new(workers),
            );
            assert_eq!(r, base, "shards={shards} workers={workers}");
            renders.push(r.render());
        }
    }
    renders.push(base.render());
    renders.dedup();
    assert_eq!(renders.len(), 1, "all renders collapse to one byte string");
}

#[test]
fn hypertp_workers_env_does_not_change_the_report() {
    let (view, plan) = fleet_plan(120, 0x5ca1_e002);
    let cfg = ExecConfig::default();
    let base = execute(&view, &plan, &cfg);
    // `execute_sharded` builds its pool from the environment; whatever
    // HYPERTP_WORKERS says, the folded report must not move. (Identity
    // across pool sizes is proven above; this pins the env-driven entry
    // point specifically.)
    for workers in ["1", "2", "5"] {
        std::env::set_var("HYPERTP_WORKERS", workers);
        let r = execute_sharded(&view, &plan, &cfg, 16);
        assert_eq!(r, base, "HYPERTP_WORKERS={workers}");
    }
    std::env::remove_var("HYPERTP_WORKERS");
    let r = execute_sharded(&view, &plan, &cfg, 16);
    assert_eq!(r, base, "HYPERTP_WORKERS unset");
}

#[test]
fn same_seed_same_fleet_same_report() {
    let run = |seed: u64| {
        let (view, plan) = fleet_plan(150, seed);
        let r = execute_sharded(&view, &plan, &ExecConfig::default(), 8);
        r.render()
    };
    assert_eq!(run(0xd5_0001), run(0xd5_0001));
    assert_ne!(
        run(0xd5_0001),
        run(0xd5_0002),
        "distinct seeds derive distinct fleets"
    );
}

#[test]
fn synthetic_fleet_matches_its_materialization_end_to_end() {
    for seed in [0x3_0001u64, 0x3_0002] {
        let syn = Cluster::synthetic(64, seed)
            .with_compat_percent(60)
            .with_vms_per_host(8);
        let mat = syn.materialize();
        assert_eq!(syn.host_count(), mat.host_count());
        assert_eq!(syn.vm_count(), mat.vm_count());
        let plan_syn = plan_upgrade(&syn, 4).unwrap();
        let plan_mat = plan_upgrade(&mat, 4).unwrap();
        assert_eq!(plan_syn, plan_mat, "seed {seed:#x}: plans diverge");
        let cfg = ExecConfig::default();
        let r_syn: ExecReport = execute_sharded(&syn, &plan_syn, &cfg, 8);
        let r_mat = execute(&mat, &plan_mat, &cfg);
        assert_eq!(r_syn, r_mat, "seed {seed:#x}: reports diverge");
        assert_eq!(r_syn.render(), r_mat.render());
    }
}

#[test]
fn paper_testbed_still_reports_identically_through_the_sharded_path() {
    // The ISSUE's backstop: at current fleet sizes, shards=1 must be
    // byte-for-byte what the sequential executor reports, for the exact
    // cluster the fig. 13 experiments pin.
    let cluster = Cluster::paper_testbed(80, 42);
    let plan = plan_upgrade(&cluster, 2).unwrap();
    let cfg = ExecConfig::default();
    let sequential = execute(&cluster, &plan, &cfg);
    let sharded_one = execute_sharded_with(
        &cluster,
        &plan,
        &cfg,
        &FaultPlan::disarmed(),
        1,
        &WorkerPool::serial(),
    );
    assert_eq!(sequential, sharded_one);
    assert_eq!(sequential.render(), sharded_one.render());
}

mod campaign_identity {
    use hypertp::prelude::*;
    use hypertp_cluster::campaign::{run_campaign_with, CampaignConfig};
    use hypertp_cluster::openstack::{pool, LibvirtDriver, NovaManager};
    use hypertp_sim::fault::FaultPlan;
    use hypertp_vulndb::dataset::dataset;

    fn fleet(hosts: usize) -> NovaManager {
        let registry = pool();
        let clock = SimClock::new();
        let computes = (0..hosts)
            .map(|i| {
                let mut spec = MachineSpec::m1();
                spec.ram_gb = 8;
                LibvirtDriver::new(
                    format!("c{i}"),
                    spec,
                    clock.clone(),
                    &registry,
                    HypervisorKind::Xen,
                )
                .unwrap()
            })
            .collect();
        NovaManager::new(registry, computes)
    }

    #[test]
    fn campaign_report_is_byte_identical_across_shard_counts() {
        let cve = dataset()
            .into_iter()
            .find(|v| v.id == "CVE-2016-6258")
            .unwrap();
        let run = |shards: usize| {
            let mut nova = fleet(6);
            for i in 0..6 {
                nova.boot(&VmConfig::small(format!("svc{i}"))).unwrap();
            }
            let cfg = CampaignConfig {
                shards,
                ..CampaignConfig::default()
            };
            run_campaign_with(&mut nova, &cve, &[], &FaultPlan::disarmed(), &cfg)
                .unwrap()
                .render()
        };
        let base = run(1);
        for shards in [2usize, 3, 6, 17] {
            assert_eq!(run(shards), base, "shards={shards}");
        }
    }
}
