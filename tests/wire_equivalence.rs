//! Content-aware wire-path equivalence: `WireMode::ContentAware` is a
//! wire/bandwidth optimization only. Whatever the codec does on the link
//! — zero elision, cross-round/cross-VM dedup, XOR+RLE deltas — the
//! destination must end up byte-identical to a raw migration: same guest
//! RAM (serial-pool checksums), same UISR state, same reads, for any
//! worker count of the pipelined round engine.

use hypertp::prelude::*;
use hypertp_machine::Extent;
use hypertp_migrate::{FrameKind, MigrationReport};
use hypertp_sim::WorkerPool;

const VMS: u32 = 3;

/// Everything observable about a migrated fleet that must not depend on
/// the wire mode or the worker count.
#[derive(Debug, PartialEq)]
struct Destination {
    ram_checksums: Vec<u64>,
    uisr_blobs: Vec<Vec<u8>>,
    guest_reads: Vec<u64>,
}

/// Seeds a deterministic fleet: per-VM unique words, plus a block that is
/// byte-identical across VMs (cross-VM dedup fodder), everything else
/// zero. Migrates Xen→KVM and captures the destination.
fn run_fleet(
    wire_mode: WireMode,
    pool: WorkerPool,
    dirty_rate: f64,
    threshold: usize,
) -> (Destination, Vec<MigrationReport>) {
    let registry = default_registry();
    let clock = SimClock::new();
    let mut src_m = Machine::with_clock(MachineSpec::m1(), clock.clone());
    let mut dst_m = Machine::with_clock(MachineSpec::m1(), clock);
    let mut src = registry.create(HypervisorKind::Xen, &mut src_m).unwrap();
    for i in 0..VMS {
        let cfg = VmConfig::small(format!("wire{i}")).with_memory_gb(1);
        let pages = cfg.pages();
        let id = src.create_vm(&mut src_m, &cfg).unwrap();
        for k in 0..256u64 {
            // Shared across VMs: same gfn, same word.
            src.write_guest(&mut src_m, id, Gfn(k % pages), k | 0xabcd_0000)
                .unwrap();
        }
        for k in 0..64u64 {
            // Unique to this VM.
            let gfn = Gfn((1024 + k * 5 + u64::from(i) * 131) % pages);
            src.write_guest(&mut src_m, id, gfn, k ^ (u64::from(i) << 48))
                .unwrap();
        }
    }
    let mut dst = registry.create(HypervisorKind::Kvm, &mut dst_m).unwrap();
    let ids = src.vm_ids();
    let tp = MigrationTp::new()
        .with_config(MigrationConfig {
            verify_contents: true,
            dirty_rate_pages_per_sec: dirty_rate,
            wire_mode,
            parallel_threshold_pages: threshold,
            ..MigrationConfig::default()
        })
        .with_pool(pool);
    let reports = migrate_many(
        &tp,
        &mut src_m,
        src.as_mut(),
        &ids,
        &mut dst_m,
        dst.as_mut(),
    )
    .unwrap();

    let mut ram_checksums = Vec::new();
    let mut uisr_blobs = Vec::new();
    let mut guest_reads = Vec::new();
    for i in 0..VMS {
        let id = dst.find_vm(&format!("wire{i}")).unwrap();
        let map = dst.guest_memory_map(id).unwrap();
        let extents: Vec<Extent> = map.iter().map(|(_, e)| *e).collect();
        ram_checksums.push(
            dst_m
                .ram()
                .checksum_with_pool(&extents, &WorkerPool::serial()),
        );
        for k in 0..256u64 {
            guest_reads.push(dst.read_guest(&dst_m, id, Gfn(k)).unwrap());
        }
        dst.pause_vm(id).unwrap();
        uisr_blobs.push(hypertp_uisr::encode(&dst.save_uisr(&dst_m, id).unwrap()));
    }
    (
        Destination {
            ram_checksums,
            uisr_blobs,
            guest_reads,
        },
        reports,
    )
}

fn merged(reports: &[MigrationReport]) -> WireStats {
    let mut wire = WireStats::default();
    for r in reports {
        wire.merge(&r.wire);
    }
    wire
}

#[test]
fn content_aware_lands_byte_identical_destination() {
    let (raw_dst, raw_reports) = run_fleet(WireMode::Raw, WorkerPool::serial(), 0.0, 8192);
    let (ca_dst, ca_reports) = run_fleet(WireMode::ContentAware, WorkerPool::serial(), 0.0, 8192);
    assert_eq!(ca_dst, raw_dst, "wire codec altered the destination");

    // The raw path reports no frames; the content-aware path must both
    // account for every page and keep most bytes off the wire (idle VMs
    // are overwhelmingly zero pages).
    assert_eq!(merged(&raw_reports).frames(), 0);
    let wire = merged(&ca_reports);
    assert!(wire.frames() > 0);
    let ca_bytes: u64 = ca_reports.iter().map(|r| r.bytes_sent).sum();
    let raw_bytes: u64 = raw_reports.iter().map(|r| r.bytes_sent).sum();
    assert!(
        ca_bytes < raw_bytes / 3,
        "content-aware wire bytes {ca_bytes} should be well under a third of raw {raw_bytes}"
    );
    assert_eq!(wire.raw_equivalent_bytes(), raw_bytes);
    for r in &ca_reports {
        assert_eq!(r.wire_bytes_saved(), r.wire.saved_bytes());
    }
}

#[test]
fn content_aware_outcome_is_identical_for_any_worker_count() {
    // threshold 1 forces every round through the pipelined gather→encode
    // path even on small dirty sets.
    let (baseline_dst, baseline_reports) =
        run_fleet(WireMode::ContentAware, WorkerPool::serial(), 0.0, 1);
    for workers in [2usize, 8] {
        let (dst, reports) = run_fleet(WireMode::ContentAware, WorkerPool::new(workers), 0.0, 1);
        assert_eq!(
            dst, baseline_dst,
            "destination diverged with {workers} workers"
        );
        for (a, b) in reports.iter().zip(&baseline_reports) {
            assert_eq!(a.wire, b.wire, "wire stats diverged with {workers} workers");
            assert_eq!(a.bytes_sent, b.bytes_sent);
            assert_eq!(a.rounds.len(), b.rounds.len());
        }
    }
}

#[test]
fn cross_vm_dedup_suppresses_duplicate_pages() {
    // migrate_many shares one TransferCache across the fleet: the shared
    // seed block travels raw once (first VM) and as 32-byte dup frames
    // afterwards.
    let (_, reports) = run_fleet(WireMode::ContentAware, WorkerPool::serial(), 0.0, 8192);
    assert_eq!(reports.len(), VMS as usize);
    let first_dups = reports[0].wire.count(FrameKind::Dup);
    for r in &reports[1..] {
        assert!(
            r.wire.count(FrameKind::Dup) >= first_dups + 200,
            "{}: later VMs must dedup the shared block against the cache \
             (got {} dups vs {} in the first VM)",
            r.vm_name,
            r.wire.count(FrameKind::Dup),
            first_dups
        );
        assert!(
            r.wire.count(FrameKind::Raw) < reports[0].wire.count(FrameKind::Raw),
            "{}: later VMs should send fewer raw frames than the first",
            r.vm_name
        );
    }
}

#[test]
fn dirty_guest_pages_travel_as_deltas() {
    // A dirtying guest re-sends pages whose content changed since the
    // previous round; those must go as XOR+RLE deltas, and the migration
    // still verifies contents at pause time (verify_contents is on inside
    // run_fleet, so a codec bug fails the migrate_many call itself).
    let (_, reports) = run_fleet(WireMode::ContentAware, WorkerPool::serial(), 2000.0, 8192);
    let wire = merged(&reports);
    assert!(
        wire.count(FrameKind::Delta) > 0,
        "dirtying fleet produced no delta frames"
    );
    // Deltas of single-word pages are tiny: the delta payload bytes must
    // be far below re-sending those pages raw.
    assert!(wire.bytes(FrameKind::Delta) < wire.count(FrameKind::Delta) * 4096 / 4);
}
