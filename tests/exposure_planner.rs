//! Seeded property tests for the exposure-minimizing feed planner
//! (PR 10).
//!
//! 200 seeded cases across four properties:
//!
//! 1. **Off-path byte identity (50 cases)** — with no feed attached
//!    (`ExecConfig.exposure = None`, the default), the executor's report
//!    renders without any exposure section, byte-identically across
//!    shard × worker combinations — today's reports are untouched. An
//!    attached exposure integrator only *appends* to the render: the
//!    prefix stays the exact off-path byte string. Replaying an empty
//!    feed accrues nothing.
//! 2. **Shard/worker invariance (50 cases)** — the same fleet and feed
//!    produce byte-identical `FeedReport`s (and exposure-attached
//!    `ExecReport`s) for every shard count and worker count probed.
//! 3. **Budget safety (50 cases)** — no planned action ever imposes
//!    more per-VM downtime than the configured budget: an `InPlace`
//!    host's blackout and a `Migrate` host's stop-and-copy both fit, and
//!    a zero budget defers the whole fleet.
//! 4. **Aware never loses (50 cases)** — surface-aware planning's
//!    integrated exposure never exceeds the surface-blind baseline's on
//!    the same fleet, feed, and calibrated metric.

use hypertp_cluster::exec::{execute_sharded_with, ExecConfig, ExposureExecConfig};
use hypertp_cluster::exposure::{replay_feed, ExposureConfig, ExposurePlanner, HostAction};
use hypertp_cluster::{plan_upgrade, Cluster};
use hypertp_sim::fault::FaultPlan;
use hypertp_sim::{SimDuration, SimRng, WorkerPool};
use hypertp_vulndb::dataset::dataset;
use hypertp_vulndb::feed::SurfaceWeights;
use hypertp_vulndb::VulnFeed;

fn seeded_fleet(rng: &mut SimRng) -> hypertp_cluster::SyntheticCluster {
    let hosts = 5 + rng.gen_range(25) as usize;
    let compat = rng.gen_range(101) as u32;
    Cluster::synthetic(hosts, rng.gen_range(u64::MAX)).with_compat_percent(compat)
}

fn seeded_feed(rng: &mut SimRng) -> Vec<hypertp_vulndb::feed::FeedEvent> {
    let days = 30 + rng.gen_range(336);
    VulnFeed::new(rng.gen_range(u64::MAX))
        .with_events_per_year(12 + rng.gen_range(50) as u32)
        .replay(SimDuration::from_secs(days * 86_400))
}

#[test]
fn property_no_feed_keeps_reports_byte_identical() {
    let mut rng = SimRng::new(0xe1_0001);
    for case in 0..50u64 {
        let view = seeded_fleet(&mut rng);
        let group = 2 + rng.gen_range(6) as usize;
        // Drain all of `rng`'s per-case draws before the plannability
        // branch so skipped cases keep the stream aligned.
        let shards = 1 + rng.gen_range(8) as usize;
        let workers = 1 + rng.gen_range(4) as usize;
        let exposure = ExposureExecConfig {
            criticality: 0.1 + 0.9 * rng.gen_f64(),
            window: SimDuration::from_secs(86_400 * (1 + rng.gen_range(90))),
        };
        // Tight fleets (low compat, small groups) can lack migration
        // headroom; planning is not the property under test, so such
        // cases only exercise the empty-feed branch below.
        let Ok(plan) = plan_upgrade(&view, group) else {
            let empty = replay_feed(
                &view,
                &[],
                &ExposureConfig::default(),
                1,
                &WorkerPool::serial(),
            );
            assert_eq!(empty.events, 0, "case {case}");
            continue;
        };
        let off = ExecConfig::default();
        let base = execute_sharded_with(
            &view,
            &plan,
            &off,
            &FaultPlan::disarmed(),
            1,
            &WorkerPool::serial(),
        );
        let render = base.render();
        assert!(
            !render.contains("exposure"),
            "case {case}: off-path report grew an exposure section"
        );
        let again = execute_sharded_with(
            &view,
            &plan,
            &off,
            &FaultPlan::disarmed(),
            shards,
            &WorkerPool::new(workers),
        );
        assert_eq!(
            render,
            again.render(),
            "case {case}: off-path render drifted at shards={shards} workers={workers}"
        );
        // Attaching an integrator only appends: the off-path bytes are a
        // strict prefix of the attached render.
        let on = ExecConfig {
            exposure: Some(exposure),
            ..ExecConfig::default()
        };
        let attached = execute_sharded_with(
            &view,
            &plan,
            &on,
            &FaultPlan::disarmed(),
            1,
            &WorkerPool::serial(),
        );
        assert!(
            attached.render().starts_with(&render),
            "case {case}: exposure attachment rewrote the base report"
        );
        assert!(
            attached.render().contains("exposure_vms="),
            "case {case}: attached run must report the series"
        );
        // An empty feed is a no-op for the planner.
        let empty = replay_feed(
            &view,
            &[],
            &ExposureConfig::default(),
            1,
            &WorkerPool::serial(),
        );
        assert_eq!(empty.events, 0, "case {case}");
        assert_eq!(empty.exposure_vm_days, 0.0, "case {case}");
        assert_eq!(empty.disruption, SimDuration::ZERO, "case {case}");
    }
}

#[test]
fn property_replay_is_shard_and_worker_invariant() {
    let mut rng = SimRng::new(0xe1_0002);
    let weights = SurfaceWeights::calibrated(&dataset());
    for case in 0..50u64 {
        let view = seeded_fleet(&mut rng);
        let events = seeded_feed(&mut rng);
        let cfg = ExposureConfig {
            weights,
            concurrent_hosts: 1 + rng.gen_range(16) as usize,
            downtime_budget: SimDuration::from_secs_f64(600.0 * rng.gen_f64()),
            ..ExposureConfig::default()
        };
        let base = replay_feed(&view, &events, &cfg, 1, &WorkerPool::serial()).render();
        let shards = 1 + rng.gen_range(10) as usize;
        let workers = 1 + rng.gen_range(4) as usize;
        let probe = replay_feed(&view, &events, &cfg, shards, &WorkerPool::new(workers));
        assert_eq!(
            base,
            probe.render(),
            "case {case}: feed replay drifted at shards={shards} workers={workers}"
        );
    }
}

#[test]
fn property_planned_actions_respect_the_downtime_budget() {
    let mut rng = SimRng::new(0xe1_0003);
    let weights = SurfaceWeights::calibrated(&dataset());
    for case in 0..50u64 {
        let view = seeded_fleet(&mut rng);
        let events = seeded_feed(&mut rng);
        let budget = SimDuration::from_secs_f64(0.5 + 900.0 * rng.gen_f64());
        let cfg = ExposureConfig {
            weights,
            downtime_budget: budget,
            ..ExposureConfig::default()
        };
        let planner = ExposurePlanner::new(&view, cfg);
        for ev in &events {
            let plan = planner.plan_event(ev);
            for (host, action) in plan.actions.iter().enumerate() {
                let cost = &planner.costs()[host];
                match action {
                    HostAction::InPlace => assert!(
                        cost.inplace_cost <= budget,
                        "case {case} {}: host {host} in-place blackout {:?} over budget {budget:?}",
                        ev.vuln.id,
                        cost.inplace_cost,
                    ),
                    HostAction::Migrate => assert!(
                        cost.migrate_blackout <= budget,
                        "case {case} {}: host {host} stop-and-copy {:?} over budget {budget:?}",
                        ev.vuln.id,
                        cost.migrate_blackout,
                    ),
                    HostAction::Defer => {}
                }
            }
        }
        // A zero budget admits nothing anywhere.
        let strict = ExposurePlanner::new(
            &view,
            ExposureConfig {
                downtime_budget: SimDuration::ZERO,
                ..cfg
            },
        );
        if let Some(ev) = events.first() {
            let plan = strict.plan_event(ev);
            assert!(
                plan.actions.iter().all(|&a| a == HostAction::Defer),
                "case {case}: zero budget must defer the whole fleet"
            );
        }
    }
}

#[test]
fn property_aware_never_exceeds_blind_exposure() {
    let mut rng = SimRng::new(0xe1_0004);
    let weights = SurfaceWeights::calibrated(&dataset());
    for case in 0..50u64 {
        let view = seeded_fleet(&mut rng);
        let events = seeded_feed(&mut rng);
        let aware_cfg = ExposureConfig {
            weights,
            concurrent_hosts: 1 + rng.gen_range(16) as usize,
            downtime_budget: SimDuration::from_secs_f64(900.0 * rng.gen_f64()),
            surface_aware: true,
            ..ExposureConfig::default()
        };
        let blind_cfg = ExposureConfig {
            surface_aware: false,
            ..aware_cfg
        };
        let pool = WorkerPool::serial();
        let aware = replay_feed(&view, &events, &aware_cfg, 1, &pool);
        let blind = replay_feed(&view, &events, &blind_cfg, 1, &pool);
        assert!(
            aware.exposure_vm_days <= blind.exposure_vm_days,
            "case {case}: aware {} VM-days exceeds blind {}",
            aware.exposure_vm_days,
            blind.exposure_vm_days
        );
        assert!(
            aware.remediated_events >= blind.remediated_events,
            "case {case}: aware may only escalate, never demote"
        );
        assert_eq!(
            blind.escalated_events, 0,
            "case {case}: blind planning cannot escalate"
        );
    }
}
