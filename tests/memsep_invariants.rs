//! Memory-separation invariants (§3.1, Fig. 2), checked end to end on the
//! real hypervisor models.

use hypertp::prelude::*;
use hypertp_core::Hypervisor;

#[test]
fn vmi_state_is_a_tiny_fraction_of_guest_state() {
    // Memory separation's payoff: only VMi State is translated, and it is
    // orders of magnitude smaller than the guest memory it describes.
    let mut m = Machine::new(MachineSpec::m1());
    let mut xen: Box<dyn Hypervisor> = Box::new(XenHypervisor::new(&mut m));
    for i in 0..4 {
        xen.create_vm(&mut m, &VmConfig::small(format!("vm{i}")))
            .unwrap();
    }
    let r = xen.memsep_report(&m);
    assert_eq!(r.guest_state, 4 << 30);
    assert!(
        r.translation_ratio() < 0.005,
        "translated fraction = {}",
        r.translation_ratio()
    );
}

#[test]
fn both_hypervisors_report_all_four_categories() {
    let registry = default_registry();
    for kind in [HypervisorKind::Xen, HypervisorKind::Kvm] {
        let mut m = Machine::new(MachineSpec::m1());
        let mut hv = registry.create(kind, &mut m).unwrap();
        hv.create_vm(&mut m, &VmConfig::small("vm0")).unwrap();
        let r = hv.memsep_report(&m);
        assert!(r.guest_state > 0, "{kind}: guest state");
        assert!(r.vmi_state > 0, "{kind}: vmi state");
        assert!(r.vm_mgmt_state > 0, "{kind}: mgmt state");
        assert!(r.hv_state > 0, "{kind}: hv state");
    }
}

#[test]
fn guest_state_is_never_copied_by_inplace_transplant() {
    // InPlaceTP keeps guest frames at the same machine addresses: the
    // MFN→content mapping is bit-identical before and after.
    let mut m = Machine::new(MachineSpec::m1());
    let registry = default_registry();
    let mut xen: Box<dyn Hypervisor> = Box::new(XenHypervisor::new(&mut m));
    let id = xen.create_vm(&mut m, &VmConfig::small("vm0")).unwrap();
    let map_before = xen.guest_memory_map(id).unwrap();
    let engine = InPlaceTransplant::new(&registry);
    let (kvm, _) = engine.run(&mut m, xen, HypervisorKind::Kvm).unwrap();
    let new_id = kvm.find_vm("vm0").unwrap();
    let map_after = kvm.guest_memory_map(new_id).unwrap();
    assert_eq!(
        map_before, map_after,
        "guest frames stayed exactly in place"
    );
}

#[test]
fn vm_mgmt_state_is_rebuilt_not_translated() {
    // The scheduler's queues on the target contain the same vCPU set that
    // the source managed, even though no scheduler state went through
    // UISR (UISR carries no run-queue section at all).
    let mut m = Machine::new(MachineSpec::m1());
    let registry = default_registry();
    let mut kvm_src = registry.create(HypervisorKind::Kvm, &mut m).unwrap();
    for i in 0..3 {
        kvm_src
            .create_vm(&mut m, &VmConfig::small(format!("vm{i}")).with_vcpus(2))
            .unwrap();
    }
    let engine = InPlaceTransplant::new(&registry);
    let (xen, _) = engine.run(&mut m, kvm_src, HypervisorKind::Xen).unwrap();
    // Count vCPUs across adopted VMs: 3 VMs × 2 vCPUs.
    let total: u32 = xen
        .vm_ids()
        .iter()
        .map(|&id| xen.vm_config(id).unwrap().vcpus)
        .sum();
    assert_eq!(total, 6);
}

#[test]
fn hv_state_grows_with_neither_guests_nor_transplants() {
    // HV State is per-hypervisor-global: creating VMs must grow VMi/guest
    // accounting but not the hypervisor heap.
    let mut m = Machine::new(MachineSpec::m1());
    let mut xen: Box<dyn Hypervisor> = Box::new(XenHypervisor::new(&mut m));
    let before = xen.memsep_report(&m).hv_state;
    for i in 0..4 {
        xen.create_vm(&mut m, &VmConfig::small(format!("vm{i}")))
            .unwrap();
    }
    let after = xen.memsep_report(&m).hv_state;
    assert_eq!(before, after);
}
