//! Failure-injection tests: the transplant path must fail loudly, not
//! corrupt guests, when its protection mechanisms are bypassed.

use hypertp::prelude::*;
use hypertp_core::{HtpError, Hypervisor};
use hypertp_machine::PageOrder;
use hypertp_pram::{PramBuilder, PramImage};

#[test]
fn booting_without_pram_reservation_destroys_guest_memory() {
    // The §4.2.4 "logic to ensure that the VM memory regions managed by
    // PRAM are not accidentally erased": skip it, and the boot scrub
    // really does destroy guest memory. This validates the failure mode
    // the mechanism exists to prevent.
    let mut m = Machine::new(MachineSpec::m1());
    let mut xen: Box<dyn Hypervisor> = Box::new(XenHypervisor::new(&mut m));
    let id = xen.create_vm(&mut m, &VmConfig::small("victim")).unwrap();
    xen.write_guest(&mut m, id, Gfn(1), 0x600D).unwrap();
    let map = xen.guest_memory_map(id).unwrap();
    let extents: Vec<_> = map.iter().map(|(_, e)| *e).collect();
    let sum_before = m.ram().checksum(&extents);

    // Kexec without building/parsing PRAM: ownership is forgotten and
    // nothing is reserved.
    m.kexec_load(hypertp::machine::KexecImage {
        target: hypertp::sim::cost::BootTarget::LinuxKvm,
        cmdline: "no-pram".to_string(),
    });
    drop(xen);
    m.kexec().unwrap();
    let scrubbed = m.ram_mut().scrub_unreserved();
    assert!(scrubbed > 0);
    assert_ne!(
        m.ram().checksum(&extents),
        sum_before,
        "guest memory must be gone without PRAM protection"
    );
}

#[test]
fn corrupted_pram_pointer_fails_parse() {
    let mut m = Machine::new(MachineSpec::m1());
    let mut xen: Box<dyn Hypervisor> = Box::new(XenHypervisor::new(&mut m));
    let id = xen.create_vm(&mut m, &VmConfig::small("vm0")).unwrap();
    let mut builder = PramBuilder::new();
    builder.add_file("vm0", 0, xen.guest_memory_map(id).unwrap());
    let handle = builder.write(m.ram_mut()).unwrap();
    // A wrong pointer (off by one page) must be rejected by the magic
    // check, not silently mis-parse.
    let bogus = handle.pram_ptr + 4096;
    assert!(PramImage::parse(m.ram(), bogus).is_err());
}

#[test]
fn missing_uisr_blob_aborts_restoration() {
    // Hand-craft a PRAM image with a guest file but no UISR blob: the
    // engine must refuse to adopt rather than fabricate vCPU state. We
    // exercise the engine's restore path indirectly by checking the blob
    // lookup requirement through uisr_store naming.
    let mut ram = hypertp::machine::PhysicalMemory::new(1024);
    let e = ram.alloc(PageOrder(0)).unwrap();
    let mut builder = PramBuilder::new();
    builder.add_file("ghost", 0, vec![(Gfn(0), e)]);
    let handle = builder.write(&mut ram).unwrap();
    let image = PramImage::parse(&ram, handle.pram_ptr).unwrap();
    assert!(image.file("ghost").is_some());
    assert!(
        image
            .file(&hypertp::core::uisr_store::uisr_file_name("ghost"))
            .is_none(),
        "no blob was stored for the guest file"
    );
}

#[test]
fn transplant_to_unpooled_hypervisor_leaves_source_running() {
    let mut m = Machine::new(MachineSpec::m1());
    let mut registry = hypertp_core::HypervisorRegistry::new();
    registry.register(HypervisorKind::Xen, |machine| {
        Box::new(XenHypervisor::new(machine))
    });
    // KVM is *not* registered.
    let mut xen: Box<dyn Hypervisor> = Box::new(XenHypervisor::new(&mut m));
    let id = xen.create_vm(&mut m, &VmConfig::small("vm0")).unwrap();
    let engine = InPlaceTransplant::new(&registry);
    match engine.run(&mut m, xen, HypervisorKind::Kvm) {
        Err(HtpError::UnknownHypervisor(name)) => assert_eq!(name, "KVM"),
        Err(other) => panic!("wrong error: {other}"),
        Ok(_) => panic!("must fail"),
    }
    // The machine never rebooted.
    assert_eq!(m.boot_count(), 1);
    let _ = id;
}

#[test]
fn vcpu_count_mismatch_rejected_at_restore() {
    // A UISR blob claiming more vCPUs than the prepared shell must be
    // rejected by the destination's from_uisr path.
    let registry = default_registry();
    let clock = SimClock::new();
    let mut src_m = Machine::with_clock(MachineSpec::m1(), clock.clone());
    let mut dst_m = Machine::with_clock(MachineSpec::m1(), clock);
    let mut xen = registry.create(HypervisorKind::Xen, &mut src_m).unwrap();
    let mut kvm = registry.create(HypervisorKind::Kvm, &mut dst_m).unwrap();
    let id = xen
        .create_vm(&mut src_m, &VmConfig::small("vm0").with_vcpus(2))
        .unwrap();
    xen.pause_vm(id).unwrap();
    let mut uisr = xen.save_uisr(&src_m, id).unwrap();
    uisr.vcpus.push(uisr.vcpus[0].clone()); // Forge a third vCPU.
    let shell = kvm
        .prepare_incoming(&mut dst_m, &VmConfig::small("vm0").with_vcpus(2))
        .unwrap();
    match kvm.restore_uisr(&mut dst_m, shell, &uisr) {
        Err(HtpError::IncompatibleState { section, .. }) => assert_eq!(section, "CPU"),
        other => panic!("expected incompatible state, got {other:?}"),
    }
}

#[test]
fn oversized_vm_is_rejected_at_creation() {
    let mut m = Machine::new(MachineSpec::m1()); // 16 GB.
    let mut xen: Box<dyn Hypervisor> = Box::new(XenHypervisor::new(&mut m));
    let too_big = VmConfig::small("huge").with_memory_gb(64);
    assert!(matches!(
        xen.create_vm(&mut m, &too_big),
        Err(HtpError::Mem(_))
    ));
}
