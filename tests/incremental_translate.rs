//! Incremental pre-pause UISR translation: equivalence and chaos suite.
//!
//! The dirty-delta finalize ([`Optimizations::incremental_translate`]) is
//! a pure blackout optimization — it must never change *what* a
//! transplant produces, only *when* the translation work happens. Four
//! seeded families pin that down (≥200 configurations total):
//!
//! 1. **Off is inert** — with the toggle off, an engine carrying any
//!    [`IncrementalConfig`] is byte-identical to the default engine:
//!    same timings, same restored guests, same fault-plan consultations
//!    (the fault logs render identically under an armed plan).
//! 2. **On matches full-translate** — an incremental run records the
//!    exact workload ticks its warm rounds injected
//!    ([`InPlaceReport::warm_rounds`] / `warm_carryover_pages`); replaying
//!    that tick sequence against a full-translate twin must yield the
//!    same restored vCPU state, the same UISR blobs byte-for-byte and the
//!    same PRAM shape — while the incremental blackout is never longer.
//! 3. **Worker-count invariance** — the outcome (and the simulated
//!    timings) of an incremental run are identical for any
//!    `HYPERTP_WORKERS` setting.
//! 4. **Chaos scenario 7** — a `WorkerPanic` during the warm phase dooms
//!    the warm cache: the engine logs `fell_back_to_full_translate`,
//!    completes on the full pause-time path without losing a guest, and
//!    the fault log is deterministic for a fixed seed.
//!
//! Set `HYPERTP_SEED` to probe fresh seeds; failures print the seed.

use hypertp::prelude::*;
use hypertp_core::WarmRound;
use hypertp_pram::PramStats;
use hypertp_sim::fault::{FaultPlan, InjectionPoint, RecoveryAction};
use hypertp_sim::SimRng;
use hypertp_uisr::UisrVm;

fn small_spec(ram_gb: u64) -> MachineSpec {
    let mut spec = MachineSpec::m1();
    spec.ram_gb = ram_gb;
    spec
}

/// The seed for a test: `HYPERTP_SEED` if set, else `default`.
fn seed_for(default: u64) -> u64 {
    match std::env::var("HYPERTP_SEED") {
        Ok(s) => {
            let s = s.trim();
            let (digits, radix) = match s.strip_prefix("0x") {
                Some(hex) => (hex, 16),
                None => (s, 10),
            };
            u64::from_str_radix(digits, radix)
                .unwrap_or_else(|e| panic!("bad HYPERTP_SEED {s:?}: {e}"))
        }
        Err(_) => default,
    }
}

/// One seeded source-host shape: VM count, vCPUs and guest writes all
/// derive from the case seed so a twin host can be rebuilt identically.
#[derive(Clone)]
struct CaseShape {
    n_vms: u32,
    vcpus: u32,
    writes: Vec<(u64, u64)>,
    ticks: u64,
}

impl CaseShape {
    fn from_rng(rng: &mut SimRng) -> Self {
        CaseShape {
            n_vms: 1 + rng.gen_range(2) as u32,
            vcpus: 1 + rng.gen_range(3) as u32,
            writes: (0..8 + rng.gen_range(24) as usize)
                .map(|_| (rng.next_u64(), rng.next_u64()))
                .collect(),
            ticks: rng.gen_range(6),
        }
    }

    /// Builds a fresh Xen machine populated to this shape.
    fn build(&self) -> (Machine, Box<dyn Hypervisor>) {
        let registry = default_registry();
        let mut m = Machine::new(small_spec(8));
        let mut hv = registry.create(HypervisorKind::Xen, &mut m).unwrap();
        for i in 0..self.n_vms {
            let cfg = VmConfig::small(format!("vm{i}")).with_vcpus(self.vcpus);
            let id = hv.create_vm(&mut m, &cfg).unwrap();
            for (k, (gfn, val)) in self.writes.iter().enumerate() {
                if k as u32 % self.n_vms == i {
                    hv.write_guest(&mut m, id, Gfn(gfn % cfg.pages()), *val)
                        .unwrap();
                }
            }
            if self.ticks > 0 {
                hv.guest_tick(&mut m, id, self.ticks).unwrap();
            }
        }
        (m, hv)
    }
}

/// Everything observable about one transplant outcome that the
/// incremental path must not change.
#[derive(Debug, PartialEq)]
struct Outcome {
    uisrs: Vec<UisrVm>,
    blobs: Vec<Vec<u8>>,
    guest_reads: Vec<u64>,
    pram_stats: PramStats,
    uisr_bytes: u64,
    vm_count: usize,
}

fn capture(
    shape: &CaseShape,
    m: &Machine,
    hv: &mut Box<dyn Hypervisor>,
    r: &InPlaceReport,
) -> Outcome {
    let mut uisrs = Vec::new();
    let mut blobs = Vec::new();
    let mut guest_reads = Vec::new();
    for i in 0..shape.n_vms {
        let cfg = VmConfig::small(format!("vm{i}")).with_vcpus(shape.vcpus);
        let id = hv.find_vm(&format!("vm{i}")).unwrap();
        for (k, (gfn, _)) in shape.writes.iter().enumerate() {
            if k as u32 % shape.n_vms == i {
                guest_reads.push(hv.read_guest(m, id, Gfn(gfn % cfg.pages())).unwrap());
            }
        }
        hv.pause_vm(id).unwrap();
        let u = hv.save_uisr(m, id).unwrap();
        blobs.push(hypertp_uisr::encode(&u));
        uisrs.push(u);
    }
    Outcome {
        uisrs,
        blobs,
        guest_reads,
        pram_stats: r.pram_stats,
        uisr_bytes: r.uisr_bytes,
        vm_count: r.vm_count,
    }
}

/// Family 1 (~128 configs): with the toggle off, an engine that carries
/// an [`IncrementalConfig`] is indistinguishable from the default engine
/// — timings, outcome and the fault plan's consultation stream included.
#[test]
fn incremental_off_is_inert() {
    let seed = seed_for(0x1dc0_0001);
    let mut rng = SimRng::new(seed);
    for case in 0u64..128 {
        let shape = CaseShape::from_rng(&mut rng);
        let arm_faults = rng.gen_bool(0.5);
        let incremental = IncrementalConfig {
            dirty_rate_pages_per_sec: 1.0 + rng.gen_range(10_000) as f64,
            max_warm_rounds: 1 + rng.gen_range(8) as u32,
            ..IncrementalConfig::default()
        };
        let run = |with_cfg: bool| {
            let registry = default_registry();
            let (mut m, hv) = shape.build();
            let plan = FaultPlan::new(seed ^ case);
            if arm_faults {
                plan.arm(InjectionPoint::WorkerPanic, 0.4, u64::MAX);
                plan.arm_once(InjectionPoint::PramChecksum);
            }
            let mut engine = InPlaceTransplant::new(&registry).with_faults(plan.clone());
            if with_cfg {
                // The config must be dead weight while the toggle is off.
                engine = engine.with_incremental(incremental);
            }
            let (mut hv2, r) = engine.run(&mut m, hv, HypervisorKind::Kvm).unwrap();
            let outcome = capture(&shape, &m, &mut hv2, &r);
            (outcome, r, plan.log().render())
        };
        let (out_a, rep_a, log_a) = run(false);
        let (out_b, rep_b, log_b) = run(true);
        assert_eq!(out_a, out_b, "seed {seed:#x} case {case}");
        assert_eq!(log_a, log_b, "seed {seed:#x} case {case}: fault stream");
        assert_eq!(
            rep_a.downtime(),
            rep_b.downtime(),
            "seed {seed:#x} case {case}"
        );
        assert_eq!(rep_a.total(), rep_b.total(), "seed {seed:#x} case {case}");
        assert_eq!(rep_a.translation, rep_b.translation);
        for r in [&rep_a, &rep_b] {
            assert_eq!(r.warm_translate, SimDuration::ZERO);
            assert_eq!(r.delta_translate, SimDuration::ZERO);
            assert_eq!(r.dirty_fraction, 1.0);
            assert!(r.warm_rounds.is_empty());
            assert_eq!(r.patched_sections, 0);
        }
    }
}

/// Family 2 (~56 configs): an incremental run and a full-translate twin
/// fed the same workload tick sequence produce identical restored state,
/// identical UISR blob bytes and an identical PRAM shape — and the
/// incremental blackout never exceeds the full one.
#[test]
fn incremental_matches_full_translate_state_and_bytes() {
    let seed = seed_for(0x1dc0_0002);
    let mut rng = SimRng::new(seed);
    for case in 0..56 {
        let shape = CaseShape::from_rng(&mut rng);
        let incremental = IncrementalConfig {
            dirty_rate_pages_per_sec: 200.0 + rng.gen_range(4800) as f64,
            max_warm_rounds: 1 + rng.gen_range(6) as u32,
            ..IncrementalConfig::default()
        };
        let registry = default_registry();

        // Incremental run: the engine injects warm-round workload ticks
        // and records them in the report.
        let (mut m_inc, hv_inc) = shape.build();
        let engine = InPlaceTransplant::new(&registry)
            .with_optimizations(Optimizations {
                incremental_translate: true,
                ..Optimizations::default()
            })
            .with_incremental(incremental);
        let (mut hv2_inc, rep_inc) = engine.run(&mut m_inc, hv_inc, HypervisorKind::Kvm).unwrap();
        let out_inc = capture(&shape, &m_inc, &mut hv2_inc, &rep_inc);

        // Twin: same host, same ticks replayed up front, full translate.
        let (mut m_full, mut hv_full) = shape.build();
        let ids: Vec<VmId> = hv_full.vm_ids();
        for WarmRound { tick_pages, .. } in &rep_inc.warm_rounds {
            if *tick_pages > 0 {
                for &id in &ids {
                    hv_full.guest_tick(&mut m_full, id, *tick_pages).unwrap();
                }
            }
        }
        if rep_inc.warm_carryover_pages > 0 {
            for &id in &ids {
                hv_full
                    .guest_tick(&mut m_full, id, rep_inc.warm_carryover_pages)
                    .unwrap();
            }
        }
        let full_engine = InPlaceTransplant::new(&registry);
        let (mut hv2_full, rep_full) = full_engine
            .run(&mut m_full, hv_full, HypervisorKind::Kvm)
            .unwrap();
        let out_full = capture(&shape, &m_full, &mut hv2_full, &rep_full);

        assert_eq!(out_inc, out_full, "seed {seed:#x} case {case}");
        assert_eq!(
            out_inc.blobs, out_full.blobs,
            "seed {seed:#x} case {case}: UISR/PRAM blob bytes"
        );
        // Telemetry sanity: the warm phase ran, the pause-time delta is
        // what landed in the blackout, and the blackout never regresses.
        assert!(
            !rep_inc.warm_rounds.is_empty(),
            "seed {seed:#x} case {case}"
        );
        assert!(rep_inc.warm_translate > SimDuration::ZERO);
        assert!((0.0..=1.0).contains(&rep_inc.dirty_fraction));
        assert_eq!(rep_inc.delta_translate, rep_inc.translation);
        assert!(
            rep_inc.downtime() <= rep_full.downtime(),
            "seed {seed:#x} case {case}: incremental {:?} > full {:?}",
            rep_inc.downtime(),
            rep_full.downtime()
        );
    }
}

/// Family 3 (20 configs): the incremental outcome and its simulated
/// timings are invariant under the worker count. Single `#[test]` because
/// `HYPERTP_WORKERS` is process-wide.
#[test]
fn incremental_outcome_is_identical_for_any_worker_count() {
    let seed = seed_for(0x1dc0_0003);
    let mut rng = SimRng::new(seed);
    let shapes: Vec<(CaseShape, IncrementalConfig)> = (0..5)
        .map(|_| {
            (
                CaseShape::from_rng(&mut rng),
                IncrementalConfig {
                    dirty_rate_pages_per_sec: 500.0 + rng.gen_range(3000) as f64,
                    ..IncrementalConfig::default()
                },
            )
        })
        .collect();
    let run = |shape: &CaseShape, incremental: IncrementalConfig| {
        let registry = default_registry();
        let (mut m, hv) = shape.build();
        let engine = InPlaceTransplant::new(&registry)
            .with_optimizations(Optimizations {
                incremental_translate: true,
                ..Optimizations::default()
            })
            .with_incremental(incremental);
        let (mut hv2, r) = engine.run(&mut m, hv, HypervisorKind::Kvm).unwrap();
        let outcome = capture(shape, &m, &mut hv2, &r);
        (
            outcome,
            r.downtime(),
            r.total(),
            r.warm_rounds.clone(),
            r.dirty_fraction,
            r.patched_sections,
        )
    };
    for (i, (shape, cfg)) in shapes.iter().enumerate() {
        let baseline = run(shape, *cfg);
        for workers in ["1", "2", "3", "8"] {
            std::env::set_var("HYPERTP_WORKERS", workers);
            let again = run(shape, *cfg);
            assert_eq!(
                baseline, again,
                "seed {seed:#x} shape {i}: diverged with HYPERTP_WORKERS={workers}"
            );
        }
        std::env::remove_var("HYPERTP_WORKERS");
    }
}

/// Family 4, chaos scenario 7 (6 configs): a worker panic during the warm
/// phase — at the initial snapshot or inside a refresh round — abandons
/// the warm cache, logs `fell_back_to_full_translate`, and the transplant
/// still lands every guest via the full pause-time path. Same seed, same
/// byte-identical fault log.
#[test]
fn chaos_worker_panic_in_warm_phase_falls_back_to_full_translate() {
    let seeds = [0xc4a0_0007u64, 0xc4a0_0008, 0xc4a0_0009];
    for seed in seeds {
        let mut rng = SimRng::new(seed);
        let shape = CaseShape::from_rng(&mut rng);
        let n = shape.n_vms as u64;
        // Call 1 hits the warm snapshot's task batch; call n+1 hits the
        // first refresh round's batch (each batch consults once per VM).
        for (label, doom_call) in [("snapshot", 1u64), ("round 1", n + 1)] {
            let run = || {
                let registry = default_registry();
                let (mut m, hv) = shape.build();
                let plan = FaultPlan::new(seed);
                plan.arm_calls(InjectionPoint::WorkerPanic, &[doom_call]);
                let engine = InPlaceTransplant::new(&registry)
                    .with_faults(plan.clone())
                    .with_optimizations(Optimizations {
                        incremental_translate: true,
                        ..Optimizations::default()
                    })
                    .with_incremental(IncrementalConfig {
                        dirty_rate_pages_per_sec: 1000.0,
                        ..IncrementalConfig::default()
                    });
                let (hv2, r) = engine
                    .run(&mut m, hv, HypervisorKind::Kvm)
                    .unwrap_or_else(|e| {
                        panic!("seed {seed:#x} ({label}): faulted transplant failed: {e}")
                    });
                (m, hv2, r, plan.log().render(), plan)
            };
            let (m, hv2, r, log, plan) = run();
            assert!(
                plan.log().recovered_via(
                    InjectionPoint::WorkerPanic,
                    RecoveryAction::FellBackToFullTranslate
                ),
                "seed {seed:#x} ({label}): fallback not logged\n{log}"
            );
            // The warm state was abandoned: the report shows a pure
            // full-translate blackout.
            assert_eq!(r.warm_translate, SimDuration::ZERO, "{label}");
            assert!(r.warm_rounds.is_empty(), "{label}");
            assert_eq!(r.delta_translate, SimDuration::ZERO, "{label}");
            assert_eq!(r.dirty_fraction, 1.0, "{label}");
            assert_eq!(r.vm_count as u32, shape.n_vms, "{label}");
            for i in 0..shape.n_vms {
                let id = hv2
                    .find_vm(&format!("vm{i}"))
                    .unwrap_or_else(|| panic!("seed {seed:#x} ({label}): vm{i} lost"));
                assert_eq!(hv2.vm_state(id).unwrap(), VmState::Running, "{label}");
            }
            // Snapshot-time fallback happens before any warm-round tick,
            // so every seeded guest word must survive verbatim.
            if doom_call == 1 {
                for i in 0..shape.n_vms {
                    let cfg = VmConfig::small(format!("vm{i}")).with_vcpus(shape.vcpus);
                    let id = hv2.find_vm(&format!("vm{i}")).unwrap();
                    let mut last = std::collections::HashMap::new();
                    for (k, (gfn, val)) in shape.writes.iter().enumerate() {
                        if k as u32 % shape.n_vms == i {
                            last.insert(Gfn(gfn % cfg.pages()), *val);
                        }
                    }
                    // guest_tick writes random pages; skip cases that
                    // ticked at build time.
                    if shape.ticks == 0 {
                        for (g, v) in last {
                            assert_eq!(
                                hv2.read_guest(&m, id, g).unwrap(),
                                v,
                                "seed {seed:#x} ({label}): vm{i} word lost"
                            );
                        }
                    }
                }
            }
            // Determinism: the same seed renders the same fault log.
            let (_, _, _, log2, _) = run();
            assert_eq!(log, log2, "seed {seed:#x} ({label}): fault log diverged");
        }
    }
}
