//! The seeded chaos matrix: every registered injection point fires at
//! least once per seed, every layer recovers along its intended path, no
//! VM is ever lost, and the same seed produces a byte-identical
//! [`FaultLog`].
//!
//! One [`FaultPlan`] (armed with [`FaultPlan::arm_all_once`]) threads
//! through three scenarios per seed:
//!
//! 1. **MigrationTP** — link drop, latency spike, truncated page, and
//!    UISR corruption all hit one 1 GiB migration, which must still land
//!    the guest intact on the destination.
//! 2. **InPlaceTP** — a PRAM checksum mismatch and a worker panic hit one
//!    two-VM transplant, which must still restore every guest word.
//! 3. **Campaign** — a host failure hits a two-host fleet campaign, which
//!    requeues the host and still round-trips the whole fleet.
//!
//! A fourth scenario (separate plan: it needs an unbounded fault rate)
//! saturates the migration link and checks the MigrationTP→InPlaceTP
//! fallback chain, and a fifth (also its own plan) drops the link
//! mid-round on a *content-aware* migration to check the dedup-cache
//! rollback path ([`RecoveryAction::InvalidatedWireCache`]). A sixth
//! drops the link mid-round while the **adaptive controller** is live
//! (a downtime budget is set): on top of the cache rollback the
//! controller's EWMA estimators must reset
//! ([`RecoveryAction::ResetController`]) and the migration must still
//! land under its budget. A seventh (own plan, rate-armed) puts host
//! failures under the cluster executor's *sharded* path: requeues and
//! exclusions must replay byte-identically for every shard and worker
//! count. An eighth (one plan per phase: a crash ends the run) kills the
//! hypervisor at every warm-checkpoint phase — mid-warm-round,
//! mid-refresh, mid-finalize, and idle between ticks — and the unplanned
//! path must micro-reboot into the rescue hypervisor and restore every
//! VM from the freshest persisted checkpoint within its state-loss
//! bound. The CI chaos step pins the three seeds below; set
//! `HYPERTP_SEED` to probe others.

use hypertp::prelude::*;
use hypertp_cluster::campaign::{run_campaign_with, CampaignConfig};
use hypertp_cluster::openstack::{pool, LibvirtDriver, NovaManager};
use hypertp_core::{migrate_or_inplace, InPlaceTransplant};
use hypertp_sim::fault::{FaultPlan, InjectionPoint, RecoveryAction};
use hypertp_vulndb::dataset::dataset;

/// The three seeds the CI chaos step pins.
const CI_SEEDS: [u64; 3] = [0xc4a0_0001, 0xc4a0_0002, 0xc4a0_0003];

fn small_spec(ram_gb: u64) -> MachineSpec {
    let mut spec = MachineSpec::m1();
    spec.ram_gb = ram_gb;
    spec
}

/// Scenario 1: one migration absorbing all four migration-layer faults.
/// Returns with the destination guest verified word-for-word.
fn chaos_migration(seed: u64, faults: &FaultPlan) {
    let registry = default_registry();
    let clock = SimClock::new();
    let mut src_m = Machine::with_clock(small_spec(4), clock.clone());
    let mut dst_m = Machine::with_clock(small_spec(4), clock);
    let mut src = registry.create(HypervisorKind::Xen, &mut src_m).unwrap();
    let mut dst = registry.create(HypervisorKind::Kvm, &mut dst_m).unwrap();
    let cfg = VmConfig::small("chaos-mig").with_memory_gb(1);
    let id = src.create_vm(&mut src_m, &cfg).unwrap();
    let writes: Vec<(Gfn, u64)> = (0..64u64)
        .map(|k| (Gfn((k * 13) % cfg.pages()), k ^ 0xfeed_f00d))
        .collect();
    for (g, v) in &writes {
        src.write_guest(&mut src_m, id, *g, *v).unwrap();
    }
    let tp = MigrationTp::new()
        .with_config(MigrationConfig {
            dirty_rate_pages_per_sec: 0.0,
            ..MigrationConfig::default()
        })
        .with_faults(faults.clone());
    let report = tp
        .migrate(&mut src_m, src.as_mut(), id, &mut dst_m, dst.as_mut())
        .unwrap_or_else(|e| panic!("seed {seed:#x}: faulted migration failed: {e}"));
    assert!(
        report.total > SimDuration::ZERO,
        "seed {seed:#x}: empty migration"
    );
    // No VM lost: the guest lives on the destination with every word.
    let new_id = dst
        .find_vm("chaos-mig")
        .unwrap_or_else(|| panic!("seed {seed:#x}: VM lost in migration"));
    assert_eq!(dst.vm_state(new_id).unwrap(), VmState::Running);
    for (g, v) in &writes {
        assert_eq!(
            dst.read_guest(&dst_m, new_id, *g).unwrap(),
            *v,
            "seed {seed:#x}: guest word lost at {g:?}"
        );
    }
}

/// Scenario 2: one in-place transplant absorbing the PRAM checksum
/// mismatch and a worker panic. Returns with every guest word verified.
fn chaos_inplace(seed: u64, faults: &FaultPlan) {
    let registry = default_registry();
    let mut m = Machine::new(small_spec(8));
    let mut hv = registry.create(HypervisorKind::Xen, &mut m).unwrap();
    let mut expected = Vec::new();
    for i in 0..2u32 {
        let cfg = VmConfig::small(format!("chaos-ip{i}"));
        let id = hv.create_vm(&mut m, &cfg).unwrap();
        for k in 0..32u64 {
            let g = Gfn((k * 7 + u64::from(i)) % cfg.pages());
            let v = k ^ (u64::from(i) << 32);
            hv.write_guest(&mut m, id, g, v).unwrap();
            expected.push((cfg.name.clone(), g, v));
        }
    }
    let mut last = std::collections::HashMap::new();
    for (name, g, v) in expected {
        last.insert((name, g), v);
    }
    let engine = InPlaceTransplant::new(&registry).with_faults(faults.clone());
    let (hv2, report) = engine
        .run(&mut m, hv, HypervisorKind::Kvm)
        .unwrap_or_else(|e| panic!("seed {seed:#x}: faulted transplant failed: {e}"));
    assert_eq!(report.vm_count, 2, "seed {seed:#x}: VM lost in transplant");
    for ((name, g), v) in last {
        let id = hv2
            .find_vm(&name)
            .unwrap_or_else(|| panic!("seed {seed:#x}: {name} lost in transplant"));
        assert_eq!(hv2.vm_state(id).unwrap(), VmState::Running);
        assert_eq!(
            hv2.read_guest(&m, id, g).unwrap(),
            v,
            "seed {seed:#x}: guest word lost at {g:?} of {name}"
        );
    }
}

/// Scenario 3: a two-host campaign absorbing a host failure. Returns with
/// the fleet home and every VM accounted for.
fn chaos_campaign(seed: u64, faults: &FaultPlan) {
    let registry = pool();
    let clock = SimClock::new();
    let computes: Vec<LibvirtDriver> = (0..2)
        .map(|i| {
            LibvirtDriver::new(
                format!("c{i}"),
                small_spec(8),
                clock.clone(),
                &registry,
                HypervisorKind::Xen,
            )
            .unwrap()
        })
        .collect();
    let mut nova = NovaManager::new(registry, computes);
    for i in 0..3 {
        nova.boot(&VmConfig::small(format!("svc{i}"))).unwrap();
    }
    let cve = dataset()
        .into_iter()
        .find(|v| v.id == "CVE-2016-6258")
        .unwrap();
    let report = run_campaign_with(&mut nova, &cve, &[], faults, &CampaignConfig::default())
        .unwrap_or_else(|e| panic!("seed {seed:#x}: faulted campaign failed: {e}"));
    assert!(
        report.excluded_hosts.is_empty(),
        "seed {seed:#x}: a single transient failure must not exclude"
    );
    assert_eq!(report.out.len(), 2, "seed {seed:#x}");
    assert_eq!(report.back.len(), 2, "seed {seed:#x}");
    // No VM lost: every booted VM is still resident somewhere, and every
    // host is back on the home hypervisor.
    for h in 0..2 {
        assert_eq!(nova.compute(h).hypervisor_kind(), HypervisorKind::Xen);
    }
    for i in 0..3 {
        let name = format!("svc{i}");
        let host = nova
            .host_of(&name)
            .unwrap_or_else(|| panic!("seed {seed:#x}: {name} lost in campaign"));
        assert!(nova.compute(host).vm_names().contains(&name));
    }
}

/// Scenario 5: a link drop hits a *content-aware* migration mid-round
/// while the dedup cache is live. The engine must roll the cache journal
/// back (logged as [`RecoveryAction::InvalidatedWireCache`]), re-encode
/// the round against the last committed cache state, and still land every
/// guest word. Uses its own plan so the forced drop cannot perturb the
/// arm-all-once schedule of scenarios 1–3. Returns the plan's log render.
fn chaos_wire(seed: u64) -> String {
    let faults = FaultPlan::new(seed ^ 0x3173_cace);
    faults.arm_once(InjectionPoint::LinkDrop);
    let registry = default_registry();
    let clock = SimClock::new();
    let mut src_m = Machine::with_clock(small_spec(4), clock.clone());
    let mut dst_m = Machine::with_clock(small_spec(4), clock);
    let mut src = registry.create(HypervisorKind::Xen, &mut src_m).unwrap();
    let mut dst = registry.create(HypervisorKind::Kvm, &mut dst_m).unwrap();
    let cfg = VmConfig::small("chaos-wire").with_memory_gb(1);
    let id = src.create_vm(&mut src_m, &cfg).unwrap();
    // Duplicate content across gfns so the dedup cache holds real state
    // when the drop fires, plus unique words for the equality check.
    let writes: Vec<(Gfn, u64)> = (0..96u64)
        .map(|k| {
            let v = if k % 3 == 0 { 0xd0_d0 } else { k ^ 0xbeef_cafe };
            (Gfn((k * 11 + 1) % cfg.pages()), v)
        })
        .collect();
    for (g, v) in &writes {
        src.write_guest(&mut src_m, id, *g, *v).unwrap();
    }
    let tp = MigrationTp::new()
        .with_config(MigrationConfig {
            dirty_rate_pages_per_sec: 0.0,
            verify_contents: true,
            wire_mode: WireMode::ContentAware,
            ..MigrationConfig::default()
        })
        .with_faults(faults.clone());
    let report = tp
        .migrate(&mut src_m, src.as_mut(), id, &mut dst_m, dst.as_mut())
        .unwrap_or_else(|e| panic!("seed {seed:#x}: faulted wire migration failed: {e}"));
    assert!(
        report.wire.frames() > 0,
        "seed {seed:#x}: content-aware run produced no wire frames"
    );
    assert!(
        report.wire_bytes_saved() > 0,
        "seed {seed:#x}: zero elision must save bytes on a 1 GiB idle guest"
    );
    let log = faults.log();
    assert!(
        log.recovered_via(
            InjectionPoint::LinkDrop,
            RecoveryAction::InvalidatedWireCache
        ),
        "seed {seed:#x}: mid-round drop must invalidate the wire cache; log:\n{}",
        log.render()
    );
    assert!(
        log.recovered_via(InjectionPoint::LinkDrop, RecoveryAction::ResumedFromRound),
        "seed {seed:#x}: the re-encoded round must resume; log:\n{}",
        log.render()
    );
    // No VM lost, no word lost: the rollback re-encoded from committed
    // state, so the resent frames decode to exactly the source content.
    let new_id = dst
        .find_vm("chaos-wire")
        .unwrap_or_else(|| panic!("seed {seed:#x}: VM lost in wire migration"));
    assert_eq!(dst.vm_state(new_id).unwrap(), VmState::Running);
    for (g, v) in &writes {
        assert_eq!(
            dst.read_guest(&dst_m, new_id, *g).unwrap(),
            *v,
            "seed {seed:#x}: guest word lost at {g:?}"
        );
    }
    log.render()
}

/// Scenario 6: a link drop hits a *content-aware* migration whose
/// adaptive controller is live (a downtime budget is set). The faulted
/// round's EWMA samples measured a link that no longer exists, so the
/// controller must reset its estimators
/// ([`RecoveryAction::ResetController`]) on top of the cache rollback —
/// and the migration must still stop under its budget with every guest
/// word intact. Uses its own plan so the forced drop cannot perturb the
/// other scenarios' schedules. Returns the plan's log render.
fn chaos_adaptive(seed: u64) -> String {
    let faults = FaultPlan::new(seed ^ 0xada_97fe);
    faults.arm_once(InjectionPoint::LinkDrop);
    let registry = default_registry();
    let clock = SimClock::new();
    let mut src_m = Machine::with_clock(small_spec(4), clock.clone());
    let mut dst_m = Machine::with_clock(small_spec(4), clock);
    let mut src = registry.create(HypervisorKind::Xen, &mut src_m).unwrap();
    let mut dst = registry.create(HypervisorKind::Kvm, &mut dst_m).unwrap();
    let cfg = VmConfig::small("chaos-adapt").with_memory_gb(1);
    let id = src.create_vm(&mut src_m, &cfg).unwrap();
    let writes: Vec<(Gfn, u64)> = (0..80u64)
        .map(|k| (Gfn((k * 17 + 3) % cfg.pages()), k ^ 0xada_cafe))
        .collect();
    for (g, v) in &writes {
        src.write_guest(&mut src_m, id, *g, *v).unwrap();
    }
    // Tight enough that the post-drop round must run (the re-dirtied set
    // after the stretched, dropped round 0 exceeds the budget's page
    // allowance), which re-warms the just-reset estimators.
    let budget = SimDuration::from_millis(10);
    let tp = MigrationTp::new()
        .with_config(MigrationConfig {
            dirty_rate_pages_per_sec: 1500.0,
            wire_mode: WireMode::ContentAware,
            downtime_budget: Some(budget),
            ..MigrationConfig::default()
        })
        .with_faults(faults.clone());
    let report = tp
        .migrate(&mut src_m, src.as_mut(), id, &mut dst_m, dst.as_mut())
        .unwrap_or_else(|e| panic!("seed {seed:#x}: faulted adaptive migration failed: {e}"));
    assert!(
        report.downtime <= budget,
        "seed {seed:#x}: downtime {:?} blew the {:?} budget",
        report.downtime,
        budget
    );
    let log = faults.log();
    assert!(
        log.recovered_via(InjectionPoint::LinkDrop, RecoveryAction::ResetController),
        "seed {seed:#x}: active controller must reset estimators on a drop; log:\n{}",
        log.render()
    );
    assert!(
        log.recovered_via(
            InjectionPoint::LinkDrop,
            RecoveryAction::InvalidatedWireCache
        ),
        "seed {seed:#x}: the drop must also roll the wire cache back; log:\n{}",
        log.render()
    );
    // The round after the reset re-warmed the estimators from clean
    // samples: the last round's telemetry is live again.
    let last = report
        .rounds
        .last()
        .unwrap_or_else(|| panic!("seed {seed:#x}: no rounds recorded"));
    assert!(
        last.throughput_est > 0.0,
        "seed {seed:#x}: estimators never re-warmed after the reset"
    );
    // No VM lost, no word lost.
    let new_id = dst
        .find_vm("chaos-adapt")
        .unwrap_or_else(|| panic!("seed {seed:#x}: VM lost in adaptive migration"));
    assert_eq!(dst.vm_state(new_id).unwrap(), VmState::Running);
    for (g, v) in &writes {
        assert_eq!(
            dst.read_guest(&dst_m, new_id, *g).unwrap(),
            *v,
            "seed {seed:#x}: guest word lost at {g:?}"
        );
    }
    log.render()
}

/// Scenario 7: host failures hit a cluster plan execution with sharding
/// requested. The executor must coerce to the sequential fault walk (the
/// consultation order is the replay contract), grant the configured
/// retries, exclude the persistently failing host, and produce a report
/// and log byte-identical to the unsharded run — for every shard and
/// worker count. Uses its own plan (rate-armed). Returns the log render.
fn chaos_sharded_exec(seed: u64) -> String {
    use hypertp_cluster::exec::{execute_sharded_with, ExecConfig};
    use hypertp_cluster::{plan_upgrade, Cluster};
    use hypertp_sim::pool::WorkerPool;

    let cluster = Cluster::paper_testbed(100, 42);
    let plan = plan_upgrade(&cluster, 2).unwrap();
    let cfg = ExecConfig::default();
    let run = |shards: usize, workers: usize| {
        let faults = FaultPlan::new(seed ^ 0x5aa4_ded0);
        faults.arm(InjectionPoint::HostFailure, 0.6, u64::MAX);
        let report = execute_sharded_with(
            &cluster,
            &plan,
            &cfg,
            &faults,
            shards,
            &WorkerPool::new(workers),
        );
        (report, faults.log().render())
    };
    let (base_report, base_log) = run(1, 1);
    for (shards, workers) in [(2usize, 1usize), (4, 3), (16, 8)] {
        let (report, log) = run(shards, workers);
        assert_eq!(
            report, base_report,
            "seed {seed:#x}: sharded exec diverged at shards={shards} workers={workers}"
        );
        assert_eq!(
            log, base_log,
            "seed {seed:#x}: fault replay diverged at shards={shards} workers={workers}"
        );
    }
    assert_eq!(
        base_report.hosts_excluded + base_report.inplace_upgrades,
        plan.inplace_count(),
        "seed {seed:#x}: every host ends upgraded or excluded"
    );
    // A saturated failure rate makes both recovery paths certain for any
    // seed: each host burns its full retry budget (two requeues) and is
    // then excluded — under sharding too.
    let faults = FaultPlan::new(seed ^ 0x5aa4_ded1);
    faults.arm(InjectionPoint::HostFailure, 1.0, u64::MAX);
    let report = execute_sharded_with(&cluster, &plan, &cfg, &faults, 8, &WorkerPool::new(2));
    let log = faults.log();
    assert!(
        log.recovered_via(InjectionPoint::HostFailure, RecoveryAction::RequeuedHost),
        "seed {seed:#x}: no requeue under sharded exec; log:\n{}",
        log.render()
    );
    assert!(
        log.recovered_via(InjectionPoint::HostFailure, RecoveryAction::ExcludedHost),
        "seed {seed:#x}: no exclusion under sharded exec; log:\n{}",
        log.render()
    );
    assert_eq!(
        report.hosts_excluded,
        plan.inplace_count(),
        "seed {seed:#x}"
    );
    assert_eq!(report.inplace_upgrades, 0, "seed {seed:#x}");
    assert_eq!(
        report.host_retries,
        2 * plan.inplace_count(),
        "seed {seed:#x}: every host burns its two retries before exclusion"
    );
    log.render()
}

/// Scenario 4: a saturated link exhausts the migration's retry budget;
/// the host falls back to InPlaceTP. Uses its own plan (the unbounded
/// LinkDrop rate would starve scenario 1). Returns the plan's log render.
fn chaos_fallback(seed: u64) -> String {
    let faults = FaultPlan::new(seed ^ 0xfa11_bacc);
    faults.arm(InjectionPoint::LinkDrop, 1.0, u64::MAX);
    let registry = default_registry();
    let clock = SimClock::new();
    let mut src_m = Machine::with_clock(small_spec(4), clock.clone());
    let mut dst_m = Machine::with_clock(small_spec(4), clock);
    let mut src = registry.create(HypervisorKind::Xen, &mut src_m).unwrap();
    let mut dst = registry.create(HypervisorKind::Kvm, &mut dst_m).unwrap();
    let id = src
        .create_vm(&mut src_m, &VmConfig::small("chaos-fb"))
        .unwrap();
    src.write_guest(&mut src_m, id, Gfn(5), 0xcafe).unwrap();
    let tp = MigrationTp::new().with_faults(faults.clone());
    // Both attempts need the source machine; hand it through a cell so
    // the in-place closure can consume what the migration one borrowed.
    let source = std::cell::RefCell::new(Some((src_m, src)));
    let out = migrate_or_inplace(
        &faults,
        "chaos-host",
        || {
            let mut guard = source.borrow_mut();
            let (src_m, src) = guard.as_mut().expect("source present");
            tp.migrate(src_m, src.as_mut(), id, &mut dst_m, dst.as_mut())
        },
        || {
            // The source VMs are untouched: transplant them in place.
            let (mut src_m, src) = source.borrow_mut().take().expect("source present");
            let engine = InPlaceTransplant::new(&registry).with_faults(faults.clone());
            let (hv, report) = engine.run(&mut src_m, src, HypervisorKind::Kvm)?;
            Ok((src_m, hv, report))
        },
    )
    .unwrap_or_else(|e| panic!("seed {seed:#x}: fallback chain failed: {e}"));
    assert!(
        out.fell_back(),
        "seed {seed:#x}: saturated link must fall back"
    );
    let log = faults.log();
    assert!(
        log.recovered_via(InjectionPoint::LinkDrop, RecoveryAction::GaveUp),
        "seed {seed:#x}: retry budget exhaustion must be logged"
    );
    assert!(
        log.recovered_via(InjectionPoint::LinkDrop, RecoveryAction::FellBackToInPlace),
        "seed {seed:#x}: the fallback decision must be logged"
    );
    // No VM lost: the fallback transplanted it on the source machine.
    if let hypertp_core::FallbackOutcome::FellBack { inplace, .. } = out {
        let (src_m, hv, _report) = inplace;
        assert_eq!(hv.kind(), HypervisorKind::Kvm);
        let vid = hv
            .find_vm("chaos-fb")
            .unwrap_or_else(|| panic!("seed {seed:#x}: VM lost in fallback"));
        assert_eq!(hv.read_guest(&src_m, vid, Gfn(5)).unwrap(), 0xcafe);
    }
    log.render()
}

/// Scenario 8: the hypervisor crashes at every warm-checkpoint phase —
/// mid-warm-round, mid-refresh, mid-finalize, and idle between ticks —
/// and the unplanned path must micro-reboot into the rescue hypervisor
/// and restore every VM from the freshest persisted checkpoint. No VM is
/// lost, guest memory survives byte-identical across the micro-reboot,
/// the state-loss bound holds, and both recovery actions are visible in
/// the [`FaultLog`]. One plan per phase (a crash ends the run). Returns
/// the concatenated report + log renders.
fn chaos_crash_phases(seed: u64) -> String {
    use hypertp_core::{crash_gate, CheckpointConfig, UnplannedRecovery, WarmCheckpointer};
    use hypertp_sim::{CostModel, WorkerPool};

    let registry = default_registry();
    let mut renders = String::new();
    // The checkpointer consults the crash gate three times per tick
    // (warm-round, refresh, finalize), so after one clean tick ordinals
    // 4..=6 land in the phases of tick 2; ordinal 7 is consulted by the
    // idle watchdog after two clean ticks.
    for (ordinal, phase) in [
        (4u64, Some("warm_round")),
        (5, Some("refresh")),
        (6, Some("finalize")),
        (7, None),
    ] {
        let faults = FaultPlan::new(seed ^ 0xc8a5_0008);
        faults.arm_calls(InjectionPoint::HypervisorCrash, &[ordinal]);
        let mut m = Machine::new(small_spec(8));
        let mut hv = registry.create(HypervisorKind::Xen, &mut m).unwrap();
        let mut pages = 0;
        for i in 0..2u64 {
            let cfg = VmConfig::small(format!("chaos-cr{i}"));
            let id = hv.create_vm(&mut m, &cfg).unwrap();
            pages = cfg.pages();
            for k in 0..24u64 {
                let g = Gfn((k * 9 + i) % pages);
                hv.write_guest(&mut m, id, g, k ^ (i << 24) ^ 0xc8a5)
                    .unwrap();
            }
        }
        // A bound tight enough that every tick refreshes and re-persists
        // (the 48-page workload EWMA-predicts past it), so the mid-phase
        // crashes land on a checkpointer with real in-flight state.
        let cfg = CheckpointConfig {
            staleness_bound_pages: 64,
            ..CheckpointConfig::default()
        };
        let mut ckpt = WarmCheckpointer::start_with(
            &mut m,
            hv.as_mut(),
            HypervisorKind::Kvm,
            cfg,
            CostModel::paper_calibrated(),
            faults.clone(),
            WorkerPool::from_env(),
        )
        .unwrap_or_else(|e| panic!("seed {seed:#x}: checkpointer start failed: {e}"));
        let mut crashed = None;
        for _ in 0..2 {
            let tr = ckpt
                .tick(&mut m, hv.as_mut(), 48)
                .unwrap_or_else(|e| panic!("seed {seed:#x}: checkpoint tick failed: {e}"));
            if let Some(p) = tr.crashed {
                crashed = Some(p.name());
                break;
            }
        }
        if crashed.is_none() {
            // The armed ordinal lies past both ticks' gates: the idle
            // watchdog consults next and the crash fires between ticks.
            assert!(
                crash_gate(&faults, "idle watchdog"),
                "seed {seed:#x}: idle crash never fired"
            );
        }
        assert_eq!(
            crashed, phase,
            "seed {seed:#x}: crash landed in the wrong phase"
        );
        // Snapshot guest memory at the crash instant: the workload has
        // been scribbling over the sentinel writes, so the survival
        // contract is against what the pages held when the kernel died.
        let mut last = Vec::new();
        for i in 0..2u64 {
            let name = format!("chaos-cr{i}");
            let id = hv.find_vm(&name).unwrap();
            for k in 0..24u64 {
                let g = Gfn((k * 9 + i) % pages);
                last.push((name.clone(), g, hv.read_guest(&m, id, g).unwrap()));
            }
        }
        let bound = ckpt.config().staleness_bound_pages;
        let recovery = UnplannedRecovery::new(&registry).with_faults(faults.clone());
        let (hv2, report) = recovery
            .recover(&mut m, hv, ckpt)
            .unwrap_or_else(|e| panic!("seed {seed:#x}: unplanned recovery failed: {e}"));
        assert_eq!(hv2.kind(), HypervisorKind::Kvm, "seed {seed:#x}");
        // The provable state-loss bound: un-persisted staleness never
        // exceeds the configured budget, at any crash phase.
        assert!(
            report.within_bound(),
            "seed {seed:#x}: state-loss bound {bound} blown at {phase:?}:\n{}",
            report.render()
        );
        assert_eq!(report.vm_count, 2, "seed {seed:#x}: VM lost in recovery");
        // No VM lost, no guest word lost: guest memory survived the
        // micro-reboot in place.
        for (name, g, v) in &last {
            let id = hv2
                .find_vm(name)
                .unwrap_or_else(|| panic!("seed {seed:#x}: {name} lost in recovery"));
            assert_eq!(hv2.vm_state(id).unwrap(), VmState::Running);
            assert_eq!(
                hv2.read_guest(&m, id, *g).unwrap(),
                *v,
                "seed {seed:#x}: guest word lost at {g:?} of {name}"
            );
        }
        let log = faults.log();
        assert!(
            log.recovered_via(
                InjectionPoint::HypervisorCrash,
                RecoveryAction::MicroRebooted
            ),
            "seed {seed:#x}: micro-reboot not logged; log:\n{}",
            log.render()
        );
        assert!(
            log.recovered_via(
                InjectionPoint::HypervisorCrash,
                RecoveryAction::RestoredFromCheckpoint
            ),
            "seed {seed:#x}: checkpoint restore not logged; log:\n{}",
            log.render()
        );
        renders.push_str(&report.render());
        renders.push('\n');
        renders.push_str(&log.render());
    }
    renders
}

/// One full chaos run: all scenarios under `seed`, every point fired,
/// every recovery path asserted. Returns the concatenated log renders for
/// byte-identity checks.
fn chaos_run(seed: u64) -> String {
    let faults = FaultPlan::new(seed);
    faults.arm_all_once();

    chaos_migration(seed, &faults);
    chaos_inplace(seed, &faults);
    chaos_campaign(seed, &faults);

    // Every registered point fired at least once under this seed.
    for p in InjectionPoint::ALL {
        assert!(
            faults.injections_fired(p) >= 1,
            "seed {seed:#x}: {} never fired",
            p.name()
        );
    }
    // And each fault was answered by its intended recovery path.
    let log = faults.log();
    let expectations = [
        (InjectionPoint::LinkDrop, RecoveryAction::RetriedWithBackoff),
        (InjectionPoint::LinkDrop, RecoveryAction::ResumedFromRound),
        (
            InjectionPoint::LinkLatencySpike,
            RecoveryAction::AbsorbedLatency,
        ),
        (InjectionPoint::TruncatedPage, RecoveryAction::ResentPages),
        (InjectionPoint::UisrCorruption, RecoveryAction::ResentUisr),
        (InjectionPoint::PramChecksum, RecoveryAction::RebuiltPram),
        (
            InjectionPoint::WorkerPanic,
            RecoveryAction::TaskRetriedInline,
        ),
        (InjectionPoint::HostFailure, RecoveryAction::RequeuedHost),
        // The campaign host that crashed in its upgrade slot was
        // micro-rebooted onto the target and its VMs restored from the
        // always-on warm checkpoints.
        (
            InjectionPoint::HypervisorCrash,
            RecoveryAction::MicroRebooted,
        ),
        (
            InjectionPoint::HypervisorCrash,
            RecoveryAction::RestoredFromCheckpoint,
        ),
    ];
    for (point, action) in expectations {
        assert!(
            log.recovered_via(point, action),
            "seed {seed:#x}: no {action:?} recovery for {}; log:\n{}",
            point.name(),
            log.render()
        );
    }

    let fallback_log = chaos_fallback(seed);
    let wire_log = chaos_wire(seed);
    let adaptive_log = chaos_adaptive(seed);
    let sharded_log = chaos_sharded_exec(seed);
    let crash_log = chaos_crash_phases(seed);
    format!(
        "{}---\n{}---\n{}---\n{}---\n{}---\n{}",
        log.render(),
        fallback_log,
        wire_log,
        adaptive_log,
        sharded_log,
        crash_log
    )
}

#[test]
fn chaos_matrix_ci_seed_one() {
    chaos_run(CI_SEEDS[0]);
}

#[test]
fn chaos_matrix_ci_seed_two() {
    chaos_run(CI_SEEDS[1]);
}

#[test]
fn chaos_matrix_ci_seed_three() {
    chaos_run(CI_SEEDS[2]);
}

#[test]
fn chaos_matrix_env_seed_override() {
    // `HYPERTP_SEED=0x123 cargo test --test chaos_matrix` probes a fresh
    // seed; the failing seed is printed by every assertion above.
    let seed = std::env::var("HYPERTP_SEED")
        .ok()
        .map(|s| {
            let s = s.trim();
            let (digits, radix) = match s.strip_prefix("0x") {
                Some(hex) => (hex, 16),
                None => (s, 10),
            };
            u64::from_str_radix(digits, radix)
                .unwrap_or_else(|e| panic!("bad HYPERTP_SEED {s:?}: {e}"))
        })
        .unwrap_or(0x17e6_c4a0);
    chaos_run(seed);
}

#[test]
fn same_seed_yields_byte_identical_fault_logs() {
    let first = chaos_run(CI_SEEDS[0]);
    let second = chaos_run(CI_SEEDS[0]);
    assert_eq!(
        first, second,
        "seed {:#x}: fault logs diverged between runs",
        CI_SEEDS[0]
    );
    assert!(!first.is_empty());
    // With arm_all_once the schedule is forced, so all seeds agree by
    // construction; under *rate*-based arming the seed drives the
    // schedule, and distinct seeds must explore distinct ones.
    let rate_run = |seed: u64| {
        let faults = FaultPlan::new(seed);
        faults.arm(InjectionPoint::LinkDrop, 0.5, u64::MAX);
        for i in 0..64 {
            faults.should_inject(InjectionPoint::LinkDrop, &format!("probe {i}"));
        }
        faults.log().render()
    };
    assert_eq!(rate_run(CI_SEEDS[1]), rate_run(CI_SEEDS[1]));
    assert_ne!(
        rate_run(CI_SEEDS[1]),
        rate_run(CI_SEEDS[2]),
        "distinct seeds should explore distinct schedules"
    );
}
