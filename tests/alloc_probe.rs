//! Allocation probe for the zero-copy wire path: once the reusable
//! buffers are warm, the steady-state hot loop — gather words, digest,
//! classify/encode into the frame ring, apply the ring's views — must
//! not touch the allocator at all. A counting global allocator asserts
//! this directly, and the engine's own [`hypertp_migrate::ScratchStats`]
//! probe (capacity-growth events on the shared scratch) asserts the same
//! invariant across whole migrations, where pool threads and report
//! construction put the raw counter out of reach.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use hypertp::prelude::*;
use hypertp_migrate::{FrameRing, TransferCache};
use hypertp_sim::hash::{digest_pages_into, Digest128};

/// Counts every allocation and reallocation (frees are irrelevant: the
/// invariant is that the hot path never *asks* for memory).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// One encode+apply round over the reusable buffers, exactly the shapes
/// the engine's ring path uses.
fn round(
    cache: &TransferCache,
    ring: &mut FrameRing,
    gfns: &[Gfn],
    words: &[u64],
    digests: &mut Vec<Digest128>,
    current: &mut [u64],
) -> u64 {
    digest_pages_into(words, digests);
    cache.begin_round();
    ring.restart();
    ring.begin();
    let wb = cache.encode_batch_into(7, gfns, words, digests, ring);
    // Apply side: walk the borrowed views against a reused "destination
    // RAM" vector, as `apply_ring` does.
    for (i, view) in ring.iter().enumerate() {
        let cur = current[i];
        let word = cache.apply_view(&view, cur).expect("self-produced frame");
        current[i] = word;
    }
    cache.commit_round();
    ring.commit();
    wb
}

// Plain main(), no libtest harness (`harness = false` in Cargo.toml):
// the allocation counter is process-global and the harness's own threads
// allocate at unpredictable points, so the probe must be the only thread
// alive during the measured window. Part 2 (the engine-level probe) runs
// after the counter assertion completes.
fn main() {
    println!("alloc_probe: steady-state hot path must not allocate");
    // A mixed round: zeros, a recurring word (dup fodder), unique words.
    let gfns: Vec<Gfn> = (0..256u64).map(|g| Gfn(g * 3)).collect();
    let words: Vec<u64> = (0..256u64)
        .map(|i| match i % 4 {
            0 => 0,
            1 => 0x5a5a_5a5a,
            _ => i.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1,
        })
        .collect();
    let cache = TransferCache::new();
    let mut ring = FrameRing::new();
    let mut digests = Vec::new();
    let mut current = vec![0u64; gfns.len()];

    // Warm-up: two rounds. The first populates the dedup cache and sizes
    // every buffer; the second settles classification (unique words now
    // classify as dups) and journal capacities.
    for _ in 0..2 {
        round(&cache, &mut ring, &gfns, &words, &mut digests, &mut current);
    }
    let grows_before = ring.grows();

    let before = ALLOCS.load(Ordering::Relaxed);
    let mut wire_bytes = 0u64;
    for _ in 0..100 {
        wire_bytes += round(&cache, &mut ring, &gfns, &words, &mut digests, &mut current);
    }
    let after = ALLOCS.load(Ordering::Relaxed);

    assert!(wire_bytes > 0, "rounds did run");
    assert_eq!(
        after - before,
        0,
        "steady-state encode+apply must not allocate"
    );
    assert_eq!(ring.grows(), grows_before, "ring regrew after warm-up");

    // Part 2 — whole-migration version of the same invariant, via the
    // engine's capacity-growth probe: a second same-shape migration
    // reuses every scratch buffer without a single regrow. (Pool threads
    // and report construction allocate legitimately, so this level uses
    // the scratch probe, not the raw counter.)
    let registry = default_registry();
    let clock = SimClock::new();
    let mut src_m = Machine::with_clock(MachineSpec::m1(), clock.clone());
    let mut dst_m = Machine::with_clock(MachineSpec::m1(), clock);
    let mut src = registry.create(HypervisorKind::Xen, &mut src_m).unwrap();
    let mut dst = registry.create(HypervisorKind::Kvm, &mut dst_m).unwrap();
    let tp = MigrationTp::new().with_config(MigrationConfig {
        wire_mode: WireMode::ContentAware,
        dirty_rate_pages_per_sec: 500.0,
        ..MigrationConfig::default()
    });

    let migrate_one = |name: &str, src: &mut dyn Hypervisor, src_m: &mut Machine| {
        let id = src
            .create_vm(src_m, &VmConfig::small(name).with_memory_gb(1))
            .unwrap();
        for k in 0..512u64 {
            src.write_guest(src_m, id, Gfn(k * 11), k | 0xbeef_0000)
                .unwrap();
        }
        id
    };

    let id = migrate_one("probe0", src.as_mut(), &mut src_m);
    tp.migrate(&mut src_m, src.as_mut(), id, &mut dst_m, dst.as_mut())
        .unwrap();
    let warm = tp.scratch_stats();
    assert!(warm.rounds > 0, "ring path exercised");

    let id = migrate_one("probe1", src.as_mut(), &mut src_m);
    tp.migrate(&mut src_m, src.as_mut(), id, &mut dst_m, dst.as_mut())
        .unwrap();
    let steady = tp.scratch_stats();

    assert!(steady.rounds > warm.rounds);
    assert_eq!(
        steady.grows, warm.grows,
        "second same-shape migration must not regrow any scratch buffer"
    );
    assert_eq!(steady.ring_capacity, warm.ring_capacity);
    println!("alloc_probe: ok (0 hot-path allocations over 100 rounds, no scratch regrowth)");
}
