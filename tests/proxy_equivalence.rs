//! Transport equivalence for the §4.2 proxy pair: the same fleet, seeded
//! identically, must land a byte-identical destination — and identical
//! per-VM `WireStats` — whether it migrates through the in-process
//! engine, through the proxy pair over crossed in-process channels, or
//! through the proxy pair over a real Unix-domain socket. The proxies
//! share one `MigrationTp` (source) and one `DestProxy` (destination)
//! across the fleet, so cross-VM dedup flows over the wire exactly as it
//! does inside the engine.

use std::collections::HashMap;

use hypertp::prelude::*;
use hypertp_migrate::{
    guest_checksum, run_source, DestProxy, InProcTransport, MigrationReport, ProxyReport,
    Transport, UdsServerTransport, UdsTransport,
};
use hypertp_sim::fault::{FaultPlan, InjectionPoint, RecoveryAction};

const VMS: u32 = 3;

fn config() -> MigrationConfig {
    MigrationConfig {
        wire_mode: WireMode::ContentAware,
        dirty_rate_pages_per_sec: 2000.0,
        ..MigrationConfig::default()
    }
}

/// Seeds the wire-equivalence fleet: a block shared across VMs (cross-VM
/// dedup fodder), a per-VM unique block, everything else zero.
fn seed_fleet(hv: &mut dyn Hypervisor, m: &mut Machine) -> Vec<VmId> {
    for i in 0..VMS {
        let cfg = VmConfig::small(format!("wire{i}")).with_memory_gb(1);
        let pages = cfg.pages();
        let id = hv.create_vm(m, &cfg).unwrap();
        for k in 0..256u64 {
            hv.write_guest(m, id, Gfn(k % pages), k | 0xabcd_0000)
                .unwrap();
        }
        for k in 0..64u64 {
            let gfn = Gfn((1024 + k * 5 + u64::from(i) * 131) % pages);
            hv.write_guest(m, id, gfn, k ^ (u64::from(i) << 48))
                .unwrap();
        }
    }
    hv.vm_ids()
}

/// Per-VM destination observables that must not depend on the path.
#[derive(Debug, PartialEq)]
struct DestImage {
    checksums: Vec<u64>,
    uisr_blobs: Vec<Vec<u8>>,
}

fn capture(dst_m: &Machine, dst: &mut dyn Hypervisor) -> DestImage {
    let mut checksums = Vec::new();
    let mut uisr_blobs = Vec::new();
    for i in 0..VMS {
        let id = dst.find_vm(&format!("wire{i}")).unwrap();
        let gfns: Vec<Gfn> = dst
            .guest_memory_map(id)
            .unwrap()
            .iter()
            .flat_map(|(g, e)| (g.0..g.0 + e.pages()).map(Gfn))
            .collect();
        checksums.push(guest_checksum(dst_m, dst, id, &gfns).unwrap());
        dst.pause_vm(id).unwrap();
        uisr_blobs.push(hypertp_uisr::encode(&dst.save_uisr(dst_m, id).unwrap()));
    }
    DestImage {
        checksums,
        uisr_blobs,
    }
}

/// Sequential engine migrations sharing one cache — the in-process
/// baseline the proxy paths must match.
fn run_engine() -> (DestImage, Vec<MigrationReport>) {
    let registry = default_registry();
    let clock = SimClock::new();
    let mut src_m = Machine::with_clock(MachineSpec::m1(), clock.clone());
    let mut dst_m = Machine::with_clock(MachineSpec::m1(), clock);
    let mut src = registry.create(HypervisorKind::Xen, &mut src_m).unwrap();
    let mut dst = registry.create(HypervisorKind::Kvm, &mut dst_m).unwrap();
    let ids = seed_fleet(src.as_mut(), &mut src_m);
    let tp = MigrationTp::new().with_config(config());
    let reports = ids
        .iter()
        .map(|&id| {
            tp.migrate(&mut src_m, src.as_mut(), id, &mut dst_m, dst.as_mut())
                .unwrap()
        })
        .collect();
    (capture(&dst_m, dst.as_mut()), reports)
}

/// The same fleet through the proxy pair: one source process-half and one
/// destination process-half, three sessions over one connection.
fn run_proxy_fleet(
    src_transport: &mut dyn Transport,
    dst_transport: &mut dyn Transport,
) -> (DestImage, Vec<ProxyReport>) {
    let registry = default_registry();
    let mut src_m = Machine::with_clock(MachineSpec::m1(), SimClock::new());
    let mut dst_m = Machine::with_clock(MachineSpec::m1(), SimClock::new());
    let mut src = registry.create(HypervisorKind::Xen, &mut src_m).unwrap();
    let mut dst = registry.create(HypervisorKind::Kvm, &mut dst_m).unwrap();
    let ids = seed_fleet(src.as_mut(), &mut src_m);
    let tp = MigrationTp::new().with_config(config());
    std::thread::scope(|s| {
        let dest = s.spawn(move || {
            let mut proxy = DestProxy::new();
            for _ in 0..VMS {
                proxy
                    .serve(&mut dst_m, dst.as_mut(), dst_transport)
                    .unwrap();
            }
            (dst_m, dst)
        });
        let reports: Vec<ProxyReport> = ids
            .iter()
            .map(|&id| run_source(&tp, &mut src_m, src.as_mut(), id, src_transport).unwrap())
            .collect();
        let (dst_m, mut dst) = dest.join().unwrap();
        (capture(&dst_m, dst.as_mut()), reports)
    })
}

fn socket_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("htp-proxy-eq-{tag}-{}", std::process::id()))
}

/// Connects a UDS pair through a real socket file, destination bound
/// first in a helper thread (bind blocks for the accept).
fn uds_pair(tag: &str) -> (UdsTransport, UdsServerTransport) {
    let path = socket_path(tag);
    let server_path = path.clone();
    let server = std::thread::spawn(move || UdsServerTransport::bind(&server_path).unwrap());
    let client = UdsTransport::connect(&path).unwrap();
    (client, server.join().unwrap())
}

#[test]
fn proxy_fleet_matches_engine_on_both_transports() {
    let (engine_dst, engine_reports) = run_engine();

    let (mut ia, mut ib) = InProcTransport::pair();
    let (inproc_dst, inproc_reports) = run_proxy_fleet(&mut ia, &mut ib);

    let (mut ua, mut ub) = uds_pair("fleet");
    let (uds_dst, uds_reports) = run_proxy_fleet(&mut ua, &mut ub);
    let _ = std::fs::remove_file(socket_path("fleet"));

    assert_eq!(inproc_dst, engine_dst, "in-proc proxy diverged from engine");
    assert_eq!(uds_dst, engine_dst, "UDS proxy diverged from engine");

    for (e, p) in engine_reports.iter().zip(&inproc_reports) {
        assert_eq!(
            p.wire, e.wire,
            "{}: wire stats diverged (in-proc)",
            e.vm_name
        );
        assert_eq!(p.bytes_sent, e.bytes_sent);
        assert_eq!(p.rounds as usize, e.rounds.len());
        assert_eq!(p.downtime, e.downtime);
        assert_eq!(p.total, e.total);
    }
    for (a, b) in inproc_reports.iter().zip(&uds_reports) {
        assert_eq!(
            a.wire, b.wire,
            "{}: wire stats diverged across transports",
            a.vm_name
        );
        assert_eq!(a.bytes_sent, b.bytes_sent);
        assert_eq!(a.src_checksum, b.src_checksum);
        assert_eq!(a.dst_checksum, b.dst_checksum);
    }

    // Cross-VM dedup flowed over the wire: later VMs dedup the shared
    // block that the first VM shipped raw.
    use hypertp_migrate::FrameKind;
    let first_dups = inproc_reports[0].wire.count(FrameKind::Dup);
    for r in &inproc_reports[1..] {
        assert!(
            r.wire.count(FrameKind::Dup) >= first_dups + 200,
            "{}: expected cross-VM dups over the wire",
            r.vm_name
        );
    }
}

/// Chaos over a real socket: a mid-stream disconnect (socket torn down
/// and redialed), a truncated frame (whole-round nak + re-send) and a
/// corrupted UISR blob all recover through the protocol, and the
/// destination still lands the source's exact pause-time RAM.
#[test]
fn proxy_recovers_over_real_socket() {
    let registry = default_registry();
    let mut src_m = Machine::with_clock(MachineSpec::m1(), SimClock::new());
    let mut dst_m = Machine::with_clock(MachineSpec::m1(), SimClock::new());
    let mut src = registry.create(HypervisorKind::Xen, &mut src_m).unwrap();
    let mut dst = registry.create(HypervisorKind::Kvm, &mut dst_m).unwrap();
    let id = seed_fleet(src.as_mut(), &mut src_m)[0];

    let faults = FaultPlan::new(7);
    faults.arm_once(InjectionPoint::LinkDrop);
    faults.arm_once(InjectionPoint::TruncatedPage);
    faults.arm_once(InjectionPoint::UisrCorruption);
    let tp = MigrationTp::new().with_config(config()).with_faults(faults);

    let (mut client, mut server) = uds_pair("chaos");
    let (src_report, dst_report) = std::thread::scope(|s| {
        let dest = s.spawn(move || {
            let r = hypertp_migrate::run_dest(&mut dst_m, dst.as_mut(), &mut server);
            (r, dst_m, dst)
        });
        let srcr = run_source(&tp, &mut src_m, src.as_mut(), id, &mut client).unwrap();
        let (r, _, _) = dest.join().unwrap();
        (srcr, r.unwrap())
    });
    let _ = std::fs::remove_file(socket_path("chaos"));

    assert_eq!(src_report.src_checksum, dst_report.checksum);
    let log = tp.faults.log();
    let expect: HashMap<_, _> = [
        (InjectionPoint::LinkDrop, RecoveryAction::RetriedWithBackoff),
        (InjectionPoint::LinkDrop, RecoveryAction::ResumedFromRound),
        (InjectionPoint::TruncatedPage, RecoveryAction::ResentPages),
        (InjectionPoint::UisrCorruption, RecoveryAction::ResentUisr),
    ]
    .into_iter()
    .collect();
    for (point, action) in expect {
        assert!(
            log.recovered_via(point, action),
            "missing recovery {point:?} via {action:?}\n{}",
            log.render()
        );
    }
}
