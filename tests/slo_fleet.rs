//! Seeded property tests for SLO-aware fleet scheduling (PR 9).
//!
//! 200 seeded cases across four properties:
//!
//! 1. **Destination identity (50 cases)** — with *zero-bandwidth*
//!    traffic curves (`bytes_per_query = 0`), an SLO attachment changes
//!    admission order but no physics: destination guest contents and
//!    per-VM raw bytes are byte-identical between a plain FIFO fleet and
//!    an SLO-aware fleet. (Bandwidth-carrying curves legitimately change
//!    round timing through link contention, which is why the identity
//!    property pins the curves to zero wire cost.)
//! 2. **Pool invariance (50 cases)** — the same SLO-aware fleets produce
//!    identical schedules, reports, and SLO outcomes whether migrations
//!    run on the serial pool or an 8-worker pool (what `HYPERTP_WORKERS`
//!    selects at runtime).
//! 3. **Budget safety (90 cases)** — an SLO-aware migration whose
//!    traffic contends its own pre-copy stream still lands at or under
//!    `stretched floor + budget + stretched quantum`, where the stretch
//!    bound is the contention share floor (the link never degrades below
//!    25%).
//! 4. **Degeneracy (10 cases)** — the empty fleet returns an empty
//!    report under `SloAware`, and all-idle fleets (flat zero curves)
//!    admit in FIFO order with zero violation-seconds and zero budget
//!    burn: no traffic, no signal, no reordering.

use hypertp::prelude::*;
use hypertp_migrate::{
    migrate_fleet, FleetOrder, FleetPolicy, FleetReport, FleetVm, Link, SloVm, TrafficCurve,
};
use hypertp_sim::{SimRng, WorkerPool};

fn pair() -> (Machine, Machine) {
    let clock = SimClock::new();
    let mut spec = MachineSpec::m1();
    spec.ram_gb = 8;
    (
        Machine::with_clock(spec.clone(), clock.clone()),
        Machine::with_clock(spec, clock),
    )
}

/// A seeded diurnal curve; `bytes_per_query = 0` makes it scheduling
/// signal only (no contention, no physics change).
fn seeded_curve(rng: &mut SimRng, bytes_per_query: f64) -> TrafficCurve {
    TrafficCurve {
        peak_qps: 500.0 + rng.gen_range(4_500) as f64,
        trough_fraction: 0.05 + 0.2 * rng.gen_f64(),
        peak_offset: SimDuration::from_secs(rng.gen_range(600)),
        period: SimDuration::from_secs(600),
        sharpness: 2 + rng.gen_range(2) as u32,
        bytes_per_query,
    }
}

fn seeded_slo(rng: &mut SimRng, bytes_per_query: f64) -> SloVm {
    SloVm {
        traffic: seeded_curve(rng, bytes_per_query),
        degraded_capacity: 0.3 + 0.5 * rng.gen_f64(),
        error_budget: SimDuration::from_secs(30 + rng.gen_range(90)),
    }
}

/// Builds an `n`-VM fleet with seeded contents and dirty rates, runs it,
/// and returns the report plus destination probe words per VM.
fn fleet_run(
    case: u64,
    n: usize,
    rates: &[f64],
    slos: &[Option<SloVm>],
    order: FleetOrder,
    pool: WorkerPool,
) -> (FleetReport, Vec<Vec<u64>>) {
    let (mut src_m, mut dst_m) = pair();
    let mut src = XenHypervisor::new(&mut src_m);
    let mut dst = KvmHypervisor::new(&mut dst_m);
    let vms: Vec<FleetVm> = (0..n)
        .map(|i| {
            let id = src
                .create_vm(&mut src_m, &VmConfig::small(format!("slo{case}-{i}")))
                .unwrap();
            for k in 0..24u64 {
                src.write_guest(
                    &mut src_m,
                    id,
                    Gfn(k * 53 + i as u64),
                    k ^ (case << 16) ^ i as u64,
                )
                .unwrap();
            }
            let mut vm = FleetVm::with_dirty_rate(id, rates[i]);
            if let Some(slo) = slos[i] {
                vm = vm.with_slo(slo);
            }
            vm
        })
        .collect();
    let tp = MigrationTp::new().with_pool(pool);
    let fleet = migrate_fleet(
        &tp,
        &mut src_m,
        &mut src,
        &vms,
        &mut dst_m,
        &mut dst,
        FleetPolicy {
            order,
            max_concurrent: 1,
            compression_hint: 1.0,
        },
    )
    .unwrap();
    let probes = (0..n)
        .map(|i| {
            let id = dst.find_vm(&format!("slo{case}-{i}")).expect("VM arrived");
            (0..24u64)
                .map(|k| dst.read_guest(&dst_m, id, Gfn(k * 53 + i as u64)).unwrap())
                .collect()
        })
        .collect();
    (fleet, probes)
}

#[test]
fn property_zero_bandwidth_slo_never_changes_destinations() {
    let mut rng = SimRng::new(0x510_0001);
    for case in 0..50u64 {
        let n = 2 + rng.gen_range(2) as usize; // 2..=3 VMs
        let rates: Vec<f64> = (0..n).map(|_| 50.0 + rng.gen_range(2_500) as f64).collect();
        // Zero-bandwidth curves: scheduling signal without physics.
        let slos: Vec<Option<SloVm>> = (0..n)
            .map(|_| (rng.gen_range(4) != 0).then(|| seeded_slo(&mut rng, 0.0)))
            .collect();
        let none: Vec<Option<SloVm>> = vec![None; n];
        let (fifo, probes_fifo) = fleet_run(
            case,
            n,
            &rates,
            &none,
            FleetOrder::Fifo,
            WorkerPool::serial(),
        );
        let (aware, probes_aware) = fleet_run(
            case,
            n,
            &rates,
            &slos,
            FleetOrder::SloAware,
            WorkerPool::serial(),
        );
        assert_eq!(
            probes_fifo, probes_aware,
            "case {case}: admission order changed destination contents"
        );
        // Raw mode, zero-bandwidth curves: each VM's wire bytes are
        // order-independent.
        for (a, b) in fifo.reports.iter().zip(&aware.reports) {
            assert_eq!(
                a.vm_name, b.vm_name,
                "case {case}: report order is input order"
            );
            assert_eq!(
                a.bytes_sent, b.bytes_sent,
                "case {case}: {} bytes drifted",
                a.vm_name
            );
            assert_eq!(
                a.downtime, b.downtime,
                "case {case}: {} downtime drifted",
                a.vm_name
            );
        }
        assert_eq!(
            aware.slo_vm_count(),
            slos.iter().flatten().count(),
            "case {case}: every attachment accounted"
        );
    }
}

#[test]
fn property_slo_schedule_is_worker_pool_invariant() {
    // The pool width is what `HYPERTP_WORKERS` selects at runtime; the
    // schedule and every report field must not depend on it.
    let mut rng = SimRng::new(0x510_0002);
    for case in 0..50u64 {
        let n = 2 + rng.gen_range(2) as usize;
        let rates: Vec<f64> = (0..n).map(|_| 50.0 + rng.gen_range(2_500) as f64).collect();
        // Bandwidth-carrying curves: the contended path must be just as
        // deterministic as the idle one.
        let slos: Vec<Option<SloVm>> = (0..n)
            .map(|_| (rng.gen_range(3) != 0).then(|| seeded_slo(&mut rng, 20_000.0)))
            .collect();
        let (serial, probes_serial) = fleet_run(
            case | 0x100,
            n,
            &rates,
            &slos,
            FleetOrder::SloAware,
            WorkerPool::serial(),
        );
        let (pooled, probes_pooled) = fleet_run(
            case | 0x100,
            n,
            &rates,
            &slos,
            FleetOrder::SloAware,
            WorkerPool::new(8),
        );
        assert_eq!(serial.admission, pooled.admission, "case {case}");
        assert_eq!(serial.makespan, pooled.makespan, "case {case}");
        assert_eq!(probes_serial, probes_pooled, "case {case}");
        assert_eq!(
            serial.total_violation(),
            pooled.total_violation(),
            "case {case}"
        );
        assert_eq!(
            serial.max_budget_burn(),
            pooled.max_budget_burn(),
            "case {case}"
        );
        for (a, b) in serial.reports.iter().zip(&pooled.reports) {
            assert_eq!(a.vm_name, b.vm_name);
            assert_eq!(a.rounds, b.rounds);
            assert_eq!(a.downtime, b.downtime);
            assert_eq!(a.total, b.total);
            assert_eq!(a.bytes_sent, b.bytes_sent);
        }
    }
}

#[test]
fn property_slo_aware_migrations_respect_the_downtime_budget() {
    // The incompressible floor: a rate-0, traffic-free migration pauses
    // with an empty stop set.
    let zero: Vec<Option<SloVm>> = vec![None];
    let (base, _) = fleet_run(
        0x999,
        1,
        &[0.0],
        &zero,
        FleetOrder::SloAware,
        WorkerPool::serial(),
    );
    let floor = base.reports[0].downtime;
    // Contention never degrades the migration share below 25%, so fixed
    // costs and the one-quantum slack stretch by at most 4x.
    let quantum = Link::gigabit().transfer(2 * 4112, 1);
    let stretch = |d: SimDuration| SimDuration::from_secs_f64(d.as_secs_f64() * 4.0);
    let bound = |budget: SimDuration| stretch(floor) + budget + stretch(quantum);

    let mut rng = SimRng::new(0x510_0003);
    for case in 0..90u64 {
        let rate = 100.0 + rng.gen_range(3_900) as f64;
        let budget = SimDuration::from_millis(5 + rng.gen_range(196));
        // Every case carries real traffic: the budget must hold *under
        // contention*, where the observed link is slower than nominal.
        let slos = [Some(seeded_slo(&mut rng, 25_000.0))];
        let (mut src_m, mut dst_m) = pair();
        let mut src = XenHypervisor::new(&mut src_m);
        let mut dst = KvmHypervisor::new(&mut dst_m);
        let id = src
            .create_vm(&mut src_m, &VmConfig::small(format!("budget{case}")))
            .unwrap();
        for k in 0..24u64 {
            src.write_guest(&mut src_m, id, Gfn(k * 53), k ^ case)
                .unwrap();
        }
        let vms = vec![FleetVm::with_dirty_rate(id, rate).with_slo(slos[0].unwrap())];
        let cfg = MigrationConfig {
            downtime_budget: Some(budget),
            ..MigrationConfig::default()
        };
        let tp = MigrationTp::new().with_config(cfg);
        let fleet = migrate_fleet(
            &tp,
            &mut src_m,
            &mut src,
            &vms,
            &mut dst_m,
            &mut dst,
            FleetPolicy {
                order: FleetOrder::SloAware,
                max_concurrent: 1,
                compression_hint: 1.0,
            },
        )
        .unwrap();
        let r = &fleet.reports[0];
        assert!(
            r.downtime <= bound(budget),
            "case {case} (rate {rate}, budget {budget:?}): downtime {:?} exceeds \
             stretched floor {floor:?} + budget + quantum",
            r.downtime,
        );
    }
}

#[test]
fn slo_fleet_degenerates_cleanly() {
    // Case 1-2: the empty fleet under SloAware, serial and pooled.
    for pool in [WorkerPool::serial(), WorkerPool::new(4)] {
        let (mut src_m, mut dst_m) = pair();
        let mut src = XenHypervisor::new(&mut src_m);
        let mut dst = KvmHypervisor::new(&mut dst_m);
        let tp = MigrationTp::new().with_pool(pool);
        let fleet = migrate_fleet(
            &tp,
            &mut src_m,
            &mut src,
            &[],
            &mut dst_m,
            &mut dst,
            FleetPolicy {
                order: FleetOrder::SloAware,
                max_concurrent: 2,
                compression_hint: 1.0,
            },
        )
        .unwrap();
        assert!(fleet.reports.is_empty());
        assert!(fleet.admission.is_empty());
        assert_eq!(fleet.makespan, SimDuration::ZERO);
        assert_eq!(fleet.total_violation(), SimDuration::ZERO);
        assert_eq!(fleet.max_budget_burn(), 0.0);
    }

    // Cases 3-10: all-idle fleets — every VM carries an SLO whose curve
    // is flat zero (`TrafficCurve::IDLE`). No traffic means no harm
    // signal and identical predictions (uniform VMs), so SLO-aware
    // admission degenerates to the deterministic first-index (FIFO)
    // order, with zero violation and zero burn.
    let idle = SloVm {
        traffic: TrafficCurve::IDLE,
        degraded_capacity: 0.5,
        error_budget: SimDuration::from_secs(60),
    };
    for case in 0..8u64 {
        let n = 3;
        let rates = vec![400.0; n];
        let slos = vec![Some(idle); n];
        let (fleet, _) = fleet_run(
            case | 0x200,
            n,
            &rates,
            &slos,
            FleetOrder::SloAware,
            WorkerPool::serial(),
        );
        assert_eq!(
            fleet.admission,
            (0..n).collect::<Vec<_>>(),
            "case {case}: all-idle uniform fleet must admit in FIFO order"
        );
        assert_eq!(fleet.total_violation(), SimDuration::ZERO, "case {case}");
        assert_eq!(fleet.max_budget_burn(), 0.0, "case {case}");
        assert_eq!(fleet.slo_vm_count(), n, "case {case}");
    }
}
