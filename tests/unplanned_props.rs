//! Seeded property tests for the unplanned-transplant path (200 cases).
//!
//! Three properties, each over a seeded family of randomized scenarios
//! (VM count, workload intensity, staleness bound, and crash ordinal all
//! drawn from a [`SimRng`] stream, so every case replays exactly):
//!
//! 1. **Legality** (150 cases): whatever phase the crash lands in, the
//!    recovered VM's register state equals some state the guest actually
//!    passed through at a checkpoint boundary — never a torn or invented
//!    one — while guest memory survives the micro-reboot in place.
//! 2. **Loss bound** (part of the same 150 cases): the checkpoint lag at
//!    the last completed tick is strictly below the configured staleness
//!    bound, for every VM, at every crash phase.
//! 3. **Cadence invariance** (30 cases × 3 pool sizes + 20 cases via
//!    `HYPERTP_WORKERS`): the checkpointer's refresh cadence and the
//!    recovery report are byte-identical for every worker-pool size —
//!    parallelism is an implementation detail, not a schedule input.

use hypertp::prelude::*;
use hypertp::uisr::CpuRegisters;
use hypertp_core::{crash_gate, CheckpointConfig, UnplannedRecovery, WarmCheckpointer};
use hypertp_sim::fault::{FaultPlan, InjectionPoint};
use hypertp_sim::{CostModel, SimRng, WorkerPool};

/// Cases for the legality + loss-bound property.
const LEGALITY_CASES: u64 = 150;
/// Cases for the explicit worker-pool invariance property.
const POOL_CASES: u64 = 30;
/// Cases for the `HYPERTP_WORKERS` env invariance property.
const ENV_CASES: u64 = 20;

fn small_spec(ram_gb: u64) -> MachineSpec {
    let mut spec = MachineSpec::m1();
    spec.ram_gb = ram_gb;
    spec
}

/// One randomized scenario drawn from `case`.
struct Scenario {
    vms: u64,
    workload: u64,
    bound: u64,
    /// Crash-gate ordinal: the checkpointer consults 3× per tick over
    /// at most 3 ticks; ordinal 10 fires at the idle watchdog after.
    ordinal: u64,
}

impl Scenario {
    fn derive(case: u64) -> Self {
        let mut rng = SimRng::new(0x9e0b_0007 ^ (case << 8));
        Scenario {
            vms: 1 + rng.gen_range(2),
            workload: 16 + rng.gen_range(97),
            bound: 32 + rng.gen_range(193),
            ordinal: 1 + rng.gen_range(10),
        }
    }
}

/// Pauses the VM just long enough to translate its register file.
fn snapshot_regs(hv: &mut dyn Hypervisor, m: &Machine, id: VmId) -> Vec<CpuRegisters> {
    hv.pause_vm(id).unwrap();
    let u = hv.save_uisr(m, id).unwrap();
    hv.resume_vm(id).unwrap();
    u.vcpus.into_iter().map(|v| v.regs).collect()
}

/// Runs one crash + recovery under `sc` with the given worker pool.
/// Returns (cadence render, recovery-report render) and asserts the
/// legality and loss-bound properties when `check_legal` is set.
fn run_scenario(case: u64, sc: &Scenario, pool: WorkerPool, check_legal: bool) -> (String, String) {
    let registry = default_registry();
    let faults = FaultPlan::new(0x9e0b_0008 ^ case);
    faults.arm_calls(InjectionPoint::HypervisorCrash, &[sc.ordinal]);
    let mut m = Machine::new(small_spec(8));
    let mut hv = registry.create(HypervisorKind::Xen, &mut m).unwrap();
    let mut ids = Vec::new();
    for i in 0..sc.vms {
        let cfg = VmConfig::small(format!("prop{i}"));
        let id = hv.create_vm(&mut m, &cfg).unwrap();
        hv.write_guest(&mut m, id, Gfn(100 + i), 0xface_0000 + case + i)
            .unwrap();
        ids.push(id);
    }
    let cfg = CheckpointConfig {
        staleness_bound_pages: sc.bound,
        ..CheckpointConfig::default()
    };
    let mut ckpt = WarmCheckpointer::start_with(
        &mut m,
        hv.as_mut(),
        HypervisorKind::Kvm,
        cfg,
        CostModel::paper_calibrated(),
        faults.clone(),
        pool,
    )
    .unwrap_or_else(|e| panic!("case {case}: start failed: {e}"));

    // Legal pre-crash states: the initial checkpoint plus every completed
    // tick's state (the refresh snapshot is taken mid-tick, but nothing
    // runs the guests between it and the tick end, so the tick-end
    // register file equals what the checkpoint captured).
    let mut legal: Vec<Vec<Vec<CpuRegisters>>> = ids
        .iter()
        .map(|&id| vec![snapshot_regs(hv.as_mut(), &m, id)])
        .collect();
    let mut crashed = false;
    for _ in 0..3 {
        let tr = ckpt
            .tick(&mut m, hv.as_mut(), sc.workload)
            .unwrap_or_else(|e| panic!("case {case}: tick failed: {e}"));
        if tr.crashed.is_some() {
            crashed = true;
            break;
        }
        for (k, &id) in ids.iter().enumerate() {
            legal[k].push(snapshot_regs(hv.as_mut(), &m, id));
        }
    }
    if !crashed {
        assert!(
            crash_gate(&faults, "idle watchdog"),
            "case {case}: ordinal {} never fired",
            sc.ordinal
        );
    }
    let cadence = ckpt.cadence_render();
    let bound = sc.bound;

    let engine = UnplannedRecovery::new(&registry).with_faults(faults);
    let (mut hv2, report) = engine
        .recover(&mut m, hv, ckpt)
        .unwrap_or_else(|e| panic!("case {case}: recovery failed: {e}"));
    assert_eq!(report.vm_count, sc.vms as usize, "case {case}: VM lost");
    assert!(
        report.within_bound(),
        "case {case}: loss bound {bound} blown:\n{}",
        report.render()
    );
    if check_legal {
        for (k, i) in (0..sc.vms).enumerate() {
            let name = format!("prop{i}");
            let id = hv2
                .find_vm(&name)
                .unwrap_or_else(|| panic!("case {case}: {name} lost"));
            assert_eq!(hv2.vm_state(id).unwrap(), VmState::Running);
            assert_eq!(
                hv2.read_guest(&m, id, Gfn(100 + i)).unwrap(),
                0xface_0000 + case + i,
                "case {case}: {name} guest word lost"
            );
            let restored = snapshot_regs(hv2.as_mut(), &m, id);
            assert!(
                legal[k].contains(&restored),
                "case {case}: {name} restored registers match no recorded checkpoint \
                 (ordinal {}, workload {}, bound {bound})",
                sc.ordinal,
                sc.workload
            );
        }
    }
    (cadence, report.render())
}

#[test]
fn restored_state_is_a_legal_pre_crash_state_and_bound_holds() {
    for case in 0..LEGALITY_CASES {
        let sc = Scenario::derive(case);
        run_scenario(case, &sc, WorkerPool::new(2), true);
    }
}

#[test]
fn checkpoint_cadence_is_invariant_under_worker_count() {
    for case in 0..POOL_CASES {
        let sc = Scenario::derive(0x1000 + case);
        let runs: Vec<(String, String)> = [1usize, 3, 7]
            .into_iter()
            .map(|w| run_scenario(0x1000 + case, &sc, WorkerPool::new(w), false))
            .collect();
        for (w, run) in runs.iter().enumerate().skip(1) {
            assert_eq!(
                runs[0], *run,
                "case {case}: cadence/report diverged between 1 worker and pool #{w}"
            );
        }
    }
}

#[test]
fn checkpoint_cadence_is_invariant_under_hypertp_workers_env() {
    // The only test in this binary that touches HYPERTP_WORKERS, so the
    // parallel test harness cannot race on it.
    std::env::set_var("HYPERTP_WORKERS", "6");
    let from_env: Vec<(String, String)> = (0..ENV_CASES)
        .map(|case| {
            let sc = Scenario::derive(0x2000 + case);
            run_scenario(0x2000 + case, &sc, WorkerPool::from_env(), false)
        })
        .collect();
    std::env::remove_var("HYPERTP_WORKERS");
    for case in 0..ENV_CASES {
        let sc = Scenario::derive(0x2000 + case);
        let serial = run_scenario(0x2000 + case, &sc, WorkerPool::new(1), false);
        assert_eq!(
            from_env[case as usize], serial,
            "case {case}: cadence/report diverged between HYPERTP_WORKERS=6 and serial"
        );
    }
}
