//! Randomized integration tests over the transplant and migration
//! engines: for randomized VM shapes, guest activity and dirty rates, the
//! end-to-end invariants must hold.
//!
//! Formerly property-based (proptest); now deterministic randomized loops
//! seeded from `hypertp_sim::SimRng` so the workspace builds offline and
//! every run replays the exact same cases.
//!
//! Set `HYPERTP_SEED` (decimal or `0x`-prefixed hex) to probe a fresh
//! seed; every assertion prints the seed in effect, so a CI failure is
//! replayable with `HYPERTP_SEED=<seed> cargo test --test
//! randomized_integration`.

use hypertp::prelude::*;
use hypertp_sim::SimRng;

fn small_spec(ram_gb: u64) -> MachineSpec {
    let mut spec = MachineSpec::m1();
    spec.ram_gb = ram_gb;
    spec
}

/// The seed for a test: `HYPERTP_SEED` if set, else `default`.
fn seed_for(default: u64) -> u64 {
    match std::env::var("HYPERTP_SEED") {
        Ok(s) => {
            let s = s.trim();
            let (digits, radix) = match s.strip_prefix("0x") {
                Some(hex) => (hex, 16),
                None => (s, 10),
            };
            u64::from_str_radix(digits, radix)
                .unwrap_or_else(|e| panic!("bad HYPERTP_SEED {s:?}: {e}"))
        }
        Err(_) => default,
    }
}

/// For any mix of VM shapes and guest writes, InPlaceTP preserves all
/// guest memory and all VMs, in both directions. (Formerly proptest,
/// 12 cases.)
#[test]
fn inplace_preserves_random_guests() {
    let seed = seed_for(0x17e6_0001);
    let mut rng = SimRng::new(seed);
    for case in 0..12 {
        let n_vms = 1 + rng.gen_range(3) as u32;
        let vcpus = 1 + rng.gen_range(3) as u32;
        let n_writes = 1 + rng.gen_range(39) as usize;
        let writes: Vec<(u64, u64)> = (0..n_writes)
            .map(|_| (rng.next_u64(), rng.next_u64()))
            .collect();
        let to_xen = rng.gen_bool(0.5);

        let registry = default_registry();
        let mut m = Machine::new(small_spec(8));
        let (source, target) = if to_xen {
            (HypervisorKind::Kvm, HypervisorKind::Xen)
        } else {
            (HypervisorKind::Xen, HypervisorKind::Kvm)
        };
        let mut hv = registry.create(source, &mut m).unwrap();
        let mut expected = Vec::new();
        for i in 0..n_vms {
            let cfg = VmConfig::small(format!("vm{i}")).with_vcpus(vcpus);
            let id = hv.create_vm(&mut m, &cfg).unwrap();
            for (k, (gfn, val)) in writes.iter().enumerate() {
                if k as u32 % n_vms == i {
                    let g = Gfn(gfn % cfg.pages());
                    hv.write_guest(&mut m, id, g, *val).unwrap();
                    expected.push((cfg.name.clone(), g, *val));
                }
            }
        }
        // Writes to the same gfn overwrite; keep only the last per key.
        let mut last = std::collections::HashMap::new();
        for (name, g, v) in expected {
            last.insert((name, g), v);
        }

        let engine = InPlaceTransplant::new(&registry);
        let (hv2, report) = engine.run(&mut m, hv, target).unwrap();
        assert_eq!(report.vm_count as u32, n_vms, "seed {seed:#x} case {case}");
        for ((name, gfn), val) in last {
            let id = hv2.find_vm(&name).unwrap();
            assert_eq!(
                hv2.read_guest(&m, id, gfn).unwrap(),
                val,
                "seed {seed:#x} case {case}"
            );
            assert_eq!(
                hv2.vm_state(id).unwrap(),
                VmState::Running,
                "seed {seed:#x} case {case}"
            );
        }
    }
}

/// For any dirty rate, migration converges (or force-stops) and the
/// destination equals the source at pause time. (Formerly proptest,
/// 12 cases.)
#[test]
fn migration_always_converges_and_matches() {
    let seed = seed_for(0x17e6_0002);
    let mut rng = SimRng::new(seed);
    for case in 0..12 {
        let dirty_rate = rng.gen_f64() * 50_000.0;
        let threshold = 1 + rng.gen_range(511);
        let max_rounds = 2 + rng.gen_range(10) as u32;

        let registry = default_registry();
        let clock = SimClock::new();
        let mut src_m = Machine::with_clock(small_spec(4), clock.clone());
        let mut dst_m = Machine::with_clock(small_spec(4), clock);
        let mut src = registry.create(HypervisorKind::Xen, &mut src_m).unwrap();
        let mut dst = registry.create(HypervisorKind::Kvm, &mut dst_m).unwrap();
        let id = src.create_vm(&mut src_m, &VmConfig::small("vm0")).unwrap();
        let tp = MigrationTp::new().with_config(MigrationConfig {
            dirty_rate_pages_per_sec: dirty_rate,
            stop_threshold_pages: threshold,
            max_rounds,
            verify_contents: true, // The engine itself checks equality.
            ..MigrationConfig::default()
        });
        let report = tp
            .migrate(&mut src_m, src.as_mut(), id, &mut dst_m, dst.as_mut())
            .unwrap();
        assert!(
            report.rounds.len() as u32 <= max_rounds,
            "seed {seed:#x} case {case}"
        );
        assert!(report.downtime < report.total, "seed {seed:#x} case {case}");
        let new_id = dst.find_vm("vm0").unwrap();
        assert_eq!(
            dst.vm_state(new_id).unwrap(),
            VmState::Running,
            "seed {seed:#x} case {case}"
        );
    }
}
