//! End-to-end InPlaceTP integration tests with the real Xen and KVM
//! models: guest memory, vCPU architectural state, device state and the
//! documented compatibility fixes must all survive heterogeneous
//! transplant in both directions.

use hypertp::prelude::*;
use hypertp_core::Hypervisor;
use hypertp_uisr::{lapic_page, msr, DeviceState};

fn machine() -> Machine {
    Machine::new(MachineSpec::m1())
}

/// Writes recognizable state into a running VM and returns what was
/// written: (gfn, content) pairs plus the rip after activity.
fn exercise_guest(
    hv: &mut Box<dyn Hypervisor>,
    m: &mut Machine,
    id: VmId,
) -> (Vec<(u64, u64)>, u64) {
    let writes: Vec<(u64, u64)> = (0..64)
        .map(|i| (i * 1000 + 7, 0xAAAA_0000 + i * 3))
        .collect();
    for &(gfn, val) in &writes {
        hv.write_guest(m, id, Gfn(gfn), val).unwrap();
    }
    hv.guest_tick(m, id, 20).unwrap();
    hv.pause_vm(id).unwrap();
    let u = hv.save_uisr(m, id).unwrap();
    hv.resume_vm(id).unwrap();
    (writes, u.vcpus[0].regs.rip)
}

#[test]
fn xen_to_kvm_preserves_everything() {
    let mut m = machine();
    let registry = default_registry();
    let mut xen: Box<dyn Hypervisor> = Box::new(XenHypervisor::new(&mut m));
    let id = xen
        .create_vm(&mut m, &VmConfig::small("prod-db").with_vcpus(2))
        .unwrap();
    let (writes, rip) = exercise_guest(&mut xen, &mut m, id);

    let engine = InPlaceTransplant::new(&registry);
    let (mut kvm, report) = engine.run(&mut m, xen, HypervisorKind::Kvm).unwrap();

    assert_eq!(kvm.kind(), HypervisorKind::Kvm);
    assert_eq!(report.vm_count, 1);
    // The §4.2.1 IOAPIC fix fires on the Xen→KVM direction.
    assert!(
        report.warnings.iter().any(|w| w.contains("IOAPIC")),
        "warnings: {:?}",
        report.warnings
    );

    let new_id = kvm.find_vm("prod-db").unwrap();
    assert_eq!(kvm.vm_state(new_id).unwrap(), VmState::Running);
    for &(gfn, val) in &writes {
        assert_eq!(kvm.read_guest(&m, new_id, Gfn(gfn)).unwrap(), val);
    }
    // Architectural state survived the format change.
    kvm.pause_vm(new_id).unwrap();
    let u = kvm.save_uisr(&m, new_id).unwrap();
    assert_eq!(u.vcpus.len(), 2);
    assert_eq!(u.vcpus[0].regs.rip, rip);
    assert_eq!(u.vcpus[0].sregs.efer, 0xd01);
    assert_eq!(msr::find(&u.vcpus[0].msrs, msr::IA32_EFER), Some(0xd01));
    assert_eq!(u.ioapic.pins(), 24, "KVM runs its native 24-pin IOAPIC");
    // Network device re-plugged after restoration.
    assert!(u
        .devices
        .iter()
        .any(|d| matches!(d, DeviceState::Network { .. })));
}

#[test]
fn kvm_to_xen_preserves_everything() {
    let mut m = machine();
    let registry = default_registry();
    let mut kvm: Box<dyn Hypervisor> = Box::new(KvmHypervisor::new(&mut m));
    let id = kvm.create_vm(&mut m, &VmConfig::small("cache-1")).unwrap();
    let (writes, rip) = exercise_guest(&mut kvm, &mut m, id);

    let engine = InPlaceTransplant::new(&registry);
    let (mut xen, report) = engine.run(&mut m, kvm, HypervisorKind::Xen).unwrap();
    assert_eq!(xen.kind(), HypervisorKind::Xen);
    // KVM→Xen expands the IOAPIC back to 48 pins.
    assert!(report.warnings.iter().any(|w| w.contains("IOAPIC")));

    let new_id = xen.find_vm("cache-1").unwrap();
    for &(gfn, val) in &writes {
        assert_eq!(xen.read_guest(&m, new_id, Gfn(gfn)).unwrap(), val);
    }
    xen.pause_vm(new_id).unwrap();
    let u = xen.save_uisr(&m, new_id).unwrap();
    assert_eq!(u.vcpus[0].regs.rip, rip);
    assert_eq!(u.ioapic.pins(), 48);
}

#[test]
fn full_roundtrip_xen_kvm_xen_is_lossless_for_guest_state() {
    let mut m = machine();
    let registry = default_registry();
    let mut xen: Box<dyn Hypervisor> = Box::new(XenHypervisor::new(&mut m));
    let id = xen.create_vm(&mut m, &VmConfig::small("vm0")).unwrap();
    xen.write_guest(&mut m, id, Gfn(4242), 0xC0FFEE).unwrap();
    xen.guest_tick(&mut m, id, 30).unwrap();

    // Capture the full UISR before the double transplant.
    xen.pause_vm(id).unwrap();
    let before = xen.save_uisr(&m, id).unwrap();
    xen.resume_vm(id).unwrap();

    let engine = InPlaceTransplant::new(&registry);
    let (kvm, _) = engine.run(&mut m, xen, HypervisorKind::Kvm).unwrap();
    let (mut xen2, _) = engine.run(&mut m, kvm, HypervisorKind::Xen).unwrap();

    let id2 = xen2.find_vm("vm0").unwrap();
    assert_eq!(xen2.read_guest(&m, id2, Gfn(4242)).unwrap(), 0xC0FFEE);
    xen2.pause_vm(id2).unwrap();
    let after = xen2.save_uisr(&m, id2).unwrap();

    // CPU state: identical.
    assert_eq!(after.vcpus[0].regs, before.vcpus[0].regs);
    assert_eq!(after.vcpus[0].sregs, before.vcpus[0].sregs);
    assert_eq!(after.vcpus[0].fpu, before.vcpus[0].fpu);
    assert_eq!(after.vcpus[0].xsave, before.vcpus[0].xsave);
    assert_eq!(after.vcpus[0].mtrr, before.vcpus[0].mtrr);
    assert_eq!(
        lapic_page::summarize(&after.vcpus[0].lapic_regs, 0),
        lapic_page::summarize(&before.vcpus[0].lapic_regs, 0),
    );
    // The only documented loss: IOAPIC pins 24–47 were disconnected on
    // the KVM hop and come back masked.
    assert_eq!(after.ioapic.pins(), 48);
    assert_eq!(
        &after.ioapic.redirection[..24],
        &before.ioapic.redirection[..24]
    );
    assert!(after.ioapic.redirection[24..].iter().all(|e| e.masked));

    // Three kernels booted on this machine in total.
    assert_eq!(m.boot_count(), 3);
}

#[test]
fn twelve_small_vms_transplant_together() {
    // §5.2.1: M1 hosts up to 12 × 1 GB VMs; all must survive one
    // transplant.
    let mut m = machine();
    let registry = default_registry();
    let mut xen: Box<dyn Hypervisor> = Box::new(XenHypervisor::new(&mut m));
    let mut ids = Vec::new();
    for i in 0..12 {
        let id = xen
            .create_vm(&mut m, &VmConfig::small(format!("vm{i}")))
            .unwrap();
        xen.write_guest(&mut m, id, Gfn(i), 0x6000 + i).unwrap();
        ids.push(id);
    }
    let engine = InPlaceTransplant::new(&registry);
    let (kvm, report) = engine.run(&mut m, xen, HypervisorKind::Kvm).unwrap();
    assert_eq!(report.vm_count, 12);
    // Fig. 14: 12 × 1 GB VMs -> 148 KB of PRAM metadata (plus the UISR
    // blob files we persist alongside).
    assert!(report.pram_stats.metadata_bytes() >= 148 * 1024);
    for i in 0..12u64 {
        let id = kvm.find_vm(&format!("vm{i}")).unwrap();
        assert_eq!(kvm.read_guest(&m, id, Gfn(i)).unwrap(), 0x6000 + i);
        assert_eq!(kvm.vm_state(id).unwrap(), VmState::Running);
    }
}

#[test]
fn downtime_matches_paper_shape_on_m1_and_m2() {
    for (spec, lo, hi) in [(MachineSpec::m1(), 1.4, 2.1), (MachineSpec::m2(), 2.5, 3.6)] {
        let mut m = Machine::new(spec.clone());
        let registry = default_registry();
        let mut xen: Box<dyn Hypervisor> = Box::new(XenHypervisor::new(&mut m));
        xen.create_vm(&mut m, &VmConfig::small("vm0")).unwrap();
        let engine = InPlaceTransplant::new(&registry);
        let (_kvm, report) = engine.run(&mut m, xen, HypervisorKind::Kvm).unwrap();
        let downtime = report.downtime().as_secs_f64();
        assert!(
            (lo..hi).contains(&downtime),
            "{}: downtime = {downtime}",
            spec.name
        );
    }
}

#[test]
fn hv_state_never_survives_transplant() {
    // HV State frames written by the source hypervisor must be scrubbed
    // or recycled after the micro-reboot (memory-separation invariant).
    let mut m = machine();
    let registry = default_registry();
    let mut xen: Box<dyn Hypervisor> = Box::new(XenHypervisor::new(&mut m));
    xen.create_vm(&mut m, &VmConfig::small("vm0")).unwrap();
    let hv_state_before = xen.memsep_report(&m).hv_state;
    assert!(hv_state_before > 0);
    let engine = InPlaceTransplant::new(&registry);
    let (_kvm, report) = engine.run(&mut m, xen, HypervisorKind::Kvm).unwrap();
    // The scrub pass destroyed the old hypervisor's heap contents.
    assert!(
        report.scrubbed_frames > 0,
        "boot scrub must reclaim the old HV State"
    );
}

#[test]
fn strict_preflight_aborts_before_reboot_when_lossy() {
    // The §4.2.1 future-work direction: with strict pre-flight on, a VM
    // driving an IOAPIC pin KVM doesn't have aborts the transplant
    // *before* the micro-reboot, leaving everything running on Xen.
    use hypertp_core::{HtpError, Optimizations};

    let mut m = machine();
    let registry = default_registry();
    let mut xen_hv = XenHypervisor::new(&mut m);
    let id = {
        use hypertp_core::Hypervisor as _;
        xen_hv
            .create_vm(&mut m, &VmConfig::small("edge-router"))
            .unwrap()
    };
    // The guest programs IOAPIC pin 40 — beyond KVM's 24 pins.
    {
        let d = xen_hv.domain_mut(id).unwrap();
        d.ioapic.redirtbl[40] = 0x31; // Unmasked, vector 0x31.
    }
    let xen: Box<dyn Hypervisor> = Box::new(xen_hv);
    let engine = InPlaceTransplant::new(&registry).with_optimizations(Optimizations {
        strict_preflight: true,
        ..Optimizations::default()
    });
    match engine.run(&mut m, xen, HypervisorKind::Kvm) {
        Err(HtpError::IncompatibleState { section, detail }) => {
            assert_eq!(section, "preflight");
            assert!(detail.contains("IOAPIC"), "{detail}");
        }
        Err(other) => panic!("expected preflight abort, got {other}"),
        Ok(_) => panic!("expected preflight abort, got success"),
    }
    // The machine never rebooted: the abort happened before the point of
    // no return.
    assert_eq!(m.boot_count(), 1);
}

#[test]
fn strict_preflight_passes_clean_guests() {
    use hypertp_core::Optimizations;

    let mut m = machine();
    let registry = default_registry();
    let mut xen: Box<dyn Hypervisor> = Box::new(XenHypervisor::new(&mut m));
    xen.create_vm(&mut m, &VmConfig::small("clean")).unwrap();
    let engine = InPlaceTransplant::new(&registry).with_optimizations(Optimizations {
        strict_preflight: true,
        ..Optimizations::default()
    });
    let (kvm, report) = engine.run(&mut m, xen, HypervisorKind::Kvm).unwrap();
    assert_eq!(kvm.kind(), HypervisorKind::Kvm);
    // The default (masked) high pins still warn but do not block.
    assert!(report
        .warnings
        .iter()
        .any(|w| w.contains("0 were unmasked")));
}
