//! Serial-vs-parallel equivalence: `InPlaceTransplant::run` must produce
//! bit-identical results for any worker count. The worker pool is a
//! wall-clock optimization only — restored guest memory, UISR contents,
//! encoded blob bytes, PRAM metadata shape and compatibility warnings all
//! have to match between one worker and many.
//!
//! Kept as a single `#[test]` because the worker count is selected through
//! the process-wide `HYPERTP_WORKERS` variable.

use hypertp::prelude::*;
use hypertp_core::{Hypervisor, Optimizations};
use hypertp_pram::PramStats;
use hypertp_uisr::UisrVm;

const VMS: u64 = 6;

/// Everything observable about one transplant outcome that must not depend
/// on how many workers executed it.
#[derive(Debug, PartialEq)]
struct Outcome {
    uisrs: Vec<UisrVm>,
    blobs: Vec<Vec<u8>>,
    guest_reads: Vec<u64>,
    pram_stats: PramStats,
    uisr_bytes: u64,
    warnings: Vec<String>,
    vm_count: usize,
}

/// Boots a fresh Xen machine with seeded guests and transplants it to KVM
/// under the given optimization set, capturing the outcome.
fn run_one(opts: Optimizations) -> Outcome {
    let mut m = Machine::new(MachineSpec::m1());
    let registry = default_registry();
    let mut xen: Box<dyn Hypervisor> = Box::new(XenHypervisor::new(&mut m));
    for i in 0..VMS {
        let id = xen
            .create_vm(&mut m, &VmConfig::small(format!("vm{i}")).with_vcpus(2))
            .unwrap();
        for k in 0..32u64 {
            xen.write_guest(&mut m, id, Gfn(k * 997 + i), i << 32 | k)
                .unwrap();
        }
        xen.guest_tick(&mut m, id, 5 + i).unwrap();
    }

    let engine = InPlaceTransplant::new(&registry).with_optimizations(opts);
    let (mut kvm, report) = engine.run(&mut m, xen, HypervisorKind::Kvm).unwrap();

    let mut uisrs = Vec::new();
    let mut blobs = Vec::new();
    let mut guest_reads = Vec::new();
    for i in 0..VMS {
        let id = kvm.find_vm(&format!("vm{i}")).unwrap();
        for k in 0..32u64 {
            guest_reads.push(kvm.read_guest(&m, id, Gfn(k * 997 + i)).unwrap());
        }
        kvm.pause_vm(id).unwrap();
        let u = kvm.save_uisr(&m, id).unwrap();
        blobs.push(hypertp_uisr::encode(&u));
        uisrs.push(u);
    }
    Outcome {
        uisrs,
        blobs,
        guest_reads,
        pram_stats: report.pram_stats,
        uisr_bytes: report.uisr_bytes,
        warnings: report.warnings,
        vm_count: report.vm_count,
    }
}

#[test]
fn transplant_outcome_is_identical_for_any_worker_count() {
    // Baseline: the parallel optimization off — everything runs inline on
    // the calling thread (WorkerPool::serial()).
    let baseline = run_one(Optimizations {
        parallel: false,
        ..Optimizations::default()
    });

    // Parallel path, explicit worker counts through the env knob.
    for workers in ["1", "2", "8"] {
        std::env::set_var("HYPERTP_WORKERS", workers);
        let got = run_one(Optimizations::default());
        assert_eq!(
            got, baseline,
            "outcome diverged with HYPERTP_WORKERS={workers}"
        );
    }
    std::env::remove_var("HYPERTP_WORKERS");

    // Sanity: the comparison is not vacuous.
    assert_eq!(baseline.vm_count, VMS as usize);
    assert_eq!(baseline.guest_reads.len(), (VMS * 32) as usize);
    assert!(baseline.uisr_bytes > 0);
    assert!(baseline.pram_stats.entries > 0);
}
