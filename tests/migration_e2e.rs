//! End-to-end MigrationTP integration tests with the real Xen and KVM
//! models.

use hypertp::prelude::*;

fn pair() -> (Machine, Machine) {
    let clock = SimClock::new();
    (
        Machine::with_clock(MachineSpec::m1(), clock.clone()),
        Machine::with_clock(MachineSpec::m1(), clock),
    )
}

#[test]
fn migrationtp_xen_to_kvm_full_fidelity() {
    let registry = default_registry();
    let (mut src_m, mut dst_m) = pair();
    let mut xen = registry.create(HypervisorKind::Xen, &mut src_m).unwrap();
    let mut kvm = registry.create(HypervisorKind::Kvm, &mut dst_m).unwrap();

    let id = xen
        .create_vm(&mut src_m, &VmConfig::small("pg-1").with_vcpus(2))
        .unwrap();
    for i in 0..50u64 {
        xen.write_guest(&mut src_m, id, Gfn(i * 977), 0xD000 + i)
            .unwrap();
    }
    xen.guest_tick(&mut src_m, id, 40).unwrap();
    // Capture the architectural state that must arrive on the other side.
    xen.pause_vm(id).unwrap();
    let before = xen.save_uisr(&src_m, id).unwrap();
    xen.resume_vm(id).unwrap();

    let tp = MigrationTp::new().with_config(MigrationConfig {
        verify_contents: true,
        dirty_rate_pages_per_sec: 500.0,
        ..MigrationConfig::default()
    });
    let report = tp
        .migrate(&mut src_m, xen.as_mut(), id, &mut dst_m, kvm.as_mut())
        .unwrap();

    // The destination runs the guest with identical memory and registers.
    let new_id = kvm.find_vm("pg-1").unwrap();
    assert_eq!(kvm.vm_state(new_id).unwrap(), VmState::Running);
    for i in 0..50u64 {
        assert_eq!(
            kvm.read_guest(&dst_m, new_id, Gfn(i * 977)).unwrap(),
            0xD000 + i
        );
    }
    kvm.pause_vm(new_id).unwrap();
    let after = kvm.save_uisr(&dst_m, new_id).unwrap();
    assert_eq!(after.vcpus.len(), 2);
    // rip advanced beyond `before` because the guest ran during pre-copy.
    assert!(after.vcpus[0].regs.rip >= before.vcpus[0].regs.rip);
    assert_eq!(after.vcpus[0].sregs.efer, before.vcpus[0].sregs.efer);
    // Proxies translated the 48-pin Xen IOAPIC to KVM's 24.
    assert_eq!(after.ioapic.pins(), 24);
    assert!(report.warnings.iter().any(|w| w.contains("IOAPIC")));
    // No PRAM is involved in MigrationTP (§4.3).
    assert!(report.uisr_bytes > 0);
    assert!(report.total.as_secs_f64() < 15.0);
    // Source was cleaned up.
    assert!(xen.find_vm("pg-1").is_none());
}

#[test]
fn migrationtp_kvm_to_xen_direction() {
    let registry = default_registry();
    let (mut src_m, mut dst_m) = pair();
    let mut kvm = registry.create(HypervisorKind::Kvm, &mut src_m).unwrap();
    let mut xen = registry.create(HypervisorKind::Xen, &mut dst_m).unwrap();
    let id = kvm.create_vm(&mut src_m, &VmConfig::small("w-1")).unwrap();
    kvm.write_guest(&mut src_m, id, Gfn(31337), 0xBEEF).unwrap();
    let tp = MigrationTp::new().with_config(MigrationConfig {
        verify_contents: true,
        ..MigrationConfig::default()
    });
    let report = tp
        .migrate(&mut src_m, kvm.as_mut(), id, &mut dst_m, xen.as_mut())
        .unwrap();
    let new_id = xen.find_vm("w-1").unwrap();
    assert_eq!(xen.read_guest(&dst_m, new_id, Gfn(31337)).unwrap(), 0xBEEF);
    // Destination Xen means the slow activation path: downtime well above
    // the kvmtool direction but still sub-second for an idle VM.
    assert!(report.downtime.as_millis_f64() > 100.0);
    assert!(report.downtime.as_secs_f64() < 1.0);
}

#[test]
fn busy_guest_converges_with_more_rounds_than_idle() {
    let registry = default_registry();
    let run = |rate: f64| {
        let (mut src_m, mut dst_m) = pair();
        let mut xen = registry.create(HypervisorKind::Xen, &mut src_m).unwrap();
        let mut kvm = registry.create(HypervisorKind::Kvm, &mut dst_m).unwrap();
        let id = xen.create_vm(&mut src_m, &VmConfig::small("b-1")).unwrap();
        let tp = MigrationTp::new().with_config(MigrationConfig {
            dirty_rate_pages_per_sec: rate,
            ..MigrationConfig::default()
        });
        tp.migrate(&mut src_m, xen.as_mut(), id, &mut dst_m, kvm.as_mut())
            .unwrap()
    };
    let idle = run(1.0);
    let busy = run(3_000.0);
    assert!(busy.rounds.len() > idle.rounds.len());
    assert!(busy.total > idle.total);
}

#[test]
fn migrationtp_matches_homogeneous_migration_time() {
    // §5.2: "MigrationTP offers similar performance to traditional
    // homogeneous VM live migration" — total times within 5%.
    let registry = default_registry();
    let run = |dst_kind: HypervisorKind| {
        let (mut src_m, mut dst_m) = pair();
        let mut src = registry.create(HypervisorKind::Xen, &mut src_m).unwrap();
        let mut dst = registry.create(dst_kind, &mut dst_m).unwrap();
        let id = src.create_vm(&mut src_m, &VmConfig::small("m-1")).unwrap();
        let tp = MigrationTp::new();
        tp.migrate(&mut src_m, src.as_mut(), id, &mut dst_m, dst.as_mut())
            .unwrap()
    };
    let heterogeneous = run(HypervisorKind::Kvm);
    let homogeneous = run(HypervisorKind::Xen);
    let ratio = heterogeneous.total.as_secs_f64() / homogeneous.total.as_secs_f64();
    assert!((0.95..1.05).contains(&ratio), "ratio = {ratio}");
}
