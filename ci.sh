#!/usr/bin/env bash
# CI entry point: formatting, lints, release build, full test suite.
# Everything runs offline — the workspace has no external dependencies.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo build --release =="
cargo build --release --workspace --offline

echo "== cargo test =="
cargo test -q --workspace --offline

echo "== ignored-test guard =="
# Every #[ignore] must carry a tracking note: either an inline reason
# (`#[ignore = "..."]`) or a `tracked:` comment on the same line. A bare
# #[ignore] silently sheds coverage, so it fails the build.
untracked=$(grep -rn --include='*.rs' '#\[ignore' crates tests \
  | grep -v 'ignore = "' | grep -v 'tracked:' || true)
if [ -n "${untracked}" ]; then
  echo "error: #[ignore] without a reason string or 'tracked:' comment:" >&2
  echo "${untracked}" >&2
  exit 1
fi

echo "== chaos matrix (pinned seeds 0xc4a0_0001..3) =="
# The matrix's CI-seed tests are pinned in-code; re-running the env
# override test under each pinned seed additionally exercises the
# HYPERTP_SEED replay path end to end.
cargo test -q --offline --test chaos_matrix
for seed in 0xc4a00001 0xc4a00002 0xc4a00003; do
  HYPERTP_SEED="${seed}" cargo test -q --offline --test chaos_matrix \
    chaos_matrix_env_seed_override
done

echo "== perf gate (identity + wire compression + encode speedup floors) =="
# Run perf_smoke twice (wall-clock jitters; identity and compression must
# not) plus one wire_smoke (ring-vs-legacy identity and the encode-path
# speedup floor) and gate on the committed BENCH_wire.json floors.
# Artifacts go to a scratch dir so the committed BENCH_*.json stay
# untouched.
gate_dir=$(mktemp -d)
trap 'rm -rf "${gate_dir}"' EXIT
PERF_SMOKE_OUT="${gate_dir}/perf1.json" \
  cargo run -q --release --offline -p hypertp-bench --bin perf_smoke
PERF_SMOKE_OUT="${gate_dir}/perf2.json" \
  cargo run -q --release --offline -p hypertp-bench --bin perf_smoke
WIRE_SMOKE_OUT="${gate_dir}/wire.json" \
  cargo run -q --release --offline -p hypertp-bench --bin wire_smoke
cargo run -q --release --offline -p hypertp-bench --bin perf_gate -- \
  wire BENCH_wire.json "${gate_dir}/perf1.json" "${gate_dir}/perf2.json" \
  "${gate_dir}/wire.json"

echo "== UDS proxy smoke (two-process source/destination pair) =="
# The §4.2 proxy pair over a real Unix-domain socket: destination binds
# in the background, source migrates a VM through it, both must exit
# cleanly with matching checksums (run_source verifies the destination's
# echoed checksum and fails otherwise).
proxy_sock="${gate_dir}/proxy.sock"
cargo run -q --release --offline --bin hypertpctl -- \
  proxy dest --socket "${proxy_sock}" &
proxy_dest_pid=$!
cargo run -q --release --offline --bin hypertpctl -- \
  proxy source --socket "${proxy_sock}"
wait "${proxy_dest_pid}"

echo "== adaptive gate (downtime cut + budget + scheduler floors) =="
# adaptive_smoke's comparisons are over *simulated* time, so the fresh
# artifact must meet the committed BENCH_adaptive.json floors exactly:
# mean-downtime cut >= floor, makespan not lengthened, budget respected,
# SPDF still beating FIFO.
ADAPTIVE_SMOKE_OUT="${gate_dir}/adaptive.json" \
  cargo run -q --release --offline -p hypertp-bench --bin adaptive_smoke
cargo run -q --release --offline -p hypertp-bench --bin perf_gate -- \
  adaptive BENCH_adaptive.json "${gate_dir}/adaptive.json"

echo "== inplace gate (incremental downtime cut + identity floors) =="
# inplace_smoke runs the Fig. 6-style ablation; the fresh artifact must
# meet the committed BENCH_inplace.json floors: hot-fleet mean-downtime
# cut >= floor, incremental-off byte-identity, equal restored state,
# deterministic rerun.
INPLACE_SMOKE_OUT="${gate_dir}/inplace.json" \
  cargo run -q --release --offline -p hypertp-bench --bin inplace_smoke
cargo run -q --release --offline -p hypertp-bench --bin perf_gate -- \
  inplace BENCH_inplace.json "${gate_dir}/inplace.json"

echo "== campaign gate (scaling exponent + sharded identity floors) =="
# campaign_smoke sweeps synthetic fleets 1k→10k hosts; the fresh artifact
# must meet the committed BENCH_campaign.json floors: fitted plan+exec
# scaling exponent under the ceiling, sharded execution beating the
# per-host-evaluation baseline at 1k hosts, and byte-identical reports
# across shard/worker counts.
CAMPAIGN_SMOKE_OUT="${gate_dir}/campaign.json" \
  cargo run -q --release --offline -p hypertp-bench --bin campaign_smoke
cargo run -q --release --offline -p hypertp-bench --bin perf_gate -- \
  campaign BENCH_campaign.json "${gate_dir}/campaign.json"

echo "== rehype gate (crash-recovery cut + state-loss bound floors) =="
# rehype_smoke crashes the hypervisor at every warm-checkpoint phase; the
# fresh artifact must meet the committed BENCH_rehype.json floors: warm
# recovery beating the cold salvage-translate ablation at every phase,
# checkpoint lag strictly below the staleness bound, deterministic rerun,
# field-diff toggle inert.
REHYPE_SMOKE_OUT="${gate_dir}/rehype.json" \
  cargo run -q --release --offline -p hypertp-bench --bin rehype_smoke
cargo run -q --release --offline -p hypertp-bench --bin perf_gate -- \
  rehype BENCH_rehype.json "${gate_dir}/rehype.json"

echo "== slo gate (violation cut + makespan + budget floors) =="
# slo_smoke drains the 150-VM diurnal fleet twice (traffic-blind SPDF vs
# SLO-aware admission, identical physics); the fresh artifact must meet
# the committed BENCH_slo.json floors: violation cut >= floor, makespan
# ratio under the ceiling, no VM exhausting its error budget, and the
# deterministic / sharded / zero-traffic identity fields all true.
SLO_SMOKE_OUT="${gate_dir}/slo.json" \
  cargo run -q --release --offline -p hypertp-bench --bin slo_smoke
cargo run -q --release --offline -p hypertp-bench --bin perf_gate -- \
  slo BENCH_slo.json "${gate_dir}/slo.json"

echo "== exposure gate (exposure cut + replan speedup floors) =="
# exposure_smoke replays one seeded year of disclosures over a 1k-host
# fleet twice (surface-aware vs surface-blind planning, same calibrated
# exposure metric); the fresh artifact must meet the committed
# BENCH_exposure.json floors: integrated-exposure cut >= floor,
# incremental re-plan beating the per-event cost-table rebuild, and the
# deterministic / sharded / feed-off / empty-feed identity fields all
# true.
EXPOSURE_SMOKE_OUT="${gate_dir}/exposure.json" \
  cargo run -q --release --offline -p hypertp-bench --bin exposure_smoke
cargo run -q --release --offline -p hypertp-bench --bin perf_gate -- \
  exposure BENCH_exposure.json "${gate_dir}/exposure.json"

echo "== hypertpctl feed smoke (surface-aware vs blind planning) =="
# The operator-facing feed replay: the --blind flag must switch the
# planning mode shown in the output, and both runs must report the
# integrated-exposure summary line.
cargo run -q --release --offline --bin hypertpctl -- feed --hosts 30 --days 90 \
  | grep -q "surface-aware planning"
cargo run -q --release --offline --bin hypertpctl -- feed --hosts 30 --days 90 --blind \
  | grep -q "surface-blind planning"
cargo run -q --release --offline --bin hypertpctl -- feed --hosts 30 --days 90 \
  | grep -q "integrated exposure"

echo "== hypertpctl fleet smoke (--slo-aware flag) =="
# The operator-facing path to SLO-aware admission: same fleet twice, the
# flag must switch the admission policy shown in the output.
cargo run -q --release --offline --bin hypertpctl -- fleet --vms 3 \
  | grep -q "fifo admission"
cargo run -q --release --offline --bin hypertpctl -- fleet --vms 3 --slo-aware \
  | grep -q "slo admission"

echo "== examples (keep them compiling *and* running) =="
for example in quickstart migration_vs_inplace datacenter_upgrade vulnerability_response; do
  echo "-- example: ${example} --"
  cargo run -q --release --offline --example "${example}" >/dev/null
done

echo "CI OK"
