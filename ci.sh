#!/usr/bin/env bash
# CI entry point: formatting, lints, release build, full test suite.
# Everything runs offline — the workspace has no external dependencies.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo build --release =="
cargo build --release --workspace --offline

echo "== cargo test =="
cargo test -q --workspace --offline

echo "CI OK"
