//! HyperTP: mitigating hypervisor vulnerability windows with hypervisor
//! transplant.
//!
//! This crate is the user-facing facade of the HyperTP reproduction
//! (EuroSys 2021). It re-exports the component crates and provides the
//! standard two-hypervisor pool (Xen ⇄ KVM) used throughout the paper.
//!
//! # Quickstart
//!
//! ```
//! use hypertp::prelude::*;
//!
//! // A machine running Xen with one small VM.
//! let mut machine = Machine::new(MachineSpec::m1());
//! let mut xen: Box<dyn Hypervisor> = Box::new(XenHypervisor::new(&mut machine));
//! xen.create_vm(&mut machine, &VmConfig::small("web-1")).unwrap();
//!
//! // A critical Xen CVE drops: transplant in place onto KVM.
//! let registry = hypertp::default_registry();
//! let engine = InPlaceTransplant::new(&registry);
//! let (kvm, report) = engine.run(&mut machine, xen, HypervisorKind::Kvm).unwrap();
//! assert_eq!(kvm.kind(), HypervisorKind::Kvm);
//! assert!(report.downtime().as_secs_f64() < 3.0);
//! ```

pub mod cli;

pub use hypertp_cluster as cluster;
pub use hypertp_core as core;
pub use hypertp_kvm as kvm;
pub use hypertp_machine as machine;
pub use hypertp_migrate as migrate;
pub use hypertp_pram as pram;
pub use hypertp_sim as sim;
pub use hypertp_uisr as uisr;
pub use hypertp_vulndb as vulndb;
pub use hypertp_workloads as workloads;
pub use hypertp_xen as xen;

use hypertp_core::{HypervisorKind, HypervisorRegistry};

/// Builds the paper's hypervisor pool: Xen 4.12-style and Linux 5.3/KVM +
/// kvmtool, both HyperTP-compliant.
pub fn default_registry() -> HypervisorRegistry {
    let mut registry = HypervisorRegistry::new();
    registry.register(HypervisorKind::Xen, |machine| {
        Box::new(hypertp_xen::XenHypervisor::new(machine))
    });
    registry.register(HypervisorKind::Kvm, |machine| {
        Box::new(hypertp_kvm::KvmHypervisor::new(machine))
    });
    registry.register_validator(HypervisorKind::Kvm, hypertp_kvm::xlate::preflight_validate);
    registry
}

/// Common imports for examples and downstream users.
pub mod prelude {
    pub use hypertp_core::{
        Hypervisor, HypervisorKind, HypervisorRegistry, InPlaceReport, InPlaceTransplant,
        IncrementalConfig, Optimizations, VmConfig, VmId, VmState,
    };
    pub use hypertp_kvm::KvmHypervisor;
    pub use hypertp_machine::{Gfn, Machine, MachineSpec};
    pub use hypertp_migrate::{migrate_many, MigrationConfig, MigrationTp, WireMode, WireStats};
    pub use hypertp_sim::{SimClock, SimDuration, SimTime};
    pub use hypertp_xen::XenHypervisor;

    pub use crate::default_registry;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_registry_has_both_hypervisors() {
        let r = default_registry();
        assert!(r.contains(HypervisorKind::Xen));
        assert!(r.contains(HypervisorKind::Kvm));
        assert_eq!(r.kinds().len(), 2);
    }
}
