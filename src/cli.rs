//! The `hypertpctl` command-line interface.
//!
//! A small operator-facing front end over the library: inspect the
//! vulnerability study, ask the policy for a decision, and run simulated
//! transplants, migrations, cluster upgrades and full campaigns. Parsing
//! is hand-rolled (no CLI dependency) and lives here so it is unit-testable;
//! the `hypertpctl` binary is a thin wrapper.

use std::collections::HashMap;

use hypertp_core::{
    CheckpointConfig, HypervisorKind, InPlaceTransplant, Optimizations, UnplannedRecovery,
    VmConfig, WarmCheckpointer,
};
use hypertp_machine::{Machine, MachineSpec};
use hypertp_migrate::{
    run_dest, run_source, MigrationConfig, MigrationTp, UdsServerTransport, UdsTransport, WireMode,
};
use hypertp_sim::SimClock;

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct Command {
    /// Subcommand name.
    pub name: String,
    /// Positional arguments after the subcommand.
    pub positional: Vec<String>,
    /// `--key value` and `--flag` options (flags map to "true").
    pub options: HashMap<String, String>,
}

/// Errors from CLI parsing or execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// No subcommand given.
    NoCommand,
    /// Unknown subcommand.
    UnknownCommand(String),
    /// A required option is missing.
    MissingOption(&'static str),
    /// An option value could not be parsed.
    BadValue {
        /// Option name.
        option: String,
        /// Offending value.
        value: String,
    },
    /// Execution failed.
    Failed(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::NoCommand => write!(f, "no subcommand; try `hypertpctl help`"),
            CliError::UnknownCommand(c) => write!(f, "unknown subcommand '{c}'"),
            CliError::MissingOption(o) => write!(f, "missing required option --{o}"),
            CliError::BadValue { option, value } => {
                write!(f, "bad value '{value}' for --{option}")
            }
            CliError::Failed(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for CliError {}

/// Parses raw arguments (without argv[0]) into a [`Command`].
pub fn parse(args: &[String]) -> Result<Command, CliError> {
    let mut it = args.iter();
    let name = it.next().ok_or(CliError::NoCommand)?.clone();
    let mut positional = Vec::new();
    let mut options = HashMap::new();
    let rest: Vec<&String> = it.collect();
    let mut i = 0;
    while i < rest.len() {
        let a = rest[i];
        if let Some(key) = a.strip_prefix("--") {
            let next_is_value = rest
                .get(i + 1)
                .map(|n| !n.starts_with("--"))
                .unwrap_or(false);
            if next_is_value {
                options.insert(key.to_string(), rest[i + 1].clone());
                i += 2;
            } else {
                options.insert(key.to_string(), "true".to_string());
                i += 1;
            }
        } else {
            positional.push(a.clone());
            i += 1;
        }
    }
    Ok(Command {
        name,
        positional,
        options,
    })
}

fn opt_u64(cmd: &Command, key: &str, default: u64) -> Result<u64, CliError> {
    match cmd.options.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| CliError::BadValue {
            option: key.to_string(),
            value: v.clone(),
        }),
    }
}

fn opt_f64(cmd: &Command, key: &str, default: f64) -> Result<f64, CliError> {
    match cmd.options.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| CliError::BadValue {
            option: key.to_string(),
            value: v.clone(),
        }),
    }
}

fn opt_hv(cmd: &Command, key: &str, default: HypervisorKind) -> Result<HypervisorKind, CliError> {
    match cmd.options.get(key).map(String::as_str) {
        None => Ok(default),
        Some("xen") | Some("Xen") => Ok(HypervisorKind::Xen),
        Some("kvm") | Some("KVM") | Some("Kvm") => Ok(HypervisorKind::Kvm),
        Some(v) => Err(CliError::BadValue {
            option: key.to_string(),
            value: v.to_string(),
        }),
    }
}

fn opt_spec(cmd: &Command, key: &str) -> Result<MachineSpec, CliError> {
    match cmd.options.get(key).map(String::as_str) {
        None | Some("m1") | Some("M1") => Ok(MachineSpec::m1()),
        Some("m2") | Some("M2") => Ok(MachineSpec::m2()),
        Some("g5k") | Some("G5K") => Ok(MachineSpec::cluster_node()),
        Some(v) => Err(CliError::BadValue {
            option: key.to_string(),
            value: v.to_string(),
        }),
    }
}

/// The help text.
pub fn help() -> String {
    "hypertpctl — hypervisor transplant control (simulated)\n\
     \n\
     subcommands:\n\
       analyze                         regenerate the vulnerability study (Table 1)\n\
       decide <CVE-ID> [--running HV]  policy decision for a disclosed CVE\n\
       transplant [--machine m1|m2] [--vms N] [--vcpus N] [--mem GB]\n\
                  [--from HV] [--to HV] [--no-prepare] [--no-parallel]\n\
                  [--no-early-restore]  run InPlaceTP and print the breakdown\n\
       migrate    [--machine m1|m2] [--mem GB] [--dirty-rate P/S] [--to HV]\n\
                                        run MigrationTP and print the report\n\
       proxy dest --socket PATH [--machine m1|m2] [--to HV]\n\
       proxy source --socket PATH [--machine m1|m2] [--mem GB] [--dirty-rate P/S]\n\
                                        the §4.2 migration proxy pair: run `dest`\n\
                                        in one process, `source` in another, over\n\
                                        a Unix-domain socket\n\
       cluster    [--compat PCT] [--group N] [--hosts N] [--shards S]\n\
                                        plan+execute a rolling upgrade; --hosts\n\
                                        derives a synthetic fleet, --shards runs\n\
                                        the sharded executor\n\
       fleet      [--vms N] [--mem GB] [--dirty-rate P/S] [--max-concurrent N]\n\
                  [--seed S] [--slo-aware]\n\
                                        migrate a small fleet whose VMs serve a\n\
                                        seeded diurnal traffic mix; --slo-aware\n\
                                        admits by least predicted SLO harm\n\
                                        instead of FIFO\n\
       campaign   <CVE-ID> [--hosts N] [--vms N]  full Fig. 1(b) campaign\n\
       feed       [--hosts N] [--seed S] [--events-per-year N] [--days D]\n\
                  [--budget SECS] [--shards S] [--blind]\n\
                                        replay a seeded disclosure feed through\n\
                                        the exposure-minimizing planner: per-host\n\
                                        InPlace/Migrate/Defer per event; --blind\n\
                                        plans surface-blind for comparison\n\
       recover    [--machine m1|m2] [--vms N] [--vcpus N] [--mem GB]\n\
                  [--from HV] [--to HV] [--ticks N] [--workload PAGES]\n\
                  [--bound PAGES] [--field-diff]\n\
                                        crash the hypervisor after N warm-checkpoint\n\
                                        ticks and print the unplanned recovery report\n\
       help                             this text\n"
        .to_string()
}

/// Executes a parsed command, returning its printable output.
pub fn run(cmd: &Command) -> Result<String, CliError> {
    match cmd.name.as_str() {
        "help" => Ok(help()),
        "analyze" => run_analyze(),
        "decide" => run_decide(cmd),
        "transplant" => run_transplant(cmd),
        "migrate" => run_migrate(cmd),
        "proxy" => run_proxy(cmd),
        "cluster" => run_cluster(cmd),
        "fleet" => run_fleet_cmd(cmd),
        "campaign" => run_campaign_cmd(cmd),
        "feed" => run_feed(cmd),
        "recover" => run_recover(cmd),
        other => Err(CliError::UnknownCommand(other.to_string())),
    }
}

fn run_analyze() -> Result<String, CliError> {
    let ds = hypertp_vulndb::dataset::dataset();
    let rows = hypertp_vulndb::analysis::table1(&ds);
    let mut out = String::from("year  xen-crit  xen-med  kvm-crit  kvm-med  common\n");
    for r in &rows {
        out.push_str(&format!(
            "{}  {:>8}  {:>7}  {:>8}  {:>7}  {}/{}\n",
            r.year, r.xen_crit, r.xen_med, r.kvm_crit, r.kvm_med, r.common_crit, r.common_med
        ));
    }
    if let Some(w) = hypertp_vulndb::analysis::window_stats(&ds, hypertp_vulndb::HypervisorId::Kvm)
    {
        out.push_str(&format!(
            "KVM windows: mean {:.0} days, {:.0}% > 60 days, max {} ({} d), min {} ({} d)\n",
            w.mean_days,
            w.frac_over_60 * 100.0,
            w.max.0,
            w.max.1,
            w.min.0,
            w.min.1
        ));
    }
    Ok(out)
}

fn run_decide(cmd: &Command) -> Result<String, CliError> {
    let cve_id = cmd
        .positional
        .first()
        .ok_or(CliError::MissingOption("<CVE-ID>"))?;
    let running = match opt_hv(cmd, "running", HypervisorKind::Xen)? {
        HypervisorKind::Xen => hypertp_vulndb::HypervisorId::Xen,
        HypervisorKind::Kvm => hypertp_vulndb::HypervisorId::Kvm,
    };
    let ds = hypertp_vulndb::dataset::dataset();
    let cve = ds
        .iter()
        .find(|v| v.id == *cve_id)
        .ok_or_else(|| CliError::Failed(format!("{cve_id} not in the dataset")))?;
    let pool = [
        hypertp_vulndb::HypervisorId::Xen,
        hypertp_vulndb::HypervisorId::Kvm,
    ];
    let decision = hypertp_vulndb::policy::decide(cve, running, &pool, &[]);
    Ok(format!(
        "{} — CVSS {:.1} ({:?}), affects {:?}\ndecision: {:?}\n",
        cve.id,
        cve.cvss.base_score(),
        cve.severity(),
        cve.affects,
        decision
    ))
}

fn run_transplant(cmd: &Command) -> Result<String, CliError> {
    let spec = opt_spec(cmd, "machine")?;
    let n_vms = opt_u64(cmd, "vms", 1)? as u32;
    let vcpus = opt_u64(cmd, "vcpus", 1)? as u32;
    let mem = opt_u64(cmd, "mem", 1)?;
    let from = opt_hv(cmd, "from", HypervisorKind::Xen)?;
    let to = opt_hv(cmd, "to", HypervisorKind::Kvm)?;
    let opts = Optimizations {
        prepare_before_pause: !cmd.options.contains_key("no-prepare"),
        parallel: !cmd.options.contains_key("no-parallel"),
        early_restoration: !cmd.options.contains_key("no-early-restore"),
        strict_preflight: cmd.options.contains_key("strict"),
        incremental_translate: cmd.options.contains_key("incremental"),
    };
    let registry = crate::default_registry();
    let mut machine = Machine::new(spec);
    let mut hv = registry
        .create(from, &mut machine)
        .map_err(|e| CliError::Failed(e.to_string()))?;
    for i in 0..n_vms {
        hv.create_vm(
            &mut machine,
            &VmConfig::small(format!("vm{i}"))
                .with_vcpus(vcpus)
                .with_memory_gb(mem),
        )
        .map_err(|e| CliError::Failed(e.to_string()))?;
    }
    let engine = InPlaceTransplant::new(&registry).with_optimizations(opts);
    let (hv2, r) = engine
        .run(&mut machine, hv, to)
        .map_err(|e| CliError::Failed(e.to_string()))?;
    let mut out = format!(
        "InPlaceTP {from}→{to}: {} VM(s) of {vcpus} vCPU / {mem} GiB on {}\n",
        r.vm_count,
        machine.spec().name
    );
    out.push_str(&format!(
        "  PRAM {:.2}s | translation {:.2}s | reboot {:.2}s | restoration {:.2}s\n",
        r.pram.as_secs_f64(),
        r.translation.as_secs_f64(),
        r.reboot.as_secs_f64(),
        r.restoration.as_secs_f64()
    ));
    out.push_str(&format!(
        "  downtime {:.2}s ({:.2}s with network), PRAM metadata {} KiB, UISR {} KiB\n",
        r.downtime().as_secs_f64(),
        r.downtime_with_network().as_secs_f64(),
        r.pram_stats.metadata_bytes() / 1024,
        r.uisr_bytes / 1024
    ));
    for w in &r.warnings {
        out.push_str(&format!("  compatibility: {w}\n"));
    }
    out.push_str(&format!("now running: {} {}\n", hv2.kind(), hv2.version()));
    Ok(out)
}

fn run_migrate(cmd: &Command) -> Result<String, CliError> {
    let spec = opt_spec(cmd, "machine")?;
    let mem = opt_u64(cmd, "mem", 1)?;
    let rate = opt_f64(cmd, "dirty-rate", 10.0)?;
    let to = opt_hv(cmd, "to", HypervisorKind::Kvm)?;
    let registry = crate::default_registry();
    let clock = SimClock::new();
    let mut src_m = Machine::with_clock(spec.clone(), clock.clone());
    let mut dst_m = Machine::with_clock(spec, clock);
    let mut src = registry
        .create(HypervisorKind::Xen, &mut src_m)
        .map_err(|e| CliError::Failed(e.to_string()))?;
    let mut dst = registry
        .create(to, &mut dst_m)
        .map_err(|e| CliError::Failed(e.to_string()))?;
    let id = src
        .create_vm(&mut src_m, &VmConfig::small("vm0").with_memory_gb(mem))
        .map_err(|e| CliError::Failed(e.to_string()))?;
    let tp = MigrationTp::new().with_config(MigrationConfig {
        dirty_rate_pages_per_sec: rate,
        ..MigrationConfig::default()
    });
    let r = tp
        .migrate(&mut src_m, src.as_mut(), id, &mut dst_m, dst.as_mut())
        .map_err(|e| CliError::Failed(e.to_string()))?;
    Ok(format!(
        "MigrationTP Xen→{to}: {} GiB VM, dirty rate {rate} pages/s\n  {} rounds, \
         {:.2} GiB sent, total {:.2}s, downtime {:.2} ms, UISR {} B\n",
        mem,
        r.rounds.len(),
        r.bytes_sent as f64 / (1u64 << 30) as f64,
        r.total.as_secs_f64(),
        r.downtime.as_millis_f64(),
        r.uisr_bytes
    ))
}

/// `proxy dest` / `proxy source`: the two halves of the §4.2 migration
/// proxy pair over a Unix-domain socket. Start the destination first (it
/// blocks for the connection); the source retries its dial for ~5 s, so
/// either order works in practice.
fn run_proxy(cmd: &Command) -> Result<String, CliError> {
    let role = cmd
        .positional
        .first()
        .ok_or(CliError::MissingOption("<source|dest>"))?;
    let socket = cmd
        .options
        .get("socket")
        .ok_or(CliError::MissingOption("--socket"))?;
    let spec = opt_spec(cmd, "machine")?;
    let registry = crate::default_registry();
    match role.as_str() {
        "dest" => {
            let to = opt_hv(cmd, "to", HypervisorKind::Kvm)?;
            let mut machine = Machine::with_clock(spec, SimClock::new());
            let mut hv = registry
                .create(to, &mut machine)
                .map_err(|e| CliError::Failed(e.to_string()))?;
            let mut transport =
                UdsServerTransport::bind(socket).map_err(|e| CliError::Failed(e.to_string()))?;
            let r = run_dest(&mut machine, hv.as_mut(), &mut transport)
                .map_err(|e| CliError::Failed(e.to_string()))?;
            let mut out = format!(
                "proxy dest ({to}): received {} — {} rounds, {} frames, {:.2} MiB wire, \
                 checksum {:016x}\n",
                r.vm_name,
                r.rounds,
                r.frames,
                r.wire_bytes as f64 / (1u64 << 20) as f64,
                r.checksum
            );
            for w in &r.warnings {
                out.push_str(&format!("  compatibility: {w}\n"));
            }
            Ok(out)
        }
        "source" => {
            let mem = opt_u64(cmd, "mem", 1)?;
            let rate = opt_f64(cmd, "dirty-rate", 10.0)?;
            let mut machine = Machine::with_clock(spec, SimClock::new());
            let mut hv = registry
                .create(HypervisorKind::Xen, &mut machine)
                .map_err(|e| CliError::Failed(e.to_string()))?;
            let id = hv
                .create_vm(&mut machine, &VmConfig::small("vm0").with_memory_gb(mem))
                .map_err(|e| CliError::Failed(e.to_string()))?;
            let tp = MigrationTp::new().with_config(MigrationConfig {
                wire_mode: WireMode::ContentAware,
                dirty_rate_pages_per_sec: rate,
                ..MigrationConfig::default()
            });
            let mut transport =
                UdsTransport::connect(socket).map_err(|e| CliError::Failed(e.to_string()))?;
            let r = run_source(&tp, &mut machine, hv.as_mut(), id, &mut transport)
                .map_err(|e| CliError::Failed(e.to_string()))?;
            Ok(format!(
                "proxy source (Xen): sent {} GiB VM, dirty rate {rate} pages/s\n  {} rounds, \
                 {:.2} MiB sent ({} frames applied remotely), total {:.2}s, downtime {:.2} ms, \
                 UISR {} B, checksum {:016x} (verified)\n",
                mem,
                r.rounds,
                r.bytes_sent as f64 / (1u64 << 20) as f64,
                r.dst_frames,
                r.total.as_secs_f64(),
                r.downtime.as_millis_f64(),
                r.uisr_bytes,
                r.dst_checksum
            ))
        }
        other => Err(CliError::BadValue {
            option: "role".to_string(),
            value: other.to_string(),
        }),
    }
}

fn run_cluster(cmd: &Command) -> Result<String, CliError> {
    let compat = opt_u64(cmd, "compat", 80)? as u32;
    let group = opt_u64(cmd, "group", 2)? as usize;
    let shards = opt_u64(cmd, "shards", 1)? as usize;
    let cfg = hypertp_cluster::exec::ExecConfig::default();
    // --hosts derives a synthetic fleet of that size (seed 42, like the
    // paper testbed); without it the exact 4-host paper testbed runs, and
    // sharding is identity-preserving so --shards never changes the report.
    let (fleet, report) = match cmd.options.get("hosts") {
        Some(v) => {
            let hosts: usize = v.parse().map_err(|_| CliError::BadValue {
                option: "hosts".to_string(),
                value: v.clone(),
            })?;
            let view = hypertp_cluster::Cluster::synthetic(hosts, 42).with_compat_percent(compat);
            let plan = hypertp_cluster::plan_upgrade(&view, group)
                .map_err(|e| CliError::Failed(e.to_string()))?;
            (
                format!("{hosts} synthetic hosts, "),
                hypertp_cluster::execute_sharded(&view, &plan, &cfg, shards),
            )
        }
        None => {
            let cluster = hypertp_cluster::Cluster::paper_testbed(compat, 42);
            let plan = hypertp_cluster::plan_upgrade(&cluster, group)
                .map_err(|e| CliError::Failed(e.to_string()))?;
            let report = if shards > 1 {
                hypertp_cluster::execute_sharded(&cluster, &plan, &cfg, shards)
            } else {
                hypertp_cluster::execute(&cluster, &plan, &cfg)
            };
            (String::new(), report)
        }
    };
    Ok(format!(
        "cluster upgrade ({fleet}{compat}% InPlaceTP-compatible, groups of {group}):\n  \
         {} migrations + {} in-place upgrades in {:.1} min \
         (migration {:.1} min, in-place {:.1} min)\n",
        report.migrations,
        report.inplace_upgrades,
        report.total.as_secs_f64() / 60.0,
        report.migration_time.as_secs_f64() / 60.0,
        report.inplace_time.as_secs_f64() / 60.0
    ))
}

/// `fleet`: migrate a small Xen→KVM fleet whose VMs serve a seeded
/// diurnal traffic mix (compressed 10-minute day). Every VM carries its
/// SLO whether or not the scheduler looks at it — the physics (link
/// contention, violation accounting) is always armed — so running once
/// plain and once with `--slo-aware` compares admission policies under
/// identical conditions.
fn run_fleet_cmd(cmd: &Command) -> Result<String, CliError> {
    let n_vms = opt_u64(cmd, "vms", 4)? as usize;
    let mem = opt_u64(cmd, "mem", 1)?;
    let rate = opt_f64(cmd, "dirty-rate", 1_000.0)?;
    let max_concurrent = opt_u64(cmd, "max-concurrent", 1)? as usize;
    let seed = opt_u64(cmd, "seed", 42)?;
    let slo_aware = cmd.options.contains_key("slo-aware");
    let order = if slo_aware {
        hypertp_migrate::FleetOrder::SloAware
    } else {
        hypertp_migrate::FleetOrder::Fifo
    };
    let day = hypertp_sim::SimDuration::from_secs(600);
    let registry = crate::default_registry();
    let clock = SimClock::new();
    let mut spec = MachineSpec::m1();
    spec.ram_gb = spec.ram_gb.max(n_vms as u64 * mem + 4);
    let mut src_m = Machine::with_clock(spec.clone(), clock.clone());
    let mut dst_m = Machine::with_clock(spec, clock);
    let mut src = registry
        .create(HypervisorKind::Xen, &mut src_m)
        .map_err(|e| CliError::Failed(e.to_string()))?;
    let mut dst = registry
        .create(HypervisorKind::Kvm, &mut dst_m)
        .map_err(|e| CliError::Failed(e.to_string()))?;
    let vms = (0..n_vms)
        .map(|i| {
            let id = src.create_vm(
                &mut src_m,
                &VmConfig::small(format!("vm{i}")).with_memory_gb(mem),
            )?;
            Ok(
                hypertp_migrate::FleetVm::with_dirty_rate(id, rate).with_slo(
                    hypertp_migrate::SloVm {
                        traffic: hypertp_workloads::derive_curve(seed, i as u64, 4_000.0, day),
                        degraded_capacity: 0.65,
                        error_budget: hypertp_sim::SimDuration::from_secs(60),
                    },
                ),
            )
        })
        .collect::<Result<Vec<_>, hypertp_core::HtpError>>()
        .map_err(|e| CliError::Failed(e.to_string()))?;
    let tp = MigrationTp::new();
    let fleet = hypertp_migrate::migrate_fleet(
        &tp,
        &mut src_m,
        src.as_mut(),
        &vms,
        &mut dst_m,
        dst.as_mut(),
        hypertp_migrate::FleetPolicy {
            order,
            max_concurrent,
            compression_hint: 1.0,
        },
    )
    .map_err(|e| CliError::Failed(e.to_string()))?;
    let mut out = format!(
        "fleet Xen→KVM ({n_vms} VM(s) × {mem} GiB, dirty rate {rate} pages/s, \
         {} admission, {} slot(s)):\n",
        order.name(),
        if max_concurrent == 0 {
            n_vms.max(1)
        } else {
            max_concurrent
        },
    );
    out.push_str(&format!(
        "  admission order {:?}, makespan {:.1}s\n",
        fleet.admission,
        fleet.makespan.as_secs_f64()
    ));
    for r in &fleet.reports {
        out.push_str(&format!(
            "    {}: {} rounds, total {:.1}s, downtime {:.1} ms\n",
            r.vm_name,
            r.rounds.len(),
            r.total.as_secs_f64(),
            r.downtime.as_millis_f64()
        ));
    }
    out.push_str(&format!(
        "  SLO: {} serving VM(s), violation {:.1}s, worst error-budget burn {:.2}\n",
        fleet.slo_vm_count(),
        fleet.total_violation().as_secs_f64(),
        fleet.max_budget_burn()
    ));
    Ok(out)
}

fn run_campaign_cmd(cmd: &Command) -> Result<String, CliError> {
    let cve_id = cmd
        .positional
        .first()
        .ok_or(CliError::MissingOption("<CVE-ID>"))?;
    let hosts = opt_u64(cmd, "hosts", 2)? as usize;
    let vms = opt_u64(cmd, "vms", 4)? as u32;
    let ds = hypertp_vulndb::dataset::dataset();
    let cve = ds
        .iter()
        .find(|v| v.id == *cve_id)
        .ok_or_else(|| CliError::Failed(format!("{cve_id} not in the dataset")))?;
    let registry = hypertp_cluster::openstack::pool();
    let clock = SimClock::new();
    let computes = (0..hosts)
        .map(|i| {
            let mut spec = MachineSpec::m1();
            spec.ram_gb = 8;
            hypertp_cluster::openstack::LibvirtDriver::new(
                format!("compute-{i}"),
                spec,
                clock.clone(),
                &registry,
                HypervisorKind::Xen,
            )
        })
        .collect::<Result<Vec<_>, _>>()
        .map_err(|e| CliError::Failed(e.to_string()))?;
    let mut nova = hypertp_cluster::openstack::NovaManager::new(registry, computes);
    for i in 0..vms {
        nova.boot(&VmConfig::small(format!("svc{i}")))
            .map_err(|e| CliError::Failed(e.to_string()))?;
    }
    let report = hypertp_cluster::campaign::run_campaign(&mut nova, cve, &[])
        .map_err(|e| CliError::Failed(e.to_string()))?;
    Ok(format!(
        "campaign {}: {} → {} → {}\n  covered {:.0}-day window, worst VM downtime \
         {:.2}s across {} host(s) out + back\n",
        report.cve,
        report.home,
        report.refuge,
        report.home,
        report.window.as_secs_f64() / 86_400.0,
        report.worst_downtime.as_secs_f64(),
        hosts
    ))
}

/// `feed`: replay a seeded vulnerability-disclosure stream through the
/// exposure-minimizing planner over a synthetic fleet. Each event prints
/// its surface classification, the per-host action split, and the
/// exposure the chosen schedule leaves on the table; the footer totals
/// the integrated exposure in VM·criticality·days.
fn run_feed(cmd: &Command) -> Result<String, CliError> {
    let hosts = opt_u64(cmd, "hosts", 100)? as usize;
    let seed = opt_u64(cmd, "seed", 42)?;
    let rate = opt_u64(cmd, "events-per-year", 37)? as u32;
    let days = opt_u64(cmd, "days", 365)?;
    let budget = opt_f64(cmd, "budget", 300.0)?;
    let shards = opt_u64(cmd, "shards", 1)? as usize;
    let blind = cmd.options.contains_key("blind");
    let view = hypertp_cluster::Cluster::synthetic(hosts, seed).with_compat_percent(80);
    let ds = hypertp_vulndb::dataset::dataset();
    let events = hypertp_vulndb::VulnFeed::new(seed)
        .with_events_per_year(rate)
        .replay(hypertp_sim::SimDuration::from_secs(days * 86_400));
    let cfg = hypertp_cluster::ExposureConfig {
        downtime_budget: hypertp_sim::SimDuration::from_secs_f64(budget),
        weights: hypertp_vulndb::SurfaceWeights::calibrated(&ds),
        surface_aware: !blind,
        ..hypertp_cluster::ExposureConfig::default()
    };
    let planner = hypertp_cluster::ExposurePlanner::with_pool(
        &view,
        cfg,
        shards,
        &hypertp_sim::pool::WorkerPool::from_env(),
    );
    let mut out = format!(
        "feed replay ({hosts} hosts, seed {seed}, {} events over {days} days, \
         {} planning, downtime budget {budget}s):\n",
        events.len(),
        if blind {
            "surface-blind"
        } else {
            "surface-aware"
        },
    );
    for ev in &events {
        let plan = planner.plan_event(ev);
        let day = ev
            .at
            .duration_since(hypertp_sim::SimTime::ZERO)
            .as_secs_f64()
            / 86_400.0;
        let verdict = if plan.remediated {
            format!(
                "{} in-place + {} migrate + {} defer{}",
                plan.count(hypertp_cluster::HostAction::InPlace),
                plan.count(hypertp_cluster::HostAction::Migrate),
                plan.count(hypertp_cluster::HostAction::Defer),
                if plan.escalated { " (escalated)" } else { "" },
            )
        } else {
            "patch cycle".to_string()
        };
        out.push_str(&format!(
            "  day {day:>5.1}  {}  {:<20}  crit {:.2}  {verdict}, \
             exposure {:.1} VM·days\n",
            ev.vuln.id,
            ev.surface.name(),
            plan.criticality,
            plan.exposure_vm_secs / 86_400.0,
        ));
    }
    let report = planner.replay(&events);
    out.push_str(&format!(
        "integrated exposure {:.1} VM·days over {} event(s): {} remediated \
         ({} escalated by surface weight), {} VM remediation(s), {} VM-window(s) deferred, \
         disruption {:.1} min\n",
        report.exposure_vm_days,
        report.events,
        report.remediated_events,
        report.escalated_events,
        report.remediated_vms,
        report.deferred_vms,
        report.disruption.as_secs_f64() / 60.0,
    ));
    Ok(out)
}

fn run_recover(cmd: &Command) -> Result<String, CliError> {
    let spec = opt_spec(cmd, "machine")?;
    let n_vms = opt_u64(cmd, "vms", 1)? as u32;
    let vcpus = opt_u64(cmd, "vcpus", 1)? as u32;
    let mem = opt_u64(cmd, "mem", 1)?;
    let from = opt_hv(cmd, "from", HypervisorKind::Xen)?;
    let to = opt_hv(cmd, "to", HypervisorKind::Kvm)?;
    let ticks = opt_u64(cmd, "ticks", 4)?;
    let workload = opt_u64(cmd, "workload", 64)?;
    let bound = opt_u64(cmd, "bound", 512)?;
    let registry = crate::default_registry();
    let mut machine = Machine::new(spec);
    let mut hv = registry
        .create(from, &mut machine)
        .map_err(|e| CliError::Failed(e.to_string()))?;
    for i in 0..n_vms {
        hv.create_vm(
            &mut machine,
            &VmConfig::small(format!("vm{i}"))
                .with_vcpus(vcpus)
                .with_memory_gb(mem),
        )
        .map_err(|e| CliError::Failed(e.to_string()))?;
    }
    let cfg = CheckpointConfig {
        staleness_bound_pages: bound,
        field_diff: cmd.options.contains_key("field-diff"),
        ..CheckpointConfig::default()
    };
    let mut ckpt = WarmCheckpointer::start(&mut machine, hv.as_mut(), to, cfg)
        .map_err(|e| CliError::Failed(e.to_string()))?;
    for _ in 0..ticks {
        ckpt.tick(&mut machine, hv.as_mut(), workload)
            .map_err(|e| CliError::Failed(e.to_string()))?;
    }
    let engine = UnplannedRecovery::new(&registry);
    let (hv2, r) = engine
        .recover(&mut machine, hv, ckpt)
        .map_err(|e| CliError::Failed(e.to_string()))?;
    let mut out = format!(
        "unplanned transplant {from}→{to}: {} crashed after {} checkpoint tick(s)\n",
        from, r.checkpoint_ticks
    );
    out.push_str(&format!(
        "  recovery {:.3}s (detect {:.3}s | reboot {:.3}s | restore {:.3}s), \
         network +{:.3}s\n",
        r.recovery_latency.as_secs_f64(),
        r.detection.as_secs_f64(),
        r.reboot.as_secs_f64(),
        r.restoration.as_secs_f64(),
        r.network.as_secs_f64()
    ));
    out.push_str(&format!(
        "  cold ablation {:.3}s — warm checkpoints cut {:.1}%\n",
        r.cold_latency.as_secs_f64(),
        r.warm_speedup_pct()
    ));
    out.push_str(&format!(
        "  state loss ≤ {} pages/VM (bound held: {})\n",
        r.loss_bound_pages,
        r.within_bound()
    ));
    for l in &r.losses {
        out.push_str(&format!(
            "    {}: {} pages rolled back ({} lag + {} tail)\n",
            l.name, l.loss_pages, l.checkpoint_lag_pages, l.tail_pages
        ));
    }
    out.push_str(&format!("now running: {} {}\n", hv2.kind(), hv2.version()));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parse_options_and_positionals() {
        let c = parse(&argv("decide CVE-2016-6258 --running xen --verbose")).unwrap();
        assert_eq!(c.name, "decide");
        assert_eq!(c.positional, vec!["CVE-2016-6258"]);
        assert_eq!(c.options.get("running").map(String::as_str), Some("xen"));
        assert_eq!(c.options.get("verbose").map(String::as_str), Some("true"));
    }

    #[test]
    fn empty_argv_errors() {
        assert_eq!(parse(&[]), Err(CliError::NoCommand));
    }

    #[test]
    fn unknown_command_errors() {
        let c = parse(&argv("frobnicate")).unwrap();
        assert!(matches!(run(&c), Err(CliError::UnknownCommand(_))));
    }

    #[test]
    fn analyze_prints_table() {
        let out = run(&parse(&argv("analyze")).unwrap()).unwrap();
        assert!(out.contains("2015"));
        assert!(out.contains("KVM windows"));
    }

    #[test]
    fn decide_known_cve() {
        let out = run(&parse(&argv("decide CVE-2016-6258 --running xen")).unwrap()).unwrap();
        assert!(out.contains("Transplant"));
        let out = run(&parse(&argv("decide CVE-2015-3456 --running xen")).unwrap()).unwrap();
        assert!(out.contains("NoSafeTarget"));
    }

    #[test]
    fn decide_unknown_cve_fails() {
        let r = run(&parse(&argv("decide CVE-0000-0000")).unwrap());
        assert!(matches!(r, Err(CliError::Failed(_))));
    }

    #[test]
    fn transplant_end_to_end() {
        let out = run(&parse(&argv("transplant --vms 2 --mem 1")).unwrap()).unwrap();
        assert!(out.contains("downtime"), "{out}");
        assert!(out.contains("now running: KVM"));
    }

    #[test]
    fn transplant_bad_machine_rejected() {
        let r = run(&parse(&argv("transplant --machine m9")).unwrap());
        assert!(matches!(r, Err(CliError::BadValue { .. })));
    }

    #[test]
    fn migrate_end_to_end() {
        let out = run(&parse(&argv("migrate --mem 1 --dirty-rate 5")).unwrap()).unwrap();
        assert!(out.contains("MigrationTP"));
        assert!(out.contains("downtime"));
    }

    #[test]
    fn cluster_end_to_end() {
        let out = run(&parse(&argv("cluster --compat 80")).unwrap()).unwrap();
        assert!(out.contains("in-place upgrades"));
    }

    #[test]
    fn cluster_shards_do_not_change_the_output() {
        let base = run(&parse(&argv("cluster --compat 80")).unwrap()).unwrap();
        let sharded = run(&parse(&argv("cluster --compat 80 --shards 4")).unwrap()).unwrap();
        assert_eq!(base, sharded);
    }

    #[test]
    fn cluster_synthetic_fleet() {
        let out = run(&parse(&argv("cluster --hosts 500 --group 4 --shards 8")).unwrap()).unwrap();
        assert!(out.contains("500 synthetic hosts"), "{out}");
        assert!(out.contains("in-place upgrades"));
        let again =
            run(&parse(&argv("cluster --hosts 500 --group 4 --shards 3")).unwrap()).unwrap();
        assert_eq!(out, again, "shard count must not change the report");
    }

    #[test]
    fn cluster_bad_hosts_rejected() {
        let r = run(&parse(&argv("cluster --hosts lots")).unwrap());
        assert!(matches!(r, Err(CliError::BadValue { .. })));
    }

    #[test]
    fn fleet_end_to_end() {
        let out = run(&parse(&argv("fleet --vms 3 --dirty-rate 500")).unwrap()).unwrap();
        assert!(out.contains("fifo admission"), "{out}");
        assert!(out.contains("SLO: 3 serving VM(s)"), "{out}");
        assert!(out.contains("makespan"), "{out}");
    }

    #[test]
    fn fleet_slo_aware_flag_switches_admission() {
        let fifo = run(&parse(&argv("fleet --vms 4")).unwrap()).unwrap();
        let aware = run(&parse(&argv("fleet --vms 4 --slo-aware")).unwrap()).unwrap();
        assert!(aware.contains("slo admission"), "{aware}");
        assert_ne!(fifo, aware, "the flag must change the schedule output");
        // Deterministic: the same invocation renders identically.
        let again = run(&parse(&argv("fleet --vms 4 --slo-aware")).unwrap()).unwrap();
        assert_eq!(aware, again);
    }

    #[test]
    fn fleet_bad_vms_rejected() {
        let r = run(&parse(&argv("fleet --vms several")).unwrap());
        assert!(matches!(r, Err(CliError::BadValue { .. })));
    }

    #[test]
    fn campaign_end_to_end() {
        let out = run(&parse(&argv("campaign CVE-2016-6258 --hosts 1 --vms 1")).unwrap()).unwrap();
        assert!(out.contains("Xen → KVM → Xen"));
    }

    #[test]
    fn feed_end_to_end() {
        let out = run(&parse(&argv("feed --hosts 30 --days 120")).unwrap()).unwrap();
        assert!(out.contains("surface-aware planning"), "{out}");
        assert!(out.contains("integrated exposure"), "{out}");
        // Determinism: the same invocation renders identically, and the
        // shard count never changes the schedule.
        let again = run(&parse(&argv("feed --hosts 30 --days 120 --shards 4")).unwrap()).unwrap();
        assert_eq!(out, again);
    }

    #[test]
    fn feed_blind_flag_switches_planning() {
        let aware = run(&parse(&argv("feed --hosts 30 --days 120")).unwrap()).unwrap();
        let blind = run(&parse(&argv("feed --hosts 30 --days 120 --blind")).unwrap()).unwrap();
        assert!(blind.contains("surface-blind planning"), "{blind}");
        assert_ne!(aware, blind, "the flag must change the schedule output");
    }

    #[test]
    fn feed_bad_days_rejected() {
        let r = run(&parse(&argv("feed --days forever")).unwrap());
        assert!(matches!(r, Err(CliError::BadValue { .. })));
    }

    #[test]
    fn recover_end_to_end() {
        let out = run(&parse(&argv("recover --vms 2 --mem 1 --ticks 3")).unwrap()).unwrap();
        assert!(out.contains("unplanned transplant"), "{out}");
        assert!(out.contains("bound held: true"), "{out}");
        assert!(out.contains("now running: KVM"), "{out}");
    }

    #[test]
    fn recover_field_diff_output_matches_default() {
        let base = run(&parse(&argv("recover --vms 1 --ticks 2")).unwrap()).unwrap();
        let fd = run(&parse(&argv("recover --vms 1 --ticks 2 --field-diff")).unwrap()).unwrap();
        assert_eq!(base, fd, "field-level diffing must not change behavior");
    }

    #[test]
    fn proxy_requires_role_and_socket() {
        let r = run(&parse(&argv("proxy")).unwrap());
        assert_eq!(r, Err(CliError::MissingOption("<source|dest>")));
        let r = run(&parse(&argv("proxy source")).unwrap());
        assert_eq!(r, Err(CliError::MissingOption("--socket")));
        let r = run(&parse(&argv("proxy upside-down --socket /tmp/s")).unwrap());
        assert!(matches!(r, Err(CliError::BadValue { .. })));
    }

    #[test]
    fn recover_bad_bound_rejected() {
        let r = run(&parse(&argv("recover --bound many")).unwrap());
        assert!(matches!(r, Err(CliError::BadValue { .. })));
    }

    #[test]
    fn help_lists_subcommands() {
        let out = run(&parse(&argv("help")).unwrap()).unwrap();
        for sub in [
            "analyze",
            "decide",
            "transplant",
            "migrate",
            "proxy",
            "cluster",
            "fleet",
            "campaign",
            "feed",
            "recover",
        ] {
            assert!(out.contains(sub), "{sub}");
        }
    }
}
