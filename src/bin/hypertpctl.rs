//! `hypertpctl`: the operator CLI over the HyperTP library (simulated).

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match hypertp::cli::parse(&args) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("error: {e}");
            eprint!("{}", hypertp::cli::help());
            return ExitCode::FAILURE;
        }
    };
    match hypertp::cli::run(&cmd) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
