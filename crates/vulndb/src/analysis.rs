//! Regenerates Table 1, the §2.1 breakdowns and the §2.2 window stats.

use std::collections::BTreeMap;

use crate::cvss::Severity;
use crate::dataset::{Component, HypervisorId, Vulnerability};

/// One row of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table1Row {
    /// Year.
    pub year: u16,
    /// Xen criticals (incl. common).
    pub xen_crit: u32,
    /// Xen mediums (incl. common).
    pub xen_med: u32,
    /// KVM criticals (incl. common).
    pub kvm_crit: u32,
    /// KVM mediums (incl. common).
    pub kvm_med: u32,
    /// Common criticals.
    pub common_crit: u32,
    /// Common mediums.
    pub common_med: u32,
}

/// Software vulnerabilities only (the CPU-level Spectre/Meltdown pair is
/// analyzed separately in §2.1).
fn software(ds: &[Vulnerability]) -> impl Iterator<Item = &Vulnerability> {
    ds.iter().filter(|v| v.component != Component::Cpu)
}

/// Computes Table 1 from the dataset.
pub fn table1(ds: &[Vulnerability]) -> Vec<Table1Row> {
    let mut rows: BTreeMap<u16, Table1Row> = BTreeMap::new();
    for v in software(ds) {
        let row = rows.entry(v.year).or_insert(Table1Row {
            year: v.year,
            xen_crit: 0,
            xen_med: 0,
            kvm_crit: 0,
            kvm_med: 0,
            common_crit: 0,
            common_med: 0,
        });
        let sev = v.severity();
        if v.affects(HypervisorId::Xen) {
            match sev {
                Severity::Critical => row.xen_crit += 1,
                Severity::Medium => row.xen_med += 1,
                Severity::Low => {}
            }
        }
        if v.affects(HypervisorId::Kvm) {
            match sev {
                Severity::Critical => row.kvm_crit += 1,
                Severity::Medium => row.kvm_med += 1,
                Severity::Low => {}
            }
        }
        if v.is_common() {
            match sev {
                Severity::Critical => row.common_crit += 1,
                Severity::Medium => row.common_med += 1,
                Severity::Low => {}
            }
        }
    }
    rows.into_values().collect()
}

/// Totals across all years: (xen_crit, xen_med, kvm_crit, kvm_med,
/// common_crit, common_med).
pub fn totals(rows: &[Table1Row]) -> (u32, u32, u32, u32, u32, u32) {
    rows.iter().fold((0, 0, 0, 0, 0, 0), |acc, r| {
        (
            acc.0 + r.xen_crit,
            acc.1 + r.xen_med,
            acc.2 + r.kvm_crit,
            acc.3 + r.kvm_med,
            acc.4 + r.common_crit,
            acc.5 + r.common_med,
        )
    })
}

/// Per-component share (%) of one hypervisor's vulnerabilities at one
/// severity (§2.1's breakdowns).
pub fn component_share(
    ds: &[Vulnerability],
    hv: HypervisorId,
    severity: Severity,
) -> Vec<(Component, f64)> {
    let matching: Vec<&Vulnerability> = software(ds)
        .filter(|v| v.affects(hv) && v.severity() == severity)
        .collect();
    let total = matching.len() as f64;
    let mut counts: BTreeMap<&'static str, (Component, u32)> = BTreeMap::new();
    for v in &matching {
        counts
            .entry(v.component.name())
            .or_insert((v.component, 0))
            .1 += 1;
    }
    let mut out: Vec<(Component, f64)> = counts
        .into_values()
        .map(|(c, n)| (c, n as f64 * 100.0 / total))
        .collect();
    out.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite percentages"));
    out
}

/// The common vulnerabilities at a given severity.
pub fn common(ds: &[Vulnerability], severity: Severity) -> Vec<&Vulnerability> {
    software(ds)
        .filter(|v| v.is_common() && v.severity() == severity)
        .collect()
}

/// Vulnerability-window statistics (§2.2).
#[derive(Debug, Clone, PartialEq)]
pub struct WindowStats {
    /// Number of records with window data.
    pub n: usize,
    /// Mean window in days.
    pub mean_days: f64,
    /// Fraction with window > 60 days.
    pub frac_over_60: f64,
    /// (id, days) of the longest window.
    pub max: (String, u32),
    /// (id, days) of the shortest window.
    pub min: (String, u32),
}

/// Computes window statistics for one hypervisor's own (non-common)
/// records — the §2.2 KVM analysis uses the Red Hat tracker data.
pub fn window_stats(ds: &[Vulnerability], hv: HypervisorId) -> Option<WindowStats> {
    let windows: Vec<(&Vulnerability, u32)> = software(ds)
        .filter(|v| v.affects(hv) && !v.is_common())
        .filter_map(|v| v.window_days.map(|w| (v, w)))
        .collect();
    if windows.is_empty() {
        return None;
    }
    let n = windows.len();
    let sum: u64 = windows.iter().map(|&(_, w)| w as u64).sum();
    let over = windows.iter().filter(|&&(_, w)| w > 60).count();
    let max = windows.iter().max_by_key(|&&(_, w)| w).expect("non-empty");
    let min = windows.iter().min_by_key(|&&(_, w)| w).expect("non-empty");
    Some(WindowStats {
        n,
        mean_days: sum as f64 / n as f64,
        frac_over_60: over as f64 / n as f64,
        max: (max.0.id.clone(), max.1),
        min: (min.0.id.clone(), min.1),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{dataset, TABLE1_COUNTS};

    #[test]
    fn table1_matches_paper_exactly() {
        let rows = table1(&dataset());
        assert_eq!(rows.len(), 7);
        for (row, &(year, xc, xm, kc, km, cc, cm)) in rows.iter().zip(&TABLE1_COUNTS) {
            assert_eq!(
                (
                    row.year,
                    row.xen_crit,
                    row.xen_med,
                    row.kvm_crit,
                    row.kvm_med,
                    row.common_crit,
                    row.common_med
                ),
                (year, xc, xm, kc, km, cc, cm),
                "year {year}"
            );
        }
        // Note: the paper's printed "Total" row says 136 Xen mediums, but
        // its own per-year rows sum to 171 — a typo in the paper. We match
        // the per-year rows.
        let t = totals(&rows);
        assert_eq!(t, (55, 171, 13, 56, 1, 2));
    }

    #[test]
    fn xen_critical_breakdown_matches_section_2_1() {
        // §2.1: PV 38.4%, resource 28.2%, hardware 15.3%, toolstack 7.5%,
        // QEMU 10.2% (±3% tolerance for integer rounding).
        let shares = component_share(&dataset(), HypervisorId::Xen, Severity::Critical);
        let get = |c: Component| {
            shares
                .iter()
                .find(|(cc, _)| *cc == c)
                .map(|(_, p)| *p)
                .unwrap_or(0.0)
        };
        assert!((get(Component::PvInterface) - 38.4).abs() < 3.0);
        assert!((get(Component::ResourceMgmt) - 28.2).abs() < 3.0);
        assert!((get(Component::HardwareHandling) - 15.3).abs() < 3.0);
        assert!((get(Component::Toolstack) - 7.5).abs() < 3.0);
        assert!((get(Component::Qemu) - 10.2) < 3.0);
    }

    #[test]
    fn kvm_critical_breakdown_shape() {
        // §2.1: ioctl, hardware and QEMU dominate; resource management is
        // the smallest share.
        let shares = component_share(&dataset(), HypervisorId::Kvm, Severity::Critical);
        let last = shares.last().expect("non-empty").0;
        assert_eq!(last, Component::ResourceMgmt);
        assert!(shares[0].1 > 25.0);
    }

    #[test]
    fn kvm_window_stats_match_section_2_2() {
        let s = window_stats(&dataset(), HypervisorId::Kvm).unwrap();
        assert_eq!(s.n, 24);
        assert!((s.mean_days - 71.0).abs() < 0.01, "mean = {}", s.mean_days);
        assert!((s.frac_over_60 - 0.625).abs() < 0.01);
        assert_eq!(s.max, ("CVE-2017-12188".to_string(), 180));
        assert_eq!(s.min, ("CVE-2013-0311".to_string(), 8));
    }

    #[test]
    fn common_lists() {
        let ds = dataset();
        let crit = common(&ds, Severity::Critical);
        assert_eq!(crit.len(), 1);
        let med = common(&ds, Severity::Medium);
        assert_eq!(med.len(), 2);
        assert!(med
            .iter()
            .all(|v| v.component == Component::HardwareHandling));
    }
}
