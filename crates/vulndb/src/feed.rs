//! A seeded deterministic vulnerability-disclosure feed over simulated
//! time, classified by attack surface.
//!
//! The §2 study treats the dataset as a static table; real operations see
//! a *stream*: flaws disclosed one after another over the year, each
//! hitting a different part of the hypervisor's attack surface. This
//! module models that stream. Every [`Vulnerability::component`] maps onto
//! one of four [`AttackSurface`]s — hypercall handlers (the SPEC RG
//! Milenkoski hypercall-vulnerability taxonomy), device emulation (the
//! VENOM class), cross-domain escapes (the "Breaking Isolation" taxonomy:
//! toolstack and resource-management flaws that let one domain reach
//! another), and instruction emulation (trap-and-emulate and speculative
//! execution) — and each surface carries a criticality weight calibrated
//! from the CVSS scores the dataset already assigns it.
//!
//! The feed itself is a pure function of its seed: replaying
//! [`VulnFeed::replay`] with the same seed and horizon yields the same
//! byte-identical event list on every machine, worker count, or run — the
//! same determinism contract the rest of the workspace keeps.

use hypertp_sim::rng::SimRng;
use hypertp_sim::{SimDuration, SimTime};

use crate::cvss::{severity_of, CvssV2, Severity};
use crate::dataset::{Component, HypervisorId, Vulnerability, KVM_WINDOWS};

/// The four attack surfaces the planner distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AttackSurface {
    /// Guest→hypervisor control transfers: Xen's hypercall handlers and
    /// KVM's ioctl ABI (its equivalent entry-point surface).
    Hypercall,
    /// Emulated device models (QEMU and friends) — the VENOM class.
    DeviceEmulation,
    /// Flaws that cross domain boundaries without a device: toolstack
    /// and resource-management (grant tables, memory accounting) bugs.
    CrossDomainEscape,
    /// Trap-and-emulate instruction handling and speculative-execution
    /// side channels.
    InstructionEmulation,
}

impl AttackSurface {
    /// All four surfaces, in weight-table order.
    pub const ALL: [AttackSurface; 4] = [
        AttackSurface::Hypercall,
        AttackSurface::DeviceEmulation,
        AttackSurface::CrossDomainEscape,
        AttackSurface::InstructionEmulation,
    ];

    /// Deterministic classification of the §2 component taxonomy.
    pub fn of(component: Component) -> AttackSurface {
        match component {
            Component::PvInterface | Component::Ioctl => AttackSurface::Hypercall,
            Component::Qemu => AttackSurface::DeviceEmulation,
            Component::Toolstack | Component::ResourceMgmt => AttackSurface::CrossDomainEscape,
            Component::HardwareHandling | Component::Cpu => AttackSurface::InstructionEmulation,
        }
    }

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            AttackSurface::Hypercall => "hypercall",
            AttackSurface::DeviceEmulation => "device-emulation",
            AttackSurface::CrossDomainEscape => "cross-domain-escape",
            AttackSurface::InstructionEmulation => "instruction-emulation",
        }
    }

    /// Index into the [`SurfaceWeights`] table.
    pub fn index(self) -> usize {
        match self {
            AttackSurface::Hypercall => 0,
            AttackSurface::DeviceEmulation => 1,
            AttackSurface::CrossDomainEscape => 2,
            AttackSurface::InstructionEmulation => 3,
        }
    }
}

/// Per-surface criticality weights. A weight is a multiplier around 1.0:
/// [`SurfaceWeights::uniform`] treats every surface alike (the
/// surface-blind policy of §2); [`SurfaceWeights::calibrated`] sets each
/// surface's weight to its smoothed odds of landing in the critical CVSS
/// band relative to the dataset-wide odds, so surfaces whose historical
/// flaws concentrate in the critical band weigh more than 1.0 and vice
/// versa.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SurfaceWeights {
    weights: [f64; 4],
}

impl SurfaceWeights {
    /// Every surface weighs 1.0 — decisions reduce to raw CVSS severity.
    pub fn uniform() -> SurfaceWeights {
        SurfaceWeights { weights: [1.0; 4] }
    }

    /// Calibrates from a dataset: each surface's weight is its
    /// add-one-smoothed probability of landing in the critical CVSS band,
    /// divided by the dataset-wide probability. The dataset's scores
    /// cluster into bands, so band concentration — not the mean score —
    /// is where the historical signal lives: a surface whose flaws are
    /// disproportionately critical (instruction emulation, with
    /// Spectre/Meltdown in its history) weighs well above 1.0, and one
    /// whose flaws are mostly DoS-grade (device emulation) well below.
    /// Smoothing keeps sparse surfaces finite; surfaces with no records
    /// (or an empty dataset) fall back to 1.0, so calibration degrades to
    /// [`uniform`] rather than dividing by zero.
    ///
    /// [`uniform`]: SurfaceWeights::uniform
    pub fn calibrated(ds: &[Vulnerability]) -> SurfaceWeights {
        let mut crit = [0u32; 4];
        let mut count = [0u32; 4];
        for v in ds {
            let i = AttackSurface::of(v.component).index();
            count[i] += 1;
            if v.severity() == Severity::Critical {
                crit[i] += 1;
            }
        }
        let n: u32 = count.iter().sum();
        if n == 0 {
            return SurfaceWeights::uniform();
        }
        let total_crit: u32 = crit.iter().sum();
        let overall = (total_crit as f64 + 1.0) / (n as f64 + 2.0);
        let mut weights = [1.0f64; 4];
        for i in 0..4 {
            if count[i] > 0 {
                weights[i] = ((crit[i] as f64 + 1.0) / (count[i] as f64 + 2.0)) / overall;
            }
        }
        SurfaceWeights { weights }
    }

    /// The weight of one surface.
    pub fn weight(&self, surface: AttackSurface) -> f64 {
        self.weights[surface.index()]
    }

    /// CVSS base score adjusted by the surface weight, clamped to the
    /// CVSS scale. With uniform weights this is exactly the base score.
    pub fn effective_score(&self, cvss: &CvssV2, surface: AttackSurface) -> f64 {
        (cvss.base_score() * self.weight(surface)).clamp(0.0, 10.0)
    }

    /// Severity band of the weight-adjusted score.
    pub fn effective_severity(&self, cvss: &CvssV2, surface: AttackSurface) -> Severity {
        severity_of(self.effective_score(cvss, surface))
    }

    /// The exposure criticality of one disclosure: its weight-adjusted
    /// score normalized to `[0, 1]`. This is the per-VM weight in the
    /// planner's integrated-exposure objective
    /// ∫ affected-VMs × criticality dt.
    pub fn criticality(&self, cvss: &CvssV2, surface: AttackSurface) -> f64 {
        self.effective_score(cvss, surface) / 10.0
    }
}

/// One disclosure drawn from the feed.
#[derive(Debug, Clone, PartialEq)]
pub struct FeedEvent {
    /// Disclosure instant on the feed's simulated clock.
    pub at: SimTime,
    /// The synthesized vulnerability record.
    pub vuln: Vulnerability,
    /// Its attack-surface classification.
    pub surface: AttackSurface,
}

impl FeedEvent {
    /// The patch window: disclosure → upstream fix, after which exposure
    /// stops accruing whether or not the fleet transplanted.
    pub fn window(&self) -> SimDuration {
        SimDuration::from_secs(self.vuln.window_days.unwrap_or(30) as u64 * 24 * 3600)
    }
}

/// A seeded deterministic disclosure stream. Events are a pure function
/// of `(seed, events_per_year, horizon)`: the generator walks one
/// [`SimRng`] stream, then sorts by `(time, id)`, so the replay is
/// byte-identical everywhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VulnFeed {
    seed: u64,
    events_per_year: u32,
}

/// The §2 yearly rates: ≈37 disclosures/year across both hypervisors
/// (Table 1's 260 records over 7 years).
const DEFAULT_EVENTS_PER_YEAR: u32 = 37;

/// Probability (percent) that a feed record lands in the critical CVSS
/// band, matching the dataset's ≈26% critical share.
const CRITICAL_PCT: u64 = 26;

/// Probability (percent) of the borderline-high band (score 6.9, just
/// below the critical cutoff): the flaws whose verdict surface weighting
/// actually changes. The remainder of the stream is DoS-grade medium.
const HIGH_PCT: u64 = 44;

impl VulnFeed {
    /// A feed with the §2-calibrated default rate.
    pub fn new(seed: u64) -> VulnFeed {
        VulnFeed {
            seed,
            events_per_year: DEFAULT_EVENTS_PER_YEAR,
        }
    }

    /// Overrides the disclosure rate.
    pub fn with_events_per_year(mut self, events_per_year: u32) -> VulnFeed {
        self.events_per_year = events_per_year.max(1);
        self
    }

    /// The feed's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Materializes every disclosure inside `[0, horizon)`, sorted by
    /// `(time, id)`.
    pub fn replay(&self, horizon: SimDuration) -> Vec<FeedEvent> {
        let horizon_secs = horizon.as_secs_f64();
        let n = ((horizon_secs / (365.0 * 86_400.0)) * self.events_per_year as f64).ceil() as usize;
        let mut rng = SimRng::new(self.seed ^ 0xfeed_0b5e_55ed_cafe);
        let mut events: Vec<FeedEvent> = (0..n)
            .map(|i| {
                let at = SimTime::ZERO + SimDuration::from_secs_f64(rng.gen_f64() * horizon_secs);
                // Affected hypervisor(s): the dataset's common flaws are
                // rare (3 of 260), so the stream leans single-hypervisor.
                let affects = match rng.gen_range(40) {
                    0 => vec![HypervisorId::Xen, HypervisorId::Kvm],
                    r if r < 20 => vec![HypervisorId::Xen],
                    _ => vec![HypervisorId::Kvm],
                };
                // Component mix mirrors §2.1: Xen flaws concentrate in the
                // PV interface and resource management, KVM's in its ioctl
                // ABI and hardware handling; QEMU serves both.
                let component = if affects.contains(&HypervisorId::Xen) {
                    match rng.gen_range(8) {
                        0..=2 => Component::PvInterface,
                        3..=4 => Component::ResourceMgmt,
                        5 => Component::HardwareHandling,
                        6 => Component::Toolstack,
                        _ => Component::Qemu,
                    }
                } else {
                    match rng.gen_range(8) {
                        0..=2 => Component::Ioctl,
                        3..=4 => Component::HardwareHandling,
                        5 => Component::Cpu,
                        _ => Component::Qemu,
                    }
                };
                let band = rng.gen_range(100);
                let cvss = if band < CRITICAL_PCT {
                    crate::dataset::critical_cvss()
                } else if band < CRITICAL_PCT + HIGH_PCT {
                    crate::dataset::high_cvss()
                } else {
                    crate::dataset::medium_cvss()
                };
                let window_days = KVM_WINDOWS[rng.gen_range(KVM_WINDOWS.len() as u64) as usize];
                let year = 2020
                    + (at.duration_since(SimTime::ZERO).as_secs_f64() / (365.0 * 86_400.0)) as u16;
                let vuln = Vulnerability {
                    id: format!("FEED-{year}-{i:04}"),
                    year,
                    affects,
                    component,
                    cvss,
                    window_days: Some(window_days),
                    description: format!("feed-synthesized {} flaw", component.name()),
                };
                FeedEvent {
                    at,
                    surface: AttackSurface::of(component),
                    vuln,
                }
            })
            .collect();
        events.sort_by(|a, b| (a.at, &a.vuln.id).cmp(&(b.at, &b.vuln.id)));
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::dataset;

    #[test]
    fn every_component_maps_to_a_surface() {
        // The classification is total and stable: VENOM is device
        // emulation, Xen's PV interface and KVM's ioctl ABI are both
        // hypercall-class, Spectre/Meltdown are instruction emulation.
        assert_eq!(
            AttackSurface::of(Component::Qemu),
            AttackSurface::DeviceEmulation
        );
        assert_eq!(
            AttackSurface::of(Component::PvInterface),
            AttackSurface::Hypercall
        );
        assert_eq!(
            AttackSurface::of(Component::Ioctl),
            AttackSurface::Hypercall
        );
        assert_eq!(
            AttackSurface::of(Component::Cpu),
            AttackSurface::InstructionEmulation
        );
        assert_eq!(
            AttackSurface::of(Component::ResourceMgmt),
            AttackSurface::CrossDomainEscape
        );
        for s in AttackSurface::ALL {
            assert_eq!(AttackSurface::ALL[s.index()], s);
        }
    }

    #[test]
    fn calibrated_weights_average_to_one_ish() {
        // Calibration is an odds ratio around the dataset-wide critical
        // share: weights straddle 1.0 with bounded spread.
        let w = SurfaceWeights::calibrated(&dataset());
        let mut lo = f64::MAX;
        let mut hi = f64::MIN;
        for s in AttackSurface::ALL {
            let x = w.weight(s);
            assert!(x.is_finite() && x > 0.0, "{s:?} weight {x}");
            lo = lo.min(x);
            hi = hi.max(x);
        }
        assert!(lo < 1.0 && hi > 1.0, "weights [{lo}, {hi}] must straddle 1");
        assert!(
            hi / lo < 3.0,
            "critical-band odds differ by < 3x across surfaces"
        );
    }

    #[test]
    fn empty_dataset_calibrates_to_uniform() {
        assert_eq!(SurfaceWeights::calibrated(&[]), SurfaceWeights::uniform());
    }

    #[test]
    fn uniform_effective_score_is_the_base_score() {
        let w = SurfaceWeights::uniform();
        for v in dataset().iter().take(20) {
            let s = AttackSurface::of(v.component);
            assert_eq!(w.effective_score(&v.cvss, s), v.cvss.base_score());
            assert_eq!(w.effective_severity(&v.cvss, s), v.severity());
        }
    }

    #[test]
    fn replay_is_deterministic_and_sorted() {
        let feed = VulnFeed::new(0xfeed01);
        let year = SimDuration::from_secs(365 * 86_400);
        let a = feed.replay(year);
        let b = feed.replay(year);
        assert_eq!(a, b);
        assert_eq!(a.len(), 37, "default rate is the Table 1 yearly mean");
        assert!(a.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(a.iter().all(|e| e.window() > SimDuration::ZERO));
        // A different seed yields a different stream.
        let c = VulnFeed::new(0xfeed02).replay(year);
        assert_ne!(a, c);
    }

    #[test]
    fn replay_scales_with_horizon_and_rate() {
        let feed = VulnFeed::new(7).with_events_per_year(12);
        let half = feed.replay(SimDuration::from_secs(182 * 86_400));
        assert_eq!(half.len(), 6);
        assert!(feed.replay(SimDuration::ZERO).is_empty());
    }
}
