//! CVSS v2 base scoring (the metric the paper's severity bands use).
//!
//! Implements the CVSS v2.0 base equation from the FIRST specification.
//! The paper classifies a flaw *critical* when the CVSS v2 score is ≥ 7.0
//! and *medium* when it is in [4.0, 7.0).

/// Access vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessVector {
    /// Local access required.
    Local,
    /// Adjacent network.
    Adjacent,
    /// Network-reachable.
    Network,
}

/// Access complexity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessComplexity {
    /// High complexity.
    High,
    /// Medium complexity.
    Medium,
    /// Low complexity.
    Low,
}

/// Authentication requirement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Authentication {
    /// Multiple authentications.
    Multiple,
    /// Single authentication.
    Single,
    /// No authentication.
    None,
}

/// Impact level for confidentiality/integrity/availability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Impact {
    /// No impact.
    None,
    /// Partial impact.
    Partial,
    /// Complete impact.
    Complete,
}

/// A CVSS v2 base vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CvssV2 {
    /// AV.
    pub av: AccessVector,
    /// AC.
    pub ac: AccessComplexity,
    /// Au.
    pub au: Authentication,
    /// C.
    pub c: Impact,
    /// I.
    pub i: Impact,
    /// A.
    pub a: Impact,
}

/// Severity bands used throughout the paper (§2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// CVSS v2 < 4.0.
    Low,
    /// 4.0 ≤ CVSS v2 < 7.0.
    Medium,
    /// CVSS v2 ≥ 7.0.
    Critical,
}

impl CvssV2 {
    /// Parses a `AV:N/AC:L/Au:N/C:C/I:C/A:C`-style vector string.
    pub fn parse(vector: &str) -> Option<CvssV2> {
        let mut av = None;
        let mut ac = None;
        let mut au = None;
        let (mut c, mut i, mut a) = (None, None, None);
        for part in vector.trim_matches(['(', ')']).split('/') {
            let (k, v) = part.split_once(':')?;
            match (k, v) {
                ("AV", "L") => av = Some(AccessVector::Local),
                ("AV", "A") => av = Some(AccessVector::Adjacent),
                ("AV", "N") => av = Some(AccessVector::Network),
                ("AC", "H") => ac = Some(AccessComplexity::High),
                ("AC", "M") => ac = Some(AccessComplexity::Medium),
                ("AC", "L") => ac = Some(AccessComplexity::Low),
                ("Au", "M") => au = Some(Authentication::Multiple),
                ("Au", "S") => au = Some(Authentication::Single),
                ("Au", "N") => au = Some(Authentication::None),
                ("C", x) => c = impact(x),
                ("I", x) => i = impact(x),
                ("A", x) => a = impact(x),
                _ => return None,
            }
        }
        Some(CvssV2 {
            av: av?,
            ac: ac?,
            au: au?,
            c: c?,
            i: i?,
            a: a?,
        })
    }

    /// The base score, per the CVSS v2.0 equation.
    pub fn base_score(&self) -> f64 {
        let impact = 10.41
            * (1.0
                - (1.0 - impact_weight(self.c))
                    * (1.0 - impact_weight(self.i))
                    * (1.0 - impact_weight(self.a)));
        let exploitability = 20.0 * av_weight(self.av) * ac_weight(self.ac) * au_weight(self.au);
        let f = if impact == 0.0 { 0.0 } else { 1.176 };
        let score = ((0.6 * impact) + (0.4 * exploitability) - 1.5) * f;
        (score * 10.0).round() / 10.0
    }

    /// The paper's severity band for this vector.
    pub fn severity(&self) -> Severity {
        severity_of(self.base_score())
    }
}

/// Maps a numeric score to the paper's bands.
pub fn severity_of(score: f64) -> Severity {
    if score >= 7.0 {
        Severity::Critical
    } else if score >= 4.0 {
        Severity::Medium
    } else {
        Severity::Low
    }
}

fn impact(s: &str) -> Option<Impact> {
    match s {
        "N" => Some(Impact::None),
        "P" => Some(Impact::Partial),
        "C" => Some(Impact::Complete),
        _ => None,
    }
}

fn av_weight(av: AccessVector) -> f64 {
    match av {
        AccessVector::Local => 0.395,
        AccessVector::Adjacent => 0.646,
        AccessVector::Network => 1.0,
    }
}

fn ac_weight(ac: AccessComplexity) -> f64 {
    match ac {
        AccessComplexity::High => 0.35,
        AccessComplexity::Medium => 0.61,
        AccessComplexity::Low => 0.71,
    }
}

fn au_weight(au: Authentication) -> f64 {
    match au {
        Authentication::Multiple => 0.45,
        Authentication::Single => 0.56,
        Authentication::None => 0.704,
    }
}

fn impact_weight(i: Impact) -> f64 {
    match i {
        Impact::None => 0.0,
        Impact::Partial => 0.275,
        Impact::Complete => 0.660,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_vectors_score_correctly() {
        // Reference scores from the CVSS v2 specification / NVD.
        for (vector, score) in [
            ("AV:N/AC:L/Au:N/C:C/I:C/A:C", 10.0),
            ("AV:N/AC:L/Au:N/C:N/I:N/A:C", 7.8),
            ("AV:L/AC:L/Au:N/C:C/I:C/A:C", 7.2),
            ("AV:N/AC:L/Au:N/C:P/I:P/A:P", 7.5),
            ("AV:L/AC:L/Au:N/C:N/I:N/A:C", 4.9),
            ("AV:N/AC:L/Au:N/C:N/I:N/A:N", 0.0),
        ] {
            let v = CvssV2::parse(vector).unwrap();
            assert_eq!(v.base_score(), score, "{vector}");
        }
    }

    #[test]
    fn venom_is_critical() {
        // CVE-2015-3456 (VENOM): AV:L/AC:L/Au:N/C:C/I:C/A:C -> 7.2.
        let v = CvssV2::parse("AV:L/AC:L/Au:N/C:C/I:C/A:C").unwrap();
        assert_eq!(v.base_score(), 7.2);
        assert_eq!(v.severity(), Severity::Critical);
    }

    #[test]
    fn dos_pair_is_medium() {
        // CVE-2015-8104 / CVE-2015-5307: AV:L/AC:L/Au:N/C:N/I:N/A:C -> 4.9.
        let v = CvssV2::parse("AV:L/AC:L/Au:N/C:N/I:N/A:C").unwrap();
        assert_eq!(v.base_score(), 4.9);
        assert_eq!(v.severity(), Severity::Medium);
    }

    #[test]
    fn bands() {
        assert_eq!(severity_of(7.0), Severity::Critical);
        assert_eq!(severity_of(6.9), Severity::Medium);
        assert_eq!(severity_of(4.0), Severity::Medium);
        assert_eq!(severity_of(3.9), Severity::Low);
    }

    #[test]
    fn bad_vectors_rejected() {
        assert!(CvssV2::parse("AV:N/AC:L").is_none());
        assert!(CvssV2::parse("AV:X/AC:L/Au:N/C:N/I:N/A:N").is_none());
        assert!(CvssV2::parse("").is_none());
    }

    #[test]
    fn parenthesized_vector_accepted() {
        assert!(CvssV2::parse("(AV:N/AC:L/Au:N/C:C/I:C/A:C)").is_some());
    }

    #[test]
    fn unknown_vectors_rejected_not_scored() {
        // An unknown vector must parse to None — never be silently
        // scored (a zero score would read as "not severe" and suppress a
        // transplant that should have happened). Covers a CVSS v3 vector
        // fed to the v2 parser, an unknown metric key, an unknown metric
        // value, and a keyless fragment.
        for vector in [
            "CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H",
            "AV:N/AC:L/Au:N/C:N/I:N/A:N/E:F",
            "AV:N/AC:L/Au:N/C:X/I:N/A:N",
            "AV:N/AC:L/Au:N/C:N/I:N/garbage",
        ] {
            assert!(CvssV2::parse(vector).is_none(), "{vector}");
        }
    }
}
