//! The 2013–2019 Xen/KVM vulnerability dataset.
//!
//! Pivotal entries carry their real identifiers: CVE-2015-3456 (VENOM, the
//! single common critical, in QEMU's floppy controller), CVE-2015-8104 and
//! CVE-2015-5307 (the common medium DoS pair from the Alignment Check and
//! Debug exceptions), CVE-2016-6258 (the 7-day Xen window), CVE-2017-12188
//! and CVE-2013-0311 (the longest/shortest KVM windows), and
//! Spectre/Meltdown. The remaining records are synthesized so that the
//! per-year, per-severity counts equal Table 1 and the per-component
//! shares match §2.1 — the substitution for scraping the NVD, documented
//! in DESIGN.md.

use crate::cvss::{CvssV2, Severity};

/// Which hypervisor a vulnerability affects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HypervisorId {
    /// Xen.
    Xen,
    /// Linux KVM.
    Kvm,
}

/// The subsystem a flaw lives in (§2.1's breakdown).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Component {
    /// Xen PV mechanisms: event channels, hypercalls, grant tables.
    PvInterface,
    /// Resource management (schedulers, memory accounting).
    ResourceMgmt,
    /// Hardware mishandling (VT-x state, exceptions).
    HardwareHandling,
    /// The Xen toolstack (libxl).
    Toolstack,
    /// QEMU device emulation (shared by both hypervisors).
    Qemu,
    /// The KVM ioctl surface.
    Ioctl,
    /// CPU/hardware-level flaws (Spectre, Meltdown).
    Cpu,
}

impl Component {
    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Component::PvInterface => "PV interface",
            Component::ResourceMgmt => "resource management",
            Component::HardwareHandling => "hardware mishandling",
            Component::Toolstack => "toolstack",
            Component::Qemu => "QEMU",
            Component::Ioctl => "ioctl",
            Component::Cpu => "CPU",
        }
    }
}

/// One vulnerability record.
#[derive(Debug, Clone, PartialEq)]
pub struct Vulnerability {
    /// CVE or synthesized identifier.
    pub id: String,
    /// Disclosure year.
    pub year: u16,
    /// Affected hypervisors.
    pub affects: Vec<HypervisorId>,
    /// Subsystem.
    pub component: Component,
    /// CVSS v2 base vector.
    pub cvss: CvssV2,
    /// Vulnerability window in days (report → patch release), when known.
    pub window_days: Option<u32>,
    /// Short description.
    pub description: String,
}

impl Vulnerability {
    /// Severity band (computed from the vector).
    pub fn severity(&self) -> Severity {
        self.cvss.severity()
    }

    /// True if the flaw affects the given hypervisor.
    pub fn affects(&self, hv: HypervisorId) -> bool {
        self.affects.contains(&hv)
    }

    /// True if it affects both hypervisors.
    pub fn is_common(&self) -> bool {
        self.affects(HypervisorId::Xen) && self.affects(HypervisorId::Kvm)
    }
}

/// Table 1 counts: (year, xen_crit, xen_med, kvm_crit, kvm_med,
/// common_crit, common_med). Common entries are included in both sides'
/// counts.
pub const TABLE1_COUNTS: [(u16, u32, u32, u32, u32, u32, u32); 7] = [
    (2013, 3, 38, 3, 21, 0, 0),
    (2014, 4, 27, 1, 12, 0, 0),
    (2015, 11, 20, 1, 4, 1, 2),
    (2016, 6, 12, 3, 3, 0, 0),
    (2017, 17, 38, 1, 7, 0, 0),
    (2018, 7, 21, 2, 5, 0, 0),
    (2019, 7, 15, 2, 4, 0, 0),
];

/// A critical vector (score 7.2): local escape with complete impact.
const CRIT_VECTOR: &str = "AV:L/AC:L/Au:N/C:C/I:C/A:C";
/// A borderline-high vector (score 6.9, just below the 7.0 critical
/// cutoff): a complete-impact local escape gated on a race.
const HIGH_VECTOR: &str = "AV:L/AC:M/Au:N/C:C/I:C/A:C";
/// A medium vector (score 4.9): local DoS.
const MED_VECTOR: &str = "AV:L/AC:L/Au:N/C:N/I:N/A:C";

/// The KVM vulnerability windows reconstructed from the Red Hat tracker
/// (§2.2): 24 values, mean 71 days, 15/24 (62.5%) above 60 days, max 180,
/// min 8.
pub const KVM_WINDOWS: [u32; 24] = [
    8, 14, 21, 30, 35, 40, 45, 52, 58, 61, 63, 65, 70, 75, 77, 80, 85, 90, 95, 100, 110, 120, 130,
    180,
];

fn crit() -> CvssV2 {
    CvssV2::parse(CRIT_VECTOR).expect("valid vector")
}

fn med() -> CvssV2 {
    CvssV2::parse(MED_VECTOR).expect("valid vector")
}

/// The canonical critical vector (score 7.2), parsed — the scorer the
/// synthesized records and the [`crate::feed`] stream share.
pub fn critical_cvss() -> CvssV2 {
    crit()
}

/// The canonical medium vector (score 4.9), parsed.
pub fn medium_cvss() -> CvssV2 {
    med()
}

/// The canonical borderline-high vector (score 6.9, one band notch below
/// critical), parsed — the [`crate::feed`] stream's contested middle:
/// surface weighting decides which side of the critical cutoff these
/// land on.
pub fn high_cvss() -> CvssV2 {
    CvssV2::parse(HIGH_VECTOR).expect("valid vector")
}

/// Xen critical component mix (§2.1: PV 38.4%, resource 28.2%, hardware
/// 15.3%, toolstack 7.5%, QEMU 10.2%) as a repeating pattern over 55
/// records.
const XEN_CRIT_PATTERN: [Component; 11] = [
    Component::PvInterface,
    Component::PvInterface,
    Component::PvInterface,
    Component::PvInterface,
    Component::ResourceMgmt,
    Component::ResourceMgmt,
    Component::ResourceMgmt,
    Component::HardwareHandling,
    Component::HardwareHandling,
    Component::Toolstack,
    Component::Qemu,
];

/// KVM critical component mix (§2.1: ioctl / hardware / QEMU dominate,
/// resource management smallest).
const KVM_CRIT_PATTERN: [Component; 13] = [
    Component::Ioctl,
    Component::HardwareHandling,
    Component::Qemu,
    Component::Ioctl,
    Component::HardwareHandling,
    Component::Qemu,
    Component::Ioctl,
    Component::HardwareHandling,
    Component::Qemu,
    Component::ResourceMgmt,
    Component::Ioctl,
    Component::HardwareHandling,
    Component::Qemu,
];

/// Builds the full dataset.
#[allow(clippy::vec_init_then_push)]
pub fn dataset() -> Vec<Vulnerability> {
    let mut out = Vec::new();

    // --- The named, real entries. ---
    out.push(Vulnerability {
        id: "CVE-2015-3456".into(),
        year: 2015,
        affects: vec![HypervisorId::Xen, HypervisorId::Kvm],
        component: Component::Qemu,
        cvss: crit(),
        window_days: Some(30),
        description: "VENOM: QEMU virtual floppy disk controller buffer overflow \
                      (missing bounds check) — the one common critical"
            .into(),
    });
    out.push(Vulnerability {
        id: "CVE-2015-8104".into(),
        year: 2015,
        affects: vec![HypervisorId::Xen, HypervisorId::Kvm],
        component: Component::HardwareHandling,
        cvss: med(),
        window_days: Some(45),
        description: "DoS via infinite Debug Exception (#DB) loop".into(),
    });
    out.push(Vulnerability {
        id: "CVE-2015-5307".into(),
        year: 2015,
        affects: vec![HypervisorId::Xen, HypervisorId::Kvm],
        component: Component::HardwareHandling,
        cvss: med(),
        window_days: Some(45),
        description: "DoS via infinite Alignment Check (#AC) loop".into(),
    });
    out.push(Vulnerability {
        id: "CVE-2016-6258".into(),
        year: 2016,
        affects: vec![HypervisorId::Xen],
        component: Component::PvInterface,
        cvss: crit(),
        window_days: Some(7),
        description: "Xen PV pagetable fast-path privilege escalation; patch \
                      released 7 days after discovery (§2.2)"
            .into(),
    });

    // --- Synthesized entries completing Table 1. ---
    let mut xen_crit_idx = 0usize;
    let mut kvm_crit_idx = 0usize;
    let mut kvm_window_idx = 0usize;
    // Real endpoints for the KVM window series.
    let mut kvm_named_windows: Vec<(u16, &str, u32)> =
        vec![(2013, "CVE-2013-0311", 8), (2017, "CVE-2017-12188", 180)];

    for &(year, xen_crit, xen_med, kvm_crit, kvm_med, common_crit, common_med) in &TABLE1_COUNTS {
        // Xen criticals (minus named/common already pushed for this year).
        let named_xen_crit = common_crit + u32::from(year == 2016); // VENOM counts for 2015; CVE-2016-6258 for 2016.
        for n in 0..xen_crit.saturating_sub(named_xen_crit) {
            let component = XEN_CRIT_PATTERN[xen_crit_idx % XEN_CRIT_PATTERN.len()];
            xen_crit_idx += 1;
            out.push(Vulnerability {
                id: format!("XSA-SYN-{year}-C{n:02}"),
                year,
                affects: vec![HypervisorId::Xen],
                component,
                cvss: crit(),
                window_days: if n < 2 { Some(30 + n * 30) } else { None },
                description: format!("synthesized Xen critical in {}", component.name()),
            });
        }
        // Xen mediums.
        for n in 0..xen_med - common_med {
            out.push(Vulnerability {
                id: format!("XSA-SYN-{year}-M{n:02}"),
                year,
                affects: vec![HypervisorId::Xen],
                component: if n % 3 == 0 {
                    Component::PvInterface
                } else if n % 3 == 1 {
                    Component::ResourceMgmt
                } else {
                    Component::Qemu
                },
                cvss: med(),
                window_days: None,
                description: "synthesized Xen medium".into(),
            });
        }
        // KVM criticals.
        let named_kvm_crit = common_crit;
        for n in 0..kvm_crit.saturating_sub(named_kvm_crit) {
            let component = KVM_CRIT_PATTERN[kvm_crit_idx % KVM_CRIT_PATTERN.len()];
            kvm_crit_idx += 1;
            let (id, window) = next_kvm_window(
                year,
                &mut kvm_named_windows,
                &mut kvm_window_idx,
                format!("CVE-SYN-{year}-KC{n:02}"),
            );
            out.push(Vulnerability {
                id,
                year,
                affects: vec![HypervisorId::Kvm],
                component,
                cvss: crit(),
                window_days: window,
                description: format!("synthesized KVM critical in {}", component.name()),
            });
        }
        // KVM mediums.
        for n in 0..kvm_med - common_med {
            let (id, window) = next_kvm_window(
                year,
                &mut kvm_named_windows,
                &mut kvm_window_idx,
                format!("CVE-SYN-{year}-KM{n:02}"),
            );
            out.push(Vulnerability {
                id,
                year,
                affects: vec![HypervisorId::Kvm],
                component: if n % 2 == 0 {
                    Component::Ioctl
                } else {
                    Component::HardwareHandling
                },
                cvss: med(),
                window_days: window,
                description: "synthesized KVM medium".into(),
            });
        }
    }

    // --- The CPU-level pair affecting both (§2.1), tracked separately
    // from Table 1's software counts with their 7-month embargo. ---
    for (id, desc) in [
        ("CVE-2017-5753", "Spectre v1: bounds check bypass"),
        ("CVE-2017-5715", "Spectre v2: branch target injection"),
        ("CVE-2017-5754", "Meltdown: rogue data cache load"),
    ] {
        out.push(Vulnerability {
            id: id.into(),
            year: 2018,
            affects: vec![HypervisorId::Xen, HypervisorId::Kvm],
            component: Component::Cpu,
            cvss: CvssV2::parse("AV:L/AC:M/Au:N/C:C/I:N/A:N").expect("valid vector"),
            window_days: Some(216), // 2017-06-01 → 2018-01-03.
            description: desc.into(),
        });
    }

    out
}

/// Hands out the §2.2 KVM window series: the two real endpoints go to
/// their named CVEs in the matching year; the remaining values go to
/// synthesized records in order.
fn next_kvm_window(
    year: u16,
    named: &mut Vec<(u16, &str, u32)>,
    idx: &mut usize,
    synth_id: String,
) -> (String, Option<u32>) {
    if let Some(pos) = named.iter().position(|&(y, _, _)| y == year) {
        let (_, id, w) = named.remove(pos);
        // Consume the matching value from the series so totals stay exact.
        if let Some(p) = KVM_WINDOWS[*idx..].iter().position(|&v| v == w) {
            // Swap-style consumption: advance past used values lazily.
            let _ = p;
        }
        return (id.to_string(), Some(w));
    }
    // 24 windows total; later records have no tracker data.
    let windows_assigned: &[u32] = &KVM_WINDOWS;
    let w = if *idx < windows_assigned.len() {
        let mut v = windows_assigned[*idx];
        // Skip the values reserved for the named CVEs.
        if v == 8 || v == 180 {
            *idx += 1;
            v = if *idx < windows_assigned.len() {
                windows_assigned[*idx]
            } else {
                return (synth_id, None);
            };
        }
        *idx += 1;
        Some(v)
    } else {
        None
    };
    (synth_id, w)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kvm_window_series_statistics() {
        let sum: u32 = KVM_WINDOWS.iter().sum();
        assert_eq!(sum as f64 / 24.0, 71.0, "mean window is 71 days (§2.2)");
        let over_60 = KVM_WINDOWS.iter().filter(|&&w| w > 60).count();
        assert_eq!(over_60, 15, "15/24 = 62.5% above 60 days");
        assert_eq!(*KVM_WINDOWS.iter().max().unwrap(), 180);
        assert_eq!(*KVM_WINDOWS.iter().min().unwrap(), 8);
    }

    #[test]
    fn only_three_common_software_vulnerabilities() {
        let ds = dataset();
        let common: Vec<_> = ds
            .iter()
            .filter(|v| v.is_common() && v.component != Component::Cpu)
            .collect();
        assert_eq!(common.len(), 3);
        let crit: Vec<_> = common
            .iter()
            .filter(|v| v.severity() == Severity::Critical)
            .collect();
        assert_eq!(crit.len(), 1);
        assert_eq!(crit[0].id, "CVE-2015-3456");
        assert_eq!(crit[0].component, Component::Qemu);
    }

    #[test]
    fn named_cves_present() {
        let ds = dataset();
        for id in [
            "CVE-2015-3456",
            "CVE-2015-8104",
            "CVE-2015-5307",
            "CVE-2016-6258",
            "CVE-2013-0311",
            "CVE-2017-12188",
            "CVE-2017-5754",
        ] {
            assert!(ds.iter().any(|v| v.id == id), "{id} missing");
        }
        let w6258 = ds.iter().find(|v| v.id == "CVE-2016-6258").unwrap();
        assert_eq!(w6258.window_days, Some(7));
    }
}
