//! The hypervisor vulnerability study (§2) and transplant decision policy.
//!
//! The paper motivates hypervisor transplant with a study of 7 years
//! (2013–2019) of Xen and KVM vulnerabilities from the NIST NVD: 55
//! critical and 136 medium for Xen, 13 critical and 56 medium for KVM,
//! with only **one** common critical (the QEMU floppy-controller flaw) and
//! two common mediums (CVE-2015-8104 and CVE-2015-5307) — so a safe
//! alternate hypervisor almost always exists.
//!
//! * [`cvss`] — a full CVSS v2 base-score implementation; severity bands
//!   (critical ≥ 7.0, medium ≥ 4.0) are computed, not hard-coded.
//! * [`dataset`] — the vulnerability records. Real identifiers are used
//!   for the pivotal entries (VENOM, the common DoS pair, Spectre and
//!   Meltdown, CVE-2016-6258, ...); the remaining records are synthesized
//!   with per-year counts and component distributions matching Table 1
//!   and §2.1 (a documented substitution for scraping the NVD).
//! * [`analysis`] — regenerates Table 1, the §2.1 component breakdowns
//!   and the §2.2 vulnerability-window statistics.
//! * [`policy`] — given a disclosed vulnerability and a hypervisor pool,
//!   decides whether (and where) to transplant.
//! * [`feed`] — a seeded deterministic disclosure stream over simulated
//!   time, classified by [`feed::AttackSurface`] with CVSS-calibrated
//!   surface-criticality weights.

pub mod analysis;
pub mod cvss;
pub mod dataset;
pub mod feed;
pub mod policy;

pub use cvss::{CvssV2, Severity};
pub use dataset::{Component, HypervisorId, Vulnerability};
pub use feed::{AttackSurface, FeedEvent, SurfaceWeights, VulnFeed};
pub use policy::{decide, decide_with_surface, Decision};
