//! The transplant decision policy (§1's two beneficial cases).
//!
//! When a vulnerability is disclosed against the datacenter's current
//! hypervisor, HyperTP helps if (i) another hypervisor in the pool is not
//! known to be vulnerable to any current flaw, or (ii) an alternate
//! hypervisor can be patched sooner. The paper reserves transplant for
//! *critical* flaws so the number of transplants per year stays low.

use crate::cvss::Severity;
use crate::dataset::{HypervisorId, Vulnerability};
use crate::feed::{AttackSurface, SurfaceWeights};

/// The policy's verdict.
#[derive(Debug, Clone, PartialEq)]
pub enum Decision {
    /// Transplant onto the named safe hypervisor during the window.
    Transplant {
        /// The chosen target.
        target: HypervisorId,
        /// Why the target is considered safe.
        rationale: String,
    },
    /// Stay: the flaw does not affect the current hypervisor.
    NotAffected,
    /// Stay: severity below the transplant threshold — follow the normal
    /// patch cycle.
    BelowThreshold,
    /// No safe alternative exists (e.g. a common flaw like VENOM):
    /// emergency patching is the only option.
    NoSafeTarget,
}

/// Decides the response to `disclosed` given the `current` hypervisor, the
/// candidate `pool`, and every other unpatched vulnerability still open
/// (`open_flaws`).
///
/// Severity is judged through [`SurfaceWeights::uniform`] — every attack
/// surface weighs alike, which reduces exactly to the paper's raw-CVSS
/// policy. [`decide_with_surface`] is the same decision procedure under
/// calibrated weights.
pub fn decide(
    disclosed: &Vulnerability,
    current: HypervisorId,
    pool: &[HypervisorId],
    open_flaws: &[&Vulnerability],
) -> Decision {
    decide_with_surface(
        disclosed,
        current,
        pool,
        open_flaws,
        &SurfaceWeights::uniform(),
    )
}

/// [`decide`] with an explicit surface-criticality weighting: each flaw's
/// CVSS base score is scaled by the weight of its
/// [`AttackSurface`] classification before the severity bands apply, both
/// for the disclosed flaw's transplant threshold and for judging whether
/// an open flaw blocks a candidate. Under
/// [`SurfaceWeights::uniform`] (equal criticality everywhere) every
/// verdict is identical to the unweighted policy — pinned by the
/// regression tests below — while calibrated weights escalate borderline
/// flaws on historically hot surfaces (e.g. hypercall handlers) and relax
/// those on cool ones.
pub fn decide_with_surface(
    disclosed: &Vulnerability,
    current: HypervisorId,
    pool: &[HypervisorId],
    open_flaws: &[&Vulnerability],
    weights: &SurfaceWeights,
) -> Decision {
    let effective = |v: &Vulnerability| -> Severity {
        weights.effective_severity(&v.cvss, AttackSurface::of(v.component))
    };
    if !disclosed.affects(current) {
        return Decision::NotAffected;
    }
    if effective(disclosed) != Severity::Critical {
        return Decision::BelowThreshold;
    }
    // A candidate is safe if neither the disclosed flaw nor any open flaw
    // affects it.
    for &candidate in pool {
        if candidate == current {
            continue;
        }
        if disclosed.affects(candidate) {
            continue;
        }
        if open_flaws
            .iter()
            .any(|f| effective(f) == Severity::Critical && f.affects(candidate))
        {
            continue;
        }
        return Decision::Transplant {
            target: candidate,
            rationale: format!(
                "{:?} is not affected by {} nor by any open critical flaw",
                candidate, disclosed.id
            ),
        };
    }
    Decision::NoSafeTarget
}

/// Expected transplants per year if the policy is applied to a dataset:
/// the number of (year, current-hypervisor) critical disclosures with a
/// safe alternative. Supports the paper's claim that transplants stay
/// rare enough to be practical.
pub fn transplants_per_year(
    ds: &[Vulnerability],
    current: HypervisorId,
    pool: &[HypervisorId],
) -> Vec<(u16, u32)> {
    let mut by_year: std::collections::BTreeMap<u16, u32> = std::collections::BTreeMap::new();
    for v in ds {
        by_year.entry(v.year).or_insert(0);
        if let Decision::Transplant { .. } = decide(v, current, pool, &[]) {
            *by_year.entry(v.year).or_insert(0) += 1;
        }
    }
    by_year.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cvss::CvssV2;
    use crate::dataset::{dataset, Component};

    fn pool() -> Vec<HypervisorId> {
        vec![HypervisorId::Xen, HypervisorId::Kvm]
    }

    fn make(id: &str, affects: Vec<HypervisorId>, vector: &str) -> Vulnerability {
        Vulnerability {
            id: id.into(),
            year: 2019,
            affects,
            component: Component::PvInterface,
            cvss: CvssV2::parse(vector).unwrap(),
            window_days: None,
            description: String::new(),
        }
    }

    #[test]
    fn critical_xen_flaw_transplants_to_kvm() {
        let v = make("X-1", vec![HypervisorId::Xen], "AV:L/AC:L/Au:N/C:C/I:C/A:C");
        match decide(&v, HypervisorId::Xen, &pool(), &[]) {
            Decision::Transplant { target, .. } => assert_eq!(target, HypervisorId::Kvm),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn medium_flaw_stays_on_patch_cycle() {
        let v = make("X-2", vec![HypervisorId::Xen], "AV:L/AC:L/Au:N/C:N/I:N/A:C");
        assert_eq!(
            decide(&v, HypervisorId::Xen, &pool(), &[]),
            Decision::BelowThreshold
        );
    }

    #[test]
    fn unaffected_hypervisor_does_nothing() {
        let v = make("K-1", vec![HypervisorId::Kvm], "AV:L/AC:L/Au:N/C:C/I:C/A:C");
        assert_eq!(
            decide(&v, HypervisorId::Xen, &pool(), &[]),
            Decision::NotAffected
        );
    }

    #[test]
    fn venom_has_no_safe_target() {
        let ds = dataset();
        let venom = ds.iter().find(|v| v.id == "CVE-2015-3456").unwrap();
        assert_eq!(
            decide(venom, HypervisorId::Xen, &pool(), &[]),
            Decision::NoSafeTarget
        );
    }

    #[test]
    fn open_flaw_on_candidate_blocks_it() {
        let disclosed = make("X-3", vec![HypervisorId::Xen], "AV:L/AC:L/Au:N/C:C/I:C/A:C");
        let open = make("K-2", vec![HypervisorId::Kvm], "AV:L/AC:L/Au:N/C:C/I:C/A:C");
        assert_eq!(
            decide(&disclosed, HypervisorId::Xen, &pool(), &[&open]),
            Decision::NoSafeTarget
        );
        // A merely-medium open flaw does not block the candidate.
        let open_med = make("K-3", vec![HypervisorId::Kvm], "AV:L/AC:L/Au:N/C:N/I:N/A:C");
        assert!(matches!(
            decide(&disclosed, HypervisorId::Xen, &pool(), &[&open_med]),
            Decision::Transplant { .. }
        ));
    }

    #[test]
    fn empty_dataset_yields_no_transplants() {
        // The policy over no history is a no-op, not a panic: no years,
        // no transplants.
        assert!(transplants_per_year(&[], HypervisorId::Xen, &pool()).is_empty());
    }

    #[test]
    fn empty_or_self_only_pool_has_no_safe_target() {
        // With no alternative hypervisor (or only the current one), a
        // critical flaw degrades to emergency patching — the policy must
        // say so rather than invent a target.
        let v = make("X-4", vec![HypervisorId::Xen], "AV:L/AC:L/Au:N/C:C/I:C/A:C");
        assert_eq!(
            decide(&v, HypervisorId::Xen, &[], &[]),
            Decision::NoSafeTarget
        );
        assert_eq!(
            decide(&v, HypervisorId::Xen, &[HypervisorId::Xen], &[]),
            Decision::NoSafeTarget
        );
    }

    #[test]
    fn uniform_weights_pin_every_unweighted_verdict() {
        // Equal criticality on every surface must reproduce the raw-CVSS
        // policy verdict for the whole dataset, from either hypervisor,
        // with and without open flaws — `decide` and `decide_with_surface`
        // are the same procedure when no surface outweighs another.
        let ds = dataset();
        let uniform = crate::feed::SurfaceWeights::uniform();
        let open: Vec<&Vulnerability> = ds.iter().take(5).collect();
        for current in [HypervisorId::Xen, HypervisorId::Kvm] {
            for v in &ds {
                assert_eq!(
                    decide(v, current, &pool(), &[]),
                    decide_with_surface(v, current, &pool(), &[], &uniform),
                    "{} from {current:?}",
                    v.id
                );
                assert_eq!(
                    decide(v, current, &pool(), &open),
                    decide_with_surface(v, current, &pool(), &open, &uniform),
                    "{} from {current:?} with open flaws",
                    v.id
                );
            }
        }
    }

    #[test]
    fn calibrated_weights_escalate_hot_surface_mediums() {
        // Calibrate over a history where hypercall flaws score 10.0 and
        // device-emulation flaws 4.9: the hypercall surface weighs well
        // above 1. A 6.8 hypercall flaw — BelowThreshold on raw CVSS —
        // then crosses the critical band and transplants.
        let mk = |component, vector: &str| Vulnerability {
            id: "H".into(),
            year: 2020,
            affects: vec![HypervisorId::Xen],
            component,
            cvss: CvssV2::parse(vector).unwrap(),
            window_days: None,
            description: String::new(),
        };
        let history = vec![
            mk(Component::PvInterface, "AV:N/AC:L/Au:N/C:C/I:C/A:C"),
            mk(Component::PvInterface, "AV:N/AC:L/Au:N/C:C/I:C/A:C"),
            mk(Component::Qemu, "AV:L/AC:L/Au:N/C:N/I:N/A:C"),
            mk(Component::Qemu, "AV:L/AC:L/Au:N/C:N/I:N/A:C"),
        ];
        let weights = crate::feed::SurfaceWeights::calibrated(&history);
        assert!(weights.weight(crate::feed::AttackSurface::Hypercall) > 1.25);
        let borderline = mk(Component::PvInterface, "AV:N/AC:M/Au:N/C:P/I:P/A:P");
        assert_eq!(
            decide(&borderline, HypervisorId::Xen, &pool(), &[]),
            Decision::BelowThreshold,
            "raw CVSS {:.1} sits below the critical band",
            borderline.cvss.base_score()
        );
        assert!(matches!(
            decide_with_surface(&borderline, HypervisorId::Xen, &pool(), &[], &weights),
            Decision::Transplant { .. }
        ));
        // The same weighting can relax an open flaw's blockade: a
        // borderline-critical open flaw on the candidate blocks under
        // uniform weights only if its surface stays hot.
        let cool = mk(Component::Qemu, "AV:N/AC:M/Au:N/C:P/I:P/A:P");
        let mut cool_on_kvm = cool.clone();
        cool_on_kvm.affects = vec![HypervisorId::Kvm];
        let disclosed = mk(Component::PvInterface, "AV:L/AC:L/Au:N/C:C/I:C/A:C");
        assert!(matches!(
            decide_with_surface(
                &disclosed,
                HypervisorId::Xen,
                &pool(),
                &[&cool_on_kvm],
                &weights
            ),
            Decision::Transplant { .. }
        ));
    }

    #[test]
    fn transplant_rate_is_low_but_nonzero() {
        // The §2 takeaway: a Xen shop would transplant for critical Xen
        // flaws (≈8/year on average over 2013–2019), which is rare enough
        // to be operationally viable.
        let ds = dataset();
        let per_year = transplants_per_year(&ds, HypervisorId::Xen, &pool());
        assert_eq!(per_year.len(), 7);
        let total: u32 = per_year.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, 54, "55 Xen criticals minus the 1 common");
    }
}
