//! Criterion bench: the UISR binary codec against the JSON debug codec
//! (the codec-choice ablation — MigrationTP ships these bytes in its
//! downtime window).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hypertp_uisr::{DeviceState, MemoryRegion, MsrEntry, UisrVm, VcpuState};

fn sample_vm(vcpus: u32) -> UisrVm {
    let mut vm = UisrVm::new("bench-vm");
    for i in 0..vcpus {
        let mut v = VcpuState::reset(i);
        v.regs.rip = 0xffff_8000_0000_0000 + i as u64;
        v.msrs = (0..40)
            .map(|k| MsrEntry {
                index: 0xc000_0080 + k,
                data: k as u64,
            })
            .collect();
        vm.vcpus.push(v);
    }
    vm.devices.push(DeviceState::Network {
        mac: [2, 0, 0, 0, 0, 1],
        unplugged: false,
    });
    vm.memory.regions.push(MemoryRegion {
        gfn_start: 0,
        pages: 262_144,
    });
    vm
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("uisr_codec");
    for vcpus in [1u32, 10] {
        let vm = sample_vm(vcpus);
        let bin = hypertp_uisr::encode(&vm);
        let json = hypertp_uisr::codec::to_json(&vm);
        g.throughput(Throughput::Bytes(bin.len() as u64));
        g.bench_with_input(BenchmarkId::new("encode_binary", vcpus), &vm, |b, vm| {
            b.iter(|| hypertp_uisr::encode(vm));
        });
        g.bench_with_input(BenchmarkId::new("decode_binary", vcpus), &bin, |b, bin| {
            b.iter(|| hypertp_uisr::decode(bin).expect("decode"));
        });
        g.bench_with_input(BenchmarkId::new("encode_json", vcpus), &vm, |b, vm| {
            b.iter(|| hypertp_uisr::codec::to_json(vm));
        });
        g.bench_with_input(BenchmarkId::new("decode_json", vcpus), &json, |b, json| {
            b.iter(|| hypertp_uisr::codec::from_json(json).expect("decode"));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
