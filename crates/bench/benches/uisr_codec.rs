//! Bench: the UISR binary codec against the JSON debug codec (the
//! codec-choice ablation — MigrationTP ships these bytes in its downtime
//! window). Also times `encode_into` with a reused buffer against the
//! allocating `encode`.
//!
//! Runs on the in-tree timing harness (`hypertp_bench::harness`) so the
//! workspace builds offline; same group/bench ids as the old Criterion
//! bench.

use hypertp_bench::harness::{self, Group};
use hypertp_uisr::{DeviceState, MemoryRegion, MsrEntry, UisrVm, VcpuState};

fn sample_vm(vcpus: u32) -> UisrVm {
    let mut vm = UisrVm::new("bench-vm");
    for i in 0..vcpus {
        let mut v = VcpuState::reset(i);
        v.regs.rip = 0xffff_8000_0000_0000 + i as u64;
        v.msrs = (0..40)
            .map(|k| MsrEntry {
                index: 0xc000_0080 + k,
                data: k as u64,
            })
            .collect();
        vm.vcpus.push(v);
    }
    vm.devices.push(DeviceState::Network {
        mac: [2, 0, 0, 0, 0, 1],
        unplugged: false,
    });
    vm.memory.regions.push(MemoryRegion {
        gfn_start: 0,
        pages: 262_144,
    });
    vm
}

fn main() {
    harness::header();
    let mut g = Group::new("uisr_codec");
    for vcpus in [1u32, 10] {
        let vm = sample_vm(vcpus);
        let bin = hypertp_uisr::encode(&vm);
        let json = hypertp_uisr::codec::to_json(&vm);
        println!(
            "# {vcpus} vcpus: binary {} bytes, json {} bytes",
            bin.len(),
            json.len()
        );
        g.bench(format!("encode_binary/{vcpus}"), || {
            std::hint::black_box(hypertp_uisr::encode(&vm));
        });
        let mut reuse = Vec::new();
        g.bench(format!("encode_binary_into/{vcpus}"), || {
            hypertp_uisr::codec::encode_into(&vm, &mut reuse);
            std::hint::black_box(reuse.len());
        });
        g.bench(format!("decode_binary/{vcpus}"), || {
            std::hint::black_box(hypertp_uisr::decode(&bin).expect("decode"));
        });
        g.bench(format!("encode_json/{vcpus}"), || {
            std::hint::black_box(hypertp_uisr::codec::to_json(&vm));
        });
        g.bench(format!("decode_json/{vcpus}"), || {
            std::hint::black_box(hypertp_uisr::codec::from_json(&json).expect("decode"));
        });
    }
    g.finish();
}
