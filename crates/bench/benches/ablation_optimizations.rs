//! Bench: framework cost of InPlaceTP under each §4.2.5 optimization
//! configuration (the *simulated-time* ablation lives in the
//! `exp_ablation` binary; this measures the engine itself).
//!
//! Runs on the in-tree timing harness (`hypertp_bench::harness`) so the
//! workspace builds offline; same group/bench ids as the old Criterion
//! bench.

use hypertp_bench::harness::{self, Group};
use hypertp_core::{HypervisorKind, InPlaceTransplant, Optimizations, VmConfig};
use hypertp_machine::{Machine, MachineSpec};

fn run(opts: Optimizations) {
    let registry = hypertp_bench::registry();
    let mut machine = Machine::new(MachineSpec::m1());
    let mut hv = registry
        .create(HypervisorKind::Xen, &mut machine)
        .expect("boot");
    for i in 0..4 {
        hv.create_vm(&mut machine, &VmConfig::small(format!("vm{i}")))
            .expect("create");
    }
    let engine = InPlaceTransplant::new(&registry).with_optimizations(opts);
    let out = engine
        .run(&mut machine, hv, HypervisorKind::Kvm)
        .expect("transplant");
    std::hint::black_box(out);
}

fn main() {
    harness::header();
    let mut g = Group::new("ablation_optimizations");
    g.sample_size(10);
    let configs: [(&str, Optimizations); 4] = [
        ("all", Optimizations::default()),
        (
            "no_prepare",
            Optimizations {
                prepare_before_pause: false,
                ..Optimizations::default()
            },
        ),
        (
            "no_parallel",
            Optimizations {
                parallel: false,
                ..Optimizations::default()
            },
        ),
        ("none", Optimizations::none()),
    ];
    for (name, opts) in configs {
        g.bench(name, || run(opts));
    }
    g.finish();
}
