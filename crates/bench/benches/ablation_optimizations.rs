//! Criterion bench: framework cost of InPlaceTP under each §4.2.5
//! optimization configuration (the *simulated-time* ablation lives in the
//! `exp_ablation` binary; this measures the engine itself).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hypertp_core::{HypervisorKind, InPlaceTransplant, Optimizations, VmConfig};
use hypertp_machine::{Machine, MachineSpec};

fn run(opts: Optimizations) {
    let registry = hypertp_bench::registry();
    let mut machine = Machine::new(MachineSpec::m1());
    let mut hv = registry
        .create(HypervisorKind::Xen, &mut machine)
        .expect("boot");
    for i in 0..4 {
        hv.create_vm(&mut machine, &VmConfig::small(format!("vm{i}")))
            .expect("create");
    }
    let engine = InPlaceTransplant::new(&registry).with_optimizations(opts);
    let out = engine
        .run(&mut machine, hv, HypervisorKind::Kvm)
        .expect("transplant");
    std::hint::black_box(out);
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_optimizations");
    g.sample_size(10);
    let configs: [(&str, Optimizations); 4] = [
        ("all", Optimizations::default()),
        (
            "no_prepare",
            Optimizations {
                prepare_before_pause: false,
                ..Optimizations::default()
            },
        ),
        (
            "no_parallel",
            Optimizations {
                parallel: false,
                ..Optimizations::default()
            },
        ),
        ("none", Optimizations::none()),
    ];
    for (name, opts) in configs {
        g.bench_with_input(BenchmarkId::from_parameter(name), &opts, |b, &opts| {
            b.iter(|| run(opts));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
