//! Bench: PRAM encode and parse throughput, with and without huge pages
//! (the 2 MiB-page optimization's 512× entry-count effect).
//!
//! Runs on the in-tree timing harness (`hypertp_bench::harness`) so the
//! workspace builds offline; same group/bench ids as the old Criterion
//! bench.

use hypertp_bench::harness::{self, Group};
use hypertp_machine::{Gfn, PageOrder, PhysicalMemory};
use hypertp_pram::{PramBuilder, PramImage};

fn build_map(
    ram: &mut PhysicalMemory,
    gib: u64,
    huge: bool,
) -> Vec<(Gfn, hypertp_machine::Extent)> {
    let order = if huge { PageOrder(9) } else { PageOrder(0) };
    let chunks = gib * (1 << 30) / 4096 / order.pages();
    (0..chunks)
        .map(|i| (Gfn(i * order.pages()), ram.alloc(order).expect("capacity")))
        .collect()
}

fn main() {
    harness::header();
    let mut g = Group::new("pram");
    g.sample_size(10);
    for (label, gib, huge) in [
        ("1GiB_huge", 1u64, true),
        ("1GiB_4k", 1, false),
        ("12GiB_huge", 12, true),
    ] {
        g.bench_with_setup(
            format!("encode/{label}"),
            || {
                let mut ram = PhysicalMemory::with_gib(gib + 1);
                let map = build_map(&mut ram, gib, huge);
                (ram, map)
            },
            |(mut ram, map)| {
                let mut builder = PramBuilder::new();
                builder.add_file("vm", 0, map);
                std::hint::black_box(builder.write(&mut ram).expect("encode"));
            },
        );
        let mut ram = PhysicalMemory::with_gib(gib + 1);
        let map = build_map(&mut ram, gib, huge);
        let mut builder = PramBuilder::new();
        builder.add_file("vm", 0, map);
        let handle = builder.write(&mut ram).expect("encode");
        g.bench(format!("parse/{label}"), || {
            std::hint::black_box(PramImage::parse(&ram, handle.pram_ptr).expect("parse"));
        });
    }
    g.finish();
}
