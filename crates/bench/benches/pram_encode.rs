//! Criterion bench: PRAM encode and parse throughput, with and without
//! huge pages (the 2 MiB-page optimization's 512× entry-count effect).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hypertp_machine::{Gfn, PageOrder, PhysicalMemory};
use hypertp_pram::{PramBuilder, PramImage};

fn build_map(
    ram: &mut PhysicalMemory,
    gib: u64,
    huge: bool,
) -> Vec<(Gfn, hypertp_machine::Extent)> {
    let order = if huge { PageOrder(9) } else { PageOrder(0) };
    let chunks = gib * (1 << 30) / 4096 / order.pages();
    (0..chunks)
        .map(|i| (Gfn(i * order.pages()), ram.alloc(order).expect("capacity")))
        .collect()
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("pram");
    for (label, gib, huge) in [
        ("1GiB_huge", 1u64, true),
        ("1GiB_4k", 1, false),
        ("12GiB_huge", 12, true),
    ] {
        g.bench_with_input(BenchmarkId::new("encode", label), &(), |b, _| {
            b.iter_batched(
                || {
                    let mut ram = PhysicalMemory::with_gib(gib + 1);
                    let map = build_map(&mut ram, gib, huge);
                    (ram, map)
                },
                |(mut ram, map)| {
                    let mut builder = PramBuilder::new();
                    builder.add_file("vm", 0, map);
                    builder.write(&mut ram).expect("encode")
                },
                criterion::BatchSize::LargeInput,
            );
        });
        g.bench_with_input(BenchmarkId::new("parse", label), &(), |b, _| {
            let mut ram = PhysicalMemory::with_gib(gib + 1);
            let map = build_map(&mut ram, gib, huge);
            let mut builder = PramBuilder::new();
            builder.add_file("vm", 0, map);
            let handle = builder.write(&mut ram).expect("encode");
            b.iter(|| PramImage::parse(&ram, handle.pram_ptr).expect("parse"));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
