//! Criterion bench: wall-clock cost of a full InPlaceTP transplant in the
//! framework (the Fig. 6 scenario), per direction and per VM count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hypertp_core::{HypervisorKind, InPlaceTransplant, VmConfig};
use hypertp_machine::{Machine, MachineSpec};

fn transplant(n_vms: u32, source: HypervisorKind, target: HypervisorKind) {
    let registry = hypertp_bench::registry();
    let mut machine = Machine::new(MachineSpec::m1());
    let mut hv = registry.create(source, &mut machine).expect("boot");
    for i in 0..n_vms {
        hv.create_vm(&mut machine, &VmConfig::small(format!("vm{i}")))
            .expect("create");
    }
    let engine = InPlaceTransplant::new(&registry);
    let (hv, report) = engine.run(&mut machine, hv, target).expect("transplant");
    assert_eq!(report.vm_count as u32, n_vms);
    std::hint::black_box(hv);
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("inplace_transplant");
    g.sample_size(10);
    for n in [1u32, 4, 12] {
        g.bench_with_input(BenchmarkId::new("xen_to_kvm", n), &n, |b, &n| {
            b.iter(|| transplant(n, HypervisorKind::Xen, HypervisorKind::Kvm));
        });
    }
    g.bench_with_input(BenchmarkId::new("kvm_to_xen", 1), &1u32, |b, &n| {
        b.iter(|| transplant(n, HypervisorKind::Kvm, HypervisorKind::Xen));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
