//! Bench: wall-clock cost of a full InPlaceTP transplant in the
//! framework (the Fig. 6 scenario), per direction and per VM count.
//!
//! Runs on the in-tree timing harness (`hypertp_bench::harness`) so the
//! workspace builds offline; same group/bench ids as the old Criterion
//! bench.

use hypertp_bench::harness::{self, Group};
use hypertp_core::{HypervisorKind, InPlaceTransplant, VmConfig};
use hypertp_machine::{Machine, MachineSpec};

fn transplant(n_vms: u32, source: HypervisorKind, target: HypervisorKind) {
    let registry = hypertp_bench::registry();
    let mut machine = Machine::new(MachineSpec::m1());
    let mut hv = registry.create(source, &mut machine).expect("boot");
    for i in 0..n_vms {
        hv.create_vm(&mut machine, &VmConfig::small(format!("vm{i}")))
            .expect("create");
    }
    let engine = InPlaceTransplant::new(&registry);
    let (hv, report) = engine.run(&mut machine, hv, target).expect("transplant");
    assert_eq!(report.vm_count as u32, n_vms);
    std::hint::black_box(hv);
}

fn main() {
    harness::header();
    let mut g = Group::new("inplace_transplant");
    g.sample_size(10);
    for n in [1u32, 4, 12] {
        g.bench(format!("xen_to_kvm/{n}"), || {
            transplant(n, HypervisorKind::Xen, HypervisorKind::Kvm)
        });
    }
    g.bench("kvm_to_xen/1", || {
        transplant(1, HypervisorKind::Kvm, HypervisorKind::Xen)
    });
    g.finish();
}
