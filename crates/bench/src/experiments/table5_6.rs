//! Tables 5 and 6: SPECrate 2017 and Darknet impact.

use hypertp_core::{HypervisorKind, Optimizations};
use hypertp_machine::MachineSpec;
use hypertp_sim::SimDuration;
use hypertp_workloads::darknet::{train, TrainingDisruption};
use hypertp_workloads::spec;
use hypertp_workloads::WorkloadProfile;

use super::common::run_inplace;
use crate::table;

/// The SPEC/Darknet VM (2 vCPU / 8 GB on M1, §5.3).
fn measured_inplace_downtime() -> SimDuration {
    let r = run_inplace(
        MachineSpec::m1(),
        HypervisorKind::Xen,
        HypervisorKind::Kvm,
        1,
        2,
        8,
        Optimizations::default(),
    );
    r.downtime()
}

/// Table 5: SPECrate 2017.
pub fn table5() -> String {
    let inplace_downtime = measured_inplace_downtime();
    // CPU-bound guests see the migration's CPU-side interference plus the
    // sub-second downtime.
    let migration_overhead = SimDuration::from_millis(4960);
    let rows = spec::table5(inplace_downtime, migration_overhead, 2017);
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                format!("{:.2}", r.kvm_s),
                format!("{:.2}", r.xen_s),
                format!("{:.2}", r.inplace_s),
                format!("{:.2}", r.inplace_deg_pct),
                format!("{:.2}", r.migration_s),
                format!("{:.2}", r.migration_deg_pct),
            ]
        })
        .collect();
    let max_in = rows.iter().map(|r| r.inplace_deg_pct).fold(0.0, f64::max);
    let max_mi = rows.iter().map(|r| r.migration_deg_pct).fold(0.0, f64::max);
    let mut out = table::render(
        "Table 5 — SPECrate 2017 impact (seconds / degradation %)",
        &[
            "benchmark",
            "KVM",
            "Xen",
            "InPlaceTP",
            "Deg(%)",
            "MigrationTP",
            "Deg(%)",
        ],
        &body,
    );
    out.push_str(&format!(
        "max degradation: InPlaceTP {max_in:.2}% (paper 4.19%), MigrationTP {max_mi:.2}% \
         (paper 4.81%); InPlaceTP downtime used: {:.2} s\n",
        inplace_downtime.as_secs_f64()
    ));
    out
}

/// Table 6: Darknet training iterations.
pub fn table6() -> String {
    let p = WorkloadProfile::darknet();
    let inplace_downtime = measured_inplace_downtime();
    let copy_secs = 74.0; // 8 GB over 1 Gbps.
    let default = train(&p, TrainingDisruption::None, 6);
    let xen_mig = train(
        &p,
        TrainingDisruption::Migration {
            downtime: SimDuration::from_millis(134),
            copy_secs,
        },
        6,
    );
    let inplace = train(
        &p,
        TrainingDisruption::InPlace {
            downtime: inplace_downtime,
        },
        6,
    );
    let migration = train(
        &p,
        TrainingDisruption::Migration {
            downtime: SimDuration::from_millis(5),
            copy_secs,
        },
        6,
    );
    let rows = vec![
        vec![
            "mean iteration (s)".to_string(),
            format!("{:.3}", default.mean()),
            format!("{:.3}", xen_mig.mean()),
            format!("{:.3}", inplace.mean()),
            format!("{:.3}", migration.mean()),
        ],
        vec![
            "longest iteration (s)".to_string(),
            format!("{:.3}", default.longest()),
            format!("{:.3}", xen_mig.longest()),
            format!("{:.3}", inplace.longest()),
            format!("{:.3}", migration.longest()),
        ],
    ];
    let mut out = table::render(
        "Table 6 — Darknet training iterations",
        &[
            "metric",
            "Default",
            "Xen migration",
            "InPlaceTP",
            "MigrationTP",
        ],
        &rows,
    );
    out.push_str("paper longest: 2.044 / 2.672 / 4.970 / 2.244 s\n");
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn table5_has_23_benchmarks() {
        let out = super::table5();
        assert!(out.contains("deepsjeng"));
        assert!(out.contains("max degradation"));
    }

    #[test]
    fn table6_orders_match_paper() {
        let out = super::table6();
        assert!(out.contains("longest iteration"));
    }
}
