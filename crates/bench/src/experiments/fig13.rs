//! Fig. 13: cluster upgrade — number of migrations and total-time gain as
//! a function of the InPlaceTP-compatible VM fraction (10 hosts × 10 VMs).

use hypertp_cluster::exec::{execute, ExecConfig};
use hypertp_cluster::{plan_upgrade, Cluster};

use crate::table;

/// Runs the sweep.
pub fn run() -> String {
    let mut rows = Vec::new();
    let baseline = {
        let c = Cluster::paper_testbed(0, 42);
        let plan = plan_upgrade(&c, 2).expect("plan");
        execute(&c, &plan, &ExecConfig::default())
    };
    for pct in [0u32, 20, 40, 60, 80] {
        let c = Cluster::paper_testbed(pct, 42);
        let plan = plan_upgrade(&c, 2).expect("plan");
        let r = execute(&c, &plan, &ExecConfig::default());
        rows.push(vec![
            format!("{pct}%"),
            r.migrations.to_string(),
            format!("{:.1}", r.total.as_secs_f64() / 60.0),
            format!("{:.1}", r.time_gain_pct(&baseline)),
        ]);
    }
    let mut out = table::render(
        "Fig. 13 — cluster upgrade vs InPlaceTP-compatible fraction",
        &["compatible", "migrations", "total (min)", "time gain (%)"],
        &rows,
    );
    out.push_str(
        "paper: 0% -> 154 migrations (~19 min); 20% -> 109 (-17%); 60% -> -68%; \
         80% -> 25 migrations (~3 min 54 s, -80%)\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn sweep_has_five_points() {
        let out = super::run();
        assert!(out.contains("80%"));
        assert!(out.contains("migrations"));
    }
}
