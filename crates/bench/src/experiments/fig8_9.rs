//! Figs. 8 and 9: MigrationTP downtime and total migration time versus
//! the Xen→Xen live-migration baseline, swept over vCPUs, memory size and
//! number of VMs (M1 pair over 1 Gbps).

use hypertp_core::HypervisorKind;
use hypertp_machine::MachineSpec;
use hypertp_sim::stats::BoxPlot;
use hypertp_sim::WorkerPool;

use super::common::{ms2, run_migration, run_migration_many, s2};
use crate::table;

/// Idle-VM dirty rate used for the sweeps (§5.2 uses idle VMs).
const IDLE_RATE: f64 = 10.0;

/// The single-VM sweep grid shared by Figs. 8 and 9: (label, vcpus, mem).
fn single_vm_points() -> Vec<(String, u32, u64)> {
    let mut points = Vec::new();
    for vcpus in [1u32, 2, 4, 6, 8, 10] {
        points.push((format!("vcpus={vcpus}"), vcpus, 1));
    }
    for mem in [2u64, 4, 6, 8, 10, 12] {
        points.push((format!("mem={mem}GB"), 1, mem));
    }
    points
}

/// Fig. 8: downtime (ms).
///
/// Each sweep point's baseline/HyperTP migration pair runs on its own
/// worker of the pool (every point boots fresh machine pairs); row order
/// is the sweep order for any worker count.
pub fn fig8() -> String {
    let pool = WorkerPool::from_env();
    let mut out = String::new();
    let rows = pool
        .map(single_vm_points(), |(label, vcpus, mem)| {
            let tp = run_migration(
                MachineSpec::m1(),
                HypervisorKind::Kvm,
                vcpus,
                mem,
                IDLE_RATE,
            );
            let xen = run_migration(
                MachineSpec::m1(),
                HypervisorKind::Xen,
                vcpus,
                mem,
                IDLE_RATE,
            );
            vec![label, ms2(xen.downtime), ms2(tp.downtime)]
        })
        .results;
    out.push_str(&table::render(
        "Fig. 8 — migration downtime (ms), Xen baseline vs MigrationTP",
        &["point", "Xen downtime", "HyperTP downtime"],
        &rows,
    ));

    // Multi-VM: boxplots of per-VM downtime (Xen's sequential receive
    // spreads; kvmtool stays constant).
    let bp = |rs: &[hypertp_migrate::MigrationReport]| {
        let v: Vec<f64> = rs.iter().map(|r| r.downtime.as_secs_f64()).collect();
        let b = BoxPlot::of(&v).expect("non-empty");
        format!("{:.2}/{:.2}/{:.2}", b.min, b.median, b.max)
    };
    let rows = pool
        .map(vec![2u32, 4, 6, 8, 10, 12], |n| {
            let tp = run_migration_many(MachineSpec::m1(), HypervisorKind::Kvm, n, 1, IDLE_RATE);
            let xen = run_migration_many(MachineSpec::m1(), HypervisorKind::Xen, n, 1, IDLE_RATE);
            vec![format!("vms={n}"), bp(&xen), bp(&tp)]
        })
        .results;
    out.push_str(&table::render(
        "Fig. 8 (cont.) — multi-VM downtime seconds (min/median/max)",
        &["point", "Xen", "HyperTP"],
        &rows,
    ));
    out
}

/// Fig. 9: total migration time (s). Pooled like [`fig8`].
pub fn fig9() -> String {
    let pool = WorkerPool::from_env();
    let rows = pool
        .map(single_vm_points(), |(label, vcpus, mem)| {
            let tp = run_migration(
                MachineSpec::m1(),
                HypervisorKind::Kvm,
                vcpus,
                mem,
                IDLE_RATE,
            );
            let xen = run_migration(
                MachineSpec::m1(),
                HypervisorKind::Xen,
                vcpus,
                mem,
                IDLE_RATE,
            );
            vec![label, s2(xen.total), s2(tp.total)]
        })
        .results;
    let mut out = table::render(
        "Fig. 9 — total migration time (s), Xen baseline vs MigrationTP",
        &["point", "Xen", "HyperTP"],
        &rows,
    );
    let span = |rs: &[hypertp_migrate::MigrationReport]| {
        let v: Vec<f64> = rs.iter().map(|r| r.total.as_secs_f64()).collect();
        let b = BoxPlot::of(&v).expect("non-empty");
        format!("{:.1}/{:.1}/{:.1}", b.min, b.median, b.max)
    };
    let rows = pool
        .map(vec![2u32, 4, 6, 8, 10, 12], |n| {
            let tp = run_migration_many(MachineSpec::m1(), HypervisorKind::Kvm, n, 1, IDLE_RATE);
            let xen = run_migration_many(MachineSpec::m1(), HypervisorKind::Xen, n, 1, IDLE_RATE);
            vec![format!("vms={n}"), span(&xen), span(&tp)]
        })
        .results;
    out.push_str(&table::render(
        "Fig. 9 (cont.) — multi-VM per-VM completion seconds (min/median/max)",
        &["point", "Xen", "HyperTP"],
        &rows,
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    #[ignore = "runs the full migration sweep; use `--ignored` or the fig8 binary"]
    fn fig8_shows_downtime_gap() {
        let out = super::fig8();
        assert!(out.contains("vcpus=1"));
        assert!(out.contains("vms=12"));
    }
}
