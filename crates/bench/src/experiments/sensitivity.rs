//! Sensitivity studies beyond the paper's sweeps: how MigrationTP reacts
//! to guest write intensity, and how the cluster upgrade reacts to the
//! operator's migration-concurrency cap.

use hypertp_cluster::exec::{execute, ExecConfig};
use hypertp_cluster::{plan_upgrade, Cluster};
use hypertp_core::HypervisorKind;
use hypertp_machine::MachineSpec;

use super::common::{ms2, run_migration, s2};
use crate::table;

/// MigrationTP vs dirty rate: convergence rounds, total time, downtime,
/// bytes amplification (1 GB VM over 1 Gbps).
pub fn dirty_rate() -> String {
    let mut rows = Vec::new();
    for rate in [0.0, 100.0, 1_000.0, 5_000.0, 10_000.0, 20_000.0, 50_000.0] {
        let r = run_migration(MachineSpec::m1(), HypervisorKind::Kvm, 1, 1, rate);
        rows.push(vec![
            format!("{rate}"),
            r.rounds.len().to_string(),
            s2(r.total),
            ms2(r.downtime),
            format!("{:.2}", r.bytes_sent as f64 / (1u64 << 30) as f64),
        ]);
    }
    let mut out = table::render(
        "Sensitivity — MigrationTP vs guest dirty rate (1 GB VM, 1 Gbps)",
        &[
            "dirty pages/s",
            "rounds",
            "total (s)",
            "downtime (ms)",
            "GiB sent",
        ],
        &rows,
    );
    out.push_str(
        "takeaway: pre-copy amplifies traffic and rounds with write intensity; \
         downtime stays bounded by the stop threshold until the round cap forces \
         a larger residual set\n",
    );
    out
}

/// Cluster upgrade time vs the operator's concurrent-migration cap.
pub fn migration_concurrency() -> String {
    let cluster = Cluster::paper_testbed(0, 42);
    let plan = plan_upgrade(&cluster, 2).expect("plan");
    let mut rows = Vec::new();
    for slots in [1usize, 2, 4, 8] {
        let r = execute(
            &cluster,
            &plan,
            &ExecConfig {
                max_concurrent_migrations: slots,
                ..ExecConfig::default()
            },
        );
        rows.push(vec![
            slots.to_string(),
            r.migrations.to_string(),
            format!("{:.1}", r.total.as_secs_f64() / 60.0),
        ]);
    }
    let mut out = table::render(
        "Sensitivity — all-migration cluster upgrade vs concurrency cap",
        &["concurrent migrations", "migrations", "total (min)"],
        &rows,
    );
    out.push_str(
        "takeaway: concurrency overlaps orchestration overhead but shares fabric \
         bandwidth, so the all-migration path cannot approach InPlaceTP's total\n",
    );
    out
}

/// Both studies.
pub fn run() -> String {
    let mut out = dirty_rate();
    out.push('\n');
    out.push_str(&migration_concurrency());
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn concurrency_table_renders() {
        let out = super::migration_concurrency();
        assert!(out.contains("concurrent migrations"));
    }
}
