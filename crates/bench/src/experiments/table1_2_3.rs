//! Tables 1–3: the vulnerability study, the state mapping, and the
//! experimental environment.

use hypertp_machine::MachineSpec;
use hypertp_vulndb::analysis;
use hypertp_vulndb::dataset::dataset;

use crate::table;

/// Table 1: vulnerabilities per year.
pub fn table1() -> String {
    let ds = dataset();
    let rows = analysis::table1(&ds);
    let mut body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.year.to_string(),
                r.xen_crit.to_string(),
                r.xen_med.to_string(),
                r.kvm_crit.to_string(),
                r.kvm_med.to_string(),
                r.common_crit.to_string(),
                r.common_med.to_string(),
            ]
        })
        .collect();
    let t = analysis::totals(&rows);
    body.push(vec![
        "Total".into(),
        t.0.to_string(),
        t.1.to_string(),
        t.2.to_string(),
        t.3.to_string(),
        t.4.to_string(),
        t.5.to_string(),
    ]);
    let mut out = table::render(
        "Table 1 — critical and medium vulnerabilities per year",
        &[
            "year",
            "Xen crit",
            "Xen med",
            "KVM crit",
            "KVM med",
            "common crit",
            "common med",
        ],
        &body,
    );
    if let Some(w) = analysis::window_stats(&ds, hypertp_vulndb::HypervisorId::Kvm) {
        out.push_str(&format!(
            "KVM windows (§2.2): n={}, mean {:.0} days, {:.0}% over 60 days, \
             max {} ({} days), min {} ({} days)\n",
            w.n,
            w.mean_days,
            w.frac_over_60 * 100.0,
            w.max.0,
            w.max.1,
            w.min.0,
            w.min.1
        ));
    }
    out
}

/// Table 2: the Xen–KVM state mapping.
pub fn table2() -> String {
    let rows: Vec<Vec<String>> = hypertp_uisr::state_mapping()
        .iter()
        .map(|r| {
            vec![
                r.xen_state.to_string(),
                r.uisr.to_string(),
                r.kvm_state.to_string(),
            ]
        })
        .collect();
    table::render(
        "Table 2 — Xen-KVM VM state mapping",
        &["Xen HVM state", "UISR", "KVM"],
        &rows,
    )
}

/// Table 3: the experimental environment.
pub fn table3() -> String {
    let rows: Vec<Vec<String>> = [
        MachineSpec::m1(),
        MachineSpec::m2(),
        MachineSpec::cluster_node(),
    ]
    .iter()
    .map(|s| {
        vec![
            s.name.clone(),
            s.cpu_model.clone(),
            format!("{}c/{}t @{:.1} GHz", s.cores, s.threads, s.freq_ghz),
            format!("{} GB", s.ram_gb),
            format!("{} Gbps", s.nic_gbps),
        ]
    })
    .collect();
    let mut out = table::render(
        "Table 3 — experimental machines",
        &["name", "CPU", "topology", "RAM", "NIC"],
        &rows,
    );
    out.push_str(
        "Benchmarks: SPECrate 2017 Int/FP (run time), MySQL+Sysbench (QPS, latency),\n\
         Redis+redis-benchmark (QPS), Darknet/MNIST (iteration time)\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn tables_render() {
        assert!(super::table1().contains("2015"));
        assert!(super::table2().contains("LAPIC_REGS"));
        assert!(super::table3().contains("M2"));
    }
}
