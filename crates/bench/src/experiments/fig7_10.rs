//! Figs. 7 and 10: InPlaceTP scalability sweeps (vCPUs, memory size,
//! number of VMs) on M1 and M2, for both transplant directions.

use hypertp_core::{HypervisorKind, Optimizations};
use hypertp_machine::MachineSpec;
use hypertp_sim::WorkerPool;

use super::common::{run_inplace, s2};
use crate::table;

fn sweep(source: HypervisorKind, target: HypervisorKind) -> String {
    // Every sweep point boots its own machine and hypervisor pair, so the
    // whole grid fans out over the worker pool; `map` returns rows in
    // sweep order regardless of worker count, keeping the tables stable.
    let pool = WorkerPool::from_env();
    let mut out = String::new();
    for spec in [MachineSpec::m1(), MachineSpec::m2()] {
        let mut points: Vec<(String, u32, u32, u64)> = Vec::new(); // (label, vms, vcpus, mem)
        for vcpus in [1u32, 2, 4, 6, 8, 10] {
            points.push((format!("vcpus={vcpus}"), 1, vcpus, 1));
        }
        for mem in [2u64, 4, 6, 8, 10, 12] {
            points.push((format!("mem={mem}GB"), 1, 1, mem));
        }
        for n in [2u32, 4, 6, 8, 10, 12] {
            points.push((format!("vms={n}"), n, 1, 1));
        }
        let spec_ref = &spec;
        let rows = pool
            .map(points, |(label, n_vms, vcpus, mem)| {
                let r = run_inplace(
                    spec_ref.clone(),
                    source,
                    target,
                    n_vms,
                    vcpus,
                    mem,
                    Optimizations::default(),
                );
                row(label, &r)
            })
            .results;
        out.push_str(&table::render(
            &format!(
                "InPlaceTP scalability {source}→{target} on {} (seconds)",
                spec.name
            ),
            &[
                "point",
                "PRAM",
                "Translation",
                "Reboot",
                "Restoration",
                "downtime",
            ],
            &rows,
        ));
        out.push('\n');
    }
    out
}

fn row(point: String, r: &hypertp_core::InPlaceReport) -> Vec<String> {
    vec![
        point,
        s2(r.pram),
        s2(r.translation),
        s2(r.reboot),
        s2(r.restoration),
        s2(r.downtime()),
    ]
}

/// Fig. 7: Xen→KVM.
pub fn fig7() -> String {
    sweep(HypervisorKind::Xen, HypervisorKind::Kvm)
}

/// Fig. 10: KVM→Xen.
pub fn fig10() -> String {
    sweep(HypervisorKind::Kvm, HypervisorKind::Xen)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "runs the full 36-transplant sweep; use `--ignored` or the fig7 binary"]
    fn fig7_has_all_sweep_points() {
        let out = fig7();
        for p in ["vcpus=10", "mem=12GB", "vms=12"] {
            assert_eq!(out.matches(p).count(), 2, "{p} on both machines");
        }
    }
}
