//! One module per paper artifact (table or figure).

pub mod ablation;
pub mod common;
pub mod fig11_12;
pub mod fig13;
pub mod fig14;
pub mod fig6;
pub mod fig7_10;
pub mod fig8_9;
pub mod sensitivity;
pub mod table1_2_3;
pub mod table4;
pub mod table5_6;

/// Runs every experiment in paper order, returning the combined output.
pub fn run_all() -> String {
    let mut out = String::new();
    for (name, f) in all() {
        out.push_str(&format!("\n######## {name} ########\n"));
        out.push_str(&f());
    }
    out
}

/// An experiment entry point.
pub type Runner = fn() -> String;

/// The experiment registry: (id, runner) in paper order.
pub fn all() -> Vec<(&'static str, Runner)> {
    vec![
        ("table1", table1_2_3::table1 as Runner),
        ("table2", table1_2_3::table2),
        ("table3", table1_2_3::table3),
        ("fig6", fig6::run),
        ("table4", table4::run),
        ("fig7", fig7_10::fig7),
        ("fig8", fig8_9::fig8),
        ("fig9", fig8_9::fig9),
        ("fig10", fig7_10::fig10),
        ("fig11", fig11_12::fig11),
        ("fig12", fig11_12::fig12),
        ("table5", table5_6::table5),
        ("table6", table5_6::table6),
        ("fig13", fig13::run),
        ("fig14", fig14::run),
        ("ablation", ablation::run),
        ("sensitivity", sensitivity::run),
    ]
}
