//! Fig. 6: InPlaceTP time breakdown, Xen→KVM, one 1 vCPU / 1 GB idle VM,
//! on M1 and M2.

use hypertp_core::{HypervisorKind, Optimizations};
use hypertp_machine::MachineSpec;

use super::common::{run_inplace, s2};
use crate::table;

/// Paper reference values (seconds): (machine, pram, translation, reboot,
/// restoration, downtime, network-inclusive downtime).
const PAPER: [(&str, f64, f64, f64, f64, f64, f64); 2] = [
    ("M1", 0.45, 0.08, 1.52, 0.12, 1.70, 8.1),
    ("M2", 0.50, 0.24, 2.40, 0.34, 3.01, 5.9),
];

/// Runs the experiment and renders the breakdown table.
pub fn run() -> String {
    let mut rows = Vec::new();
    for (spec, paper) in [(MachineSpec::m1(), PAPER[0]), (MachineSpec::m2(), PAPER[1])] {
        let name = spec.name.clone();
        let r = run_inplace(
            spec,
            HypervisorKind::Xen,
            HypervisorKind::Kvm,
            1,
            1,
            1,
            Optimizations::default(),
        );
        rows.push(vec![
            name,
            s2(r.pram),
            s2(r.translation),
            s2(r.reboot),
            s2(r.restoration),
            s2(r.downtime()),
            s2(r.downtime_with_network()),
            format!(
                "{:.2}/{:.2}/{:.2}/{:.2}/{:.2}/{:.1}",
                paper.1, paper.2, paper.3, paper.4, paper.5, paper.6
            ),
        ]);
    }
    table::render(
        "Fig. 6 — InPlaceTP time breakdown (Xen→KVM, 1 vCPU / 1 GB, seconds)",
        &[
            "machine",
            "PRAM",
            "Translation",
            "Reboot",
            "Restoration",
            "downtime",
            "w/ network",
            "paper (P/T/R/Re/down/net)",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn output_contains_both_machines() {
        let out = super::run();
        assert!(out.contains("M1"));
        assert!(out.contains("M2"));
        assert!(out.contains("Reboot"));
    }
}
