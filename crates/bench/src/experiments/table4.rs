//! Table 4: MigrationTP vs Xen→Xen live migration (1 vCPU / 1 GB over
//! 1 Gbps).

use hypertp_core::HypervisorKind;
use hypertp_machine::MachineSpec;

use super::common::{ms2, run_migration, s2};
use crate::table;

/// Runs the comparison.
pub fn run() -> String {
    let xen = run_migration(MachineSpec::m1(), HypervisorKind::Xen, 1, 1, 1.0);
    let tp = run_migration(MachineSpec::m1(), HypervisorKind::Kvm, 1, 1, 1.0);
    let rows = vec![
        vec![
            "Downtime (ms)".to_string(),
            ms2(xen.downtime),
            ms2(tp.downtime),
            "133.59 / 4.96".to_string(),
        ],
        vec![
            "Migration time (s)".to_string(),
            s2(xen.total),
            s2(tp.total),
            "9.564 / 9.63".to_string(),
        ],
    ];
    table::render(
        "Table 4 — MigrationTP (Xen→KVM) vs Xen→Xen live migration",
        &["metric", "Xen→Xen", "MigrationTP", "paper (Xen/TP)"],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn renders() {
        let out = super::run();
        assert!(out.contains("Downtime"));
        assert!(out.contains("Migration time"));
    }
}
