//! Fig. 14: memory overhead of PRAM structures and UISR formats, measured
//! from the real encodings.

use hypertp_core::{HypervisorKind, VmConfig};
use hypertp_machine::{Machine, MachineSpec};
use hypertp_pram::PramBuilder;

use crate::registry;
use crate::table;

fn uisr_bytes(vcpus: u32, memory_gb: u64) -> u64 {
    let reg = registry();
    let mut machine = Machine::new(MachineSpec::m2());
    let mut hv = reg
        .create(HypervisorKind::Xen, &mut machine)
        .expect("pool has Xen");
    let cfg = VmConfig::small("probe")
        .with_vcpus(vcpus)
        .with_memory_gb(memory_gb);
    let id = hv.create_vm(&mut machine, &cfg).expect("capacity");
    hv.pause_vm(id).expect("pause");
    let uisr = hv.save_uisr(&machine, id).expect("save");
    hypertp_uisr::encode(&uisr).len() as u64
}

fn pram_bytes(vms: &[(u32, u64)]) -> u64 {
    // (count, memory_gb) pairs.
    let total_gb: u64 = vms.iter().map(|&(n, gb)| n as u64 * gb).sum();
    let mut machine = Machine::new({
        let mut s = MachineSpec::m2();
        s.ram_gb = total_gb + 8;
        s
    });
    let reg = registry();
    let mut hv = reg
        .create(HypervisorKind::Xen, &mut machine)
        .expect("pool has Xen");
    let mut builder = PramBuilder::new();
    let mut idx = 0;
    for &(n, gb) in vms {
        for _ in 0..n {
            let cfg = VmConfig::small(format!("vm{idx}")).with_memory_gb(gb);
            idx += 1;
            let id = hv.create_vm(&mut machine, &cfg).expect("capacity");
            builder.add_file(
                cfg.name.clone(),
                0o600,
                hv.guest_memory_map(id).expect("map"),
            );
        }
    }
    let handle = builder.write(machine.ram_mut()).expect("encode");
    handle.stats().metadata_bytes()
}

/// Runs the measurements.
pub fn run() -> String {
    let mut rows = Vec::new();
    for vcpus in [1u32, 2, 4, 6, 8, 10] {
        rows.push(vec![
            format!("vcpus={vcpus}"),
            "-".into(),
            format!("{:.1}", uisr_bytes(vcpus, 1) as f64 / 1024.0),
        ]);
    }
    for mem in [2u64, 4, 6, 8, 10, 12] {
        rows.push(vec![
            format!("mem={mem}GB"),
            format!("{:.1}", pram_bytes(&[(1, mem)]) as f64 / 1024.0),
            format!("{:.1}", uisr_bytes(1, mem) as f64 / 1024.0),
        ]);
    }
    for n in [2u32, 4, 6, 8, 10, 12] {
        rows.push(vec![
            format!("vms={n}"),
            format!("{:.1}", pram_bytes(&[(n, 1)]) as f64 / 1024.0),
            format!("{:.1}", n as f64 * uisr_bytes(1, 1) as f64 / 1024.0),
        ]);
    }
    let mut out = table::render(
        "Fig. 14 — memory overhead (KiB): PRAM structures and UISR formats",
        &["point", "PRAM (KiB)", "UISR (KiB)"],
        &rows,
    );
    out.push_str(
        "paper: PRAM 16 KB (1 GB VM) -> 60 KB (12 GB); 148 KB for 12x1 GB VMs; \
         UISR 5 KB (1 vCPU) -> 38 KB (10 vCPUs)\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn overheads_match_paper_scale() {
        // Direct checks of the two headline numbers.
        let one_gb = super::pram_bytes(&[(1, 1)]);
        assert_eq!(one_gb, 16 * 1024);
        let twelve_vms = super::pram_bytes(&[(12, 1)]);
        assert_eq!(twelve_vms, 148 * 1024);
        let u1 = super::uisr_bytes(1, 1);
        assert!((3_800..6_500).contains(&u1), "UISR 1 vCPU = {u1}");
        let u10 = super::uisr_bytes(10, 1);
        assert!((28_000..48_000).contains(&u10), "UISR 10 vCPUs = {u10}");
    }
}
