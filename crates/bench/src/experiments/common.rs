//! Shared experiment plumbing.

use hypertp_core::{
    Hypervisor, HypervisorKind, InPlaceReport, InPlaceTransplant, Optimizations, VmConfig,
};
use hypertp_machine::{Machine, MachineSpec};
use hypertp_migrate::{migrate_many, MigrationConfig, MigrationReport, MigrationTp};
use hypertp_sim::SimClock;

use crate::registry;

/// Creates `n` VMs of the given shape on a fresh source hypervisor.
pub fn populate(
    machine: &mut Machine,
    source: HypervisorKind,
    n: u32,
    vcpus: u32,
    memory_gb: u64,
) -> Box<dyn Hypervisor> {
    let reg = registry();
    let mut hv = reg.create(source, machine).expect("pool has both");
    for i in 0..n {
        let cfg = VmConfig::small(format!("vm{i}"))
            .with_vcpus(vcpus)
            .with_memory_gb(memory_gb);
        hv.create_vm(machine, &cfg).expect("capacity available");
    }
    hv
}

/// Runs one InPlaceTP transplant and returns its report.
pub fn run_inplace(
    spec: MachineSpec,
    source: HypervisorKind,
    target: HypervisorKind,
    n_vms: u32,
    vcpus: u32,
    memory_gb: u64,
    opts: Optimizations,
) -> InPlaceReport {
    let reg = registry();
    let mut machine = Machine::new(spec);
    let hv = populate(&mut machine, source, n_vms, vcpus, memory_gb);
    let engine = InPlaceTransplant::new(&reg).with_optimizations(opts);
    let (_hv, report) = engine.run(&mut machine, hv, target).expect("transplant");
    report
}

/// Runs one MigrationTP migration of a single VM between two machines of
/// the same spec and returns its report.
pub fn run_migration(
    spec: MachineSpec,
    target: HypervisorKind,
    vcpus: u32,
    memory_gb: u64,
    dirty_rate: f64,
) -> MigrationReport {
    let reg = registry();
    let clock = SimClock::new();
    let mut src_m = Machine::with_clock(spec.clone(), clock.clone());
    let mut dst_m = Machine::with_clock(spec, clock);
    let mut src = populate(&mut src_m, HypervisorKind::Xen, 1, vcpus, memory_gb);
    let mut dst = reg.create(target, &mut dst_m).expect("pool has both");
    let id = src.vm_ids()[0];
    let tp = MigrationTp::new().with_config(MigrationConfig {
        dirty_rate_pages_per_sec: dirty_rate,
        ..MigrationConfig::default()
    });
    tp.migrate(&mut src_m, src.as_mut(), id, &mut dst_m, dst.as_mut())
        .expect("migration")
}

/// Migrates `n` VMs concurrently and returns the per-VM reports.
pub fn run_migration_many(
    spec: MachineSpec,
    target: HypervisorKind,
    n: u32,
    memory_gb: u64,
    dirty_rate: f64,
) -> Vec<MigrationReport> {
    let reg = registry();
    let clock = SimClock::new();
    let mut src_m = Machine::with_clock(spec.clone(), clock.clone());
    let mut dst_m = Machine::with_clock(spec, clock);
    let mut src = populate(&mut src_m, HypervisorKind::Xen, n, 1, memory_gb);
    let mut dst = reg.create(target, &mut dst_m).expect("pool has both");
    let ids = src.vm_ids();
    let tp = MigrationTp::new().with_config(MigrationConfig {
        dirty_rate_pages_per_sec: dirty_rate,
        ..MigrationConfig::default()
    });
    migrate_many(
        &tp,
        &mut src_m,
        src.as_mut(),
        &ids,
        &mut dst_m,
        dst.as_mut(),
    )
    .expect("migration")
}

/// Seconds with 2 decimals.
pub fn s2(d: hypertp_sim::SimDuration) -> String {
    format!("{:.2}", d.as_secs_f64())
}

/// Milliseconds with 2 decimals.
pub fn ms2(d: hypertp_sim::SimDuration) -> String {
    format!("{:.2}", d.as_millis_f64())
}
