//! Ablation of the §4.2.5 optimizations: each toggle's contribution to
//! InPlaceTP downtime, plus the huge-page PRAM ablation.

use hypertp_core::{HypervisorKind, InPlaceTransplant, Optimizations, VmConfig};
use hypertp_machine::{Machine, MachineSpec};

use super::common::{run_inplace, s2};
use crate::{registry, table};

fn config_row(name: &str, opts: Optimizations) -> Vec<String> {
    let r = run_inplace(
        MachineSpec::m1(),
        HypervisorKind::Xen,
        HypervisorKind::Kvm,
        4,
        1,
        1,
        opts,
    );
    vec![
        name.to_string(),
        s2(r.pram),
        s2(r.translation),
        s2(r.reboot),
        s2(r.restoration),
        s2(r.downtime()),
        s2(r.total()),
    ]
}

/// Runs one transplant of 4 × 1 GB VMs allocated with 4 KiB pages only.
fn no_hugepages_row() -> Vec<String> {
    let reg = registry();
    let mut machine = Machine::new(MachineSpec::m1());
    let mut hv = reg
        .create(HypervisorKind::Xen, &mut machine)
        .expect("pool has Xen");
    for i in 0..4 {
        let cfg = VmConfig::small(format!("vm{i}")).with_huge_pages(false);
        hv.create_vm(&mut machine, &cfg).expect("capacity");
    }
    let engine = InPlaceTransplant::new(&reg);
    let (_hv, r) = engine
        .run(&mut machine, hv, HypervisorKind::Kvm)
        .expect("transplant");
    vec![
        "no huge pages".to_string(),
        s2(r.pram),
        s2(r.translation),
        s2(r.reboot),
        s2(r.restoration),
        s2(r.downtime()),
        s2(r.total()),
    ]
}

/// Runs the ablation sweep.
pub fn run() -> String {
    let rows = vec![
        config_row("all optimizations", Optimizations::default()),
        config_row(
            "no pre-pause prep",
            Optimizations {
                prepare_before_pause: false,
                ..Optimizations::default()
            },
        ),
        config_row(
            "no parallelization",
            Optimizations {
                parallel: false,
                ..Optimizations::default()
            },
        ),
        config_row(
            "no early restoration",
            Optimizations {
                early_restoration: false,
                ..Optimizations::default()
            },
        ),
        config_row("none", Optimizations::none()),
        no_hugepages_row(),
    ];
    table::render(
        "Ablation — §4.2.5 optimizations (Xen→KVM, 4×1 GB VMs on M1, seconds)",
        &[
            "configuration",
            "PRAM",
            "Translation",
            "Reboot",
            "Restoration",
            "downtime",
            "total",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn ablation_rows_present() {
        let out = super::run();
        assert!(out.contains("no parallelization"));
        assert!(out.contains("no huge pages"));
    }
}
