//! Figs. 11 and 12: application impact of InPlaceTP and MigrationTP on
//! Redis and MySQL (2 vCPU / 8 GB VM on M1, transplant at mid-run).

use hypertp_core::{HypervisorKind, VmConfig};
use hypertp_machine::MachineSpec;
use hypertp_sim::{SimDuration, SimTime, TimeSeries};
use hypertp_workloads::runner::{inplace_impact, migration_impact};
use hypertp_workloads::WorkloadProfile;

use crate::registry;
use crate::table;

fn app_vm() -> VmConfig {
    VmConfig::small("app-vm").with_vcpus(2).with_memory_gb(8)
}

fn downsample(series: &TimeSeries, step_s: u64) -> Vec<Vec<String>> {
    series
        .samples()
        .iter()
        .filter(|(t, _)| t.as_nanos() % (step_s * 1_000_000_000) == 0)
        .map(|(t, v)| vec![format!("{:.0}", t.as_secs_f64()), format!("{v:.0}")])
        .collect()
}

fn impact_pair(profile: &WorkloadProfile, title: &str, seed: u64) -> String {
    let reg = registry();
    let mut out = String::new();

    let (report, impact) = inplace_impact(
        &reg,
        MachineSpec::m1(),
        profile,
        &app_vm(),
        SimDuration::from_secs(50),
        SimDuration::from_secs(200),
        HypervisorKind::Kvm,
        seed,
    )
    .expect("inplace impact");
    out.push_str(&format!(
        "{title} / InPlaceTP: downtime {:.2} s, service interruption {:.2} s\n",
        report.downtime().as_secs_f64(),
        impact.interruption.as_secs_f64()
    ));
    let t = |s: u64| SimTime::ZERO + SimDuration::from_secs(s);
    if let (Some(before), Some(after)) = (
        impact.series.mean_in(t(5), t(45)),
        impact.series.mean_in(t(100), t(195)),
    ) {
        out.push_str(&format!(
            "  mean before {before:.0}, after {after:.0} ({:+.1}%)\n",
            (after / before - 1.0) * 100.0
        ));
    }
    out.push_str(&table::render(
        &format!("{title} under InPlaceTP (sampled every 20 s)"),
        &["t(s)", "value"],
        &downsample(&impact.series, 20),
    ));

    let (mreport, mimpact) = migration_impact(
        &reg,
        MachineSpec::m1(),
        profile,
        &app_vm(),
        SimDuration::from_secs(46),
        SimDuration::from_secs(250),
        HypervisorKind::Kvm,
        seed + 1,
    )
    .expect("migration impact");
    out.push_str(&format!(
        "{title} / MigrationTP: copy phase {:.1} s, downtime {:.1} ms\n",
        mreport.total.as_secs_f64(),
        mreport.downtime.as_millis_f64()
    ));
    if let (Some(before), Some(during)) = (
        mimpact.series.mean_in(t(5), t(40)),
        mimpact.series.mean_in(t(60), t(110)),
    ) {
        out.push_str(&format!(
            "  mean before {before:.0}, during copy {during:.0} ({:+.1}%)\n",
            (during / before - 1.0) * 100.0
        ));
    }
    out.push_str(&table::render(
        &format!("{title} under MigrationTP (sampled every 20 s)"),
        &["t(s)", "value"],
        &downsample(&mimpact.series, 20),
    ));
    out
}

/// Fig. 11: Redis QPS.
pub fn fig11() -> String {
    impact_pair(&WorkloadProfile::redis(), "Redis QPS", 11)
}

/// Fig. 12: MySQL QPS and latency.
pub fn fig12() -> String {
    let mut out = impact_pair(&WorkloadProfile::mysql(), "MySQL QPS", 12);
    out.push_str(&impact_pair(
        &WorkloadProfile::mysql_latency(),
        "MySQL latency (ms)",
        13,
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig11_mentions_both_mechanisms() {
        let out = super::fig11();
        assert!(out.contains("InPlaceTP"));
        assert!(out.contains("MigrationTP"));
    }
}
