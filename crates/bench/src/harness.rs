//! Minimal in-tree timing harness replacing the Criterion benches.
//!
//! The workspace builds fully offline, so the four `[[bench]]` targets
//! (`inplace_breakdown`, `pram_encode`, `uisr_codec`,
//! `ablation_optimizations`) run on this ~100-line harness instead of
//! Criterion. It keeps the familiar group/bench-id shape, prints a small
//! table of min/median/mean per benchmark, and honors two environment
//! knobs:
//!
//! * `HYPERTP_BENCH_SAMPLES` — iteration count per benchmark (default 10).
//! * `HYPERTP_BENCH_FAST=1` — one warmup-free iteration per benchmark, for
//!   smoke-testing `cargo bench` in CI.

use std::time::{Duration, Instant};

/// One benchmark's timing summary.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// `group/id` label.
    pub id: String,
    /// Number of measured iterations.
    pub samples: usize,
    /// Fastest iteration.
    pub min: Duration,
    /// Median iteration.
    pub median: Duration,
    /// Mean iteration.
    pub mean: Duration,
}

/// A named group of benchmarks, mirroring Criterion's `benchmark_group`.
pub struct Group {
    name: String,
    samples: usize,
    results: Vec<BenchResult>,
}

fn env_samples() -> usize {
    if std::env::var("HYPERTP_BENCH_FAST")
        .map(|v| v == "1")
        .unwrap_or(false)
    {
        return 1;
    }
    std::env::var("HYPERTP_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(10)
}

impl Group {
    /// Starts a new group.
    pub fn new(name: impl Into<String>) -> Self {
        Group {
            name: name.into(),
            samples: env_samples(),
            results: Vec::new(),
        }
    }

    /// Overrides the per-benchmark sample count (environment still wins
    /// under `HYPERTP_BENCH_FAST`).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if !std::env::var("HYPERTP_BENCH_FAST")
            .map(|v| v == "1")
            .unwrap_or(false)
        {
            self.samples = n.max(1);
        }
        self
    }

    /// Times `f` for the configured number of samples (plus one warmup
    /// iteration when sampling more than once).
    pub fn bench(&mut self, id: impl Into<String>, mut f: impl FnMut()) {
        let id = format!("{}/{}", self.name, id.into());
        if self.samples > 1 {
            f(); // warmup
        }
        let mut times: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let t = Instant::now();
                f();
                t.elapsed()
            })
            .collect();
        times.sort_unstable();
        let min = times[0];
        let median = times[times.len() / 2];
        let mean = times.iter().sum::<Duration>() / times.len() as u32;
        let r = BenchResult {
            id,
            samples: times.len(),
            min,
            median,
            mean,
        };
        println!(
            "{:<44} {:>10} {:>10} {:>10}  ({} samples)",
            r.id,
            fmt_dur(r.min),
            fmt_dur(r.median),
            fmt_dur(r.mean),
            r.samples
        );
        self.results.push(r);
    }

    /// Times `run` over a fresh `setup()` product per iteration, excluding
    /// setup time — Criterion's `iter_batched` for owned inputs.
    pub fn bench_with_setup<T>(
        &mut self,
        id: impl Into<String>,
        mut setup: impl FnMut() -> T,
        mut run: impl FnMut(T),
    ) {
        let id = format!("{}/{}", self.name, id.into());
        if self.samples > 1 {
            run(setup()); // warmup
        }
        let mut times: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let input = setup();
                let t = Instant::now();
                run(input);
                t.elapsed()
            })
            .collect();
        times.sort_unstable();
        let min = times[0];
        let median = times[times.len() / 2];
        let mean = times.iter().sum::<Duration>() / times.len() as u32;
        let r = BenchResult {
            id,
            samples: times.len(),
            min,
            median,
            mean,
        };
        println!(
            "{:<44} {:>10} {:>10} {:>10}  ({} samples)",
            r.id,
            fmt_dur(r.min),
            fmt_dur(r.median),
            fmt_dur(r.mean),
            r.samples
        );
        self.results.push(r);
    }

    /// Finishes the group, returning the collected results.
    pub fn finish(self) -> Vec<BenchResult> {
        self.results
    }
}

/// Prints the standard table header. Call once per bench binary.
pub fn header() {
    println!(
        "{:<44} {:>10} {:>10} {:>10}",
        "benchmark", "min", "median", "mean"
    );
    println!("{}", "-".repeat(80));
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_collects_results() {
        std::env::set_var("HYPERTP_BENCH_FAST", "1");
        let mut g = Group::new("t");
        g.bench("noop", || {});
        g.bench_with_setup("setup", || 41u32, |x| assert_eq!(x + 1, 42));
        let rs = g.finish();
        std::env::remove_var("HYPERTP_BENCH_FAST");
        assert_eq!(rs.len(), 2);
        assert_eq!(rs[0].id, "t/noop");
        assert_eq!(rs[0].samples, 1);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_dur(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_dur(Duration::from_micros(3)), "3.00 µs");
        assert_eq!(fmt_dur(Duration::from_millis(7)), "7.00 ms");
        assert_eq!(fmt_dur(Duration::from_secs(2)), "2.00 s");
    }
}
