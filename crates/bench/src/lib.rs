//! The experiment harness: regenerates every table and figure of the
//! paper's evaluation (§5).
//!
//! Each experiment lives in [`experiments`] as a function returning the
//! formatted rows/series the paper reports; the `src/bin/*` binaries are
//! thin wrappers (`cargo run -p hypertp-bench --bin fig6`), and
//! `--bin exp_all` runs the full suite in order. DESIGN.md carries the
//! experiment index mapping each id to the modules it exercises.

pub mod experiments;
pub mod harness;
pub mod table;

use hypertp_core::{HypervisorKind, HypervisorRegistry};

/// The standard two-hypervisor pool used by every experiment.
pub fn registry() -> HypervisorRegistry {
    let mut registry = HypervisorRegistry::new();
    registry.register(HypervisorKind::Xen, |machine| {
        Box::new(hypertp_xen::XenHypervisor::new(machine))
    });
    registry.register(HypervisorKind::Kvm, |machine| {
        Box::new(hypertp_kvm::KvmHypervisor::new(machine))
    });
    registry.register_validator(HypervisorKind::Kvm, hypertp_kvm::xlate::preflight_validate);
    registry
}
