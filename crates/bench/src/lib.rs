//! The experiment harness: regenerates every table and figure of the
//! paper's evaluation (§5).
//!
//! Each experiment lives in [`experiments`] as a function returning the
//! formatted rows/series the paper reports; the `src/bin/*` binaries are
//! thin wrappers (`cargo run -p hypertp-bench --bin fig6`), and
//! `--bin exp_all` runs the full suite in order. DESIGN.md carries the
//! experiment index mapping each id to the modules it exercises.

pub mod experiments;
pub mod harness;
pub mod table;

use hypertp_core::{HypervisorKind, HypervisorRegistry};
use hypertp_migrate::MigrationReport;
use hypertp_sim::json::{self, Json};

/// The standard two-hypervisor pool used by every experiment.
pub fn registry() -> HypervisorRegistry {
    let mut registry = HypervisorRegistry::new();
    registry.register(HypervisorKind::Xen, |machine| {
        Box::new(hypertp_xen::XenHypervisor::new(machine))
    });
    registry.register(HypervisorKind::Kvm, |machine| {
        Box::new(hypertp_kvm::KvmHypervisor::new(machine))
    });
    registry.register_validator(HypervisorKind::Kvm, hypertp_kvm::xlate::preflight_validate);
    registry
}

/// Per-round controller telemetry of every report, as a JSON array: the
/// EWMA trajectory (dirty rate, drain rate, effective throughput,
/// compression), the stop-threshold trajectory, and the throttle in
/// force each round. Smoke benches attach this to their artifacts so
/// `BENCH_*.json` captures how the control plane behaved over rounds,
/// not just the end-state totals.
pub fn rounds_telemetry(reports: &[MigrationReport]) -> Json {
    json::arr(reports.iter().map(|r| {
        Json::obj().with("vm", json::s(r.vm_name.clone())).with(
            "rounds",
            json::arr(r.rounds.iter().map(|s| {
                Json::obj()
                    .with("pages", json::u(s.pages))
                    .with("dirtied", json::u(s.dirtied))
                    .with("dirty_rate_est", json::f(s.dirty_rate_est))
                    .with("drain_rate_est", json::f(s.drain_rate_est))
                    .with("throughput_est", json::f(s.throughput_est))
                    .with("compression_est", json::f(s.compression_est))
                    .with("stop_threshold", json::u(s.stop_threshold))
                    .with("throttle", json::f(s.throttle))
            })),
        )
    }))
}
