//! Plain-text table rendering for experiment output.

/// Renders an aligned text table with a title, header row and data rows.
pub fn render(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    let fmt_row = |cells: Vec<String>, widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            let w = widths.get(i).copied().unwrap_or(cell.len());
            line.push_str(&format!("{cell:>w$}  "));
        }
        line.trim_end().to_string()
    };
    out.push_str(&fmt_row(
        headers.iter().map(|s| s.to_string()).collect(),
        &widths,
    ));
    out.push('\n');
    let total: usize = widths.iter().map(|w| w + 2).sum();
    out.push_str(&"-".repeat(total.saturating_sub(2)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.clone(), &widths));
        out.push('\n');
    }
    out
}

/// Formats a float with the given number of decimals.
pub fn f(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let out = render(
            "T",
            &["name", "value"],
            &[
                vec!["a".into(), "1.0".into()],
                vec!["longer".into(), "2.25".into()],
            ],
        );
        assert!(out.contains("== T =="));
        assert!(out.contains("longer"));
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(f(2.0, 3), "2.000");
    }
}
