//! campaign_smoke: plan+exec scaling of the sharded campaign engine.
//!
//! The tentpole claim: the cluster layer plans and executes
//! datacenter-sized upgrade campaigns in near-linear time. This bench
//! sweeps synthetic fleets from 1k to 10k hosts (lazily derived — no
//! per-VM materialization), times `plan_upgrade` + `execute_sharded`
//! wall-clock at each size, and fits a log-log scaling exponent that
//! `perf_gate campaign` caps at the committed
//! `scaling_exponent_ceiling`.
//!
//! Alongside the sweep it pins the engine's identity contracts:
//!
//! * **sharded_1k** — the 1k-host fleet executed two ways: the
//!   *baseline* path with per-host cost evaluation (the wrapper below
//!   defeats the uniform-spec check, so every host re-derives its
//!   upgrade cost — what the pre-sharding executor did), and the sharded
//!   path with class-memoized evaluation. The reports must be
//!   byte-identical (the memo is an optimization, not a semantic), and
//!   the recorded speedup is the engine's single-thread algorithmic win;
//!   with more than one worker the thread win stacks on top.
//! * **shard_identity** — one fleet, every shard × worker combination:
//!   one byte string.
//! * **deterministic** — same seed, same sweep point, twice.
//! * **campaign_shards** — a Nova-managed fleet campaign at shards 1
//!   and 3: byte-identical [`hypertp_cluster::CampaignReport`]s.
//!
//! Writes `BENCH_campaign.json` (override with `CAMPAIGN_SMOKE_OUT`).

use std::time::Instant;

use hypertp_cluster::campaign::{run_campaign_with, CampaignConfig};
use hypertp_cluster::exec::{execute_sharded_with, ExecConfig, ExecReport};
use hypertp_cluster::openstack::{pool, LibvirtDriver, NovaManager};
use hypertp_cluster::{plan_upgrade, Cluster, ClusterView, Plan, VmView};
use hypertp_core::{HypervisorKind, VmConfig};
use hypertp_machine::MachineSpec;
use hypertp_sim::fault::FaultPlan;
use hypertp_sim::json::{self, Json};
use hypertp_sim::pool::WorkerPool;
use hypertp_sim::SimClock;
use hypertp_vulndb::dataset::dataset;

/// Fleet sizes swept (hosts). 10 VMs per host: 10k→100k VMs.
const SWEEP: [usize; 5] = [1000, 2000, 4000, 7000, 10_000];
/// InPlaceTP-tolerant share of each fleet (the paper's 80% point).
const COMPAT_PCT: u32 = 80;
/// Hosts taken offline per rolling group.
const GROUP_HOSTS: usize = 25;
/// Fleet-derivation seed.
const SEED: u64 = 0xca3b_a16e;
/// Committed ceiling for the fitted log-log scaling exponent of total
/// (plan + exec) wall time. 1.0 = perfectly linear; `perf_gate campaign`
/// enforces the ceiling.
const EXPONENT_CEILING: f64 = 1.2;
/// Committed floor for the 1k-host baseline/sharded wall-clock ratio.
/// The class memo alone wins ~4× on one core, so 1.2 leaves ample noise
/// margin; extra workers only widen it. `perf_gate campaign` enforces
/// the floor.
const SPEEDUP_FLOOR: f64 = 1.2;
/// Wall-clock reps per sweep point (the minimum is recorded — scheduler
/// noise only ever adds time).
const REPS: usize = 3;

/// Delegating view that hides the fleet's spec uniformity, forcing the
/// executor onto the per-host evaluation path (no class memo). The
/// simulated fleet is bit-for-bit the same — only the evaluation
/// strategy changes, which is exactly what the baseline must measure.
struct PerHostEval<'a, V: ClusterView>(&'a V);

impl<V: ClusterView> ClusterView for PerHostEval<'_, V> {
    fn host_count(&self) -> usize {
        self.0.host_count()
    }
    fn vm_count(&self) -> usize {
        self.0.vm_count()
    }
    fn host_reserve_gb(&self) -> u64 {
        self.0.host_reserve_gb()
    }
    fn host_spec(&self, host: usize) -> &MachineSpec {
        self.0.host_spec(host)
    }
    fn vm(&self, vm: usize) -> VmView {
        self.0.vm(vm)
    }
    fn vm_name(&self, vm: usize) -> String {
        self.0.vm_name(vm)
    }
    fn uniform_spec(&self) -> Option<&MachineSpec> {
        None
    }
}

struct SweepPoint {
    hosts: usize,
    vms: usize,
    groups: usize,
    migrations: usize,
    upgrades: usize,
    plan_ms: f64,
    exec_ms: f64,
    sim_total_s: f64,
}

fn ms(since: Instant) -> f64 {
    since.elapsed().as_secs_f64() * 1e3
}

fn sweep_point(hosts: usize, pool: &WorkerPool, shards: usize) -> (SweepPoint, String) {
    let view = Cluster::synthetic(hosts, SEED).with_compat_percent(COMPAT_PCT);
    let cfg = ExecConfig::default();
    let mut best_plan = f64::INFINITY;
    let mut best_exec = f64::INFINITY;
    let mut plan: Option<Plan> = None;
    let mut report: Option<ExecReport> = None;
    for _ in 0..REPS {
        let t = Instant::now();
        let p = plan_upgrade(&view, GROUP_HOSTS).expect("synthetic fleet plans");
        best_plan = best_plan.min(ms(t));
        let t = Instant::now();
        let r = execute_sharded_with(&view, &p, &cfg, &FaultPlan::disarmed(), shards, pool);
        best_exec = best_exec.min(ms(t));
        if let Some(prev) = &report {
            assert_eq!(*prev, r, "{hosts} hosts: rerun diverged");
        }
        plan = Some(p);
        report = Some(r);
    }
    let plan = plan.unwrap();
    let report = report.unwrap();
    let point = SweepPoint {
        hosts,
        vms: view.vm_count(),
        groups: plan.groups.len(),
        migrations: report.migrations,
        upgrades: report.inplace_upgrades,
        plan_ms: best_plan,
        exec_ms: best_exec,
        sim_total_s: report.total.as_secs_f64(),
    };
    (point, report.render())
}

/// Least-squares slope of `ln(y)` against `ln(x)` — the scaling exponent.
fn fit_exponent(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len() as f64;
    let lx: Vec<f64> = xs.iter().map(|x| x.ln()).collect();
    let ly: Vec<f64> = ys.iter().map(|y| y.max(1e-3).ln()).collect();
    let mx = lx.iter().sum::<f64>() / n;
    let my = ly.iter().sum::<f64>() / n;
    let cov: f64 = lx.iter().zip(&ly).map(|(x, y)| (x - mx) * (y - my)).sum();
    let var: f64 = lx.iter().map(|x| (x - mx) * (x - mx)).sum();
    cov / var
}

/// The 1k-host baseline-vs-sharded comparison (see module docs).
fn sharded_1k(pool: &WorkerPool, shards: usize) -> (f64, f64, bool) {
    let view = Cluster::synthetic(1000, SEED).with_compat_percent(COMPAT_PCT);
    let plan = plan_upgrade(&view, GROUP_HOSTS).unwrap();
    let cfg = ExecConfig::default();
    let mut base_ms = f64::INFINITY;
    let mut sharded_ms = f64::INFINITY;
    let mut identical = true;
    for _ in 0..REPS {
        let per_host = PerHostEval(&view);
        let t = Instant::now();
        let base = execute_sharded_with(
            &per_host,
            &plan,
            &cfg,
            &FaultPlan::disarmed(),
            1,
            &WorkerPool::serial(),
        );
        base_ms = base_ms.min(ms(t));
        let t = Instant::now();
        let sharded =
            execute_sharded_with(&view, &plan, &cfg, &FaultPlan::disarmed(), shards, pool);
        sharded_ms = sharded_ms.min(ms(t));
        identical &= base == sharded && base.render() == sharded.render();
    }
    (base_ms, sharded_ms, identical)
}

/// Every shard × worker combination on one fleet must fold to one byte
/// string.
fn shard_identity() -> bool {
    let view = Cluster::synthetic(2000, SEED).with_compat_percent(COMPAT_PCT);
    let plan = plan_upgrade(&view, GROUP_HOSTS).unwrap();
    let cfg = ExecConfig::default();
    let mut renders = Vec::new();
    for shards in [1usize, 4, 16, 80] {
        for workers in [1usize, 4] {
            let r = execute_sharded_with(
                &view,
                &plan,
                &cfg,
                &FaultPlan::disarmed(),
                shards,
                &WorkerPool::new(workers),
            );
            renders.push(r.render());
        }
    }
    renders.dedup();
    renders.len() == 1
}

/// A Nova-managed fleet campaign at shards 1 and 3: identical reports.
fn campaign_shards_identical() -> bool {
    let cve = dataset()
        .into_iter()
        .find(|v| v.id == "CVE-2016-6258")
        .expect("dataset has the named CVE");
    let run = |shards: usize| {
        let registry = pool();
        let clock = SimClock::new();
        let computes = (0..4)
            .map(|i| {
                let mut spec = MachineSpec::m1();
                spec.ram_gb = 8;
                LibvirtDriver::new(
                    format!("c{i}"),
                    spec,
                    clock.clone(),
                    &registry,
                    HypervisorKind::Xen,
                )
                .unwrap()
            })
            .collect();
        let mut nova = NovaManager::new(registry, computes);
        for i in 0..4 {
            nova.boot(&VmConfig::small(format!("svc{i}"))).unwrap();
        }
        let cfg = CampaignConfig {
            shards,
            ..CampaignConfig::default()
        };
        run_campaign_with(&mut nova, &cve, &[], &FaultPlan::disarmed(), &cfg)
            .expect("campaign")
            .render()
    };
    run(1) == run(3)
}

fn main() {
    let worker_pool = WorkerPool::from_env();
    let workers = worker_pool.workers();
    // One shard per worker keeps every core busy without fragmenting the
    // per-shard cost memo; floor of 8 keeps the shard path exercised on
    // single-core CI machines.
    let shards = workers.max(8);
    println!("campaign_smoke: {workers} workers, {shards} shards");

    println!("== sweep: {SWEEP:?} hosts ==");
    let mut points = Vec::new();
    for hosts in SWEEP {
        let (p, _) = sweep_point(hosts, &worker_pool, shards);
        println!(
            "  {:>6} hosts ({:>7} VMs, {:>4} groups): plan {:8.2} ms, exec {:8.2} ms, \
             {} migrations, {} upgrades, simulated {:.1} h",
            p.hosts,
            p.vms,
            p.groups,
            p.plan_ms,
            p.exec_ms,
            p.migrations,
            p.upgrades,
            p.sim_total_s / 3600.0
        );
        points.push(p);
    }
    let hosts_f: Vec<f64> = points.iter().map(|p| p.hosts as f64).collect();
    let total_f: Vec<f64> = points.iter().map(|p| p.plan_ms + p.exec_ms).collect();
    let plan_f: Vec<f64> = points.iter().map(|p| p.plan_ms).collect();
    let exec_f: Vec<f64> = points.iter().map(|p| p.exec_ms).collect();
    let exponent = fit_exponent(&hosts_f, &total_f);
    let plan_exponent = fit_exponent(&hosts_f, &plan_f);
    let exec_exponent = fit_exponent(&hosts_f, &exec_f);
    println!(
        "  fitted exponent: total {exponent:.3} (plan {plan_exponent:.3}, exec \
         {exec_exponent:.3}), ceiling {EXPONENT_CEILING}"
    );

    println!("== identity contracts ==");
    let (serial_ms, sharded_ms, sharded_identical) = sharded_1k(&worker_pool, shards);
    let speedup = serial_ms / sharded_ms.max(1e-6);
    println!(
        "  sharded_1k: baseline {serial_ms:.2} ms vs sharded {sharded_ms:.2} ms \
         (speedup {speedup:.2}x), identical = {sharded_identical}"
    );
    let shard_id = shard_identity();
    println!("  shard x worker identity:  {shard_id}");
    let (det_a, ra) = sweep_point(2000, &worker_pool, shards);
    let (_, rb) = sweep_point(2000, &worker_pool, shards);
    let deterministic = ra == rb;
    println!("  deterministic rerun:      {deterministic}");
    let campaign_id = campaign_shards_identical();
    println!("  campaign shards identity: {campaign_id}");

    let out = Json::obj()
        .with("bench", json::s("campaign_smoke"))
        .with("seed", json::u(SEED))
        .with("compat_pct", json::u(COMPAT_PCT as u64))
        .with("group_hosts", json::u(GROUP_HOSTS as u64))
        .with("reps", json::u(REPS as u64))
        .with("scaling_exponent_ceiling", json::f(EXPONENT_CEILING))
        .with("speedup_floor", json::f(SPEEDUP_FLOOR))
        .with(
            "sweep",
            json::arr(points.iter().map(|p| {
                Json::obj()
                    .with("hosts", json::u(p.hosts as u64))
                    .with("vms", json::u(p.vms as u64))
                    .with("groups", json::u(p.groups as u64))
                    .with("migrations", json::u(p.migrations as u64))
                    .with("inplace_upgrades", json::u(p.upgrades as u64))
                    .with("plan_ms", json::f(p.plan_ms))
                    .with("exec_ms", json::f(p.exec_ms))
                    .with("total_ms", json::f(p.plan_ms + p.exec_ms))
                    .with("sim_total_s", json::f(p.sim_total_s))
            })),
        )
        .with(
            "scaling",
            Json::obj()
                .with("fitted_exponent", json::f(exponent))
                .with("plan_exponent", json::f(plan_exponent))
                .with("exec_exponent", json::f(exec_exponent)),
        )
        .with(
            "sharded_1k",
            Json::obj()
                .with("serial_ms", json::f(serial_ms))
                .with("sharded_ms", json::f(sharded_ms))
                .with("speedup", json::f(speedup))
                .with("workers", json::u(workers as u64))
                .with("shards", json::u(shards as u64))
                .with("identical", json::s(sharded_identical.to_string())),
        )
        .with("det_point_hosts", json::u(det_a.hosts as u64))
        .with("shard_identity_identical", json::s(shard_id.to_string()))
        .with(
            "deterministic_identical",
            json::s(deterministic.to_string()),
        )
        .with(
            "campaign_shards_identical",
            json::s(campaign_id.to_string()),
        );
    let path = std::env::var("CAMPAIGN_SMOKE_OUT").unwrap_or_else(|_| "BENCH_campaign.json".into());
    std::fs::write(&path, out.encode_pretty()).expect("write artifact");
    println!("wrote {path}");
}
