//! inplace_smoke: downtime wins of incremental pre-pause UISR translation.
//!
//! Reproduces a Fig. 6-style ablation of the InPlaceTP optimizations on a
//! max-density M1 fleet (§5.2.1's "M1 can host up to 12 VMs"), Xen → KVM:
//!
//! 1. **none**: `Optimizations::none()` — PRAM construction, translation
//!    and restoration all land inside the blackout, serialized on one
//!    core.
//! 2. **prepare**: PRAM construction hoisted before the pause (§4.2.5
//!    "preparation work without pausing the guest").
//! 3. **+parallel**: the full shipped optimization set
//!    (`Optimizations::default()` — preparation + per-VM worker
//!    parallelism + early restoration).
//! 4. **+incremental**: `incremental_translate` on top — dirty logging,
//!    a warm UISR snapshot with per-extent checksum partials, EWMA-driven
//!    refresh rounds, and a dirty-delta finalize at pause time.
//!
//! The incremental level runs over two workloads: **idle** guests (no
//! redirtying — the warm snapshot stays valid) and **hot-but-convergent**
//! guests (`HOT_RATE` pages/s — the warm loop must iterate until the
//! redirty EWMA converges before pausing). The gate invariant, enforced
//! by `perf_gate inplace` against the committed artifact: on the hot
//! fleet, `+incremental` cuts the mean downtime by at least
//! `DOWNTIME_CUT_FLOOR_PCT` vs `+parallel`.
//!
//! ## Host profile
//!
//! The Fig. 6 calibration measures a *minimal idle* 1-GB VM on a stock
//! kernel, where the micro-reboot is ~70% of the blackout and translation
//! is a rounding error — an ablation of the translation term would be
//! invisible there. This bench instead models the regime the optimization
//! targets, as four documented deltas from `CostModel::paper_calibrated`
//! (see `ablation_cost`): state-dense guests whose `save → to_uisr →
//! encode` chain costs ~10× the idle calibration per GB, on a host with a
//! trimmed kexec-to-kexec kernel and lazy PRAM parse. Reboot/restore
//! physics otherwise stay paper-calibrated, and *both sides of every
//! comparison use the same profile* — the ablation measures the
//! optimization, the profile only sets the translation share under study.
//!
//! Three seeded fleet variants (different guest contents and vCPU mixes)
//! are run per level; the gate compares mean downtimes. The incremental
//! run is executed twice and compared field-by-field — simulated time is
//! deterministic, so CI can gate on exact equality. Writes
//! `BENCH_inplace.json` (override with `INPLACE_SMOKE_OUT`).

use hypertp_bench::registry;
use hypertp_core::{
    Hypervisor, HypervisorKind, HypervisorRegistry, InPlaceReport, InPlaceTransplant,
    IncrementalConfig, Optimizations, VmConfig,
};
use hypertp_machine::{Gfn, Machine, MachineSpec};
use hypertp_sim::cost::CostModel;
use hypertp_sim::json::{self, Json};
use hypertp_sim::SimDuration;

/// Fleet size: M1's max density at 1 GB per VM (§5.2.1).
const VMS: usize = 12;
/// Per-VM memory in GiB.
const MEM_GB: u64 = 1;
/// Hot-workload redirty rate in pages/second per guest. High enough that
/// the warm loop needs several refresh rounds, low enough to converge
/// under the default EWMA stop rule.
const HOT_RATE: f64 = 150_000.0;
/// Committed regression floor: on the hot fleet, `+incremental` must cut
/// the mean downtime by at least this percentage vs `+parallel`.
/// `perf_gate inplace` enforces it.
const DOWNTIME_CUT_FLOOR_PCT: f64 = 25.0;
/// Seeded fleet variants the means are taken over.
const VARIANTS: u64 = 3;
/// Guest words probed for the restored-state identity check.
const PROBES: u64 = 64;

/// The ablation host profile: paper-calibrated physics with four
/// documented deltas putting the run in the translation-bound regime the
/// incremental path targets (see the module docs).
fn ablation_cost() -> CostModel {
    CostModel {
        // State-dense guests: the idle Fig. 6 VM translates at
        // 0.02 GHz-s/GB; guests with hot device/vCPU state (vhost queues,
        // dirty EPT, loaded interrupt remapping) cost ~10× per GB.
        translate_ghz_s_per_gb: 0.25,
        // Trimmed kexec-to-kexec kernel (no firmware re-init, slimmed
        // initramfs, deferred device probe) instead of a stock boot.
        linux_boot_ghz_s: 0.4,
        // The kexec kernel inherits the validated memmap; no per-GB
        // e820 re-walk.
        boot_s_per_host_gb: 0.0005,
        // Lazy PRAM parse: walk the directory at boot, defer per-frame
        // reservation to first touch.
        pram_parse_s_per_gb: 0.002,
        ..CostModel::paper_calibrated()
    }
}

/// Builds one seeded fleet variant: 12 × 1 GiB VMs on M1 under Xen, with
/// variant-dependent guest contents and vCPU mix.
fn fleet(reg: &HypervisorRegistry, variant: u64) -> (Machine, Box<dyn Hypervisor>) {
    let mut m = Machine::new(MachineSpec::m1());
    let mut src = reg
        .create(HypervisorKind::Xen, &mut m)
        .expect("registry has Xen");
    for i in 0..VMS as u64 {
        let vcpus = 1 + ((i + variant) % 2) as u32;
        let cfg = VmConfig::small(format!("vm{i}"))
            .with_memory_gb(MEM_GB)
            .with_vcpus(vcpus);
        let pages = cfg.pages();
        let id = src.create_vm(&mut m, &cfg).expect("capacity");
        for k in 0..4096u64 {
            let gfn = Gfn((k * 97 + variant * 8191 + i * 131) % pages);
            src.write_guest(
                &mut m,
                id,
                gfn,
                k ^ (variant << 32) ^ (0x6a09_e667 * (i + 1)),
            )
            .expect("seed write");
        }
    }
    (m, src)
}

/// Probe GFNs shared by the seeding loop and the identity check.
fn probe_gfns(variant: u64, vm: u64, pages: u64) -> Vec<Gfn> {
    (0..PROBES)
        .map(|k| Gfn((k * 97 + variant * 8191 + vm * 131) % pages))
        .collect()
}

/// Transplants one fleet variant in place under the given optimizations,
/// returning the restored machine + hypervisor for state inspection.
fn run_keep(
    reg: &HypervisorRegistry,
    variant: u64,
    opts: Optimizations,
    inc: IncrementalConfig,
) -> (Machine, Box<dyn Hypervisor>, InPlaceReport) {
    let (mut m, src) = fleet(reg, variant);
    let engine = InPlaceTransplant::new(reg)
        .with_cost(ablation_cost())
        .with_optimizations(opts)
        .with_incremental(inc);
    let (hv, report) = engine
        .run(&mut m, src, HypervisorKind::Kvm)
        .expect("in-place transplant");
    (m, hv, report)
}

fn run(
    reg: &HypervisorRegistry,
    variant: u64,
    opts: Optimizations,
    inc: IncrementalConfig,
) -> InPlaceReport {
    run_keep(reg, variant, opts, inc).2
}

fn hot_cfg() -> IncrementalConfig {
    IncrementalConfig {
        dirty_rate_pages_per_sec: HOT_RATE,
        ..IncrementalConfig::default()
    }
}

fn incremental_opts() -> Optimizations {
    Optimizations {
        incremental_translate: true,
        ..Optimizations::default()
    }
}

fn ms(d: SimDuration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn mean_downtime_ms(reports: &[InPlaceReport]) -> f64 {
    reports.iter().map(|r| ms(r.downtime())).sum::<f64>() / reports.len() as f64
}

fn report_json(r: &InPlaceReport) -> Json {
    Json::obj()
        .with("downtime_ms", json::f(ms(r.downtime())))
        .with("total_ms", json::f(ms(r.total())))
        .with("device_prepare_ms", json::f(ms(r.device_prepare)))
        .with("pram_ms", json::f(ms(r.pram)))
        .with("warm_translate_ms", json::f(ms(r.warm_translate)))
        .with("translation_ms", json::f(ms(r.translation)))
        .with("delta_translate_ms", json::f(ms(r.delta_translate)))
        .with("reboot_ms", json::f(ms(r.reboot)))
        .with("restoration_ms", json::f(ms(r.restoration)))
        .with("dirty_fraction", json::f(r.dirty_fraction))
        .with("patched_sections", json::u(r.patched_sections))
        .with("pram_entries", json::u(r.pram_stats.entries))
        .with("uisr_bytes", json::u(r.uisr_bytes))
}

/// The warm-round trajectory the EWMA stop rule steered by.
fn warm_rounds_json(r: &InPlaceReport) -> Json {
    json::arr(r.warm_rounds.iter().map(|w| {
        Json::obj()
            .with("tick_pages", json::u(w.tick_pages))
            .with("dirty_pages", json::u(w.dirty_pages))
            .with("dirty_fraction", json::f(w.dirty_fraction))
            .with("redirty_ewma", json::f(w.redirty_ewma))
            .with("duration_ms", json::f(ms(w.duration)))
    }))
}

fn level_json(name: &str, reports: &[InPlaceReport]) -> Json {
    Json::obj()
        .with("level", json::s(name))
        .with("mean_downtime_ms", json::f(mean_downtime_ms(reports)))
        .with("variants", json::arr(reports.iter().map(report_json)))
}

fn main() {
    let reg = registry();
    println!(
        "inplace_smoke: {VMS} x {MEM_GB} GiB on M1, Xen -> KVM in place, \
         {VARIANTS} fleet variants, hot rate {HOT_RATE} pages/s"
    );

    // The cumulative §4.2.5 ablation ladder.
    let lvl_none = Optimizations::none();
    let lvl_prepare = Optimizations {
        prepare_before_pause: true,
        ..Optimizations::none()
    };
    let lvl_parallel = Optimizations::default();

    let idle = IncrementalConfig::default();
    let per_level = |opts: Optimizations, inc: IncrementalConfig| -> Vec<InPlaceReport> {
        (0..VARIANTS).map(|v| run(&reg, v, opts, inc)).collect()
    };

    // Levels 1–3 never consult the dirty rate (the engine only ticks
    // guests inside the warm loop), so one run serves both workloads.
    let none = per_level(lvl_none, idle);
    let prepare = per_level(lvl_prepare, idle);
    let parallel = per_level(lvl_parallel, idle);
    let inc_idle = per_level(incremental_opts(), idle);
    let inc_hot = per_level(incremental_opts(), hot_cfg());

    for (name, reports) in [
        ("none", &none),
        ("prepare", &prepare),
        ("+parallel", &parallel),
        ("+incremental idle", &inc_idle),
        ("+incremental hot", &inc_hot),
    ] {
        println!(
            "== {name:<18} == mean downtime {:8.2} ms  (translation {:7.2} ms, reboot {:7.2} ms)",
            mean_downtime_ms(reports),
            ms(reports[0].translation),
            ms(reports[0].reboot),
        );
    }

    // Gate: the hot-fleet downtime cut of +incremental vs +parallel.
    let hot_cut_pct = (1.0 - mean_downtime_ms(&inc_hot) / mean_downtime_ms(&parallel)) * 100.0;
    let idle_cut_pct = (1.0 - mean_downtime_ms(&inc_idle) / mean_downtime_ms(&parallel)) * 100.0;
    println!("  hot mean downtime cut:  {hot_cut_pct:.1}% (floor {DOWNTIME_CUT_FLOOR_PCT}%)");
    println!("  idle mean downtime cut: {idle_cut_pct:.1}%");
    assert!(
        hot_cut_pct >= DOWNTIME_CUT_FLOOR_PCT,
        "hot downtime cut {hot_cut_pct:.1}% below floor {DOWNTIME_CUT_FLOOR_PCT}%"
    );
    assert!(
        idle_cut_pct >= hot_cut_pct - 1.0,
        "idle guests must cut at least as deep as hot ones ({idle_cut_pct:.1}% vs {hot_cut_pct:.1}%)"
    );
    // The ladder must be monotone.
    for window in [&none, &prepare, &parallel, &inc_hot].windows(2) {
        assert!(
            mean_downtime_ms(window[1]) < mean_downtime_ms(window[0]),
            "each ablation level must shrink the blackout"
        );
    }
    // The warm loop must actually have iterated on the hot fleet and
    // paused with a converged dirty set.
    for r in &inc_hot {
        assert!(
            r.warm_rounds.len() >= 3,
            "hot fleet must need refresh rounds, got {}",
            r.warm_rounds.len()
        );
        assert!(
            r.dirty_fraction < 0.02,
            "warm loop must converge before pausing (dirty {:.4})",
            r.dirty_fraction
        );
    }

    // Determinism: simulated time and the fault-free warm loop are exact.
    let rerun = run(&reg, 0, incremental_opts(), hot_cfg());
    let deterministic = rerun == inc_hot[0];
    println!("  deterministic rerun identical: {deterministic}");
    assert!(deterministic, "incremental run must be deterministic");

    // Identity check (incremental off): an engine carrying a hot
    // IncrementalConfig but with the toggle off must be byte-identical to
    // the default engine.
    let off_identical = run(&reg, 0, lvl_parallel, hot_cfg()) == parallel[0];
    println!("  incremental-off identical:     {off_identical}");
    assert!(off_identical, "incremental_translate: false must be inert");

    // Restored-state check (incremental on, idle guests so no workload
    // runs between the two transplants): guest words, PRAM stats and UISR
    // bytes must match the full-translate path exactly.
    let (m_full, hv_full, r_full) = run_keep(&reg, 0, lvl_parallel, idle);
    let (m_inc, hv_inc, r_inc) = run_keep(&reg, 0, incremental_opts(), idle);
    let mut state_identical = r_full.pram_stats == r_inc.pram_stats
        && r_full.uisr_bytes == r_inc.uisr_bytes
        && r_full.vm_count == r_inc.vm_count;
    for i in 0..VMS as u64 {
        let name = format!("vm{i}");
        let pages = MEM_GB * (1 << 30) / 4096;
        let (id_f, id_i) = match (hv_full.find_vm(&name), hv_inc.find_vm(&name)) {
            (Some(a), Some(b)) => (a, b),
            _ => {
                state_identical = false;
                break;
            }
        };
        for gfn in probe_gfns(0, i, pages) {
            let wf = hv_full.read_guest(&m_full, id_f, gfn).expect("probe");
            let wi = hv_inc.read_guest(&m_inc, id_i, gfn).expect("probe");
            if wf != wi {
                state_identical = false;
            }
        }
    }
    println!("  incremental restored state:    identical = {state_identical}");
    assert!(
        state_identical,
        "incremental path must restore byte-identical state"
    );

    let profile = ablation_cost();
    let out = Json::obj()
        .with("bench", json::s("inplace_smoke"))
        .with("vms", json::u(VMS as u64))
        .with("mem_gb_per_vm", json::u(MEM_GB))
        .with("fleet_variants", json::u(VARIANTS))
        .with("hot_rate_pages_per_sec", json::f(HOT_RATE))
        .with("downtime_cut_floor_pct", json::f(DOWNTIME_CUT_FLOOR_PCT))
        .with(
            "cost_profile",
            Json::obj()
                .with("base", json::s("paper_calibrated"))
                .with(
                    "translate_ghz_s_per_gb",
                    json::f(profile.translate_ghz_s_per_gb),
                )
                .with("linux_boot_ghz_s", json::f(profile.linux_boot_ghz_s))
                .with("boot_s_per_host_gb", json::f(profile.boot_s_per_host_gb))
                .with("pram_parse_s_per_gb", json::f(profile.pram_parse_s_per_gb)),
        )
        .with(
            "ablation",
            json::arr([
                level_json("none", &none),
                level_json("prepare", &prepare),
                level_json("+parallel", &parallel),
                level_json("+incremental_idle", &inc_idle),
                level_json("+incremental_hot", &inc_hot),
            ]),
        )
        .with(
            "incremental_vs_parallel",
            Json::obj()
                .with("hot_mean_downtime_cut_pct", json::f(hot_cut_pct))
                .with("idle_mean_downtime_cut_pct", json::f(idle_cut_pct))
                .with(
                    "hot_mean_delta_translate_ms",
                    json::f(
                        inc_hot.iter().map(|r| ms(r.delta_translate)).sum::<f64>()
                            / inc_hot.len() as f64,
                    ),
                )
                .with(
                    "parallel_mean_translation_ms",
                    json::f(
                        parallel.iter().map(|r| ms(r.translation)).sum::<f64>()
                            / parallel.len() as f64,
                    ),
                ),
        )
        .with("warm_rounds_hot_v0", warm_rounds_json(&inc_hot[0]))
        .with("warm_rounds_idle_v0", warm_rounds_json(&inc_idle[0]))
        .with(
            "deterministic_identical",
            json::s(deterministic.to_string()),
        )
        .with(
            "incremental_off_identical",
            json::s(off_identical.to_string()),
        )
        .with(
            "incremental_state_identical",
            json::s(state_identical.to_string()),
        );
    let path = std::env::var("INPLACE_SMOKE_OUT").unwrap_or_else(|_| "BENCH_inplace.json".into());
    std::fs::write(&path, out.encode_pretty()).expect("write artifact");
    println!("wrote {path}");
}
