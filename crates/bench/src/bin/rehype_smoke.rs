//! rehype_smoke: recovery latency of crash-triggered unplanned transplant
//! from always-on warm UISR checkpoints.
//!
//! Models the ReHype-style scenario on an M1 host carrying 3 × 4 GiB VMs
//! under Xen with a KVM rescue image staged: the hypervisor is killed at
//! every warm-checkpoint phase — mid-warm-round, mid-refresh,
//! mid-finalize, and idle between ticks — and the unplanned path must
//! detect the crash, micro-reboot into KVM via the pre-staged kexec+PRAM
//! image, and restore every VM from the freshest persisted checkpoint.
//!
//! Two things are measured per phase:
//!
//! 1. **Recovery latency** (detection + rescue reboot + restore/resume):
//!    warm checkpoints keep UISR translation entirely out of this
//!    critical path.
//! 2. **Cold ablation**: the same crash without always-on checkpoints
//!    must salvage-translate every VM's state *and* build the PRAM
//!    directory before the micro-reboot can be taken
//!    ([`RecoveryReport::cold_latency`]).
//!
//! The gate invariant, enforced by `perf_gate rehype` against the
//! committed artifact: warm recovery beats the cold ablation by at least
//! `RECOVERY_CUT_FLOOR_PCT` at *every* crash phase, and the checkpoint
//! lag at the last completed tick stays strictly below the staleness
//! bound (the provable half of the state-loss bound). Determinism and
//! the inertness of the field-level-diff toggle are exported as
//! `identical`-suffixed fields CI gates on exact equality.
//!
//! Writes `BENCH_rehype.json` (override with `REHYPE_SMOKE_OUT`).

use hypertp_bench::registry;
use hypertp_core::{
    crash_gate, CheckpointConfig, Hypervisor, HypervisorKind, HypervisorRegistry, RecoveryReport,
    UnplannedRecovery, VmConfig, WarmCheckpointer,
};
use hypertp_machine::{Gfn, Machine, MachineSpec};
use hypertp_sim::cost::CostModel;
use hypertp_sim::fault::{FaultPlan, InjectionPoint};
use hypertp_sim::json::{self, Json};
use hypertp_sim::pool::WorkerPool;
use hypertp_sim::SimDuration;

/// Fleet size: three state-dense guests on one M1 host.
const VMS: u64 = 3;
/// Per-VM memory in GiB (12 GiB of guest RAM on the 16 GiB host).
const MEM_GB: u64 = 4;
/// Background checkpoint intervals before the crash window.
const TICKS: u64 = 2;
/// Workload redirty pages per VM per interval. High enough that the EWMA
/// pacer refreshes every VM every tick (`WORKLOAD * 2 > BOUND`).
const WORKLOAD: u64 = 1536;
/// Per-VM staleness bound in pages: the checkpointer must re-persist
/// before un-persisted staleness can reach this.
const BOUND: u64 = 2048;
/// Committed regression floor: warm recovery must beat the cold ablation
/// by at least this percentage at every crash phase. `perf_gate rehype`
/// enforces it.
const RECOVERY_CUT_FLOOR_PCT: f64 = 25.0;
/// Fault-plan seed (the crash schedule is ordinal-forced; the seed only
/// feeds the log's replay identity).
const SEED: u64 = 0x4e47_2021;

fn checkpoint_cfg(field_diff: bool) -> CheckpointConfig {
    CheckpointConfig {
        staleness_bound_pages: BOUND,
        field_diff,
        ..CheckpointConfig::default()
    }
}

/// Builds the host: M1 under Xen with 3 × 4 GiB seeded guests.
fn host(reg: &HypervisorRegistry) -> (Machine, Box<dyn Hypervisor>) {
    let mut m = Machine::new(MachineSpec::m1());
    let mut src = reg
        .create(HypervisorKind::Xen, &mut m)
        .expect("registry has Xen");
    for i in 0..VMS {
        let cfg = VmConfig::small(format!("vm{i}"))
            .with_memory_gb(MEM_GB)
            .with_vcpus(1 + (i % 2) as u32);
        let pages = cfg.pages();
        let id = src.create_vm(&mut m, &cfg).expect("capacity");
        for k in 0..2048u64 {
            let gfn = Gfn((k * 131 + i * 8191) % pages);
            src.write_guest(&mut m, id, gfn, k ^ (0x9e37_79b9 * (i + 1)))
                .expect("seed write");
        }
    }
    (m, src)
}

/// One crash run: checkpoint for up to `TICKS` intervals with the crash
/// gate armed at `ordinal`, then recover. The checkpointer consults the
/// gate three times per tick (warm-round, refresh, finalize), so after
/// one clean tick ordinals 4..=6 land in the phases of tick 2; ordinal 7
/// is consulted by the idle watchdog after both ticks complete.
fn run_crash(reg: &HypervisorRegistry, ordinal: u64, field_diff: bool) -> (String, RecoveryReport) {
    let faults = FaultPlan::new(SEED);
    faults.arm_calls(InjectionPoint::HypervisorCrash, &[ordinal]);
    let (mut m, mut src) = host(reg);
    let mut ckpt = WarmCheckpointer::start_with(
        &mut m,
        src.as_mut(),
        HypervisorKind::Kvm,
        checkpoint_cfg(field_diff),
        CostModel::paper_calibrated(),
        faults.clone(),
        WorkerPool::from_env(),
    )
    .expect("checkpointer start");
    let mut phase = None;
    for _ in 0..TICKS {
        let tr = ckpt
            .tick(&mut m, src.as_mut(), WORKLOAD)
            .expect("checkpoint tick");
        if let Some(p) = tr.crashed {
            phase = Some(p.name());
            break;
        }
    }
    let phase = phase.unwrap_or_else(|| {
        assert!(
            crash_gate(&faults, "idle watchdog"),
            "armed ordinal {ordinal} never fired"
        );
        "idle"
    });
    let recovery = UnplannedRecovery::new(reg).with_faults(faults);
    let (hv, report) = recovery.recover(&mut m, src, ckpt).expect("recovery");
    assert_eq!(hv.kind(), HypervisorKind::Kvm);
    assert_eq!(report.vm_count, VMS as usize, "VM lost at {phase}");
    (phase.to_string(), report)
}

fn ms(d: SimDuration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn phase_json(phase: &str, r: &RecoveryReport) -> Json {
    Json::obj()
        .with("phase", json::s(phase))
        .with("recovery_ms", json::f(ms(r.recovery_latency)))
        .with("cold_ms", json::f(ms(r.cold_latency)))
        .with("cut_pct", json::f(r.warm_speedup_pct()))
        .with("detection_ms", json::f(ms(r.detection)))
        .with("reboot_ms", json::f(ms(r.reboot)))
        .with("restoration_ms", json::f(ms(r.restoration)))
        .with("network_ms", json::f(ms(r.network)))
        .with("checkpoint_ticks", json::u(r.checkpoint_ticks))
        .with("checkpoint_refreshes", json::u(r.checkpoint_refreshes))
        .with("background_ms", json::f(ms(r.background_time)))
        .with("total_loss_pages", json::u(r.total_loss_pages()))
        .with(
            "losses",
            json::arr(r.losses.iter().map(|l| {
                Json::obj()
                    .with("vm", json::s(&l.name))
                    .with("loss_pages", json::u(l.loss_pages))
                    .with("checkpoint_lag_pages", json::u(l.checkpoint_lag_pages))
                    .with("tail_pages", json::u(l.tail_pages))
            })),
        )
}

fn main() {
    let reg = registry();
    println!(
        "rehype_smoke: {VMS} x {MEM_GB} GiB on M1, Xen crash -> KVM rescue, \
         bound {BOUND} pages, {WORKLOAD} pages/tick"
    );

    // The crash matrix: every checkpointer phase plus the idle window.
    let phases: Vec<(String, RecoveryReport)> = [4u64, 5, 6, 7]
        .into_iter()
        .map(|ordinal| run_crash(&reg, ordinal, false))
        .collect();

    for (phase, r) in &phases {
        println!(
            "== crash at {phase:<10} == recovery {:8.2} ms (detect {:6.2} + reboot {:7.2} + \
             restore {:6.2}), cold {:8.2} ms, cut {:5.1}%, loss {} pages",
            ms(r.recovery_latency),
            ms(r.detection),
            ms(r.reboot),
            ms(r.restoration),
            ms(r.cold_latency),
            r.warm_speedup_pct(),
            r.total_loss_pages(),
        );
    }

    // Gate floor: warm must beat cold at every phase.
    let min_cut = phases
        .iter()
        .map(|(_, r)| r.warm_speedup_pct())
        .fold(f64::INFINITY, f64::min);
    let mean_cut = phases
        .iter()
        .map(|(_, r)| r.warm_speedup_pct())
        .sum::<f64>()
        / phases.len() as f64;
    println!("  warm-vs-cold cut: mean {mean_cut:.1}%, min {min_cut:.1}% (floor {RECOVERY_CUT_FLOOR_PCT}%)");
    assert!(
        min_cut >= RECOVERY_CUT_FLOOR_PCT,
        "warm recovery cut {min_cut:.1}% below floor {RECOVERY_CUT_FLOOR_PCT}%"
    );

    // The provable state-loss bound: checkpoint lag at the last completed
    // tick stays strictly below the staleness bound at every phase.
    let max_lag = phases
        .iter()
        .flat_map(|(_, r)| r.losses.iter().map(|l| l.checkpoint_lag_pages))
        .max()
        .unwrap_or(0);
    println!("  max checkpoint lag: {max_lag} pages (bound {BOUND})");
    for (phase, r) in &phases {
        assert!(
            r.within_bound(),
            "state-loss bound blown at {phase}:\n{}",
            r.render()
        );
    }

    // Determinism: simulated time and the forced crash schedule are
    // exact, so a rerun must reproduce the report byte-for-byte.
    let (_, rerun) = run_crash(&reg, 4, false);
    let deterministic = rerun.render() == phases[0].1.render();
    println!("  deterministic rerun identical: {deterministic}");
    assert!(deterministic, "crash recovery must be deterministic");

    // Field-level UISR diffing is an encoding detail of the warm cache:
    // switching it on must not change what recovery restores or costs.
    let (_, fielded) = run_crash(&reg, 4, true);
    let field_diff_identical = fielded.render() == phases[0].1.render();
    println!("  field-diff-on identical:       {field_diff_identical}");
    assert!(field_diff_identical, "field_diff must not change recovery");

    let out = Json::obj()
        .with("bench", json::s("rehype_smoke"))
        .with("vms", json::u(VMS))
        .with("mem_gb_per_vm", json::u(MEM_GB))
        .with("source", json::s("xen"))
        .with("rescue", json::s("kvm"))
        .with("ticks", json::u(TICKS))
        .with("workload_pages_per_tick", json::u(WORKLOAD))
        .with("recovery_cut_floor_pct", json::f(RECOVERY_CUT_FLOOR_PCT))
        .with(
            "phases",
            json::arr(phases.iter().map(|(p, r)| phase_json(p, r))),
        )
        .with(
            "warm_vs_cold",
            Json::obj()
                .with("mean_cut_pct", json::f(mean_cut))
                .with("min_cut_pct", json::f(min_cut)),
        )
        .with(
            "loss",
            Json::obj()
                .with("bound_pages", json::u(BOUND))
                .with("max_lag_pages", json::u(max_lag)),
        )
        .with(
            "deterministic_identical",
            json::s(deterministic.to_string()),
        )
        .with(
            "field_diff_identical",
            json::s(field_diff_identical.to_string()),
        );
    let path = std::env::var("REHYPE_SMOKE_OUT").unwrap_or_else(|_| "BENCH_rehype.json".into());
    std::fs::write(&path, out.encode_pretty()).expect("write artifact");
    println!("wrote {path}");
}
