//! Regenerates the paper's fig12 (see DESIGN.md experiment index).

fn main() {
    print!("{}", hypertp_bench::experiments::fig11_12::fig12());
}
