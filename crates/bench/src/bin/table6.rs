//! Regenerates the paper's table6 (see DESIGN.md experiment index).

fn main() {
    print!("{}", hypertp_bench::experiments::table5_6::table6());
}
