//! Regenerates the paper's fig10 (see DESIGN.md experiment index).

fn main() {
    print!("{}", hypertp_bench::experiments::fig7_10::fig10());
}
