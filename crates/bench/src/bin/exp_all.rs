//! Runs every experiment in paper order (tables 1-6, figures 6-14, and
//! the optimization ablation).

fn main() {
    print!("{}", hypertp_bench::experiments::run_all());
}
