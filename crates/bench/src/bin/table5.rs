//! Regenerates the paper's table5 (see DESIGN.md experiment index).

fn main() {
    print!("{}", hypertp_bench::experiments::table5_6::table5());
}
