//! adaptive_smoke: downtime wins of the adaptive pre-copy control plane.
//!
//! Reproduces a fig-12-style heterogeneous fleet (two mostly-idle guests,
//! two hot guests whose steady-state dirty set never converges under the
//! static 64-page threshold) and migrates it Xen → KVM over the
//! content-aware wire four ways:
//!
//! 1. **Static**: the pre-controller knobs (`stop_threshold_pages: 64`,
//!    30-round cap, no throttling). The hot guests burn every round and
//!    pause with their full steady-state dirty set.
//! 2. **Adaptive**: auto-converge enabled. The non-convergence detector
//!    throttles the hot guests until the dirty set fits under the
//!    threshold — the stop set, and with it the downtime, collapses.
//!    The gate invariant: mean downtime drops by at least
//!    `downtime_cut_floor_pct` at equal-or-lower makespan and
//!    equal-or-fewer wire bytes.
//! 3. **Budgeted**: `downtime_budget` set; every VM (hot or idle) must
//!    land at or under the budget.
//! 4. **Scheduled**: the same fleet under bounded concurrency, FIFO vs
//!    shortest-predicted-first admission. SPDF clears the idle guests
//!    first, cutting the mean VM-ready time (and, with the hot guests
//!    arriving first in input order, the makespan too).
//!
//! The adaptive run is executed twice and compared field-by-field —
//! simulated time is deterministic, so CI can gate on exact equality.
//! Writes `BENCH_adaptive.json` (current directory, override with
//! `ADAPTIVE_SMOKE_OUT`); `perf_gate adaptive` reads the committed copy
//! and fails the build if a fresh run regresses.

use hypertp_bench::registry;
use hypertp_core::{HypervisorKind, VmConfig};
use hypertp_machine::{Gfn, Machine, MachineSpec};
use hypertp_migrate::{
    migrate_fleet, FleetOrder, FleetPolicy, FleetReport, FleetVm, MigrationConfig, MigrationTp,
    WireMode,
};
use hypertp_sim::json::{self, Json};
use hypertp_sim::{SimClock, SimDuration, WorkerPool};

/// Per-VM memory in GiB.
const MEM_GB: u64 = 1;
/// Dirty rates (pages/second) of the four-VM fleet, in input (arrival)
/// order: the hot guests arrive first, so FIFO admission is the naive
/// worst case the scheduler must beat.
const RATES: [f64; 4] = [120_000.0, 60_000.0, 20.0, 20.0];
/// Committed regression floor: adaptive mode must cut the fleet's mean
/// downtime by at least this percentage vs. the static configuration.
/// `perf_gate adaptive` enforces it.
const DOWNTIME_CUT_FLOOR_PCT: f64 = 25.0;
/// Downtime budget of the budgeted run.
const BUDGET: SimDuration = SimDuration::from_millis(10);

/// Everything `run` needs for one `migrate_fleet` call: source and
/// destination machines, their hypervisors, and the VM fleet.
type FleetSetup = (
    Machine,
    Machine,
    Box<dyn hypertp_core::Hypervisor>,
    Box<dyn hypertp_core::Hypervisor>,
    Vec<FleetVm>,
);

/// Builds the heterogeneous source fleet and returns everything needed
/// for one `migrate_fleet` call.
fn fleet_setup() -> FleetSetup {
    let reg = registry();
    let clock = SimClock::new();
    let mut src_m = Machine::with_clock(MachineSpec::m1(), clock.clone());
    let dst_m = Machine::with_clock(MachineSpec::m1(), clock);
    let mut src = reg
        .create(HypervisorKind::Xen, &mut src_m)
        .expect("registry has Xen");
    let mut vms = Vec::new();
    for (i, &rate) in RATES.iter().enumerate() {
        let cfg = VmConfig::small(format!("vm{i}")).with_memory_gb(MEM_GB);
        let pages = cfg.pages();
        let id = src.create_vm(&mut src_m, &cfg).expect("capacity");
        // Deterministic seed content so the content-aware path sees
        // non-zero pages from round 0.
        for k in 0..2048u64 {
            src.write_guest(&mut src_m, id, Gfn((k * 13 + i as u64 * 7919) % pages), {
                k ^ (0x9e37_79b9 << i)
            })
            .expect("seed write");
        }
        vms.push(FleetVm::with_dirty_rate(id, rate));
    }
    let mut dst_m = dst_m;
    let dst = reg
        .create(HypervisorKind::Kvm, &mut dst_m)
        .expect("registry has KVM");
    (src_m, dst_m, src, dst, vms)
}

/// Migrates a fresh copy of the fleet under the given config/policy.
fn run(config: MigrationConfig, policy: FleetPolicy) -> FleetReport {
    let (mut src_m, mut dst_m, mut src, mut dst, vms) = fleet_setup();
    let tp = MigrationTp::new()
        .with_config(config)
        .with_pool(WorkerPool::from_env());
    migrate_fleet(
        &tp,
        &mut src_m,
        src.as_mut(),
        &vms,
        &mut dst_m,
        dst.as_mut(),
        policy,
    )
    .expect("fleet migration")
}

fn base_config() -> MigrationConfig {
    MigrationConfig {
        verify_contents: true,
        wire_mode: WireMode::ContentAware,
        ..MigrationConfig::default()
    }
}

fn adaptive_config() -> MigrationConfig {
    let mut cfg = base_config();
    cfg.control.auto_converge = true;
    cfg
}

fn ms(d: SimDuration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn fleet_json(fleet: &FleetReport) -> Json {
    Json::obj()
        .with("mean_downtime_ms", json::f(ms(fleet.mean_downtime())))
        .with("mean_ready_secs", json::f(fleet.mean_ready().as_secs_f64()))
        .with("makespan_secs", json::f(fleet.makespan.as_secs_f64()))
        .with("total_bytes", json::u(fleet.total_bytes()))
        .with(
            "per_vm",
            json::arr(fleet.reports.iter().map(|r| {
                Json::obj()
                    .with("vm", json::s(r.vm_name.clone()))
                    .with("rounds", json::u(r.rounds.len() as u64))
                    .with("downtime_ms", json::f(ms(r.downtime)))
                    .with("total_secs", json::f(r.total.as_secs_f64()))
                    .with("bytes_sent", json::u(r.bytes_sent))
                    .with("stop_pages", json::u(r.stop_pages))
                    .with("final_throttle", json::f(r.final_throttle))
            })),
        )
}

/// Per-round controller telemetry of one VM: the EWMA trajectory the
/// controller steered by.
fn telemetry_json(fleet: &FleetReport, vm: usize) -> Json {
    let report = &fleet.reports[vm];
    Json::obj()
        .with("vm", json::s(report.vm_name.clone()))
        .with(
            "rounds",
            json::arr(report.rounds.iter().map(|r| {
                Json::obj()
                    .with("pages", json::u(r.pages))
                    .with("wire_bytes", json::u(r.wire_bytes))
                    .with("dirtied", json::u(r.dirtied))
                    .with("dirty_rate_est", json::f(r.dirty_rate_est))
                    .with("drain_rate_est", json::f(r.drain_rate_est))
                    .with("throughput_est", json::f(r.throughput_est))
                    .with("compression_est", json::f(r.compression_est))
                    .with("stop_threshold", json::u(r.stop_threshold))
                    .with("throttle", json::f(r.throttle))
            })),
        )
}

fn identical(a: &FleetReport, b: &FleetReport) -> bool {
    a.admission == b.admission
        && a.makespan == b.makespan
        && a.reports.len() == b.reports.len()
        && a.reports.iter().zip(&b.reports).all(|(x, y)| {
            x.vm_name == y.vm_name
                && x.rounds == y.rounds
                && x.downtime == y.downtime
                && x.total == y.total
                && x.bytes_sent == y.bytes_sent
                && x.uisr_bytes == y.uisr_bytes
        })
}

fn main() {
    println!(
        "adaptive_smoke: {} x {MEM_GB} GiB fleet (rates {RATES:?}), Xen -> KVM, content-aware",
        RATES.len()
    );

    // 1 + 2. Static vs adaptive under the legacy policy (FIFO, unlimited
    // concurrency): the controller is the only variable.
    let stat = run(base_config(), FleetPolicy::default());
    let adap = run(adaptive_config(), FleetPolicy::default());
    let adap2 = run(adaptive_config(), FleetPolicy::default());
    let deterministic = identical(&adap, &adap2);

    let cut_pct =
        (1.0 - adap.mean_downtime().as_secs_f64() / stat.mean_downtime().as_secs_f64()) * 100.0;
    println!(
        "== static   == mean downtime {:.2} ms, makespan {:.2} s, {} B",
        ms(stat.mean_downtime()),
        stat.makespan.as_secs_f64(),
        stat.total_bytes()
    );
    println!(
        "== adaptive == mean downtime {:.2} ms, makespan {:.2} s, {} B",
        ms(adap.mean_downtime()),
        adap.makespan.as_secs_f64(),
        adap.total_bytes()
    );
    println!("  mean downtime cut: {cut_pct:.1}% (floor {DOWNTIME_CUT_FLOOR_PCT}%)");
    println!("  deterministic rerun identical: {deterministic}");
    assert!(deterministic, "adaptive fleet must be deterministic");
    assert!(
        cut_pct >= DOWNTIME_CUT_FLOOR_PCT,
        "adaptive downtime cut {cut_pct:.1}% below floor {DOWNTIME_CUT_FLOOR_PCT}%"
    );
    assert!(
        adap.makespan <= stat.makespan,
        "adaptive must not lengthen the campaign: {:?} > {:?}",
        adap.makespan,
        stat.makespan
    );
    assert!(
        adap.total_bytes() <= stat.total_bytes(),
        "throttling must not add wire bytes"
    );
    for r in &stat.reports[..2] {
        assert!(
            r.rounds.len() as u32 >= MigrationConfig::default().max_rounds,
            "{}: static hot guest must burn the round cap",
            r.vm_name
        );
    }
    for r in &adap.reports[..2] {
        assert!(
            r.final_throttle < 1.0,
            "{}: adaptive hot guest must have throttled",
            r.vm_name
        );
    }

    // 3. Budgeted run: every VM, hot or idle, lands at or under BUDGET.
    let mut budget_cfg = base_config();
    budget_cfg.downtime_budget = Some(BUDGET);
    let budgeted = run(budget_cfg, FleetPolicy::default());
    let max_downtime = budgeted
        .reports
        .iter()
        .map(|r| r.downtime)
        .max()
        .expect("non-empty fleet");
    println!(
        "== budgeted == max downtime {:.2} ms (budget {:.2} ms)",
        ms(max_downtime),
        ms(BUDGET)
    );
    assert!(
        max_downtime <= BUDGET,
        "budget violated: {max_downtime:?} > {BUDGET:?}"
    );

    // 4. Fleet scheduler: bounded concurrency, FIFO vs SPDF admission.
    // The hot guests arrive first in input order, so FIFO parks both on
    // the two slots while the idle guests wait.
    let bounded = |order| FleetPolicy {
        order,
        max_concurrent: 2,
        compression_hint: 1.0,
    };
    let fifo = run(adaptive_config(), bounded(FleetOrder::Fifo));
    let spdf = run(
        adaptive_config(),
        bounded(FleetOrder::ShortestPredictedFirst),
    );
    let ready_cut_pct =
        (1.0 - spdf.mean_ready().as_secs_f64() / fifo.mean_ready().as_secs_f64()) * 100.0;
    println!(
        "== scheduler == fifo mean ready {:.2} s (admission {:?}); spdf {:.2} s (admission {:?}); cut {ready_cut_pct:.1}%",
        fifo.mean_ready().as_secs_f64(),
        fifo.admission,
        spdf.mean_ready().as_secs_f64(),
        spdf.admission,
    );
    assert!(
        spdf.mean_ready() < fifo.mean_ready(),
        "SPDF must cut the mean VM-ready time"
    );
    // The makespan is pinned by the hot guests under either order (they
    // merely swap slots); only shared-wire-cache encoding order shifts
    // it by microseconds. Guard against a real regression, not noise.
    let makespan_ratio = spdf.makespan.as_secs_f64() / fifo.makespan.as_secs_f64();
    assert!(
        makespan_ratio <= 1.01,
        "SPDF must not lengthen the campaign: ratio {makespan_ratio:.4}"
    );
    assert_ne!(fifo.admission, spdf.admission, "orders actually differ");

    let out = Json::obj()
        .with("bench", json::s("adaptive_smoke"))
        .with("vms", json::u(RATES.len() as u64))
        .with("mem_gb_per_vm", json::u(MEM_GB))
        .with(
            "dirty_rates_pages_per_sec",
            json::arr(RATES.iter().map(|&r| json::f(r))),
        )
        .with("wire_mode", json::s("content_aware"))
        .with("downtime_cut_floor_pct", json::f(DOWNTIME_CUT_FLOOR_PCT))
        .with("static", fleet_json(&stat))
        .with("adaptive", fleet_json(&adap))
        .with(
            "adaptive_vs_static",
            Json::obj()
                .with("mean_downtime_cut_pct", json::f(cut_pct))
                .with(
                    "makespan_ratio",
                    json::f(adap.makespan.as_secs_f64() / stat.makespan.as_secs_f64()),
                )
                .with(
                    "bytes_ratio",
                    json::f(adap.total_bytes() as f64 / stat.total_bytes() as f64),
                ),
        )
        .with(
            "budget",
            Json::obj()
                .with("budget_ms", json::f(ms(BUDGET)))
                .with("max_downtime_ms", json::f(ms(max_downtime)))
                .with("fleet", fleet_json(&budgeted)),
        )
        .with(
            "scheduler",
            Json::obj()
                .with("max_concurrent", json::u(2))
                .with(
                    "fifo",
                    fleet_json(&fifo).with(
                        "admission",
                        json::arr(fifo.admission.iter().map(|&i| json::u(i as u64))),
                    ),
                )
                .with(
                    "spdf",
                    fleet_json(&spdf).with(
                        "admission",
                        json::arr(spdf.admission.iter().map(|&i| json::u(i as u64))),
                    ),
                )
                .with("ready_cut_pct", json::f(ready_cut_pct)),
        )
        .with("telemetry", telemetry_json(&adap, 0))
        .with(
            "deterministic_identical",
            json::s(deterministic.to_string()),
        );
    let path = std::env::var("ADAPTIVE_SMOKE_OUT").unwrap_or_else(|_| "BENCH_adaptive.json".into());
    std::fs::write(&path, out.encode_pretty()).expect("write artifact");
    println!("wrote {path}");
}
