//! Regenerates the paper's fig6 (see DESIGN.md experiment index).

fn main() {
    print!("{}", hypertp_bench::experiments::fig6::run());
}
