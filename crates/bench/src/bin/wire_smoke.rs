//! wire_smoke: wire-byte reduction of the content-aware migration path.
//!
//! Reproduces the fig-12-style idle-VM migration workload (§5.2: mostly
//! idle guests, near-zero dirty rate) and migrates the same 4 × 1 GiB
//! Xen fleet to KVM twice — once with [`WireMode::Raw`], once with
//! [`WireMode::ContentAware`] — then checks three things:
//!
//! 1. **Equivalence**: both runs land byte-identical destination guest
//!    memory (serial-pool checksums) and identical UISR volume.
//! 2. **Reduction**: the content-aware run keeps at least
//!    `reduction_floor_pct` of the raw page bytes off the wire (zero
//!    elision dominates on idle VMs; cross-VM dedup and XOR+RLE deltas
//!    cover the shared and re-dirtied pages).
//! 3. **Delta coverage**: a second, dirtying run (fig-12 busy phase)
//!    must produce at least one `Delta` frame so the codec path is
//!    exercised end to end, not just the zero/dup fast paths.
//! 4. **Ring identity**: the same fleet migrated with
//!    `legacy_gather: true` (PR 3's per-round gather-`Vec` path) lands
//!    byte-identical destinations, reports and wire stats as the
//!    zero-copy frame ring — the default path is a pure optimization.
//! 5. **Encode throughput**: a microbench drives both encode paths over
//!    identical page rounds (zeros, dups, uniques, re-dirtied pages) and
//!    reports committed pages/second; the ring must beat the per-page
//!    `encode_page` path by at least `encode.speedup_floor`.
//!
//! Writes `BENCH_wire.json` (in the current directory, override with
//! `WIRE_SMOKE_OUT`). CI's `perf_gate` reads the committed copy of this
//! artifact and fails the build if a fresh run regresses below the
//! committed `reduction_floor_pct` or `encode.speedup_floor`.

use std::time::Instant;

use hypertp_bench::registry;
use hypertp_core::{HypervisorKind, VmConfig};
use hypertp_machine::{Extent, Gfn, Machine, MachineSpec};
use hypertp_migrate::{
    migrate_many, FrameKind, FrameRing, MigrationConfig, MigrationReport, MigrationTp,
    TransferCache, WireMode, WireStats,
};
use hypertp_sim::hash::digest_pages_into;
use hypertp_sim::json::{self, Json};
use hypertp_sim::{SimClock, WorkerPool};

/// VMs in the idle fleet.
const VMS: u32 = 4;
/// Per-VM memory in GiB.
const MEM_GB: u64 = 1;
/// Committed regression floor: a fresh run must keep at least this
/// percentage of raw page bytes off the wire. `perf_gate` enforces it.
const REDUCTION_FLOOR_PCT: f64 = 30.0;
/// Committed regression floor for the zero-copy encode path: ring
/// throughput must beat the legacy per-page path by at least this factor
/// (measured well above 2x; the floor leaves CI-noise headroom).
/// `perf_gate` enforces it.
const ENCODE_SPEEDUP_FLOOR: f64 = 1.5;

/// Outcome of one fleet migration: wall seconds, per-VM reports, and a
/// destination fingerprint (serial-pool guest checksums + UISR bytes)
/// that must not depend on the wire mode.
struct Run {
    wall: f64,
    reports: Vec<MigrationReport>,
    dst_checksums: Vec<u64>,
    uisr_bytes: u64,
}

/// Migrates the idle fleet with the given wire mode and dirty rate.
///
/// Guest content is seeded deterministically: a shared block written
/// identically into every VM (cross-VM dedup fodder) plus a per-VM
/// unique block; everything else stays zero, as on a freshly booted
/// idle guest (§5.2's fig-12 shape).
fn run_fleet(wire_mode: WireMode, dirty_rate: f64) -> Run {
    run_fleet_with(wire_mode, dirty_rate, false)
}

fn run_fleet_with(wire_mode: WireMode, dirty_rate: f64, legacy_gather: bool) -> Run {
    let reg = registry();
    let clock = SimClock::new();
    let mut src_m = Machine::with_clock(MachineSpec::m1(), clock.clone());
    let mut dst_m = Machine::with_clock(MachineSpec::m1(), clock);
    let mut src = reg
        .create(HypervisorKind::Xen, &mut src_m)
        .expect("registry has Xen");
    for i in 0..VMS {
        let cfg = VmConfig::small(format!("idle{i}")).with_memory_gb(MEM_GB);
        let pages = cfg.pages();
        let id = src.create_vm(&mut src_m, &cfg).expect("capacity");
        // Shared block: the same 1024 words at the same gfns in every VM.
        for k in 0..1024u64 {
            src.write_guest(&mut src_m, id, Gfn(k % pages), k ^ 0x5bd1_e995)
                .expect("seed write");
        }
        // Unique block: 512 VM-specific words further up.
        for k in 0..512u64 {
            let gfn = Gfn((4096 + k * 3 + u64::from(i) * 7919) % pages);
            src.write_guest(&mut src_m, id, gfn, k ^ (u64::from(i) << 32))
                .expect("seed write");
        }
    }
    let mut dst = reg
        .create(HypervisorKind::Kvm, &mut dst_m)
        .expect("registry has KVM");
    let ids = src.vm_ids();
    let tp = MigrationTp::new()
        .with_config(MigrationConfig {
            verify_contents: true,
            dirty_rate_pages_per_sec: dirty_rate,
            wire_mode,
            legacy_gather,
            ..MigrationConfig::default()
        })
        .with_pool(WorkerPool::from_env());
    let t = Instant::now();
    let reports = migrate_many(
        &tp,
        &mut src_m,
        src.as_mut(),
        &ids,
        &mut dst_m,
        dst.as_mut(),
    )
    .expect("migration");
    let wall = t.elapsed().as_secs_f64();

    let mut dst_checksums = Vec::new();
    for id in dst.vm_ids() {
        let map = dst.guest_memory_map(id).expect("map");
        let extents: Vec<Extent> = map.iter().map(|(_, e)| *e).collect();
        dst_checksums.push(
            dst_m
                .ram()
                .checksum_with_pool(&extents, &WorkerPool::serial()),
        );
    }
    let uisr_bytes = reports.iter().map(|r| r.uisr_bytes).sum();
    Run {
        wall,
        reports,
        dst_checksums,
        uisr_bytes,
    }
}

fn merged_wire(reports: &[MigrationReport]) -> WireStats {
    let mut wire = WireStats::default();
    for r in reports {
        wire.merge(&r.wire);
    }
    wire
}

fn kind_json(wire: &WireStats) -> Json {
    let mut obj = Json::obj();
    for kind in FrameKind::ALL {
        obj.push(
            kind.name(),
            Json::obj()
                .with("frames", json::u(wire.count(kind)))
                .with("bytes", json::u(wire.bytes(kind))),
        );
    }
    obj
}

/// Outcome of one encode-path microbench: committed pages/second and the
/// total accounted wire bytes (must match across paths).
struct EncodeBench {
    pages_per_sec: f64,
    wire_bytes: u64,
}

/// Pages per microbench round.
const ENCODE_PAGES: u64 = 65_536;
/// Rounds per microbench path (round 0 is the cold full copy; later
/// rounds re-dirty a slice, exercising the delta path both encoders
/// share with the engine).
const ENCODE_ROUNDS: u64 = 6;

/// The word for `gfn` in `round`: a fig-12-ish mix — mostly zero, a
/// recurring block (dup fodder), unique words, and a re-dirtied slice
/// whose content changes every round (delta fodder).
fn encode_word(round: u64, gfn: u64) -> u64 {
    match gfn % 8 {
        0..=4 => 0,
        5 => 0x5bd1_e995,
        6 => gfn.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1,
        _ => (gfn ^ (round << 56)) | 1,
    }
}

/// Drives one encode path over the microbench rounds. `encode` receives
/// (cache, gfns, words) and returns the round's accounted wire bytes;
/// the cache round is committed around it exactly as the engine does.
fn encode_bench(mut encode: impl FnMut(&TransferCache, &[Gfn], &[u64]) -> u64) -> EncodeBench {
    let cache = TransferCache::new();
    let gfns: Vec<Gfn> = (0..ENCODE_PAGES).map(Gfn).collect();
    let mut words = vec![0u64; ENCODE_PAGES as usize];
    let mut wire_bytes = 0u64;
    let t = Instant::now();
    for round in 0..ENCODE_ROUNDS {
        for (w, g) in words.iter_mut().zip(&gfns) {
            *w = encode_word(round, g.0);
        }
        cache.begin_round();
        wire_bytes += encode(&cache, &gfns, &words);
        cache.commit_round();
    }
    let wall = t.elapsed().as_secs_f64();
    EncodeBench {
        pages_per_sec: (ENCODE_PAGES * ENCODE_ROUNDS) as f64 / wall.max(1e-9),
        wire_bytes,
    }
}

fn main() {
    println!("wire_smoke: {VMS} x {MEM_GB} GiB idle fleet, Xen -> KVM");

    // 1 + 2. Idle fleet: raw vs content-aware, equivalence + reduction.
    let raw = run_fleet(WireMode::Raw, 0.0);
    let ca = run_fleet(WireMode::ContentAware, 0.0);
    let identical = raw.dst_checksums == ca.dst_checksums && raw.uisr_bytes == ca.uisr_bytes;
    let wire = merged_wire(&ca.reports);
    let raw_bytes: u64 = raw.reports.iter().map(|r| r.bytes_sent).sum();
    let ca_bytes: u64 = ca.reports.iter().map(|r| r.bytes_sent).sum();
    let reduction_pct = (1.0 - wire.compression_ratio()) * 100.0;
    println!(
        "== idle fleet == raw {} B in {:.3} s; content-aware {} B in {:.3} s",
        raw_bytes, raw.wall, ca_bytes, ca.wall
    );
    println!(
        "  wire {} B vs raw-equivalent {} B: {reduction_pct:.1}% kept off the wire (floor {REDUCTION_FLOOR_PCT}%)",
        wire.wire_bytes(),
        wire.raw_equivalent_bytes()
    );
    for kind in FrameKind::ALL {
        println!(
            "  {:>5}: {:>8} frames, {:>12} B",
            kind.name(),
            wire.count(kind),
            wire.bytes(kind)
        );
    }
    println!("  destinations identical: {identical}");
    assert!(identical, "wire modes must land identical destinations");
    assert!(
        reduction_pct >= REDUCTION_FLOOR_PCT,
        "idle-fleet wire reduction {reduction_pct:.1}% below floor {REDUCTION_FLOOR_PCT}%"
    );
    assert!(
        wire.count(FrameKind::Dup) > 0,
        "shared seed block must produce cross-VM dup frames"
    );
    println!(
        "  dedup cache: {}/{} entries, {} evictions, hit rate {:.1}% ({}/{} lookups)",
        wire.cache_occupancy(),
        wire.cache_capacity(),
        wire.cache_evictions(),
        wire.dedup_hit_rate() * 100.0,
        wire.cache_dup_hits(),
        wire.cache_dup_lookups(),
    );
    assert!(
        wire.cache_capacity() > 0,
        "content-aware run must report the cache cap"
    );
    assert!(
        wire.cache_occupancy() <= wire.cache_capacity(),
        "cache occupancy must respect the cap"
    );

    // 3. Dirtying fleet: re-dirtied pages must travel as XOR+RLE deltas.
    let dirty = run_fleet(WireMode::ContentAware, 2000.0);
    let dirty_wire = merged_wire(&dirty.reports);
    let dirty_reduction_pct = (1.0 - dirty_wire.compression_ratio()) * 100.0;
    println!(
        "== dirtying fleet == {} delta frames, {:.1}% kept off the wire",
        dirty_wire.count(FrameKind::Delta),
        dirty_reduction_pct
    );
    assert!(
        dirty_wire.count(FrameKind::Delta) > 0,
        "dirtying run must exercise the delta codec"
    );

    // 4. Ring vs legacy: the zero-copy frame ring must be a pure
    // optimization — same destinations, same reports, same wire stats as
    // PR 3's gather-`Vec` path, on both the idle and the dirtying fleet
    // (the latter exercises delta frames through both encoders).
    let legacy = run_fleet_with(WireMode::ContentAware, 0.0, true);
    let legacy_dirty = run_fleet_with(WireMode::ContentAware, 2000.0, true);
    let legacy_bytes: u64 = legacy.reports.iter().map(|r| r.bytes_sent).sum();
    let dirty_bytes: u64 = dirty.reports.iter().map(|r| r.bytes_sent).sum();
    let legacy_dirty_bytes: u64 = legacy_dirty.reports.iter().map(|r| r.bytes_sent).sum();
    let ring_vs_legacy = legacy.dst_checksums == ca.dst_checksums
        && legacy.uisr_bytes == ca.uisr_bytes
        && merged_wire(&legacy.reports) == wire
        && legacy_bytes == ca_bytes
        && legacy_dirty.dst_checksums == dirty.dst_checksums
        && legacy_dirty.uisr_bytes == dirty.uisr_bytes
        && merged_wire(&legacy_dirty.reports) == dirty_wire
        && legacy_dirty_bytes == dirty_bytes;
    println!(
        "== ring vs legacy == identical: {ring_vs_legacy} (legacy idle {legacy_bytes} B in {:.3} s)",
        legacy.wall
    );
    assert!(
        ring_vs_legacy,
        "frame ring must land byte-identical runs vs the legacy gather path"
    );

    // 5. Encode throughput: batch encode into the reusable ring vs the
    // per-page legacy path (one lock, one frame, one gather Vec per page).
    let legacy_enc = encode_bench(|cache, gfns, words| {
        let mut frames = Vec::with_capacity(gfns.len());
        let mut wb = 0u64;
        for (&g, &w) in gfns.iter().zip(words) {
            let f = cache.encode_page(7, g.0, w);
            wb += f.wire_bytes();
            frames.push(f);
        }
        std::hint::black_box(&frames);
        wb
    });
    let mut ring = FrameRing::new();
    let mut digests = Vec::new();
    let ring_enc = encode_bench(|cache, gfns, words| {
        digest_pages_into(words, &mut digests);
        ring.restart();
        ring.begin();
        let wb = cache.encode_batch_into(7, gfns, words, &digests, &mut ring);
        ring.commit();
        std::hint::black_box(ring.len_bytes());
        wb
    });
    let speedup = ring_enc.pages_per_sec / legacy_enc.pages_per_sec;
    let wire_bytes_identical = ring_enc.wire_bytes == legacy_enc.wire_bytes;
    println!(
        "== encode throughput == {} pages x {} rounds: legacy {:.0} pages/s, ring {:.0} pages/s -> {speedup:.2}x (floor {ENCODE_SPEEDUP_FLOOR}x)",
        ENCODE_PAGES, ENCODE_ROUNDS, legacy_enc.pages_per_sec, ring_enc.pages_per_sec
    );
    assert!(
        wire_bytes_identical,
        "encode paths must account identical wire bytes ({} vs {})",
        ring_enc.wire_bytes, legacy_enc.wire_bytes
    );
    assert!(
        speedup >= ENCODE_SPEEDUP_FLOOR,
        "ring encode speedup {speedup:.2}x below floor {ENCODE_SPEEDUP_FLOOR}x"
    );

    let out = Json::obj()
        .with("bench", json::s("wire_smoke"))
        .with("vms", json::u(u64::from(VMS)))
        .with("mem_gb_per_vm", json::u(MEM_GB))
        .with("reduction_floor_pct", json::f(REDUCTION_FLOOR_PCT))
        .with(
            "idle_fleet",
            Json::obj()
                .with("raw_bytes_sent", json::u(raw_bytes))
                .with("raw_secs", json::f(raw.wall))
                .with("content_aware_bytes_sent", json::u(ca_bytes))
                .with("content_aware_secs", json::f(ca.wall))
                .with("wire_bytes", json::u(wire.wire_bytes()))
                .with("raw_equivalent_bytes", json::u(wire.raw_equivalent_bytes()))
                .with("wire_reduction_pct", json::f(reduction_pct))
                .with("frames", kind_json(&wire))
                .with(
                    "dedup_cache",
                    Json::obj()
                        .with("occupancy", json::u(wire.cache_occupancy()))
                        .with("capacity", json::u(wire.cache_capacity()))
                        .with("evictions", json::u(wire.cache_evictions()))
                        .with("dup_hits", json::u(wire.cache_dup_hits()))
                        .with("dup_lookups", json::u(wire.cache_dup_lookups()))
                        .with("hit_rate", json::f(wire.dedup_hit_rate())),
                )
                .with("identical", json::s(identical.to_string()))
                .with(
                    "ring_vs_legacy_identical",
                    json::s(ring_vs_legacy.to_string()),
                ),
        )
        .with(
            "encode",
            Json::obj()
                .with("pages_per_round", json::u(ENCODE_PAGES))
                .with("rounds", json::u(ENCODE_ROUNDS))
                .with("legacy_pages_per_sec", json::f(legacy_enc.pages_per_sec))
                .with("ring_pages_per_sec", json::f(ring_enc.pages_per_sec))
                .with("speedup", json::f(speedup))
                .with("speedup_floor", json::f(ENCODE_SPEEDUP_FLOOR))
                .with(
                    "wire_bytes_identical",
                    json::s(wire_bytes_identical.to_string()),
                ),
        )
        .with(
            "dirty_fleet",
            Json::obj()
                .with("dirty_rate_pages_per_sec", json::f(2000.0))
                .with("delta_frames", json::u(dirty_wire.count(FrameKind::Delta)))
                .with("wire_reduction_pct", json::f(dirty_reduction_pct))
                .with("frames", kind_json(&dirty_wire))
                // Per-round controller telemetry of the dirtying run: the
                // EWMA estimators observe even under the static config.
                .with(
                    "round_telemetry",
                    hypertp_bench::rounds_telemetry(&dirty.reports),
                ),
        );
    let path = std::env::var("WIRE_SMOKE_OUT").unwrap_or_else(|_| "BENCH_wire.json".into());
    std::fs::write(&path, out.encode_pretty()).expect("write artifact");
    println!("wrote {path}");
}
