//! wire_smoke: wire-byte reduction of the content-aware migration path.
//!
//! Reproduces the fig-12-style idle-VM migration workload (§5.2: mostly
//! idle guests, near-zero dirty rate) and migrates the same 4 × 1 GiB
//! Xen fleet to KVM twice — once with [`WireMode::Raw`], once with
//! [`WireMode::ContentAware`] — then checks three things:
//!
//! 1. **Equivalence**: both runs land byte-identical destination guest
//!    memory (serial-pool checksums) and identical UISR volume.
//! 2. **Reduction**: the content-aware run keeps at least
//!    `reduction_floor_pct` of the raw page bytes off the wire (zero
//!    elision dominates on idle VMs; cross-VM dedup and XOR+RLE deltas
//!    cover the shared and re-dirtied pages).
//! 3. **Delta coverage**: a second, dirtying run (fig-12 busy phase)
//!    must produce at least one `Delta` frame so the codec path is
//!    exercised end to end, not just the zero/dup fast paths.
//!
//! Writes `BENCH_wire.json` (in the current directory, override with
//! `WIRE_SMOKE_OUT`). CI's `perf_gate` reads the committed copy of this
//! artifact and fails the build if a fresh run regresses below the
//! committed `reduction_floor_pct`.

use std::time::Instant;

use hypertp_bench::registry;
use hypertp_core::{HypervisorKind, VmConfig};
use hypertp_machine::{Extent, Gfn, Machine, MachineSpec};
use hypertp_migrate::{
    migrate_many, FrameKind, MigrationConfig, MigrationReport, MigrationTp, WireMode, WireStats,
};
use hypertp_sim::json::{self, Json};
use hypertp_sim::{SimClock, WorkerPool};

/// VMs in the idle fleet.
const VMS: u32 = 4;
/// Per-VM memory in GiB.
const MEM_GB: u64 = 1;
/// Committed regression floor: a fresh run must keep at least this
/// percentage of raw page bytes off the wire. `perf_gate` enforces it.
const REDUCTION_FLOOR_PCT: f64 = 30.0;

/// Outcome of one fleet migration: wall seconds, per-VM reports, and a
/// destination fingerprint (serial-pool guest checksums + UISR bytes)
/// that must not depend on the wire mode.
struct Run {
    wall: f64,
    reports: Vec<MigrationReport>,
    dst_checksums: Vec<u64>,
    uisr_bytes: u64,
}

/// Migrates the idle fleet with the given wire mode and dirty rate.
///
/// Guest content is seeded deterministically: a shared block written
/// identically into every VM (cross-VM dedup fodder) plus a per-VM
/// unique block; everything else stays zero, as on a freshly booted
/// idle guest (§5.2's fig-12 shape).
fn run_fleet(wire_mode: WireMode, dirty_rate: f64) -> Run {
    let reg = registry();
    let clock = SimClock::new();
    let mut src_m = Machine::with_clock(MachineSpec::m1(), clock.clone());
    let mut dst_m = Machine::with_clock(MachineSpec::m1(), clock);
    let mut src = reg
        .create(HypervisorKind::Xen, &mut src_m)
        .expect("registry has Xen");
    for i in 0..VMS {
        let cfg = VmConfig::small(format!("idle{i}")).with_memory_gb(MEM_GB);
        let pages = cfg.pages();
        let id = src.create_vm(&mut src_m, &cfg).expect("capacity");
        // Shared block: the same 1024 words at the same gfns in every VM.
        for k in 0..1024u64 {
            src.write_guest(&mut src_m, id, Gfn(k % pages), k ^ 0x5bd1_e995)
                .expect("seed write");
        }
        // Unique block: 512 VM-specific words further up.
        for k in 0..512u64 {
            let gfn = Gfn((4096 + k * 3 + u64::from(i) * 7919) % pages);
            src.write_guest(&mut src_m, id, gfn, k ^ (u64::from(i) << 32))
                .expect("seed write");
        }
    }
    let mut dst = reg
        .create(HypervisorKind::Kvm, &mut dst_m)
        .expect("registry has KVM");
    let ids = src.vm_ids();
    let tp = MigrationTp::new()
        .with_config(MigrationConfig {
            verify_contents: true,
            dirty_rate_pages_per_sec: dirty_rate,
            wire_mode,
            ..MigrationConfig::default()
        })
        .with_pool(WorkerPool::from_env());
    let t = Instant::now();
    let reports = migrate_many(
        &tp,
        &mut src_m,
        src.as_mut(),
        &ids,
        &mut dst_m,
        dst.as_mut(),
    )
    .expect("migration");
    let wall = t.elapsed().as_secs_f64();

    let mut dst_checksums = Vec::new();
    for id in dst.vm_ids() {
        let map = dst.guest_memory_map(id).expect("map");
        let extents: Vec<Extent> = map.iter().map(|(_, e)| *e).collect();
        dst_checksums.push(
            dst_m
                .ram()
                .checksum_with_pool(&extents, &WorkerPool::serial()),
        );
    }
    let uisr_bytes = reports.iter().map(|r| r.uisr_bytes).sum();
    Run {
        wall,
        reports,
        dst_checksums,
        uisr_bytes,
    }
}

fn merged_wire(reports: &[MigrationReport]) -> WireStats {
    let mut wire = WireStats::default();
    for r in reports {
        wire.merge(&r.wire);
    }
    wire
}

fn kind_json(wire: &WireStats) -> Json {
    let mut obj = Json::obj();
    for kind in FrameKind::ALL {
        obj.push(
            kind.name(),
            Json::obj()
                .with("frames", json::u(wire.count(kind)))
                .with("bytes", json::u(wire.bytes(kind))),
        );
    }
    obj
}

fn main() {
    println!("wire_smoke: {VMS} x {MEM_GB} GiB idle fleet, Xen -> KVM");

    // 1 + 2. Idle fleet: raw vs content-aware, equivalence + reduction.
    let raw = run_fleet(WireMode::Raw, 0.0);
    let ca = run_fleet(WireMode::ContentAware, 0.0);
    let identical = raw.dst_checksums == ca.dst_checksums && raw.uisr_bytes == ca.uisr_bytes;
    let wire = merged_wire(&ca.reports);
    let raw_bytes: u64 = raw.reports.iter().map(|r| r.bytes_sent).sum();
    let ca_bytes: u64 = ca.reports.iter().map(|r| r.bytes_sent).sum();
    let reduction_pct = (1.0 - wire.compression_ratio()) * 100.0;
    println!(
        "== idle fleet == raw {} B in {:.3} s; content-aware {} B in {:.3} s",
        raw_bytes, raw.wall, ca_bytes, ca.wall
    );
    println!(
        "  wire {} B vs raw-equivalent {} B: {reduction_pct:.1}% kept off the wire (floor {REDUCTION_FLOOR_PCT}%)",
        wire.wire_bytes(),
        wire.raw_equivalent_bytes()
    );
    for kind in FrameKind::ALL {
        println!(
            "  {:>5}: {:>8} frames, {:>12} B",
            kind.name(),
            wire.count(kind),
            wire.bytes(kind)
        );
    }
    println!("  destinations identical: {identical}");
    assert!(identical, "wire modes must land identical destinations");
    assert!(
        reduction_pct >= REDUCTION_FLOOR_PCT,
        "idle-fleet wire reduction {reduction_pct:.1}% below floor {REDUCTION_FLOOR_PCT}%"
    );
    assert!(
        wire.count(FrameKind::Dup) > 0,
        "shared seed block must produce cross-VM dup frames"
    );
    println!(
        "  dedup cache: {}/{} entries, {} evictions, hit rate {:.1}% ({}/{} lookups)",
        wire.cache_occupancy(),
        wire.cache_capacity(),
        wire.cache_evictions(),
        wire.dedup_hit_rate() * 100.0,
        wire.cache_dup_hits(),
        wire.cache_dup_lookups(),
    );
    assert!(
        wire.cache_capacity() > 0,
        "content-aware run must report the cache cap"
    );
    assert!(
        wire.cache_occupancy() <= wire.cache_capacity(),
        "cache occupancy must respect the cap"
    );

    // 3. Dirtying fleet: re-dirtied pages must travel as XOR+RLE deltas.
    let dirty = run_fleet(WireMode::ContentAware, 2000.0);
    let dirty_wire = merged_wire(&dirty.reports);
    let dirty_reduction_pct = (1.0 - dirty_wire.compression_ratio()) * 100.0;
    println!(
        "== dirtying fleet == {} delta frames, {:.1}% kept off the wire",
        dirty_wire.count(FrameKind::Delta),
        dirty_reduction_pct
    );
    assert!(
        dirty_wire.count(FrameKind::Delta) > 0,
        "dirtying run must exercise the delta codec"
    );

    let out = Json::obj()
        .with("bench", json::s("wire_smoke"))
        .with("vms", json::u(u64::from(VMS)))
        .with("mem_gb_per_vm", json::u(MEM_GB))
        .with("reduction_floor_pct", json::f(REDUCTION_FLOOR_PCT))
        .with(
            "idle_fleet",
            Json::obj()
                .with("raw_bytes_sent", json::u(raw_bytes))
                .with("raw_secs", json::f(raw.wall))
                .with("content_aware_bytes_sent", json::u(ca_bytes))
                .with("content_aware_secs", json::f(ca.wall))
                .with("wire_bytes", json::u(wire.wire_bytes()))
                .with("raw_equivalent_bytes", json::u(wire.raw_equivalent_bytes()))
                .with("wire_reduction_pct", json::f(reduction_pct))
                .with("frames", kind_json(&wire))
                .with(
                    "dedup_cache",
                    Json::obj()
                        .with("occupancy", json::u(wire.cache_occupancy()))
                        .with("capacity", json::u(wire.cache_capacity()))
                        .with("evictions", json::u(wire.cache_evictions()))
                        .with("dup_hits", json::u(wire.cache_dup_hits()))
                        .with("dup_lookups", json::u(wire.cache_dup_lookups()))
                        .with("hit_rate", json::f(wire.dedup_hit_rate())),
                )
                .with("identical", json::s(identical.to_string())),
        )
        .with(
            "dirty_fleet",
            Json::obj()
                .with("dirty_rate_pages_per_sec", json::f(2000.0))
                .with("delta_frames", json::u(dirty_wire.count(FrameKind::Delta)))
                .with("wire_reduction_pct", json::f(dirty_reduction_pct))
                .with("frames", kind_json(&dirty_wire))
                // Per-round controller telemetry of the dirtying run: the
                // EWMA estimators observe even under the static config.
                .with(
                    "round_telemetry",
                    hypertp_bench::rounds_telemetry(&dirty.reports),
                ),
        );
    let path = std::env::var("WIRE_SMOKE_OUT").unwrap_or_else(|_| "BENCH_wire.json".into());
    std::fs::write(&path, out.encode_pretty()).expect("write artifact");
    println!("wrote {path}");
}
