//! Regenerates the paper's table4 (see DESIGN.md experiment index).

fn main() {
    print!("{}", hypertp_bench::experiments::table4::run());
}
