//! Regenerates the paper's fig8 (see DESIGN.md experiment index).

fn main() {
    print!("{}", hypertp_bench::experiments::fig8_9::fig8());
}
