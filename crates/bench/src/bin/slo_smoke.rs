//! slo_smoke: SLO-violation wins of traffic-coupled fleet scheduling.
//!
//! Two layers, one artifact:
//!
//! 1. **Diurnal fleet (cluster executor)**: a 150-VM synthetic fleet
//!    (15 hosts, 0% InPlaceTP-compatible, so every VM migrates) drains
//!    over a deliberately slow maintenance fabric — group drains span
//!    hours of the simulated 24 h day, so *when* a VM migrates decides
//!    whether its traffic peak collides with the bandwidth steal. Both
//!    runs arm the same SLO physics ([`ExecConfig::slo`]: seeded diurnal
//!    curves per serving VM, contention-stretched estimates, violation
//!    accounting); only the admission order differs:
//!    - **blind**: [`FleetOrder::ShortestPredictedFirst`] — the PR-4
//!      scheduler, optimizing hardware-side time, blind to traffic;
//!    - **aware**: [`FleetOrder::SloAware`] — re-prices the queue at
//!      every free slot and admits the least predicted SLO harm.
//!
//!    The gate invariants: the aware run cuts total violation-seconds by
//!    at least `VIOLATION_CUT_FLOOR_PCT` at a makespan ratio of at most
//!    `MAKESPAN_RATIO_CEILING`, and no aware VM burns its full error
//!    budget.
//! 2. **Engine micro-fleet**: six 1 GiB VMs with staggered traffic peaks
//!    over a compressed 10-minute "day" migrate Xen → KVM through the
//!    real page-level engine, serialized. This exercises the
//!    [`LinkContention`] feedback into the pre-copy controller (peak
//!    traffic roughly halves the effective link) and the zero-traffic
//!    passthrough: an SLO attachment whose curve carries zero
//!    bytes-per-query must leave every report field byte-identical to
//!    the un-attached run.
//!
//! Writes `BENCH_slo.json` (current directory, override with
//! `SLO_SMOKE_OUT`); `perf_gate slo` reads the committed copy and fails
//! the build if a fresh run regresses.

use hypertp_bench::registry;
use hypertp_cluster::{execute_sharded_with, plan_upgrade, Cluster, ExecConfig, SloExecConfig};
use hypertp_core::{HypervisorKind, VmConfig};
use hypertp_machine::{Gfn, Machine, MachineSpec};
use hypertp_migrate::{
    migrate_fleet, FleetOrder, FleetPolicy, FleetReport, FleetVm, Link, MigrationConfig,
    MigrationTp, SloVm, TrafficCurve, WireMode,
};
use hypertp_sim::fault::FaultPlan;
use hypertp_sim::json::{self, Json};
use hypertp_sim::pool::WorkerPool;
use hypertp_sim::{SimClock, SimDuration};

/// Synthetic fleet shape: 15 hosts × 10 VMs, groups of 5 hosts — three
/// ~50-migration groups whose drains each span hours of the day.
const HOSTS: usize = 15;
const GROUP_HOSTS: usize = 5;
const SEED: u64 = 0x510_57a6;
/// The maintenance fabric share granted to the campaign: slow enough
/// that a 4 GiB migration takes minutes and a group drain takes hours —
/// the regime where low-QPS-window placement matters.
const FABRIC: Link = Link {
    gbps: 0.2,
    efficiency: 0.9,
    latency: SimDuration::from_millis(1),
};
/// Committed regression floor: SLO-aware admission must cut the fleet's
/// violation-seconds by at least this percentage vs blind SPDF.
/// `perf_gate slo` enforces it.
const VIOLATION_CUT_FLOOR_PCT: f64 = 30.0;
/// Committed ceiling on the makespan price of the violation cut.
const MAKESPAN_RATIO_CEILING: f64 = 1.10;
/// Error budget the fleet signs up for on maintenance day: one hour of
/// violation per VM. (The everyday 216 s budget is unreachable on a
/// 0.2 Gbps fabric — the hottest VM's drain alone exceeds it under any
/// order — so the bench declares the budget an operator actually would,
/// and the gate holds the aware schedule under it with ~2× headroom.)
const BENCH_BUDGET: SimDuration = SimDuration::from_secs(3_600);

/// Engine micro-fleet: VM count and the compressed day its staggered
/// traffic peaks cycle over.
const ENGINE_VMS: usize = 6;
const ENGINE_DAY: SimDuration = SimDuration::from_secs(600);

fn exec_run(order: FleetOrder) -> hypertp_cluster::ExecReport {
    let view = Cluster::synthetic(HOSTS, SEED).with_compat_percent(0);
    let plan = plan_upgrade(&view, GROUP_HOSTS).expect("synthetic fleet plans");
    let cfg = ExecConfig {
        link: FABRIC,
        fleet_order: order,
        slo: Some(SloExecConfig {
            error_budget: BENCH_BUDGET,
            ..SloExecConfig::default()
        }),
        ..ExecConfig::default()
    };
    execute_sharded_with(
        &view,
        &plan,
        &cfg,
        &FaultPlan::disarmed(),
        1,
        &WorkerPool::serial(),
    )
}

/// The same run over explicit shard/worker counts — byte-identity probe.
fn exec_run_sharded(
    order: FleetOrder,
    shards: usize,
    workers: usize,
) -> hypertp_cluster::ExecReport {
    let view = Cluster::synthetic(HOSTS, SEED).with_compat_percent(0);
    let plan = plan_upgrade(&view, GROUP_HOSTS).expect("synthetic fleet plans");
    let cfg = ExecConfig {
        link: FABRIC,
        fleet_order: order,
        slo: Some(SloExecConfig {
            error_budget: BENCH_BUDGET,
            ..SloExecConfig::default()
        }),
        ..ExecConfig::default()
    };
    execute_sharded_with(
        &view,
        &plan,
        &cfg,
        &FaultPlan::disarmed(),
        shards,
        &WorkerPool::new(workers),
    )
}

fn exec_json(r: &hypertp_cluster::ExecReport) -> Json {
    Json::obj()
        .with("migrations", json::u(r.migrations as u64))
        .with("slo_vms", json::u(r.slo_vms as u64))
        .with("violation_s", json::f(r.slo_violation.as_secs_f64()))
        .with("max_budget_burn", json::f(r.slo_max_budget_burn))
        .with("makespan_s", json::f(r.total.as_secs_f64()))
        .with("migration_s", json::f(r.migration_time.as_secs_f64()))
}

/// Staggered diurnal curve of engine VM `i`: peaks sweep the compressed
/// day, so the serialized drain always has someone peaking and someone
/// quiet.
fn engine_curve(i: usize) -> TrafficCurve {
    TrafficCurve {
        peak_qps: 4_500.0,
        trough_fraction: 0.05,
        peak_offset: SimDuration::from_secs(i as u64 * 100),
        period: ENGINE_DAY,
        sharpness: 2,
        bytes_per_query: 20_000.0,
    }
}

fn engine_slo(i: usize) -> SloVm {
    SloVm {
        traffic: engine_curve(i),
        degraded_capacity: 0.65,
        error_budget: SimDuration::from_secs(60),
    }
}

type FleetSetup = (
    Machine,
    Machine,
    Box<dyn hypertp_core::Hypervisor>,
    Box<dyn hypertp_core::Hypervisor>,
    Vec<FleetVm>,
);

/// Builds the engine micro-fleet; `attach` controls the SLO attachment
/// (`None` = plain fleet, `Some(f)` = per-VM curve from `f`).
fn engine_setup(attach: Option<&dyn Fn(usize) -> SloVm>) -> FleetSetup {
    let reg = registry();
    let clock = SimClock::new();
    let mut src_m = Machine::with_clock(MachineSpec::m1(), clock.clone());
    let mut dst_m = Machine::with_clock(MachineSpec::m1(), clock);
    let mut src = reg
        .create(HypervisorKind::Xen, &mut src_m)
        .expect("registry has Xen");
    let mut vms = Vec::new();
    for i in 0..ENGINE_VMS {
        let cfg = VmConfig::small(format!("vm{i}")).with_memory_gb(1);
        let pages = cfg.pages();
        let id = src.create_vm(&mut src_m, &cfg).expect("capacity");
        for k in 0..2048u64 {
            src.write_guest(&mut src_m, id, Gfn((k * 13 + i as u64 * 7919) % pages), {
                k ^ (0x9e37_79b9 << i)
            })
            .expect("seed write");
        }
        let mut vm = FleetVm::with_dirty_rate(id, 2_000.0);
        if let Some(f) = attach {
            vm = vm.with_slo(f(i));
        }
        vms.push(vm);
    }
    let dst = reg
        .create(HypervisorKind::Kvm, &mut dst_m)
        .expect("registry has KVM");
    (src_m, dst_m, src, dst, vms)
}

fn engine_run(attach: Option<&dyn Fn(usize) -> SloVm>, order: FleetOrder) -> FleetReport {
    let (mut src_m, mut dst_m, mut src, mut dst, vms) = engine_setup(attach);
    let tp = MigrationTp::new()
        .with_config(MigrationConfig {
            verify_contents: true,
            wire_mode: WireMode::ContentAware,
            ..MigrationConfig::default()
        })
        .with_pool(WorkerPool::from_env());
    migrate_fleet(
        &tp,
        &mut src_m,
        src.as_mut(),
        &vms,
        &mut dst_m,
        dst.as_mut(),
        FleetPolicy {
            order,
            max_concurrent: 1,
            compression_hint: 1.0,
        },
    )
    .expect("fleet migration")
}

/// Field-by-field report identity (the adaptive_smoke comparator).
fn identical(a: &FleetReport, b: &FleetReport) -> bool {
    a.admission == b.admission
        && a.makespan == b.makespan
        && a.reports.len() == b.reports.len()
        && a.reports.iter().zip(&b.reports).all(|(x, y)| {
            x.vm_name == y.vm_name
                && x.rounds == y.rounds
                && x.downtime == y.downtime
                && x.total == y.total
                && x.bytes_sent == y.bytes_sent
                && x.uisr_bytes == y.uisr_bytes
        })
}

fn engine_json(r: &FleetReport) -> Json {
    Json::obj()
        .with(
            "admission",
            json::arr(r.admission.iter().map(|&i| json::u(i as u64))),
        )
        .with("makespan_s", json::f(r.makespan.as_secs_f64()))
        .with("violation_s", json::f(r.total_violation().as_secs_f64()))
        .with("max_budget_burn", json::f(r.max_budget_burn()))
        .with("slo_vms", json::u(r.slo_vm_count() as u64))
        .with("total_bytes", json::u(r.total_bytes()))
}

fn main() {
    println!(
        "slo_smoke: {HOSTS}-host synthetic fleet ({} VMs) on a {:.2} Gbps maintenance fabric",
        HOSTS * 10,
        FABRIC.gbps
    );

    // 1. Diurnal fleet: blind SPDF vs SLO-aware, identical physics.
    let blind = exec_run(FleetOrder::ShortestPredictedFirst);
    let aware = exec_run(FleetOrder::SloAware);
    assert_eq!(blind.migrations, aware.migrations);
    assert!(blind.migrations >= 100, "fleet must exceed 100 migrations");
    assert!(blind.slo_vms > 0, "serving VMs must carry SLOs");
    assert!(
        blind.slo_violation > SimDuration::ZERO,
        "blind admission must actually violate — otherwise the cut is vacuous"
    );
    let cut_pct =
        (1.0 - aware.slo_violation.as_secs_f64() / blind.slo_violation.as_secs_f64()) * 100.0;
    let makespan_ratio = aware.total.as_secs_f64() / blind.total.as_secs_f64();
    println!(
        "== blind spdf == violation {:.0} s over {} serving VMs, max burn {:.2}, makespan {:.1} h",
        blind.slo_violation.as_secs_f64(),
        blind.slo_vms,
        blind.slo_max_budget_burn,
        blind.total.as_secs_f64() / 3600.0
    );
    println!(
        "== slo aware  == violation {:.0} s, max burn {:.2}, makespan {:.1} h",
        aware.slo_violation.as_secs_f64(),
        aware.slo_max_budget_burn,
        aware.total.as_secs_f64() / 3600.0
    );
    println!(
        "  violation cut {cut_pct:.1}% (floor {VIOLATION_CUT_FLOOR_PCT}%), makespan ratio \
         {makespan_ratio:.4} (ceiling {MAKESPAN_RATIO_CEILING})"
    );
    assert!(
        cut_pct >= VIOLATION_CUT_FLOOR_PCT,
        "violation cut {cut_pct:.1}% below floor {VIOLATION_CUT_FLOOR_PCT}%"
    );
    assert!(
        makespan_ratio <= MAKESPAN_RATIO_CEILING,
        "makespan ratio {makespan_ratio:.4} above ceiling {MAKESPAN_RATIO_CEILING}"
    );
    assert!(
        aware.slo_max_budget_burn <= 1.0,
        "an aware-scheduled VM burned its full error budget: {:.2}",
        aware.slo_max_budget_burn
    );

    // Identity probes: deterministic rerun and shard×worker invariance.
    let deterministic = exec_run(FleetOrder::SloAware).render() == aware.render();
    let sharded = [(1usize, 4usize), (3, 1), (8, 4)]
        .iter()
        .all(|&(s, w)| exec_run_sharded(FleetOrder::SloAware, s, w).render() == aware.render());
    println!(
        "  deterministic rerun identical: {deterministic}; shard x worker identical: {sharded}"
    );
    assert!(deterministic && sharded);

    // 2. Engine micro-fleet: contention feedback + zero-traffic identity.
    let plain = engine_run(None, FleetOrder::Fifo);
    let zero_curves = |i: usize| SloVm {
        traffic: TrafficCurve {
            bytes_per_query: 0.0,
            ..engine_curve(i)
        },
        ..engine_slo(i)
    };
    let zero = engine_run(Some(&zero_curves), FleetOrder::Fifo);
    let zero_identical = identical(&plain, &zero);
    println!("== engine == zero-traffic SLO attachment byte-identical: {zero_identical}");
    assert!(
        zero_identical,
        "a zero-bandwidth curve must not perturb the data path"
    );

    let e_blind = engine_run(Some(&engine_slo), FleetOrder::Fifo);
    let e_aware = engine_run(Some(&engine_slo), FleetOrder::SloAware);
    let e_aware2 = engine_run(Some(&engine_slo), FleetOrder::SloAware);
    let e_deterministic = identical(&e_aware, &e_aware2);
    let e_blind_v = e_blind.total_violation().as_secs_f64();
    let e_aware_v = e_aware.total_violation().as_secs_f64();
    let e_cut_pct = if e_blind_v > 0.0 {
        (1.0 - e_aware_v / e_blind_v) * 100.0
    } else {
        0.0
    };
    println!(
        "== engine == fifo violation {e_blind_v:.1} s (admission {:?}); slo-aware {e_aware_v:.1} s \
         (admission {:?}); cut {e_cut_pct:.1}%; deterministic: {e_deterministic}",
        e_blind.admission, e_aware.admission
    );
    assert!(
        e_deterministic,
        "engine SLO-aware fleet must be deterministic"
    );
    // The micro-fleet drains in a couple of minutes against a 600 s day,
    // so FIFO is already near-optimal; greedy admission schedules on
    // *predicted* harm and may differ from realized harm by microseconds.
    assert!(
        e_aware_v <= e_blind_v * 1.01 + 0.1,
        "engine SLO-aware order must not lose beyond scheduling noise: {e_aware_v} > {e_blind_v}"
    );
    assert!(
        e_blind.makespan > SimDuration::ZERO && e_aware.makespan > SimDuration::ZERO,
        "engine fleets must migrate"
    );

    let out = Json::obj()
        .with("bench", json::s("slo_smoke"))
        .with(
            "fleet",
            Json::obj()
                .with("hosts", json::u(HOSTS as u64))
                .with("vms", json::u((HOSTS * 10) as u64))
                .with("group_hosts", json::u(GROUP_HOSTS as u64))
                .with("fabric_gbps", json::f(FABRIC.gbps))
                .with("seed", json::u(SEED)),
        )
        .with("violation_cut_floor_pct", json::f(VIOLATION_CUT_FLOOR_PCT))
        .with("makespan_ratio_ceiling", json::f(MAKESPAN_RATIO_CEILING))
        .with("blind_spdf", exec_json(&blind))
        .with("slo_aware", exec_json(&aware))
        .with(
            "slo_vs_blind",
            Json::obj()
                .with("violation_cut_pct", json::f(cut_pct))
                .with("makespan_ratio", json::f(makespan_ratio)),
        )
        .with(
            "budget",
            Json::obj()
                .with("error_budget_s", json::f(BENCH_BUDGET.as_secs_f64()))
                .with("aware_max_burn", json::f(aware.slo_max_budget_burn))
                .with("blind_max_burn", json::f(blind.slo_max_budget_burn)),
        )
        .with(
            "engine",
            Json::obj()
                .with("vms", json::u(ENGINE_VMS as u64))
                .with("day_s", json::f(ENGINE_DAY.as_secs_f64()))
                .with("fifo", engine_json(&e_blind))
                .with("slo_aware", engine_json(&e_aware))
                .with("violation_cut_pct", json::f(e_cut_pct))
                .with(
                    "zero_traffic_identical",
                    json::s(zero_identical.to_string()),
                )
                .with(
                    "deterministic_identical",
                    json::s(e_deterministic.to_string()),
                ),
        )
        .with(
            "deterministic_identical",
            json::s(deterministic.to_string()),
        )
        .with("sharded_identical", json::s(sharded.to_string()));
    let path = std::env::var("SLO_SMOKE_OUT").unwrap_or_else(|_| "BENCH_slo.json".into());
    std::fs::write(&path, out.encode_pretty()).expect("write artifact");
    println!("wrote {path}");
}
