//! Runs the dirty-rate and migration-concurrency sensitivity studies.

fn main() {
    print!("{}", hypertp_bench::experiments::sensitivity::run());
}
