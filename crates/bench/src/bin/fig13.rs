//! Regenerates the paper's fig13 (see DESIGN.md experiment index).

fn main() {
    print!("{}", hypertp_bench::experiments::fig13::run());
}
