//! exposure_smoke: the exposure-minimizing planner over a year-long
//! vulnerability feed.
//!
//! The tentpole claim: planning remediation per disclosure by attack
//! surface — escalating borderline flaws on historically critical
//! surfaces and draining hosts in Smith-rule order — cuts integrated
//! exposure ∫ affected-VMs × criticality dt against a surface-blind
//! baseline that remediates on raw CVSS in host-index order, while the
//! incremental planner (one cached host-cost table, one sort per event)
//! re-plans a 1k-host fleet orders of magnitude faster than rebuilding
//! the cost table per disclosure.
//!
//! The run replays one seeded year (37 disclosures) over a 1k-host /
//! 10k-VM synthetic fleet twice — surface-aware and surface-blind, both
//! reporting exposure in the same calibrated metric — and times the
//! incremental replay against a per-event full re-plan. Alongside the
//! comparison it pins the identity contracts:
//!
//! * **deterministic** — the aware replay, twice: one byte string.
//! * **sharded** — shard × worker probes fold to the serial render.
//! * **feed_off** — the executor with no exposure attachment renders
//!   without any exposure section (the off-path report stays
//!   byte-identical to the pre-feed format), twice identically.
//! * **empty_feed** — replaying zero events accrues nothing.
//!
//! `perf_gate exposure` enforces the committed exposure-cut and
//! replan-speedup floors plus every identity field. Writes
//! `BENCH_exposure.json` (override with `EXPOSURE_SMOKE_OUT`).

use std::time::Instant;

use hypertp_cluster::exec::{execute_sharded_with, ExecConfig};
use hypertp_cluster::exposure::{replay_feed, ExposureConfig, ExposurePlanner, FeedReport};
use hypertp_cluster::{plan_upgrade, Cluster, ClusterView};
use hypertp_sim::fault::FaultPlan;
use hypertp_sim::json::{self, Json};
use hypertp_sim::pool::WorkerPool;
use hypertp_sim::SimDuration;
use hypertp_vulndb::dataset::dataset;
use hypertp_vulndb::feed::{FeedEvent, SurfaceWeights};
use hypertp_vulndb::VulnFeed;

/// Fleet size (hosts); 10 VMs per host.
const HOSTS: usize = 1000;
/// InPlaceTP-tolerant share of the fleet.
const COMPAT_PCT: u32 = 70;
/// Fleet- and feed-derivation seed.
const SEED: u64 = 42;
/// Replayed horizon: one year at the §2 disclosure rate.
const HORIZON_DAYS: u64 = 365;
/// Committed floor for the aware-vs-blind integrated-exposure cut.
/// `perf_gate exposure` enforces the floor; the replay is deterministic,
/// so the measured cut reproduces exactly on every machine.
const EXPOSURE_CUT_FLOOR_PCT: f64 = 30.0;
/// Committed floor for the incremental-vs-full re-plan wall-clock ratio.
/// Rebuilding the 1k-host cost table for each of the 37 disclosures is
/// ~37× the work of building it once; 5× leaves ample noise margin.
const REPLAN_SPEEDUP_FLOOR: f64 = 5.0;
/// Wall-clock reps (the minimum is recorded — scheduler noise only ever
/// adds time).
const REPS: usize = 3;

fn ms(since: Instant) -> f64 {
    since.elapsed().as_secs_f64() * 1e3
}

fn year_feed() -> Vec<FeedEvent> {
    VulnFeed::new(SEED).replay(SimDuration::from_secs(HORIZON_DAYS * 86_400))
}

fn feed_section(r: &FeedReport) -> Json {
    Json::obj()
        .with("events", json::u(r.events as u64))
        .with("remediated_events", json::u(r.remediated_events as u64))
        .with("escalated_events", json::u(r.escalated_events as u64))
        .with("exposure_vm_days", json::f(r.exposure_vm_days))
        .with("remediated_vms", json::u(r.remediated_vms))
        .with("deferred_vms", json::u(r.deferred_vms))
        .with("disruption_min", json::f(r.disruption.as_secs_f64() / 60.0))
}

/// The executor without an exposure attachment must render the exact
/// pre-feed report format — no exposure section — and do so
/// deterministically.
fn feed_off_identical(pool: &WorkerPool, shards: usize) -> bool {
    let view = Cluster::synthetic(HOSTS, SEED).with_compat_percent(COMPAT_PCT);
    let plan = plan_upgrade(&view, 25).expect("synthetic fleet plans");
    let cfg = ExecConfig::default();
    let a = execute_sharded_with(&view, &plan, &cfg, &FaultPlan::disarmed(), shards, pool);
    let b = execute_sharded_with(&view, &plan, &cfg, &FaultPlan::disarmed(), shards, pool);
    a.render() == b.render() && !a.render().contains("exposure")
}

fn main() {
    let pool = WorkerPool::from_env();
    let workers = pool.workers();
    let shards = workers.max(8);
    println!("exposure_smoke: {workers} workers, {shards} shards");

    let view = Cluster::synthetic(HOSTS, SEED).with_compat_percent(COMPAT_PCT);
    let events = year_feed();
    let weights = SurfaceWeights::calibrated(&dataset());
    let aware_cfg = ExposureConfig {
        weights,
        surface_aware: true,
        ..ExposureConfig::default()
    };
    let blind_cfg = ExposureConfig {
        surface_aware: false,
        ..aware_cfg
    };
    println!(
        "== {} hosts, {} VMs, {} disclosures over {HORIZON_DAYS} days ==",
        view.host_count(),
        view.vm_count(),
        events.len()
    );

    let aware = replay_feed(&view, &events, &aware_cfg, shards, &pool);
    let blind = replay_feed(&view, &events, &blind_cfg, shards, &pool);
    let cut_pct = (1.0 - aware.exposure_vm_days / blind.exposure_vm_days) * 100.0;
    let disruption_ratio =
        aware.disruption.as_secs_f64() / blind.disruption.as_secs_f64().max(1e-9);
    println!(
        "  aware: {:.0} VM-days exposure, {} remediated ({} escalated)",
        aware.exposure_vm_days, aware.remediated_events, aware.escalated_events
    );
    println!(
        "  blind: {:.0} VM-days exposure, {} remediated",
        blind.exposure_vm_days, blind.remediated_events
    );
    println!("  exposure cut {cut_pct:.1}% (floor {EXPOSURE_CUT_FLOOR_PCT}%)");
    assert!(
        cut_pct >= EXPOSURE_CUT_FLOOR_PCT,
        "exposure cut {cut_pct:.1}% below floor {EXPOSURE_CUT_FLOOR_PCT}%"
    );
    assert!(
        aware.exposure_vm_days <= blind.exposure_vm_days,
        "aware planning must never add exposure"
    );

    // Incremental re-plan (one cached cost table) vs full re-plan (the
    // table rebuilt per disclosure — what a planner without the cache
    // would do on every feed event).
    let mut incremental_ms = f64::INFINITY;
    let mut full_ms = f64::INFINITY;
    for _ in 0..REPS {
        let t = Instant::now();
        let planner = ExposurePlanner::with_pool(&view, aware_cfg, shards, &pool);
        let r = planner.replay(&events);
        incremental_ms = incremental_ms.min(ms(t));
        assert_eq!(r.render(), aware.render(), "incremental replay diverged");
        let t = Instant::now();
        for ev in &events {
            let planner = ExposurePlanner::with_pool(&view, aware_cfg, shards, &pool);
            let _ = planner.plan_event(ev);
        }
        full_ms = full_ms.min(ms(t));
    }
    let speedup = full_ms / incremental_ms.max(1e-6);
    let per_event_ms = incremental_ms / events.len().max(1) as f64;
    println!(
        "  replan: incremental {incremental_ms:.2} ms ({per_event_ms:.3} ms/event) vs \
         full {full_ms:.2} ms — speedup {speedup:.1}x (floor {REPLAN_SPEEDUP_FLOOR}x)"
    );
    assert!(
        speedup >= REPLAN_SPEEDUP_FLOOR,
        "replan speedup {speedup:.1}x below floor {REPLAN_SPEEDUP_FLOOR}x"
    );

    println!("== identity contracts ==");
    let again = replay_feed(&view, &events, &aware_cfg, shards, &pool);
    let deterministic = aware.render() == again.render();
    println!("  deterministic rerun:  {deterministic}");
    let base = replay_feed(&view, &events, &aware_cfg, 1, &WorkerPool::serial());
    let sharded = [(1usize, 4usize), (3, 1), (8, 4)].iter().all(|&(s, w)| {
        replay_feed(&view, &events, &aware_cfg, s, &WorkerPool::new(w)).render() == base.render()
    }) && base.render() == aware.render();
    println!("  shard x worker:       {sharded}");
    let feed_off = feed_off_identical(&pool, shards);
    println!("  feed-off exec render: {feed_off}");
    let empty = replay_feed(&view, &[], &aware_cfg, shards, &pool);
    let empty_ok =
        empty.events == 0 && empty.exposure_vm_days == 0.0 && empty.disruption == SimDuration::ZERO;
    println!("  empty feed no-op:     {empty_ok}");

    let out = Json::obj()
        .with("bench", json::s("exposure_smoke"))
        .with("hosts", json::u(HOSTS as u64))
        .with("vms", json::u(view.vm_count() as u64))
        .with("seed", json::u(SEED))
        .with("compat_pct", json::u(COMPAT_PCT as u64))
        .with("horizon_days", json::u(HORIZON_DAYS))
        .with("events", json::u(events.len() as u64))
        .with("reps", json::u(REPS as u64))
        .with("exposure_cut_floor_pct", json::f(EXPOSURE_CUT_FLOOR_PCT))
        .with("replan_speedup_floor", json::f(REPLAN_SPEEDUP_FLOOR))
        .with("aware", feed_section(&aware))
        .with("blind", feed_section(&blind))
        .with(
            "aware_vs_blind",
            Json::obj()
                .with("exposure_cut_pct", json::f(cut_pct))
                .with("disruption_ratio", json::f(disruption_ratio)),
        )
        .with(
            "replan",
            Json::obj()
                .with("incremental_ms", json::f(incremental_ms))
                .with("per_event_ms", json::f(per_event_ms))
                .with("full_ms", json::f(full_ms))
                .with("speedup", json::f(speedup))
                .with("workers", json::u(workers as u64))
                .with("shards", json::u(shards as u64)),
        )
        .with(
            "deterministic_identical",
            json::s(deterministic.to_string()),
        )
        .with("sharded_identical", json::s(sharded.to_string()))
        .with("feed_off_identical", json::s(feed_off.to_string()))
        .with("empty_feed_identical", json::s(empty_ok.to_string()));
    let path = std::env::var("EXPOSURE_SMOKE_OUT").unwrap_or_else(|_| "BENCH_exposure.json".into());
    std::fs::write(&path, out.encode_pretty()).expect("write artifact");
    println!("wrote {path}");
}
