//! Regenerates the paper's table3 (see DESIGN.md experiment index).

fn main() {
    print!("{}", hypertp_bench::experiments::table1_2_3::table3());
}
