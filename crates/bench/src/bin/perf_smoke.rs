//! perf_smoke: wall-clock timings of the parallelized hot paths.
//!
//! Unlike the figure experiments (which report *simulated* durations from
//! the cost model), this binary measures real elapsed time with
//! [`std::time::Instant`] to show the worker-pool wiring actually moves
//! wall-clock numbers:
//!
//! 1. InPlaceTP transplant of 8 × 1 GiB VMs (4 KiB pages), serial
//!    (`HYPERTP_WORKERS=1`) versus the full pool — the transplant results
//!    must be identical byte for byte.
//! 2. PRAM encode + parse of a multi-file 4 KiB-page image.
//! 3. UISR binary codec round-trip throughput.
//! 4. `migrate_many` with content verification, serial versus pooled, plus
//!    a content-aware wire-mode run reporting the wire-byte reduction.
//!
//! Writes `BENCH_parallel.json` (in the current directory, override with
//! `PERF_SMOKE_OUT`) with the wall-clock numbers, the thread count and the
//! identity checks.

use std::time::Instant;

use hypertp_bench::registry;
use hypertp_core::{HypervisorKind, InPlaceTransplant, VmConfig};
use hypertp_machine::{Extent, Gfn, Machine, MachineSpec, PageOrder, PhysicalMemory};
use hypertp_migrate::{migrate_many, MigrationConfig, MigrationReport, MigrationTp, WireMode};
use hypertp_pram::{PramBuilder, PramImage, PramStats};
use hypertp_sim::json::{self, Json};
use hypertp_sim::{SimClock, WorkerPool};

/// VMs in the transplant smoke test (the ISSUE's 8 × 1 GiB shape).
const VMS: u32 = 8;
/// Per-VM memory in GiB.
const MEM_GB: u64 = 1;

fn secs(start: Instant) -> f64 {
    start.elapsed().as_secs_f64()
}

fn threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Everything the transplant produces that must not depend on the worker
/// count: restored guest memory, PRAM metadata shape, UISR byte volume.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    checksums: Vec<u64>,
    pram_stats: PramStats,
    uisr_bytes: u64,
}

/// Runs one 8-VM Xen→KVM transplant with `HYPERTP_WORKERS=workers` and
/// returns (wall seconds, result fingerprint). The fingerprint is computed
/// with a serial pool so the knob under test cannot touch it.
fn transplant(workers: usize) -> (f64, Fingerprint) {
    std::env::set_var("HYPERTP_WORKERS", workers.to_string());
    let reg = registry();
    let mut machine = Machine::new(MachineSpec::m1());
    let mut hv = reg
        .create(HypervisorKind::Xen, &mut machine)
        .expect("registry has Xen");
    for i in 0..VMS {
        let cfg = VmConfig::small(format!("vm{i}"))
            .with_memory_gb(MEM_GB)
            .with_huge_pages(false); // 262 144 map entries per VM
        let pages = cfg.pages();
        let id = hv.create_vm(&mut machine, &cfg).expect("capacity");
        // Seed deterministic guest state so the checksums are non-trivial.
        for k in 0..1024u64 {
            let gfn = Gfn((k * 131 + u64::from(i)) % pages);
            hv.write_guest(&mut machine, id, gfn, k ^ 0x9e37_79b9)
                .expect("seed write");
        }
    }

    let engine = InPlaceTransplant::new(&reg);
    let start = Instant::now();
    let (hv, report) = engine
        .run(&mut machine, hv, HypervisorKind::Kvm)
        .expect("transplant");
    let wall = secs(start);

    let mut checksums = Vec::new();
    for id in hv.vm_ids() {
        let map = hv.guest_memory_map(id).expect("map");
        let extents: Vec<Extent> = map.iter().map(|(_, e)| *e).collect();
        checksums.push(
            machine
                .ram()
                .checksum_with_pool(&extents, &WorkerPool::serial()),
        );
    }
    let fp = Fingerprint {
        checksums,
        pram_stats: report.pram_stats,
        uisr_bytes: report.uisr_bytes,
    };
    (wall, fp)
}

/// Times PRAM encode + parse of `files` × 1 GiB 4 KiB-page files on the
/// given pool. Returns (encode secs, parse secs, stats).
fn pram_roundtrip(files: u64, pool: WorkerPool) -> (f64, f64, PramStats) {
    let mut ram = PhysicalMemory::with_gib(files + 2);
    let mut builder = PramBuilder::new().with_pool(pool);
    let pages_per_file = (1u64 << 30) / 4096;
    for f in 0..files {
        let map: Vec<(Gfn, Extent)> = (0..pages_per_file)
            .map(|i| (Gfn(i), ram.alloc(PageOrder(0)).expect("capacity")))
            .collect();
        builder.add_file(format!("vm{f}"), 0o600, map);
    }
    let t = Instant::now();
    let handle = builder.write(&mut ram).expect("encode");
    let encode = secs(t);
    let t = Instant::now();
    let image = PramImage::parse(&ram, handle.pram_ptr).expect("parse");
    let parse = secs(t);
    assert_eq!(image.files.len() as u64, files);
    (encode, parse, handle.stats())
}

/// Times `iters` UISR binary codec round-trips of a 10-vCPU VM and
/// returns (total secs, blob bytes).
fn uisr_roundtrip(iters: u32) -> (f64, usize) {
    use hypertp_uisr::{DeviceState, MemoryRegion, MsrEntry, UisrVm, VcpuState};
    let mut vm = UisrVm::new("perf-smoke");
    for i in 0..10 {
        let mut v = VcpuState::reset(i);
        v.regs.rip = 0xffff_8000_0000_0000 + u64::from(i);
        v.msrs = (0..40)
            .map(|k| MsrEntry {
                index: 0xc000_0080 + k,
                data: u64::from(k),
            })
            .collect();
        vm.vcpus.push(v);
    }
    vm.devices.push(DeviceState::Network {
        mac: [2, 0, 0, 0, 0, 1],
        unplugged: false,
    });
    vm.memory.regions.push(MemoryRegion {
        gfn_start: 0,
        pages: 262_144,
    });
    let mut blob = Vec::new();
    let t = Instant::now();
    for _ in 0..iters {
        hypertp_uisr::codec::encode_into(&vm, &mut blob);
        let back = hypertp_uisr::decode(&blob).expect("decode");
        std::hint::black_box(back);
    }
    (secs(t), blob.len())
}

/// Migrates 4 × 1 GiB VMs Xen→KVM with content verification on the given
/// pool and wire mode. Returns (wall secs, reports).
fn migrate_batch(pool: WorkerPool, wire_mode: WireMode) -> (f64, Vec<MigrationReport>) {
    let reg = registry();
    let clock = SimClock::new();
    let mut src_m = Machine::with_clock(MachineSpec::m1(), clock.clone());
    let mut dst_m = Machine::with_clock(MachineSpec::m1(), clock);
    let mut src = reg
        .create(HypervisorKind::Xen, &mut src_m)
        .expect("registry has Xen");
    for i in 0..4u32 {
        let cfg = VmConfig::small(format!("mig{i}")).with_memory_gb(1);
        src.create_vm(&mut src_m, &cfg).expect("capacity");
    }
    let mut dst = reg
        .create(HypervisorKind::Kvm, &mut dst_m)
        .expect("registry has KVM");
    let ids = src.vm_ids();
    let tp = MigrationTp::new()
        .with_config(MigrationConfig {
            verify_contents: true,
            dirty_rate_pages_per_sec: 0.0,
            wire_mode,
            ..MigrationConfig::default()
        })
        .with_pool(pool);
    let t = Instant::now();
    let reports = migrate_many(
        &tp,
        &mut src_m,
        src.as_mut(),
        &ids,
        &mut dst_m,
        dst.as_mut(),
    )
    .expect("migration");
    (secs(t), reports)
}

fn report_key(r: &MigrationReport) -> (String, usize, u64, u64) {
    (
        r.vm_name.clone(),
        r.rounds.len(),
        r.bytes_sent,
        r.uisr_bytes,
    )
}

fn main() {
    let threads = threads();
    // Capture the effective worker count BEFORE any benchmark mutates
    // HYPERTP_WORKERS: this is what WorkerPool::from_env() resolves for a
    // user-launched run (env override or detected parallelism), as opposed
    // to the raw hardware detection above.
    let effective_workers = WorkerPool::from_env().workers();
    println!(
        "perf_smoke: {threads} hardware threads detected, {effective_workers} effective workers"
    );

    // 1. InPlaceTP 8 × 1 GiB, serial vs pooled.
    println!("== inplace transplant ({VMS} x {MEM_GB} GiB, 4 KiB pages) ==");
    let (serial_s, serial_fp) = transplant(1);
    println!("  serial   (HYPERTP_WORKERS=1): {serial_s:.3} s");
    let (par_s, par_fp) = transplant(threads);
    println!("  parallel (HYPERTP_WORKERS={threads}): {par_s:.3} s");
    let identical = serial_fp == par_fp;
    let speedup = serial_s / par_s.max(1e-9);
    println!("  speedup {speedup:.2}x, results identical: {identical}");
    assert!(identical, "serial and parallel transplants must match");

    // 2. PRAM encode + parse, serial vs pooled.
    println!("== pram encode/parse (4 x 1 GiB files, 4 KiB pages) ==");
    let (enc_serial, parse_s, stats_serial) = pram_roundtrip(4, WorkerPool::serial());
    let (enc_par, _, stats_par) = pram_roundtrip(4, WorkerPool::new(threads));
    let pram_identical = stats_serial == stats_par;
    println!(
        "  encode serial {enc_serial:.3} s, pooled {enc_par:.3} s ({:.2}x); parse {parse_s:.3} s; identical: {pram_identical}",
        enc_serial / enc_par.max(1e-9)
    );
    assert!(pram_identical, "PRAM stats must not depend on worker count");

    // 3. UISR codec round-trip.
    let uisr_iters = 2000u32;
    let (uisr_s, uisr_bytes) = uisr_roundtrip(uisr_iters);
    println!(
        "== uisr codec == {uisr_iters} round-trips of {uisr_bytes} B in {uisr_s:.3} s ({:.0}/s)",
        f64::from(uisr_iters) / uisr_s.max(1e-9)
    );

    // 4. migrate_many with verification, serial vs pooled, raw vs wire.
    println!("== migrate_many (4 x 1 GiB, verify_contents) ==");
    let (mig_serial, reports_serial) = migrate_batch(WorkerPool::serial(), WireMode::Raw);
    let (mig_par, reports_par) = migrate_batch(WorkerPool::new(threads), WireMode::Raw);
    let mig_identical = reports_serial.iter().map(report_key).collect::<Vec<_>>()
        == reports_par.iter().map(report_key).collect::<Vec<_>>();
    println!(
        "  serial {mig_serial:.3} s, pooled {mig_par:.3} s ({:.2}x); reports identical: {mig_identical}",
        mig_serial / mig_par.max(1e-9)
    );
    assert!(
        mig_identical,
        "migration reports must not depend on worker count"
    );
    // Content-aware wire path on the same workload: same destination state
    // (verify_contents is on inside migrate_many), fewer wire bytes, and —
    // because zero pages skip both the encode arithmetic and the destination
    // write — less wall-clock time.
    let (mig_ca, reports_ca) = migrate_batch(WorkerPool::new(threads), WireMode::ContentAware);
    let mut wire = hypertp_migrate::WireStats::default();
    for r in &reports_ca {
        wire.merge(&r.wire);
    }
    let wire_reduction_pct = (1.0 - wire.compression_ratio()) * 100.0;
    let ca_identical = reports_ca
        .iter()
        .zip(&reports_par)
        .all(|(a, b)| a.vm_name == b.vm_name && a.uisr_bytes == b.uisr_bytes);
    println!(
        "  content-aware {mig_ca:.3} s ({:.2}x vs raw pooled); wire bytes {} of {} raw ({wire_reduction_pct:.1}% saved); identical: {ca_identical}",
        mig_par / mig_ca.max(1e-9),
        wire.wire_bytes(),
        wire.raw_equivalent_bytes(),
    );
    assert!(
        ca_identical,
        "content-aware migration must produce the same VMs"
    );

    // JSON artifact.
    let out = Json::obj()
        .with("bench", json::s("perf_smoke"))
        .with("hardware_threads_detected", json::u(threads as u64))
        .with("effective_workers", json::u(effective_workers as u64))
        .with(
            "inplace_8vm",
            Json::obj()
                .with("vms", json::u(u64::from(VMS)))
                .with("mem_gb_per_vm", json::u(MEM_GB))
                .with("serial_secs", json::f(serial_s))
                .with("parallel_secs", json::f(par_s))
                .with("speedup", json::f(speedup))
                .with("identical", json::s(identical.to_string())),
        )
        .with(
            "pram_encode",
            Json::obj()
                .with("files", json::u(4))
                .with("serial_secs", json::f(enc_serial))
                .with("parallel_secs", json::f(enc_par))
                .with("parse_secs", json::f(parse_s))
                .with("identical", json::s(pram_identical.to_string())),
        )
        .with(
            "uisr_codec",
            Json::obj()
                .with("round_trips", json::u(u64::from(uisr_iters)))
                .with("blob_bytes", json::u(uisr_bytes as u64))
                .with("total_secs", json::f(uisr_s)),
        )
        .with(
            "migrate_many",
            Json::obj()
                .with("vms", json::u(4))
                .with("serial_secs", json::f(mig_serial))
                .with("parallel_secs", json::f(mig_par))
                .with("identical", json::s(mig_identical.to_string()))
                .with("content_aware_secs", json::f(mig_ca))
                .with("wire_bytes", json::u(wire.wire_bytes()))
                .with("raw_equivalent_bytes", json::u(wire.raw_equivalent_bytes()))
                .with("wire_reduction_pct", json::f(wire_reduction_pct))
                .with("content_aware_identical", json::s(ca_identical.to_string()))
                // Per-round controller telemetry of the content-aware
                // run: EWMA trajectories + stop-threshold/throttle per
                // round (static config, so the threshold stays at 64 and
                // the throttle at 1.0 — the estimators still observe).
                .with(
                    "round_telemetry",
                    hypertp_bench::rounds_telemetry(&reports_ca),
                ),
        );
    let path = std::env::var("PERF_SMOKE_OUT").unwrap_or_else(|_| "BENCH_parallel.json".into());
    std::fs::write(&path, out.encode_pretty()).expect("write artifact");
    println!("wrote {path}");
}
