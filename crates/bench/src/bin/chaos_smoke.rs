//! chaos_smoke: recovery-cost distributions under seeded fault injection.
//!
//! Runs each fault scenario against its clean twin across a spread of
//! seeds and reports what recovery *costs*: the extra simulated time a
//! migration spends retrying a dropped link, re-sending a truncated page
//! or a corrupted UISR blob, and the extra wall-clock a cluster plan
//! burns requeuing failed host upgrades. The same seed always produces
//! the same faults (see `hypertp_sim::fault`), so the distributions here
//! are reproducible — only scenario 4's wall-clock numbers depend on the
//! machine.
//!
//! 1. MigrationTP link drops (retry + backoff + round resume).
//! 2. MigrationTP truncated final page (detect + re-send).
//! 3. MigrationTP corrupted UISR blob (decode reject + re-send) and
//!    latency spikes (absorbed into the round).
//! 4. InPlaceTP PRAM checksum mismatch (verify + rebuild) and worker
//!    panics (inline re-run), with a faulted-vs-clean identity check.
//! 5. Cluster plan execution under host failures (requeue/exclude).
//! 6. MigrationTP exhaustion falling back to InPlaceTP.
//!
//! Writes `BENCH_chaos.json` (in the current directory, override with
//! `CHAOS_SMOKE_OUT`).

use std::time::Instant;

use hypertp_bench::registry;
use hypertp_cluster::exec::{execute, execute_with_faults, ExecConfig};
use hypertp_cluster::planner::plan_upgrade;
use hypertp_cluster::Cluster;
use hypertp_core::{migrate_or_inplace, HypervisorKind, InPlaceTransplant, VmConfig};
use hypertp_machine::{Extent, Gfn, Machine, MachineSpec};
use hypertp_migrate::{MigrationConfig, MigrationReport, MigrationTp};
use hypertp_pram::PramStats;
use hypertp_sim::fault::{FaultPlan, InjectionPoint};
use hypertp_sim::json::{self, Json};
use hypertp_sim::{SimClock, WorkerPool};

/// Seeds per scenario: enough for a distribution, small enough to smoke.
const SEEDS: u64 = 12;
/// Base seed; per-run seeds are `BASE + i`.
const BASE: u64 = 0xc4a0_5000;

/// Min / mean / max of a sample in seconds.
struct Dist {
    min: f64,
    mean: f64,
    max: f64,
}

impl Dist {
    fn of(samples: &[f64]) -> Dist {
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mean = samples.iter().sum::<f64>() / samples.len().max(1) as f64;
        Dist { min, mean, max }
    }

    fn json(&self) -> Json {
        Json::obj()
            .with("min_secs", json::f(self.min))
            .with("mean_secs", json::f(self.mean))
            .with("max_secs", json::f(self.max))
    }
}

/// Runs one 1-VM Xen→KVM migration with the given fault plan and returns
/// the report (the source clock advances through the whole migration).
fn migrate_once(faults: FaultPlan) -> Result<MigrationReport, hypertp_core::HtpError> {
    let reg = registry();
    let clock = SimClock::new();
    let mut src_m = Machine::with_clock(MachineSpec::m1(), clock.clone());
    let mut dst_m = Machine::with_clock(MachineSpec::m1(), clock);
    let mut src = reg.create(HypervisorKind::Xen, &mut src_m).expect("xen");
    let cfg = VmConfig::small("chaos").with_memory_gb(1);
    let id = src.create_vm(&mut src_m, &cfg).expect("capacity");
    for k in 0..512u64 {
        src.write_guest(&mut src_m, id, Gfn(k % cfg.pages()), k ^ 0xdead_beef)
            .expect("seed write");
    }
    let mut dst = reg.create(HypervisorKind::Kvm, &mut dst_m).expect("kvm");
    let tp = MigrationTp::new()
        .with_config(MigrationConfig {
            dirty_rate_pages_per_sec: 0.0,
            ..MigrationConfig::default()
        })
        .with_faults(faults);
    tp.migrate(&mut src_m, src.as_mut(), id, &mut dst_m, dst.as_mut())
}

/// Total simulated migration seconds with `point` armed at `rate`,
/// minus the clean baseline. Returns (overhead samples, injections).
fn migration_overheads(point: InjectionPoint, rate: f64) -> (Vec<f64>, u64) {
    let clean = migrate_once(FaultPlan::disarmed())
        .expect("clean migration")
        .total
        .as_secs_f64();
    let mut overheads = Vec::new();
    let mut injections = 0u64;
    for i in 0..SEEDS {
        let faults = FaultPlan::new(BASE + point.index() as u64 * 100 + i);
        faults.arm(point, rate, u64::MAX);
        let report = migrate_once(faults.clone()).expect("faulted migration recovers");
        injections += faults.injections_fired(point);
        overheads.push(report.total.as_secs_f64() - clean);
    }
    (overheads, injections)
}

/// One InPlaceTP transplant of 2 VMs with the given fault plan; returns
/// (wall seconds, per-VM guest checksums, PRAM stats) for identity checks.
fn inplace_once(faults: FaultPlan) -> (f64, Vec<u64>, PramStats) {
    let reg = registry();
    let mut machine = Machine::new(MachineSpec::m1());
    let mut hv = reg.create(HypervisorKind::Xen, &mut machine).expect("xen");
    for i in 0..2u32 {
        let cfg = VmConfig::small(format!("vm{i}")).with_memory_gb(1);
        let id = hv.create_vm(&mut machine, &cfg).expect("capacity");
        for k in 0..256u64 {
            hv.write_guest(
                &mut machine,
                id,
                Gfn((k * 7 + u64::from(i)) % cfg.pages()),
                k,
            )
            .expect("seed write");
        }
    }
    let engine = InPlaceTransplant::new(&reg).with_faults(faults);
    let start = Instant::now();
    let (hv, report) = engine
        .run(&mut machine, hv, HypervisorKind::Kvm)
        .expect("transplant recovers");
    let wall = start.elapsed().as_secs_f64();
    let mut checksums = Vec::new();
    for id in hv.vm_ids() {
        let map = hv.guest_memory_map(id).expect("map");
        let extents: Vec<Extent> = map.iter().map(|(_, e)| *e).collect();
        checksums.push(
            machine
                .ram()
                .checksum_with_pool(&extents, &WorkerPool::serial()),
        );
    }
    (wall, checksums, report.pram_stats)
}

fn main() {
    println!("chaos_smoke: {SEEDS} seeds per scenario, base seed {BASE:#x}");

    // 1. Link drops: retry with backoff, resume the round.
    let (drop_over, drop_inj) = migration_overheads(InjectionPoint::LinkDrop, 0.2);
    let drop_dist = Dist::of(&drop_over);
    println!(
        "== link drop == {drop_inj} injections, recovery overhead mean {:.3} s",
        drop_dist.mean
    );

    // 2. Truncated final page: detect on the receiver, re-send.
    let (trunc_over, trunc_inj) = migration_overheads(InjectionPoint::TruncatedPage, 0.5);
    let trunc_dist = Dist::of(&trunc_over);
    println!(
        "== truncated page == {trunc_inj} injections, recovery overhead mean {:.3} s",
        trunc_dist.mean
    );

    // 3a. Corrupted UISR blob: decode rejects, blob re-sent.
    let (uisr_over, uisr_inj) = migration_overheads(InjectionPoint::UisrCorruption, 0.5);
    let uisr_dist = Dist::of(&uisr_over);
    println!(
        "== uisr corruption == {uisr_inj} injections, recovery overhead mean {:.3} s",
        uisr_dist.mean
    );
    // 3b. Latency spikes: absorbed into the round time.
    let (spike_over, spike_inj) = migration_overheads(InjectionPoint::LinkLatencySpike, 0.3);
    let spike_dist = Dist::of(&spike_over);
    println!(
        "== latency spike == {spike_inj} injections, recovery overhead mean {:.3} s",
        spike_dist.mean
    );

    // 4. InPlaceTP chaos: PRAM checksum rebuild + worker-panic re-runs.
    // The faulted transplant must land on exactly the clean result.
    let (clean_wall, clean_sums, clean_stats) = inplace_once(FaultPlan::disarmed());
    let mut inplace_wall = Vec::new();
    let mut inplace_recoveries = 0u64;
    for i in 0..SEEDS {
        let faults = FaultPlan::new(BASE + 0x4000 + i);
        faults.arm_once(InjectionPoint::PramChecksum);
        faults.arm(InjectionPoint::WorkerPanic, 0.5, 2);
        let (wall, sums, stats) = inplace_once(faults.clone());
        assert_eq!(sums, clean_sums, "faulted transplant altered guest memory");
        assert_eq!(stats, clean_stats, "faulted transplant altered PRAM shape");
        inplace_recoveries += faults.log().len() as u64 / 2;
        inplace_wall.push((wall - clean_wall).max(0.0));
    }
    let inplace_dist = Dist::of(&inplace_wall);
    println!(
        "== inplace pram+worker == {inplace_recoveries} recoveries, wall overhead mean {:.3} s, results identical",
        inplace_dist.mean
    );

    // 5. Cluster execution under host failures: requeue burns slot time,
    // exclusion drops the host.
    let cluster = Cluster::paper_testbed(80, 42);
    let plan = plan_upgrade(&cluster, 2).expect("plan");
    let cfg = ExecConfig::default();
    let clean_total = execute(&cluster, &plan, &cfg).total.as_secs_f64();
    let mut exec_over = Vec::new();
    let mut exec_retries = 0u64;
    let mut exec_excluded = 0u64;
    for i in 0..SEEDS {
        let faults = FaultPlan::new(BASE + 0x5000 + i);
        faults.arm(InjectionPoint::HostFailure, 0.2, u64::MAX);
        let r = execute_with_faults(&cluster, &plan, &cfg, &faults);
        exec_retries += r.host_retries as u64;
        exec_excluded += r.hosts_excluded as u64;
        exec_over.push(r.total.as_secs_f64() - clean_total);
    }
    let exec_dist = Dist::of(&exec_over);
    println!(
        "== cluster host failure == {exec_retries} requeues, {exec_excluded} exclusions, overhead mean {:.3} s",
        exec_dist.mean
    );

    // 6. Migration exhaustion → InPlaceTP fallback.
    let mut fellback = 0u64;
    for i in 0..SEEDS {
        let faults = FaultPlan::new(BASE + 0x6000 + i);
        faults.arm(InjectionPoint::LinkDrop, 1.0, u64::MAX);
        let out = migrate_or_inplace(
            &faults,
            "chaos-host",
            || migrate_once(faults.clone()).map(|r| r.total),
            || {
                let (_, sums, _) = inplace_once(FaultPlan::disarmed());
                Ok(sums)
            },
        )
        .expect("fallback succeeds");
        if out.fell_back() {
            fellback += 1;
        }
    }
    assert_eq!(fellback, SEEDS, "a saturated link must always fall back");
    println!("== migration fallback == {fellback}/{SEEDS} runs fell back to InPlaceTP");

    let out = Json::obj()
        .with("bench", json::s("chaos_smoke"))
        .with("seeds_per_scenario", json::u(SEEDS))
        .with("base_seed", json::u(BASE))
        .with(
            "migration_link_drop",
            Json::obj()
                .with("rate", json::f(0.2))
                .with("injections", json::u(drop_inj))
                .with("recovery_overhead", drop_dist.json()),
        )
        .with(
            "migration_truncated_page",
            Json::obj()
                .with("rate", json::f(0.5))
                .with("injections", json::u(trunc_inj))
                .with("recovery_overhead", trunc_dist.json()),
        )
        .with(
            "migration_uisr_corruption",
            Json::obj()
                .with("rate", json::f(0.5))
                .with("injections", json::u(uisr_inj))
                .with("recovery_overhead", uisr_dist.json()),
        )
        .with(
            "migration_latency_spike",
            Json::obj()
                .with("rate", json::f(0.3))
                .with("injections", json::u(spike_inj))
                .with("recovery_overhead", spike_dist.json()),
        )
        .with(
            "inplace_pram_and_workers",
            Json::obj()
                .with("recoveries", json::u(inplace_recoveries))
                .with("results_identical", json::s("true"))
                .with("wall_overhead", inplace_dist.json()),
        )
        .with(
            "cluster_host_failure",
            Json::obj()
                .with("rate", json::f(0.2))
                .with("requeues", json::u(exec_retries))
                .with("exclusions", json::u(exec_excluded))
                .with("recovery_overhead", exec_dist.json()),
        )
        .with(
            "migration_fallback",
            Json::obj()
                .with("runs", json::u(SEEDS))
                .with("fell_back", json::u(fellback)),
        );
    let path = std::env::var("CHAOS_SMOKE_OUT").unwrap_or_else(|_| "BENCH_chaos.json".into());
    std::fs::write(&path, out.encode_pretty()).expect("write artifact");
    println!("wrote {path}");
}
