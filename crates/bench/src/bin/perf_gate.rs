//! perf_gate: CI regression gate over the perf_smoke / adaptive_smoke
//! artifacts.
//!
//! Usage:
//!
//! ```text
//! perf_gate wire     <committed BENCH_wire.json>     <perf_smoke run 1> [...]
//! perf_gate adaptive <committed BENCH_adaptive.json> <adaptive_smoke run 1> [...]
//! perf_gate inplace  <committed BENCH_inplace.json>  <inplace_smoke run 1> [...]
//! perf_gate campaign <committed BENCH_campaign.json> <campaign_smoke run 1> [...]
//! perf_gate rehype   <committed BENCH_rehype.json>   <rehype_smoke run 1> [...]
//! perf_gate slo      <committed BENCH_slo.json>      <slo_smoke run 1> [...]
//! perf_gate exposure <committed BENCH_exposure.json> <exposure_smoke run 1> [...]
//! perf_gate <committed BENCH_wire.json> <perf_smoke run...>   # legacy = wire
//! ```
//!
//! **wire**: CI runs `perf_smoke` twice (timings jitter; identity and
//! compression must not) plus one fresh `wire_smoke`, and hands the
//! artifacts here together with the *committed* `BENCH_wire.json`. The
//! gate fails — non-zero exit, one line per violation — when:
//!
//! 1. any `identical`-suffixed field in any run is not `"true"` (the
//!    worker pool or the wire codec changed results; for `wire_smoke`
//!    runs this covers the ring-vs-legacy and encode-wire-byte identity
//!    fields too),
//! 2. any run's wire reduction (`migrate_many.wire_reduction_pct` for
//!    `perf_smoke` artifacts, `idle_fleet.wire_reduction_pct` for
//!    `wire_smoke` ones) falls below the committed artifact's
//!    `reduction_floor_pct` (the content-aware path stopped earning its
//!    keep), or
//! 3. a run carrying an `encode` section (a `wire_smoke` artifact)
//!    reports `encode.speedup` below the committed
//!    `encode.speedup_floor` (the zero-copy frame ring stopped beating
//!    the legacy per-page gather path).
//!
//! **adaptive**: CI runs `adaptive_smoke` and hands the fresh artifact(s)
//! here with the committed `BENCH_adaptive.json`. A run fails when:
//!
//! 1. any `identical`-suffixed field is not `"true"` (the adaptive fleet
//!    stopped being deterministic),
//! 2. `adaptive_vs_static.mean_downtime_cut_pct` falls below the
//!    committed `downtime_cut_floor_pct` (adaptive-mode downtime
//!    regressed toward the static baseline),
//! 3. `adaptive_vs_static.makespan_ratio` exceeds 1.01 (the downtime win
//!    started costing total migration time),
//! 4. `budget.max_downtime_ms` exceeds `budget.budget_ms` (the downtime
//!    budget was violated on the reference fleet), or
//! 5. `scheduler.ready_cut_pct` is not positive (SPDF stopped beating
//!    FIFO admission).
//!
//! **inplace**: CI runs `inplace_smoke` and hands the fresh artifact(s)
//! here with the committed `BENCH_inplace.json`. A run fails when:
//!
//! 1. any `identical`-suffixed field is not `"true"` — this covers the
//!    deterministic rerun, the incremental-off identity (the toggle must
//!    stay inert by default), and the equal-restored-state check of the
//!    incremental-on path,
//! 2. `incremental_vs_parallel.hot_mean_downtime_cut_pct` falls below the
//!    committed `downtime_cut_floor_pct` (the dirty-delta finalize stopped
//!    shrinking the blackout on the hot fleet), or
//! 3. `incremental_vs_parallel.idle_mean_downtime_cut_pct` is below the
//!    hot cut by more than one point (idle guests must benefit at least
//!    as much as hot ones — the warm loop's best case).
//!
//! **campaign**: CI runs `campaign_smoke` (the 1k→10k-host sharded
//! campaign-engine sweep) and hands the fresh artifact(s) here with the
//! committed `BENCH_campaign.json`. A run fails when:
//!
//! 1. any `identical`-suffixed field is not `"true"` — this covers the
//!    baseline-vs-memoized report identity, the shard×worker identity,
//!    the deterministic rerun, and the campaign shard identity,
//! 2. `scaling.fitted_exponent` exceeds the committed
//!    `scaling_exponent_ceiling` (plan+exec stopped scaling
//!    near-linearly with fleet size), or
//! 3. `sharded_1k.speedup` falls below the committed `speedup_floor`
//!    (the sharded engine stopped beating the per-host-evaluation
//!    baseline at 1k hosts).
//!
//! **rehype**: CI runs `rehype_smoke` (the crash-triggered unplanned
//! transplant matrix) and hands the fresh artifact(s) here with the
//! committed `BENCH_rehype.json`. A run fails when:
//!
//! 1. any `identical`-suffixed field is not `"true"` — this covers the
//!    deterministic crash-recovery rerun and the inertness of the
//!    field-level UISR diff toggle,
//! 2. `warm_vs_cold.min_cut_pct` falls below the committed
//!    `recovery_cut_floor_pct` (warm checkpoints stopped beating the
//!    cold salvage-translate ablation at some crash phase), or
//! 3. `loss.max_lag_pages` is not strictly below `loss.bound_pages`
//!    (the checkpointer's provable state-loss bound was violated).
//!
//! **slo**: CI runs `slo_smoke` (the 150-VM diurnal-fleet scheduler
//! comparison) and hands the fresh artifact(s) here with the committed
//! `BENCH_slo.json`. A run fails when:
//!
//! 1. any `identical`-suffixed field is not `"true"` — this covers the
//!    deterministic rerun, the shard×worker report identity, and the
//!    engine-level zero-traffic passthrough (an SLO attachment whose
//!    curve carries no bandwidth must not perturb the data path),
//! 2. `slo_vs_blind.violation_cut_pct` falls below the committed
//!    `violation_cut_floor_pct` (SLO-aware admission stopped beating the
//!    traffic-blind SPDF baseline),
//! 3. `slo_vs_blind.makespan_ratio` exceeds the committed
//!    `makespan_ratio_ceiling` (the violation cut started costing total
//!    campaign time), or
//! 4. `budget.aware_max_burn` exceeds 1.0 (some VM under the aware
//!    schedule burned its entire declared error budget).
//!
//! **exposure**: CI runs `exposure_smoke` (the 1k-host year-long
//! vulnerability-feed replay) and hands the fresh artifact(s) here with
//! the committed `BENCH_exposure.json`. A run fails when:
//!
//! 1. any `identical`-suffixed field is not `"true"` — this covers the
//!    deterministic rerun, the shard×worker replay identity, the
//!    feed-off executor-render identity (a report with no exposure
//!    attachment must keep the pre-feed byte format), and the empty-feed
//!    no-op,
//! 2. `aware_vs_blind.exposure_cut_pct` falls below the committed
//!    `exposure_cut_floor_pct` (surface-aware planning stopped beating
//!    the surface-blind baseline on integrated exposure), or
//! 3. `replan.speedup` falls below the committed `replan_speedup_floor`
//!    (the cached cost table stopped beating a per-disclosure rebuild).
//!
//! The gate deliberately ignores wall-clock fields: CI machines are too
//! noisy for absolute-time floors, but correctness, compression, and
//! *simulated* time are deterministic. (The campaign mode's exponent and
//! speedup are *ratios* of wall times measured in one process — scale
//! cancels, only the shape is gated, with wide committed margins.)

use std::process::ExitCode;

use hypertp_sim::json::Json;

/// Recursively collects `(path, value)` for every string field whose key
/// is `identical` or ends in `_identical`.
fn identity_fields(prefix: &str, json: &Json, out: &mut Vec<(String, String)>) {
    if let Some(fields) = json.as_obj() {
        for (key, value) in fields {
            let path = if prefix.is_empty() {
                key.clone()
            } else {
                format!("{prefix}.{key}")
            };
            if key == "identical" || key.ends_with("_identical") {
                if let Some(s) = value.as_str() {
                    out.push((path.clone(), s.to_string()));
                }
            }
            identity_fields(&path, value, out);
        }
    }
}

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("{path}: {e:?}"))
}

/// Checks every `identical` field in `run` and reports how many there
/// were; pushes a violation per non-`"true"` value.
fn check_identity(path: &str, run: &Json, violations: &mut Vec<String>) -> usize {
    let mut fields = Vec::new();
    identity_fields("", run, &mut fields);
    if fields.is_empty() {
        violations.push(format!("{path}: no identical fields found"));
    }
    for (field, value) in &fields {
        if value != "true" {
            violations.push(format!("{path}: {field} = {value:?}, expected \"true\""));
        }
    }
    fields.len()
}

/// Fetches a float at a dotted path, pushing a violation when missing.
fn get_f64(path: &str, run: &Json, dotted: &str, violations: &mut Vec<String>) -> Option<f64> {
    let mut node = run;
    for part in dotted.split('.') {
        match node.get(part) {
            Some(next) => node = next,
            None => {
                violations.push(format!("{path}: missing {dotted}"));
                return None;
            }
        }
    }
    match node.as_f64() {
        Some(v) => Some(v),
        None => {
            violations.push(format!("{path}: {dotted} is not a number"));
            None
        }
    }
}

fn gate_wire(committed: &str, runs: &[String]) -> Vec<String> {
    let mut violations = Vec::new();
    let wire = match load(committed) {
        Ok(j) => j,
        Err(e) => return vec![e],
    };
    let Some(floor) = wire.get("reduction_floor_pct").and_then(Json::as_f64) else {
        return vec![format!("{committed}: missing reduction_floor_pct")];
    };
    // The encode floor lives inside the committed artifact's `encode`
    // section; older committed artifacts without one simply skip check 3.
    let speedup_floor = wire
        .get("encode")
        .and_then(|e| e.get("speedup_floor"))
        .and_then(Json::as_f64);

    for path in runs {
        let run = match load(path) {
            Ok(j) => j,
            Err(e) => {
                violations.push(e);
                continue;
            }
        };
        let before = violations.len();
        let n = check_identity(path, &run, &mut violations);
        // perf_smoke artifacts report the reduction under `migrate_many`;
        // wire_smoke artifacts under `idle_fleet`.
        let pct = run
            .get("migrate_many")
            .or_else(|| run.get("idle_fleet"))
            .and_then(|m| m.get("wire_reduction_pct"))
            .and_then(Json::as_f64);
        match pct {
            Some(pct) if pct < floor => violations.push(format!(
                "{path}: wire_reduction_pct {pct:.1} below committed floor {floor:.1}"
            )),
            Some(_) => {}
            None => violations.push(format!("{path}: missing wire_reduction_pct")),
        }
        let speedup = run
            .get("encode")
            .and_then(|e| e.get("speedup"))
            .and_then(Json::as_f64);
        if let (Some(speedup), Some(floor)) = (speedup, speedup_floor) {
            if speedup < floor {
                violations.push(format!(
                    "{path}: encode.speedup {speedup:.2}x below committed floor {floor:.2}x \
                     — the frame ring stopped beating the legacy gather path"
                ));
            }
        }
        if violations.len() == before {
            match speedup {
                Some(s) => println!(
                    "perf_gate: {path}: {n} identity fields ok, wire reduction {:.1}% >= \
                     floor {floor:.1}%, encode speedup {s:.2}x >= floor {:.2}x",
                    pct.unwrap_or(f64::NAN),
                    speedup_floor.unwrap_or(f64::NAN),
                ),
                None => println!(
                    "perf_gate: {path}: {n} identity fields ok, wire reduction {:.1}% >= floor {floor:.1}%",
                    pct.unwrap_or(f64::NAN)
                ),
            }
        }
    }
    violations
}

fn gate_adaptive(committed: &str, runs: &[String]) -> Vec<String> {
    let mut violations = Vec::new();
    let base = match load(committed) {
        Ok(j) => j,
        Err(e) => return vec![e],
    };
    let Some(floor) = base.get("downtime_cut_floor_pct").and_then(Json::as_f64) else {
        return vec![format!("{committed}: missing downtime_cut_floor_pct")];
    };

    for path in runs {
        let run = match load(path) {
            Ok(j) => j,
            Err(e) => {
                violations.push(e);
                continue;
            }
        };
        let before = violations.len();
        let n = check_identity(path, &run, &mut violations);

        let cut = get_f64(
            path,
            &run,
            "adaptive_vs_static.mean_downtime_cut_pct",
            &mut violations,
        );
        if let Some(cut) = cut {
            if cut < floor {
                violations.push(format!(
                    "{path}: adaptive mean-downtime cut {cut:.1}% below committed floor {floor:.1}%"
                ));
            }
        }
        if let Some(ratio) = get_f64(
            path,
            &run,
            "adaptive_vs_static.makespan_ratio",
            &mut violations,
        ) {
            if ratio > 1.01 {
                violations.push(format!(
                    "{path}: adaptive makespan ratio {ratio:.4} > 1.01 — downtime win costs total time"
                ));
            }
        }
        let budget_ms = get_f64(path, &run, "budget.budget_ms", &mut violations);
        let max_ms = get_f64(path, &run, "budget.max_downtime_ms", &mut violations);
        if let (Some(budget_ms), Some(max_ms)) = (budget_ms, max_ms) {
            if max_ms > budget_ms {
                violations.push(format!(
                    "{path}: downtime budget violated: max {max_ms:.2} ms > budget {budget_ms:.2} ms"
                ));
            }
        }
        if let Some(ready_cut) = get_f64(path, &run, "scheduler.ready_cut_pct", &mut violations) {
            if ready_cut <= 0.0 {
                violations.push(format!(
                    "{path}: scheduler ready-time cut {ready_cut:.1}% is not positive"
                ));
            }
        }
        if violations.len() == before {
            println!(
                "perf_gate: {path}: {n} identity fields ok, downtime cut {:.1}% >= floor {floor:.1}%, \
                 budget {:.2}/{:.2} ms, scheduler cut {:.1}%",
                cut.unwrap_or(f64::NAN),
                max_ms.unwrap_or(f64::NAN),
                budget_ms.unwrap_or(f64::NAN),
                get_f64(path, &run, "scheduler.ready_cut_pct", &mut Vec::new())
                    .unwrap_or(f64::NAN),
            );
        }
    }
    violations
}

fn gate_inplace(committed: &str, runs: &[String]) -> Vec<String> {
    let mut violations = Vec::new();
    let base = match load(committed) {
        Ok(j) => j,
        Err(e) => return vec![e],
    };
    let Some(floor) = base.get("downtime_cut_floor_pct").and_then(Json::as_f64) else {
        return vec![format!("{committed}: missing downtime_cut_floor_pct")];
    };

    for path in runs {
        let run = match load(path) {
            Ok(j) => j,
            Err(e) => {
                violations.push(e);
                continue;
            }
        };
        let before = violations.len();
        let n = check_identity(path, &run, &mut violations);

        let hot_cut = get_f64(
            path,
            &run,
            "incremental_vs_parallel.hot_mean_downtime_cut_pct",
            &mut violations,
        );
        if let Some(cut) = hot_cut {
            if cut < floor {
                violations.push(format!(
                    "{path}: hot-fleet mean-downtime cut {cut:.1}% below committed floor {floor:.1}%"
                ));
            }
        }
        let idle_cut = get_f64(
            path,
            &run,
            "incremental_vs_parallel.idle_mean_downtime_cut_pct",
            &mut violations,
        );
        if let (Some(hot), Some(idle)) = (hot_cut, idle_cut) {
            if idle < hot - 1.0 {
                violations.push(format!(
                    "{path}: idle cut {idle:.1}% trails hot cut {hot:.1}% — the warm \
                     loop's best case regressed"
                ));
            }
        }
        if violations.len() == before {
            println!(
                "perf_gate: {path}: {n} identity fields ok, hot downtime cut {:.1}% >= \
                 floor {floor:.1}%, idle cut {:.1}%",
                hot_cut.unwrap_or(f64::NAN),
                idle_cut.unwrap_or(f64::NAN),
            );
        }
    }
    violations
}

fn gate_campaign(committed: &str, runs: &[String]) -> Vec<String> {
    let mut violations = Vec::new();
    let base = match load(committed) {
        Ok(j) => j,
        Err(e) => return vec![e],
    };
    let Some(ceiling) = base.get("scaling_exponent_ceiling").and_then(Json::as_f64) else {
        return vec![format!("{committed}: missing scaling_exponent_ceiling")];
    };
    let Some(speedup_floor) = base.get("speedup_floor").and_then(Json::as_f64) else {
        return vec![format!("{committed}: missing speedup_floor")];
    };

    for path in runs {
        let run = match load(path) {
            Ok(j) => j,
            Err(e) => {
                violations.push(e);
                continue;
            }
        };
        let before = violations.len();
        let n = check_identity(path, &run, &mut violations);

        let exponent = get_f64(path, &run, "scaling.fitted_exponent", &mut violations);
        if let Some(exp) = exponent {
            if exp > ceiling {
                violations.push(format!(
                    "{path}: fitted scaling exponent {exp:.3} above committed ceiling \
                     {ceiling:.2} — plan+exec stopped scaling near-linearly"
                ));
            }
        }
        let speedup = get_f64(path, &run, "sharded_1k.speedup", &mut violations);
        let workers = get_f64(path, &run, "sharded_1k.workers", &mut violations);
        if let (Some(speedup), Some(workers)) = (speedup, workers) {
            // The floor covers the single-core algorithmic win (the
            // class memo); with extra workers the thread win must at
            // least not reverse it.
            if speedup < speedup_floor {
                violations.push(format!(
                    "{path}: sharded 1k-host speedup {speedup:.2}x below committed floor \
                     {speedup_floor:.2}x (workers={workers})"
                ));
            }
        }
        if violations.len() == before {
            println!(
                "perf_gate: {path}: {n} identity fields ok, scaling exponent {:.3} <= \
                 ceiling {ceiling:.2}, 1k-host speedup {:.2}x >= floor {speedup_floor:.2}x",
                exponent.unwrap_or(f64::NAN),
                speedup.unwrap_or(f64::NAN),
            );
        }
    }
    violations
}

fn gate_rehype(committed: &str, runs: &[String]) -> Vec<String> {
    let mut violations = Vec::new();
    let base = match load(committed) {
        Ok(j) => j,
        Err(e) => return vec![e],
    };
    let Some(floor) = base.get("recovery_cut_floor_pct").and_then(Json::as_f64) else {
        return vec![format!("{committed}: missing recovery_cut_floor_pct")];
    };

    for path in runs {
        let run = match load(path) {
            Ok(j) => j,
            Err(e) => {
                violations.push(e);
                continue;
            }
        };
        let before = violations.len();
        let n = check_identity(path, &run, &mut violations);

        let min_cut = get_f64(path, &run, "warm_vs_cold.min_cut_pct", &mut violations);
        if let Some(cut) = min_cut {
            if cut < floor {
                violations.push(format!(
                    "{path}: warm-vs-cold recovery cut {cut:.1}% below committed floor \
                     {floor:.1}% at some crash phase"
                ));
            }
        }
        let max_lag = get_f64(path, &run, "loss.max_lag_pages", &mut violations);
        let bound = get_f64(path, &run, "loss.bound_pages", &mut violations);
        if let (Some(lag), Some(bound)) = (max_lag, bound) {
            if lag >= bound.max(1.0) {
                violations.push(format!(
                    "{path}: checkpoint lag {lag:.0} pages reached the staleness bound \
                     {bound:.0} — the state-loss bound no longer holds"
                ));
            }
        }
        if violations.len() == before {
            println!(
                "perf_gate: {path}: {n} identity fields ok, min recovery cut {:.1}% >= \
                 floor {floor:.1}%, max lag {:.0} < bound {:.0} pages",
                min_cut.unwrap_or(f64::NAN),
                max_lag.unwrap_or(f64::NAN),
                bound.unwrap_or(f64::NAN),
            );
        }
    }
    violations
}

fn gate_slo(committed: &str, runs: &[String]) -> Vec<String> {
    let mut violations = Vec::new();
    let base = match load(committed) {
        Ok(j) => j,
        Err(e) => return vec![e],
    };
    let Some(floor) = base.get("violation_cut_floor_pct").and_then(Json::as_f64) else {
        return vec![format!("{committed}: missing violation_cut_floor_pct")];
    };
    let Some(ceiling) = base.get("makespan_ratio_ceiling").and_then(Json::as_f64) else {
        return vec![format!("{committed}: missing makespan_ratio_ceiling")];
    };

    for path in runs {
        let run = match load(path) {
            Ok(j) => j,
            Err(e) => {
                violations.push(e);
                continue;
            }
        };
        let before = violations.len();
        let n = check_identity(path, &run, &mut violations);

        let cut = get_f64(
            path,
            &run,
            "slo_vs_blind.violation_cut_pct",
            &mut violations,
        );
        if let Some(cut) = cut {
            if cut < floor {
                violations.push(format!(
                    "{path}: SLO-violation cut {cut:.1}% below committed floor {floor:.1}% \
                     — aware admission stopped beating blind SPDF"
                ));
            }
        }
        let ratio = get_f64(path, &run, "slo_vs_blind.makespan_ratio", &mut violations);
        if let Some(ratio) = ratio {
            if ratio > ceiling {
                violations.push(format!(
                    "{path}: makespan ratio {ratio:.4} above committed ceiling {ceiling:.2} \
                     — the violation cut costs campaign time"
                ));
            }
        }
        let burn = get_f64(path, &run, "budget.aware_max_burn", &mut violations);
        if let Some(burn) = burn {
            if burn > 1.0 {
                violations.push(format!(
                    "{path}: aware max error-budget burn {burn:.2} exceeds 1.0 — some VM \
                     exhausted its budget under the aware schedule"
                ));
            }
        }
        if violations.len() == before {
            println!(
                "perf_gate: {path}: {n} identity fields ok, violation cut {:.1}% >= floor \
                 {floor:.1}%, makespan ratio {:.4} <= {ceiling:.2}, max burn {:.2} <= 1.0",
                cut.unwrap_or(f64::NAN),
                ratio.unwrap_or(f64::NAN),
                burn.unwrap_or(f64::NAN),
            );
        }
    }
    violations
}

fn gate_exposure(committed: &str, runs: &[String]) -> Vec<String> {
    let mut violations = Vec::new();
    let base = match load(committed) {
        Ok(j) => j,
        Err(e) => return vec![e],
    };
    let Some(floor) = base.get("exposure_cut_floor_pct").and_then(Json::as_f64) else {
        return vec![format!("{committed}: missing exposure_cut_floor_pct")];
    };
    let Some(speedup_floor) = base.get("replan_speedup_floor").and_then(Json::as_f64) else {
        return vec![format!("{committed}: missing replan_speedup_floor")];
    };

    for path in runs {
        let run = match load(path) {
            Ok(j) => j,
            Err(e) => {
                violations.push(e);
                continue;
            }
        };
        let before = violations.len();
        let n = check_identity(path, &run, &mut violations);

        let cut = get_f64(
            path,
            &run,
            "aware_vs_blind.exposure_cut_pct",
            &mut violations,
        );
        if let Some(cut) = cut {
            if cut < floor {
                violations.push(format!(
                    "{path}: integrated-exposure cut {cut:.1}% below committed floor \
                     {floor:.1}% — surface-aware planning stopped beating the blind baseline"
                ));
            }
        }
        let speedup = get_f64(path, &run, "replan.speedup", &mut violations);
        if let Some(speedup) = speedup {
            if speedup < speedup_floor {
                violations.push(format!(
                    "{path}: incremental re-plan speedup {speedup:.1}x below committed floor \
                     {speedup_floor:.1}x — the cached cost table stopped paying off"
                ));
            }
        }
        if violations.len() == before {
            println!(
                "perf_gate: {path}: {n} identity fields ok, exposure cut {:.1}% >= floor \
                 {floor:.1}%, replan speedup {:.1}x >= floor {speedup_floor:.1}x",
                cut.unwrap_or(f64::NAN),
                speedup.unwrap_or(f64::NAN),
            );
        }
    }
    violations
}

fn run() -> Result<(), Vec<String>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let usage = || {
        vec![
            "usage: perf_gate [wire|adaptive|inplace|campaign|rehype|slo|exposure] \
             <committed artifact> <fresh run...>"
                .to_string(),
        ]
    };
    let (mode, rest) = match args.first().map(String::as_str) {
        Some("wire") => ("wire", &args[1..]),
        Some("adaptive") => ("adaptive", &args[1..]),
        Some("inplace") => ("inplace", &args[1..]),
        Some("campaign") => ("campaign", &args[1..]),
        Some("rehype") => ("rehype", &args[1..]),
        Some("slo") => ("slo", &args[1..]),
        Some("exposure") => ("exposure", &args[1..]),
        // Legacy positional form: first arg is the committed wire artifact.
        Some(_) => ("wire", &args[..]),
        None => return Err(usage()),
    };
    if rest.len() < 2 {
        return Err(usage());
    }
    let violations = match mode {
        "wire" => gate_wire(&rest[0], &rest[1..]),
        "inplace" => gate_inplace(&rest[0], &rest[1..]),
        "campaign" => gate_campaign(&rest[0], &rest[1..]),
        "rehype" => gate_rehype(&rest[0], &rest[1..]),
        "slo" => gate_slo(&rest[0], &rest[1..]),
        "exposure" => gate_exposure(&rest[0], &rest[1..]),
        _ => gate_adaptive(&rest[0], &rest[1..]),
    };
    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations)
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => {
            println!("perf_gate: all runs pass");
            ExitCode::SUCCESS
        }
        Err(violations) => {
            for v in &violations {
                eprintln!("perf_gate: FAIL: {v}");
            }
            ExitCode::FAILURE
        }
    }
}
