//! perf_gate: CI regression gate over the perf_smoke artifacts.
//!
//! Usage:
//!
//! ```text
//! perf_gate <committed BENCH_wire.json> <perf_smoke run 1> [<perf_smoke run 2> ...]
//! ```
//!
//! CI runs `perf_smoke` twice (timings jitter; identity and compression
//! must not) and hands both artifacts here together with the *committed*
//! `BENCH_wire.json`. The gate fails — non-zero exit, one line per
//! violation — when:
//!
//! 1. any `identical`-suffixed field in any run is not `"true"` (the
//!    worker pool or the wire codec changed results), or
//! 2. any run's `migrate_many.wire_reduction_pct` falls below the
//!    committed artifact's `reduction_floor_pct` (the content-aware path
//!    stopped earning its keep).
//!
//! The gate deliberately ignores wall-clock fields: CI machines are too
//! noisy for absolute-time floors, but correctness and compression are
//! deterministic.

use std::process::ExitCode;

use hypertp_sim::json::Json;

/// Recursively collects `(path, value)` for every string field whose key
/// is `identical` or ends in `_identical`.
fn identity_fields(prefix: &str, json: &Json, out: &mut Vec<(String, String)>) {
    if let Some(fields) = json.as_obj() {
        for (key, value) in fields {
            let path = if prefix.is_empty() {
                key.clone()
            } else {
                format!("{prefix}.{key}")
            };
            if key == "identical" || key.ends_with("_identical") {
                if let Some(s) = value.as_str() {
                    out.push((path.clone(), s.to_string()));
                }
            }
            identity_fields(&path, value, out);
        }
    }
}

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("{path}: {e:?}"))
}

fn run() -> Result<(), Vec<String>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        return Err(vec![
            "usage: perf_gate <committed BENCH_wire.json> <perf_smoke run...>".into(),
        ]);
    }
    let mut violations = Vec::new();

    let wire = load(&args[0]).map_err(|e| vec![e])?;
    let floor = wire
        .get("reduction_floor_pct")
        .and_then(Json::as_f64)
        .ok_or_else(|| vec![format!("{}: missing reduction_floor_pct", args[0])])?;

    for path in &args[1..] {
        let run = load(path).map_err(|e| vec![e])?;
        let before = violations.len();

        let mut fields = Vec::new();
        identity_fields("", &run, &mut fields);
        if fields.is_empty() {
            violations.push(format!("{path}: no identical fields found"));
        }
        for (field, value) in &fields {
            if value != "true" {
                violations.push(format!("{path}: {field} = {value:?}, expected \"true\""));
            }
        }

        let pct = run
            .get("migrate_many")
            .and_then(|m| m.get("wire_reduction_pct"))
            .and_then(Json::as_f64);
        match pct {
            Some(pct) if pct < floor => violations.push(format!(
                "{path}: migrate_many.wire_reduction_pct {pct:.1} below committed floor {floor:.1}"
            )),
            Some(_) => {}
            None => violations.push(format!("{path}: missing migrate_many.wire_reduction_pct")),
        }
        if violations.len() == before {
            println!(
                "perf_gate: {path}: {} identity fields ok, wire reduction {:.1}% >= floor {floor:.1}%",
                fields.len(),
                pct.unwrap_or(f64::NAN)
            );
        }
    }

    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations)
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => {
            println!("perf_gate: all runs pass");
            ExitCode::SUCCESS
        }
        Err(violations) => {
            for v in &violations {
                eprintln!("perf_gate: FAIL: {v}");
            }
            ExitCode::FAILURE
        }
    }
}
