//! Regenerates the paper's fig14 (see DESIGN.md experiment index).

fn main() {
    print!("{}", hypertp_bench::experiments::fig14::run());
}
