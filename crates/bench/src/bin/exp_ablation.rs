//! Runs the §4.2.5 optimization ablation on its own.

fn main() {
    print!("{}", hypertp_bench::experiments::ablation::run());
}
