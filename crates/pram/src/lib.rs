//! PRAM: a persistent-over-kexec memory filesystem.
//!
//! InPlaceTP keeps guest memory in place across the micro-reboot. The new
//! hypervisor must learn *which* frames hold guest memory before its
//! allocator or boot scrubber touches them; the paper adapts the PRAM
//! patchset (Fig. 4) for this: a page-aligned metadata structure, reachable
//! from a single **PRAM pointer** passed on the target kernel's command
//! line, records each VM's memory as a file.
//!
//! This crate implements the structure at byte level inside the simulated
//! physical RAM:
//!
//! * a linked list of **root directory pages** holding pointers to file-info
//!   pages;
//! * one **file-info page** per VM (name, mode, total pages, pointer to the
//!   first node);
//! * a chain of **node pages** per file, each carrying a base GFN and up to
//!   508 packed 8-byte **page entries** (`mfn | order`), GFN-contiguous
//!   within a node — a hole in the guest address space starts a new node.
//!
//! The paper's reported metadata overheads (Fig. 14: 16 KB for a 1 GB VM,
//! 60 KB for a 12 GB VM, 148 KB for 12×1 GB VMs, 8 bytes per page entry)
//! fall out of this encoding rather than being asserted; the `fig14` bench
//! measures them from [`PramHandle::stats`].

pub mod entry;
pub mod fs;

pub use entry::{pack_entry, unpack_entry, PackedEntry};
pub use fs::{PramBuilder, PramError, PramFile, PramHandle, PramImage, PramStats};
