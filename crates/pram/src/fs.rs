//! The PRAM filesystem: builder (source side) and parser (target side).
//!
//! The builder runs in the source hypervisor's userspace *before* VMs are
//! paused (the §4.2.5 "preparation work" optimization); it encodes each VM's
//! guest memory map into metadata pages and returns the PRAM pointer that
//! InPlaceTP passes on the kexec command line. The parser runs in the target
//! hypervisor's early boot: it walks the structure, reconstructs every VM's
//! memory map, and reserves the frames before the allocator or boot
//! scrubber can recycle them.

use hypertp_machine::{Extent, Gfn, MemError, Mfn, PageOrder, PhysicalMemory, PAGE_SIZE};
use hypertp_sim::WorkerPool;

use crate::entry::{pack_entry, unpack_entry, PackedEntry, FLAG_GUEST};

const MAGIC: u32 = 0x4D41_5250; // "PRAM" little-endian.
const VERSION: u8 = 1;

const KIND_ROOT: u8 = 1;
const KIND_FILE: u8 = 2;
const KIND_NODE: u8 = 3;

const ROOT_CAPACITY: usize = (PAGE_SIZE as usize - 24) / 8;
const NODE_CAPACITY: usize = (PAGE_SIZE as usize - 32) / 8;
const NAME_MAX: usize = 64;
/// Byte offset of the per-file checksum inside a file-info page (after
/// header, node pointer, totals, mode, name length and 64-byte name).
const CHECKSUM_OFF: usize = 104;

/// Content checksum of one file: FNV-1a over the sorted `(gfn, entry)`
/// stream plus name, mode and total pages. Independent of the node-page
/// split, so both the builder (pre-split) and the parser (post-walk)
/// compute the same value.
fn file_checksum(name: &str, mode: u32, total_pages: u64, mappings: &[(Gfn, Extent)]) -> u64 {
    let mut digest = Vec::with_capacity(mappings.len() * 16 + name.len() + 16);
    for (g, e) in mappings {
        digest.extend_from_slice(&g.0.to_le_bytes());
        digest.extend_from_slice(&pack_entry(e.base, e.order, FLAG_GUEST).to_le_bytes());
    }
    digest.extend_from_slice(name.as_bytes());
    digest.extend_from_slice(&mode.to_le_bytes());
    digest.extend_from_slice(&total_pages.to_le_bytes());
    hypertp_machine::ram::fnv1a(&digest)
}

/// Errors from PRAM encoding or parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PramError {
    /// Underlying memory error (allocation failure, out-of-range frame).
    Mem(MemError),
    /// A metadata page did not carry the PRAM magic — it was scrubbed,
    /// overwritten, or the pointer is wrong.
    BadMagic {
        /// The frame that failed validation.
        mfn: Mfn,
    },
    /// A metadata page had an unexpected kind or version.
    BadKind {
        /// The frame that failed validation.
        mfn: Mfn,
        /// Expected kind.
        expected: u8,
        /// Found kind.
        found: u8,
    },
    /// File name longer than the 64-byte field.
    NameTooLong,
    /// Guest mappings overlap in GFN space.
    OverlappingMappings {
        /// The GFN where the overlap was detected.
        gfn: Gfn,
    },
    /// A pointer inside a metadata page is not page-aligned.
    UnalignedPointer {
        /// The offending byte address.
        addr: u64,
    },
    /// A file's stored checksum does not match the checksum recomputed
    /// from its entries — the metadata was corrupted between build and
    /// parse (or a storage bit flipped).
    ChecksumMismatch {
        /// The file-info frame whose checksum failed.
        mfn: Mfn,
        /// The checksum stored in the file-info page.
        stored: u64,
        /// The checksum recomputed from the parsed entries.
        computed: u64,
    },
}

impl std::fmt::Display for PramError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PramError::Mem(e) => write!(f, "memory error: {e}"),
            PramError::BadMagic { mfn } => write!(f, "bad PRAM magic at {mfn}"),
            PramError::BadKind {
                mfn,
                expected,
                found,
            } => write!(
                f,
                "bad PRAM page kind at {mfn}: want {expected}, got {found}"
            ),
            PramError::NameTooLong => write!(f, "file name exceeds 64 bytes"),
            PramError::OverlappingMappings { gfn } => {
                write!(f, "overlapping guest mappings at {gfn}")
            }
            PramError::UnalignedPointer { addr } => {
                write!(f, "unaligned metadata pointer {addr:#x}")
            }
            PramError::ChecksumMismatch {
                mfn,
                stored,
                computed,
            } => write!(
                f,
                "PRAM checksum mismatch at {mfn}: stored {stored:#018x}, computed {computed:#018x}"
            ),
        }
    }
}

impl std::error::Error for PramError {}

impl From<MemError> for PramError {
    fn from(e: MemError) -> Self {
        PramError::Mem(e)
    }
}

/// One VM's memory map, as recorded in (or recovered from) PRAM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PramFile {
    /// File name (the VM identifier).
    pub name: String,
    /// File mode bits (kept for fidelity with the patchset's API).
    pub mode: u32,
    /// The guest memory map: `(gfn, extent)` pairs sorted by GFN.
    pub mappings: Vec<(Gfn, Extent)>,
}

impl PramFile {
    /// Total guest pages covered by the file.
    pub fn total_pages(&self) -> u64 {
        self.mappings.iter().map(|(_, e)| e.pages()).sum()
    }

    /// Total number of 8-byte page entries the file encodes to.
    pub fn total_entries(&self) -> u64 {
        self.mappings.len() as u64
    }

    /// Total guest bytes covered.
    pub fn total_bytes(&self) -> u64 {
        self.total_pages() * PAGE_SIZE
    }
}

/// Size statistics of an encoded PRAM structure (drives Fig. 14).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PramStats {
    /// Number of files (VMs).
    pub files: u64,
    /// Total 8-byte page entries across all files.
    pub entries: u64,
    /// Metadata pages allocated (root + file-info + node pages).
    pub metadata_pages: u64,
}

impl PramStats {
    /// Metadata footprint in bytes.
    pub fn metadata_bytes(&self) -> u64 {
        self.metadata_pages * PAGE_SIZE
    }
}

/// Result of building a PRAM structure: the pointer to pass on the kexec
/// command line plus bookkeeping for cleanup.
#[derive(Debug, Clone)]
pub struct PramHandle {
    /// Physical byte address of the first root directory page — the "PRAM
    /// pointer" of Fig. 4.
    pub pram_ptr: u64,
    /// All metadata frames, for the cleanup step.
    pub meta_frames: Vec<Mfn>,
    stats: PramStats,
}

impl PramHandle {
    /// Size statistics of the encoded structure.
    pub fn stats(&self) -> PramStats {
        self.stats
    }

    /// Renders the PRAM pointer as the kernel command-line argument used by
    /// the micro-reboot.
    pub fn cmdline_arg(&self) -> String {
        format!("pram={:#x}", self.pram_ptr)
    }
}

/// Parses `pram=<addr>` from a kernel command line.
pub fn pram_ptr_from_cmdline(cmdline: &str) -> Option<u64> {
    for tok in cmdline.split_whitespace() {
        if let Some(v) = tok.strip_prefix("pram=") {
            let v = v.strip_prefix("0x").unwrap_or(v);
            if let Ok(addr) = u64::from_str_radix(v, 16) {
                return Some(addr);
            }
        }
    }
    None
}

/// Builds PRAM structures into physical memory.
#[derive(Debug, Default)]
pub struct PramBuilder {
    files: Vec<PramFile>,
    pool: WorkerPool,
}

/// One file's metadata, fully prepared for serial emission: mappings
/// sorted and validated, entries packed and split into node pages. This is
/// the per-VM unit of the §4.2.5 parallelization — preparation is pure and
/// runs one file per pool worker; only frame allocation and the actual
/// page writes stay serial.
struct PreparedFile {
    name: String,
    mode: u32,
    total_pages: u64,
    /// Node pages, front-to-back: (first GFN of the run, packed entries).
    nodes: Vec<(Gfn, Vec<PackedEntry>)>,
    /// Content checksum stored in the file-info page and re-verified by
    /// [`PramImage::verify`].
    checksum: u64,
}

fn prepare_file(mut file: PramFile) -> Result<PreparedFile, PramError> {
    file.mappings.sort_by_key(|(g, _)| *g);
    // Validate for overlap.
    let mut prev_end: Option<u64> = None;
    for (g, e) in &file.mappings {
        if let Some(end) = prev_end {
            if g.0 < end {
                return Err(PramError::OverlappingMappings { gfn: *g });
            }
        }
        prev_end = Some(g.0 + e.pages());
    }
    if file.name.len() > NAME_MAX {
        return Err(PramError::NameTooLong);
    }

    // Split into GFN-contiguous runs, then into capacity-bounded node
    // pages.
    let mut nodes: Vec<(Gfn, Vec<PackedEntry>)> = Vec::new();
    let mut cur: Option<(Gfn, u64, Vec<PackedEntry>)> = None; // (base, next_gfn, entries)
    for (g, e) in &file.mappings {
        let entry = pack_entry(e.base, e.order, FLAG_GUEST);
        match &mut cur {
            Some((base, next, entries)) if *next == g.0 && entries.len() < NODE_CAPACITY => {
                entries.push(entry);
                *next += e.pages();
                let _ = base;
            }
            _ => {
                if let Some((base, _, entries)) = cur.take() {
                    nodes.push((base, entries));
                }
                cur = Some((*g, g.0 + e.pages(), vec![entry]));
            }
        }
    }
    if let Some((base, _, entries)) = cur.take() {
        nodes.push((base, entries));
    }

    let total_pages = file.total_pages();
    let checksum = file_checksum(&file.name, file.mode, total_pages, &file.mappings);
    Ok(PreparedFile {
        total_pages,
        name: file.name,
        mode: file.mode,
        nodes,
        checksum,
    })
}

impl PramBuilder {
    /// Creates an empty builder on the default worker pool
    /// ([`WorkerPool::from_env`]).
    pub fn new() -> Self {
        PramBuilder::default()
    }

    /// Replaces the worker pool used for per-file preparation at
    /// [`PramBuilder::write`] time. The encoded structure is identical for
    /// any pool.
    pub fn with_pool(mut self, pool: WorkerPool) -> Self {
        self.pool = pool;
        self
    }

    /// Adds a VM's memory map as a file.
    ///
    /// Mappings may be given in any order; they are sorted by GFN and
    /// validated for overlap at [`PramBuilder::write`] time. The map is
    /// taken by value — no per-VM clone happens on the build path.
    pub fn add_file(
        &mut self,
        name: impl Into<String>,
        mode: u32,
        mappings: Vec<(Gfn, Extent)>,
    ) -> &mut Self {
        self.files.push(PramFile {
            name: name.into(),
            mode,
            mappings,
        });
        self
    }

    /// Number of files added so far.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Encodes the structure into metadata pages allocated from `ram` and
    /// returns the handle carrying the PRAM pointer.
    ///
    /// Per-file preparation (sort, validation, entry packing, node-page
    /// split) runs on the builder's worker pool, one file per task; frame
    /// allocation and page writes are serial, in file order, so the
    /// resulting structure is byte-identical for any worker count. Errors
    /// surface in file order.
    pub fn write(self, ram: &mut PhysicalMemory) -> Result<PramHandle, PramError> {
        let mut stats = PramStats {
            files: self.files.len() as u64,
            ..PramStats::default()
        };
        let prepared_results = self.pool.map(self.files, prepare_file).results;
        let mut prepared = Vec::with_capacity(prepared_results.len());
        for p in prepared_results {
            prepared.push(p?);
        }

        let mut meta_frames: Vec<Mfn> = Vec::new();
        let alloc_page =
            |ram: &mut PhysicalMemory, meta: &mut Vec<Mfn>| -> Result<Mfn, PramError> {
                let e = ram.alloc(PageOrder(0))?;
                meta.push(e.base);
                Ok(e.base)
            };

        // Emit each file: node chain first, then the file-info page.
        let mut file_ptrs: Vec<u64> = Vec::new();
        for file in &prepared {
            // Write node pages back-to-front so each can point at the next.
            let mut next_ptr = 0u64;
            for (base, entries) in file.nodes.iter().rev() {
                let mfn = alloc_page(ram, &mut meta_frames)?;
                let mut page = vec![0u8; PAGE_SIZE as usize];
                write_header(&mut page, KIND_NODE, next_ptr);
                page[16..24].copy_from_slice(&base.0.to_le_bytes());
                page[24..32].copy_from_slice(&(entries.len() as u64).to_le_bytes());
                for (i, e) in entries.iter().enumerate() {
                    let off = 32 + i * 8;
                    page[off..off + 8].copy_from_slice(&e.to_le_bytes());
                }
                ram.write_bytes(mfn, &page)?;
                next_ptr = mfn.addr();
                stats.entries += entries.len() as u64;
            }

            // File-info page.
            let mfn = alloc_page(ram, &mut meta_frames)?;
            let mut page = vec![0u8; PAGE_SIZE as usize];
            write_header(&mut page, KIND_FILE, 0);
            page[16..24].copy_from_slice(&next_ptr.to_le_bytes());
            page[24..32].copy_from_slice(&file.total_pages.to_le_bytes());
            page[32..36].copy_from_slice(&file.mode.to_le_bytes());
            page[36..40].copy_from_slice(&(file.name.len() as u32).to_le_bytes());
            page[40..40 + file.name.len()].copy_from_slice(file.name.as_bytes());
            page[CHECKSUM_OFF..CHECKSUM_OFF + 8].copy_from_slice(&file.checksum.to_le_bytes());
            ram.write_bytes(mfn, &page)?;
            file_ptrs.push(mfn.addr());
        }

        // Root directory pages, back-to-front.
        let mut root_ptr = 0u64;
        for chunk in file_ptrs.chunks(ROOT_CAPACITY).rev() {
            let mfn = alloc_page(ram, &mut meta_frames)?;
            let mut page = vec![0u8; PAGE_SIZE as usize];
            write_header(&mut page, KIND_ROOT, root_ptr);
            page[16..24].copy_from_slice(&(chunk.len() as u64).to_le_bytes());
            for (i, p) in chunk.iter().enumerate() {
                let off = 24 + i * 8;
                page[off..off + 8].copy_from_slice(&p.to_le_bytes());
            }
            ram.write_bytes(mfn, &page)?;
            root_ptr = mfn.addr();
        }
        // An empty builder still produces one (empty) root page so the
        // pointer is always valid.
        if root_ptr == 0 {
            let mfn = alloc_page(ram, &mut meta_frames)?;
            let mut page = vec![0u8; PAGE_SIZE as usize];
            write_header(&mut page, KIND_ROOT, 0);
            ram.write_bytes(mfn, &page)?;
            root_ptr = mfn.addr();
        }

        stats.metadata_pages = meta_frames.len() as u64;
        Ok(PramHandle {
            pram_ptr: root_ptr,
            meta_frames,
            stats,
        })
    }
}

fn write_header(page: &mut [u8], kind: u8, next: u64) {
    page[0..4].copy_from_slice(&MAGIC.to_le_bytes());
    page[4] = VERSION;
    page[5] = kind;
    page[8..16].copy_from_slice(&next.to_le_bytes());
}

fn read_page(ram: &PhysicalMemory, addr: u64) -> Result<(&[u8], Mfn), PramError> {
    if !addr.is_multiple_of(PAGE_SIZE) {
        return Err(PramError::UnalignedPointer { addr });
    }
    let mfn = Mfn(addr / PAGE_SIZE);
    let bytes = ram.read_bytes(mfn).ok_or(PramError::BadMagic { mfn })?;
    Ok((bytes, mfn))
}

fn check_header(page: &[u8], mfn: Mfn, kind: u8) -> Result<u64, PramError> {
    let magic = u32::from_le_bytes(page[0..4].try_into().expect("page is 4 KiB"));
    if magic != MAGIC || page[4] != VERSION {
        return Err(PramError::BadMagic { mfn });
    }
    if page[5] != kind {
        return Err(PramError::BadKind {
            mfn,
            expected: kind,
            found: page[5],
        });
    }
    Ok(u64::from_le_bytes(
        page[8..16].try_into().expect("page is 4 KiB"),
    ))
}

/// A parsed PRAM structure, as seen by the target hypervisor at early boot.
#[derive(Debug, Clone)]
pub struct PramImage {
    /// Recovered files, in directory order.
    pub files: Vec<PramFile>,
    /// Frames holding the metadata itself.
    pub meta_frames: Vec<Mfn>,
    /// Per-file `(file-info frame, stored checksum)`, parallel to
    /// [`PramImage::files`]. Checked by [`PramImage::verify`].
    pub checksums: Vec<(Mfn, u64)>,
}

impl PramImage {
    /// Parses the structure rooted at `pram_ptr` out of physical memory.
    pub fn parse(ram: &PhysicalMemory, pram_ptr: u64) -> Result<PramImage, PramError> {
        let mut files = Vec::new();
        let mut meta_frames = Vec::new();
        let mut checksums = Vec::new();
        let mut root_addr = pram_ptr;
        while root_addr != 0 {
            let (root, root_mfn) = read_page(ram, root_addr)?;
            let next_root = check_header(root, root_mfn, KIND_ROOT)?;
            meta_frames.push(root_mfn);
            let count = u64::from_le_bytes(root[16..24].try_into().expect("page"));
            for i in 0..count as usize {
                let off = 24 + i * 8;
                let faddr = u64::from_le_bytes(root[off..off + 8].try_into().expect("page"));
                let (fpage, fmfn) = read_page(ram, faddr)?;
                check_header(fpage, fmfn, KIND_FILE)?;
                meta_frames.push(fmfn);
                let mut node_addr = u64::from_le_bytes(fpage[16..24].try_into().expect("page"));
                let mode = u32::from_le_bytes(fpage[32..36].try_into().expect("page"));
                let name_len = u32::from_le_bytes(fpage[36..40].try_into().expect("page")) as usize;
                let name =
                    String::from_utf8_lossy(&fpage[40..40 + name_len.min(NAME_MAX)]).into_owned();
                let stored_checksum = u64::from_le_bytes(
                    fpage[CHECKSUM_OFF..CHECKSUM_OFF + 8]
                        .try_into()
                        .expect("page"),
                );
                checksums.push((fmfn, stored_checksum));
                let mut mappings = Vec::new();
                while node_addr != 0 {
                    let (node, nmfn) = read_page(ram, node_addr)?;
                    let next = check_header(node, nmfn, KIND_NODE)?;
                    meta_frames.push(nmfn);
                    let base = u64::from_le_bytes(node[16..24].try_into().expect("page"));
                    let n = u64::from_le_bytes(node[24..32].try_into().expect("page"));
                    let mut gfn = base;
                    for i in 0..n as usize {
                        let off = 32 + i * 8;
                        let e = u64::from_le_bytes(node[off..off + 8].try_into().expect("page"));
                        let (mfn, order, _flags) = unpack_entry(e);
                        mappings.push((Gfn(gfn), Extent::new(mfn, order)));
                        gfn += order.pages();
                    }
                    node_addr = next;
                }
                files.push(PramFile {
                    name,
                    mode,
                    mappings,
                });
            }
            root_addr = next_root;
        }
        Ok(PramImage {
            files,
            meta_frames,
            checksums,
        })
    }

    /// Recomputes every file's content checksum from the parsed entries
    /// and compares it against the stored value; the first mismatch is
    /// returned as [`PramError::ChecksumMismatch`].
    ///
    /// Kept separate from [`PramImage::parse`] so recovery code can still
    /// inspect a structurally sound image whose checksum failed (e.g. to
    /// rebuild its metadata after cross-checking against the live source).
    pub fn verify(&self) -> Result<(), PramError> {
        for (f, &(mfn, stored)) in self.files.iter().zip(&self.checksums) {
            let computed = file_checksum(&f.name, f.mode, f.total_pages(), &f.mappings);
            if computed != stored {
                return Err(PramError::ChecksumMismatch {
                    mfn,
                    stored,
                    computed,
                });
            }
        }
        Ok(())
    }

    /// Flips the stored checksum word of file `index`'s file-info page —
    /// a deterministic stand-in for a storage bit flip. Used by the fault
    /// injector; the damage is exactly what [`PramImage::verify`] detects
    /// and what a metadata rebuild repairs.
    pub fn corrupt_checksum(
        &self,
        ram: &mut PhysicalMemory,
        index: usize,
    ) -> Result<(), PramError> {
        let (mfn, stored) = self.checksums[index];
        let mut page = ram
            .read_bytes(mfn)
            .ok_or(PramError::BadMagic { mfn })?
            .to_vec();
        page[CHECKSUM_OFF..CHECKSUM_OFF + 8]
            .copy_from_slice(&(stored ^ 0xdead_beef_dead_beef).to_le_bytes());
        ram.write_bytes(mfn, &page)?;
        Ok(())
    }

    /// Reserves every guest frame and metadata frame so the booting
    /// hypervisor cannot recycle them (Fig. 3 step between ❹ and ❺).
    pub fn reserve_all(&self, ram: &mut PhysicalMemory) -> Result<u64, PramError> {
        let mut reserved = 0;
        for f in &self.files {
            for (_, e) in &f.mappings {
                reserved += ram.reserve_range(e.base, e.pages())?;
            }
        }
        for &m in &self.meta_frames {
            reserved += ram.reserve_range(m, 1)?;
        }
        Ok(reserved)
    }

    /// Releases the metadata pages back to the allocator (Fig. 3 step ❼:
    /// "the portions of the RAM which were used to store ephemeral data are
    /// freed"). Guest frames stay reserved until the hypervisor adopts them.
    pub fn release_metadata(&self, ram: &mut PhysicalMemory) -> Result<(), PramError> {
        for &m in &self.meta_frames {
            ram.unreserve_and_free(m, 1)?;
        }
        Ok(())
    }

    /// Total 8-byte entries across all files.
    pub fn total_entries(&self) -> u64 {
        self.files.iter().map(PramFile::total_entries).sum()
    }

    /// Total guest bytes covered by all files.
    pub fn total_guest_bytes(&self) -> u64 {
        self.files.iter().map(PramFile::total_bytes).sum()
    }

    /// Looks up a file by name.
    pub fn file(&self, name: &str) -> Option<&PramFile> {
        self.files.iter().find(|f| f.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypertp_machine::HUGE_PAGE_SIZE;

    fn ram_mb(mb: u64) -> PhysicalMemory {
        PhysicalMemory::new(mb * 256)
    }

    /// Allocates `n` huge-page extents for a fake guest and returns the
    /// (gfn, extent) map.
    fn alloc_guest(ram: &mut PhysicalMemory, n: u64) -> Vec<(Gfn, Extent)> {
        (0..n)
            .map(|i| {
                let e = ram.alloc(PageOrder(9)).unwrap();
                (Gfn(i * 512), e)
            })
            .collect()
    }

    #[test]
    fn roundtrip_single_file() {
        let mut ram = ram_mb(64);
        let map = alloc_guest(&mut ram, 8);
        let mut b = PramBuilder::new();
        b.add_file("vm0", 0o600, map.clone());
        let h = b.write(&mut ram).unwrap();
        let img = PramImage::parse(&ram, h.pram_ptr).unwrap();
        assert_eq!(img.files.len(), 1);
        assert_eq!(img.files[0].name, "vm0");
        assert_eq!(img.files[0].mode, 0o600);
        assert_eq!(img.files[0].mappings, map);
        assert_eq!(img.total_entries(), 8);
        assert_eq!(img.total_guest_bytes(), 8 * HUGE_PAGE_SIZE);
    }

    #[test]
    fn roundtrip_many_files_and_holes() {
        let mut ram = ram_mb(64);
        let mut b = PramBuilder::new();
        let mut maps = Vec::new();
        for v in 0..5 {
            let mut map = Vec::new();
            for i in 0..6u64 {
                let e = ram.alloc(PageOrder(0)).unwrap();
                // Introduce GFN holes every 3 pages.
                let gfn = i + (i / 3) * 100;
                map.push((Gfn(gfn), e));
            }
            b.add_file(format!("vm{v}"), 0, map.clone());
            maps.push(map);
        }
        let h = b.write(&mut ram).unwrap();
        let img = PramImage::parse(&ram, h.pram_ptr).unwrap();
        assert_eq!(img.files.len(), 5);
        for (v, map) in maps.iter().enumerate() {
            assert_eq!(&img.files[v].mappings, map, "vm{v}");
        }
    }

    #[test]
    fn node_capacity_spill() {
        let mut ram = ram_mb(64);
        // 1200 contiguous entries > 2 * NODE_CAPACITY forces 3 node pages.
        let map: Vec<(Gfn, Extent)> = (0..1200u64)
            .map(|i| (Gfn(i), ram.alloc(PageOrder(0)).unwrap()))
            .collect();
        let mut b = PramBuilder::new();
        b.add_file("big", 0, map.clone());
        let h = b.write(&mut ram).unwrap();
        // 3 nodes + 1 file info + 1 root.
        assert_eq!(h.stats().metadata_pages, 5);
        let img = PramImage::parse(&ram, h.pram_ptr).unwrap();
        assert_eq!(img.files[0].mappings, map);
    }

    #[test]
    fn fig14_metadata_sizes_match_paper() {
        // A 1 GB VM with 2 MiB pages -> 512 entries -> 16 KB of metadata;
        // a 12 GB VM -> 6144 entries -> 60 KB (Fig. 14).
        for (gb, want_kb) in [(1u64, 16u64), (12, 60)] {
            let mut ram = PhysicalMemory::with_gib(gb + 1);
            let map = alloc_guest(&mut ram, gb * 512);
            let mut b = PramBuilder::new();
            b.add_file("vm", 0, map);
            let h = b.write(&mut ram).unwrap();
            assert_eq!(
                h.stats().metadata_bytes(),
                want_kb * 1024,
                "{gb} GB VM metadata"
            );
        }
    }

    #[test]
    fn fig14_twelve_vms_metadata() {
        // 12 × 1 GB VMs -> 148 KB of metadata (Fig. 14).
        let mut ram = PhysicalMemory::with_gib(14);
        let mut b = PramBuilder::new();
        for v in 0..12 {
            let map: Vec<(Gfn, Extent)> = (0..512u64)
                .map(|i| (Gfn(i * 512), ram.alloc(PageOrder(9)).unwrap()))
                .collect();
            b.add_file(format!("vm{v}"), 0, map);
        }
        let h = b.write(&mut ram).unwrap();
        assert_eq!(h.stats().metadata_bytes(), 148 * 1024);
    }

    #[test]
    fn overlap_detected() {
        let mut ram = ram_mb(16);
        let e1 = ram.alloc(PageOrder(1)).unwrap();
        let e2 = ram.alloc(PageOrder(1)).unwrap();
        let mut b = PramBuilder::new();
        b.add_file("vm", 0, vec![(Gfn(0), e1), (Gfn(1), e2)]);
        assert!(matches!(
            b.write(&mut ram),
            Err(PramError::OverlappingMappings { .. })
        ));
    }

    #[test]
    fn name_too_long_detected() {
        let mut ram = ram_mb(16);
        let mut b = PramBuilder::new();
        b.add_file("x".repeat(65), 0, vec![]);
        assert!(matches!(b.write(&mut ram), Err(PramError::NameTooLong)));
    }

    #[test]
    fn scrubbed_metadata_fails_parse() {
        let mut ram = ram_mb(16);
        let map = alloc_guest(&mut ram, 1);
        let mut b = PramBuilder::new();
        b.add_file("vm", 0, map);
        let h = b.write(&mut ram).unwrap();
        ram.forget_ownership();
        // No reservation: scrubbing destroys the metadata.
        ram.scrub_unreserved();
        assert!(matches!(
            PramImage::parse(&ram, h.pram_ptr),
            Err(PramError::BadMagic { .. })
        ));
    }

    #[test]
    fn survives_kexec_with_reservation() {
        let mut ram = ram_mb(64);
        let map = alloc_guest(&mut ram, 4);
        for (_, e) in &map {
            ram.write(e.base, 0x1234).unwrap();
        }
        let mut b = PramBuilder::new();
        b.add_file("vm", 0, map.clone());
        let h = b.write(&mut ram).unwrap();
        // Simulated kexec: ownership forgotten, then the new kernel parses
        // PRAM, reserves and scrubs the rest.
        ram.forget_ownership();
        let img = PramImage::parse(&ram, h.pram_ptr).unwrap();
        img.reserve_all(&mut ram).unwrap();
        ram.scrub_unreserved();
        // Guest contents intact.
        for (_, e) in &map {
            assert_eq!(ram.read(e.base).unwrap(), 0x1234);
        }
        // Metadata can be released after restoration.
        img.release_metadata(&mut ram).unwrap();
    }

    #[test]
    fn cmdline_roundtrip() {
        let mut ram = ram_mb(16);
        let b = PramBuilder::new();
        let h = b.write(&mut ram).unwrap();
        let arg = h.cmdline_arg();
        assert_eq!(pram_ptr_from_cmdline(&arg), Some(h.pram_ptr));
        assert_eq!(
            pram_ptr_from_cmdline(&format!("console=ttyS0 {arg} quiet")),
            Some(h.pram_ptr)
        );
        assert_eq!(pram_ptr_from_cmdline("console=ttyS0"), None);
    }

    #[test]
    fn empty_builder_produces_empty_image() {
        let mut ram = ram_mb(16);
        let h = PramBuilder::new().write(&mut ram).unwrap();
        assert_eq!(h.stats().metadata_pages, 1);
        let img = PramImage::parse(&ram, h.pram_ptr).unwrap();
        assert!(img.files.is_empty());
        assert_eq!(img.total_entries(), 0);
    }

    #[test]
    fn unaligned_pointer_rejected() {
        let ram = ram_mb(16);
        assert!(matches!(
            PramImage::parse(&ram, 0x1001),
            Err(PramError::UnalignedPointer { .. })
        ));
    }

    #[test]
    fn write_identical_for_any_worker_count() {
        // The encoded PRAM structure (pointer, frame list, stats and the
        // metadata page bytes) must not depend on the pool width used for
        // per-file preparation.
        let build = |pool: WorkerPool| {
            let mut ram = ram_mb(64);
            let mut b = PramBuilder::new().with_pool(pool);
            for v in 0..6u64 {
                let map: Vec<(Gfn, Extent)> = (0..40u64)
                    .map(|i| {
                        let order = PageOrder((i % 3) as u8);
                        // Holes every 5 entries.
                        (Gfn(i * 16 + (i / 5)), ram.alloc(order).unwrap())
                    })
                    .collect();
                b.add_file(format!("vm{v}"), 0o600, map);
            }
            let h = b.write(&mut ram).unwrap();
            let pages: Vec<Vec<u8>> = h
                .meta_frames
                .iter()
                .map(|&m| ram.read_bytes(m).unwrap().to_vec())
                .collect();
            (h.pram_ptr, h.meta_frames.clone(), h.stats(), pages)
        };
        let serial = build(WorkerPool::serial());
        for workers in [2usize, 4, 16] {
            assert_eq!(serial, build(WorkerPool::new(workers)), "workers={workers}");
        }
    }

    #[test]
    fn verify_passes_on_clean_image() {
        let mut ram = ram_mb(64);
        let map = alloc_guest(&mut ram, 8);
        let mut b = PramBuilder::new();
        b.add_file("vm0", 0o600, map);
        let h = b.write(&mut ram).unwrap();
        let img = PramImage::parse(&ram, h.pram_ptr).unwrap();
        assert_eq!(img.checksums.len(), 1);
        img.verify().unwrap();
    }

    #[test]
    fn corrupted_checksum_word_fails_verify_and_rebuild_repairs() {
        let mut ram = ram_mb(64);
        let mut b = PramBuilder::new();
        let mut maps = Vec::new();
        for v in 0..3 {
            let map = alloc_guest(&mut ram, 4);
            b.add_file(format!("vm{v}"), 0o600, map.clone());
            maps.push(map);
        }
        let h = b.write(&mut ram).unwrap();
        let img = PramImage::parse(&ram, h.pram_ptr).unwrap();
        img.corrupt_checksum(&mut ram, 1).unwrap();

        // Re-parse sees the corrupted word; verify pinpoints the file.
        let img = PramImage::parse(&ram, h.pram_ptr).unwrap();
        let err = img.verify().unwrap_err();
        let PramError::ChecksumMismatch {
            stored, computed, ..
        } = err
        else {
            panic!("want ChecksumMismatch, got {err}");
        };
        assert_ne!(stored, computed);

        // Recovery: entries are intact, so rebuilding metadata from the
        // parsed structure (after releasing the old pages) yields a clean
        // image over the very same guest frames.
        for &m in &h.meta_frames {
            ram.free(Extent::new(m, PageOrder(0))).unwrap();
        }
        let mut rb = PramBuilder::new();
        for f in &img.files {
            rb.add_file(f.name.clone(), f.mode, f.mappings.clone());
        }
        let h2 = rb.write(&mut ram).unwrap();
        let img2 = PramImage::parse(&ram, h2.pram_ptr).unwrap();
        img2.verify().unwrap();
        for (v, map) in maps.iter().enumerate() {
            assert_eq!(&img2.files[v].mappings, map, "vm{v}");
        }
    }

    #[test]
    fn checksum_depends_on_every_field() {
        let mut ram = ram_mb(16);
        let e = ram.alloc(PageOrder(0)).unwrap();
        let base = file_checksum("vm0", 0o600, 1, &[(Gfn(5), e)]);
        assert_ne!(base, file_checksum("vm1", 0o600, 1, &[(Gfn(5), e)]));
        assert_ne!(base, file_checksum("vm0", 0o400, 1, &[(Gfn(5), e)]));
        assert_ne!(base, file_checksum("vm0", 0o600, 2, &[(Gfn(5), e)]));
        assert_ne!(base, file_checksum("vm0", 0o600, 1, &[(Gfn(6), e)]));
        assert_ne!(base, file_checksum("vm0", 0o600, 1, &[]));
    }

    #[test]
    fn randomized_roundtrip_random_layouts() {
        // Deterministic randomized loop (formerly proptest, 64 cases).
        let mut meta = hypertp_sim::SimRng::new(0x99a8_0001);
        for _ in 0..64 {
            let seed = meta.next_u64();
            let n_files = 1 + meta.gen_range(3) as usize;
            let per_file = 1 + meta.gen_range(39) as usize;
            let mut ram = PhysicalMemory::new(64 * 256);
            let mut rng = hypertp_sim::SimRng::new(seed);
            let mut b = PramBuilder::new();
            let mut maps = Vec::new();
            for v in 0..n_files {
                let mut map = Vec::new();
                let mut gfn = 0u64;
                for _ in 0..per_file {
                    let order = PageOrder(if rng.gen_bool(0.3) { 2 } else { 0 });
                    let Ok(e) = ram.alloc(order) else { break };
                    gfn += rng.gen_range(4); // Random holes (0 = contiguous).
                    map.push((Gfn(gfn), e));
                    gfn += e.pages();
                }
                b.add_file(format!("vm{v}"), 0, map.clone());
                maps.push(map);
            }
            let h = b.write(&mut ram).unwrap();
            let img = PramImage::parse(&ram, h.pram_ptr).unwrap();
            assert_eq!(img.files.len(), n_files);
            for (v, map) in maps.iter().enumerate() {
                assert_eq!(&img.files[v].mappings, map);
            }
        }
    }
}
