//! Packed 8-byte PRAM page entries.
//!
//! §5.5: "PRAM structures consist of 8-byte records for every VM's memory
//! page (which can be 4K or 2M in size)". An entry packs the machine frame
//! number and the allocation order; the guest frame number is implicit from
//! the entry's position after the node's base GFN (nodes are
//! GFN-contiguous).
//!
//! Layout of the 64-bit word:
//!
//! ```text
//!  63      58 57      52 51                                   0
//! +----------+----------+--------------------------------------+
//! |  flags   |  order   |                 mfn                  |
//! +----------+----------+--------------------------------------+
//! ```

use hypertp_machine::{Mfn, PageOrder};

/// A packed page entry as stored in a node page.
pub type PackedEntry = u64;

/// Number of bits reserved for the MFN (52 bits covers 2^52 frames —
/// 16 EiB of physical memory, same headroom as x86-64 page tables).
const MFN_BITS: u32 = 52;
const MFN_MASK: u64 = (1 << MFN_BITS) - 1;
const ORDER_SHIFT: u32 = MFN_BITS;
const ORDER_BITS: u32 = 6;
const ORDER_MASK: u64 = (1 << ORDER_BITS) - 1;
const FLAGS_SHIFT: u32 = ORDER_SHIFT + ORDER_BITS;
const FLAGS_MASK: u64 = (1 << 6) - 1;

/// Entry flag: the frame run holds guest memory (as opposed to reserved
/// scratch used during restoration).
pub const FLAG_GUEST: u8 = 1 << 0;

/// Packs an (mfn, order, flags) triple into an 8-byte entry.
///
/// # Panics
///
/// Panics if the MFN exceeds 52 bits, the order exceeds 6 bits, or the
/// flags exceed the 6-bit flag field.
pub fn pack_entry(mfn: Mfn, order: PageOrder, flags: u8) -> PackedEntry {
    assert!(mfn.0 <= MFN_MASK, "mfn {mfn} exceeds 52 bits");
    assert!((order.0 as u64) <= ORDER_MASK, "order exceeds 6 bits");
    assert!((flags as u64) <= FLAGS_MASK, "flags exceed 6 bits");
    mfn.0 | ((order.0 as u64) << ORDER_SHIFT) | ((flags as u64) << FLAGS_SHIFT)
}

/// Unpacks an 8-byte entry into (mfn, order, flags).
pub fn unpack_entry(e: PackedEntry) -> (Mfn, PageOrder, u8) {
    let mfn = Mfn(e & MFN_MASK);
    let order = PageOrder(((e >> ORDER_SHIFT) & ORDER_MASK) as u8);
    let flags = (e >> FLAGS_SHIFT) as u8;
    (mfn, order, flags)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let e = pack_entry(Mfn(0xdead_beef), PageOrder(9), FLAG_GUEST);
        let (m, o, f) = unpack_entry(e);
        assert_eq!(m, Mfn(0xdead_beef));
        assert_eq!(o, PageOrder(9));
        assert_eq!(f, FLAG_GUEST);
    }

    #[test]
    fn entry_is_eight_bytes() {
        assert_eq!(std::mem::size_of::<PackedEntry>(), 8);
    }

    #[test]
    fn max_mfn_roundtrips() {
        let e = pack_entry(Mfn(MFN_MASK), PageOrder(0), 0);
        assert_eq!(unpack_entry(e).0, Mfn(MFN_MASK));
    }

    #[test]
    #[should_panic(expected = "exceeds 52 bits")]
    fn oversized_mfn_panics() {
        pack_entry(Mfn(1 << 52), PageOrder(0), 0);
    }

    /// The property seed; assertion messages carry it so a failing case
    /// is replayable by pasting it into `SimRng::new`.
    const SEED: u64 = 0x92a3_0001;

    #[test]
    fn randomized_roundtrip() {
        // Deterministic randomized loop (formerly proptest, 256 cases),
        // over the full field ranges including every boundary bit.
        let mut rng = hypertp_sim::SimRng::new(SEED);
        for case in 0..256 {
            let mfn = rng.gen_range(1 << 52);
            let order = rng.gen_range(1 << 6) as u8;
            let flags = rng.gen_range(1 << 6) as u8;
            let e = pack_entry(Mfn(mfn), PageOrder(order), flags);
            let (m, o, f) = unpack_entry(e);
            assert_eq!(m, Mfn(mfn), "seed {SEED:#x} case {case}");
            assert_eq!(o, PageOrder(order), "seed {SEED:#x} case {case}");
            assert_eq!(f, flags, "seed {SEED:#x} case {case}");
        }
    }

    #[test]
    fn randomized_pack_is_injective_on_distinct_triples() {
        // Two different (mfn, order, flags) triples can never pack to the
        // same word: the fields occupy disjoint bit ranges.
        let mut rng = hypertp_sim::SimRng::new(SEED ^ 0x1);
        let mut seen = std::collections::HashMap::new();
        for case in 0..256 {
            let triple = (
                Mfn(rng.gen_range(1 << 52)),
                PageOrder(rng.gen_range(1 << 6) as u8),
                rng.gen_range(1 << 6) as u8,
            );
            let e = pack_entry(triple.0, triple.1, triple.2);
            if let Some(prev) = seen.insert(e, triple) {
                assert_eq!(
                    prev,
                    triple,
                    "seed {:#x} case {case}: collision on {e:#x}",
                    SEED ^ 0x1
                );
            }
        }
    }

    /// Regression corpus carried over from the proptest era:
    /// `mfn = 0, order = 0, flags = 64`. The flag field is 6 bits wide;
    /// 64 must be rejected loudly, not silently truncated into the MFN
    /// of a neighbouring entry's range.
    #[test]
    #[should_panic(expected = "flags exceed 6 bits")]
    fn corpus_mfn_0_order_0_flags_64_panics() {
        pack_entry(Mfn(0), PageOrder(0), 64);
    }

    #[test]
    fn corpus_boundary_values_roundtrip() {
        // The in-range boundary neighbours of the corpus case.
        for (mfn, order, flags) in [(0u64, 0u8, 63u8), (0, 63, 0), (MFN_MASK, 63, 63), (0, 0, 0)] {
            let e = pack_entry(Mfn(mfn), PageOrder(order), flags);
            assert_eq!(unpack_entry(e), (Mfn(mfn), PageOrder(order), flags));
        }
    }
}
