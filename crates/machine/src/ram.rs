//! Physical RAM: frame contents, ownership and kexec survival.
//!
//! Frame contents are modelled as 64-bit *content words* — an opaque value
//! that changes whenever the owner writes the frame. This is sufficient for
//! every property the transplant path must preserve (guest memory is kept
//! byte-identical in place across InPlaceTP; migrated memory equals the
//! source at pause time) while letting experiments instantiate multi-GiB
//! machines cheaply. Small tests that need real bytes can attach a byte
//! buffer to a frame; its content word is then a hash of the bytes, so the
//! two views stay consistent.

use std::collections::HashMap;

use crate::addr::{Extent, Mfn, PageOrder, PAGE_SIZE};
use crate::buddy::{BuddyAllocator, BuddyError};

/// Errors from physical memory operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    /// Frame number beyond the end of RAM.
    OutOfRange {
        /// The offending frame.
        mfn: Mfn,
    },
    /// Allocation failed.
    Buddy(BuddyError),
    /// Access to a frame that is not allocated.
    NotAllocated {
        /// The offending frame.
        mfn: Mfn,
    },
}

impl std::fmt::Display for MemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemError::OutOfRange { mfn } => write!(f, "{mfn} out of range"),
            MemError::Buddy(e) => write!(f, "allocator: {e}"),
            MemError::NotAllocated { mfn } => write!(f, "{mfn} not allocated"),
        }
    }
}

impl std::error::Error for MemError {}

impl From<BuddyError> for MemError {
    fn from(e: BuddyError) -> Self {
        MemError::Buddy(e)
    }
}

/// Per-frame ownership flags. Content words live in a separate dense
/// array so the two concerns scale independently: the wire path borrows
/// whole extents of contents as `&[u64]` without dragging flag bytes
/// through the cache, and ownership sweeps (kexec, scrub) walk the
/// 2-byte flag array instead of 16-byte AoS records.
#[derive(Debug, Clone, Copy, Default)]
struct FrameFlags {
    /// True while some owner holds the frame (cleared by kexec).
    allocated: bool,
    /// True if the frame is protected by a parsed PRAM reservation.
    reserved: bool,
}

/// The machine's physical RAM.
///
/// Structure-of-arrays layout: `contents[i]` is frame `i`'s opaque
/// content word (0 means scrubbed/zeroed) and `flags[i]` its ownership
/// state. Keeping contents contiguous is what lets
/// [`PhysicalMemory::content_slice`] hand extent-backed borrows to the
/// migration gather path with zero copies.
#[derive(Debug)]
pub struct PhysicalMemory {
    contents: Vec<u64>,
    flags: Vec<FrameFlags>,
    buddy: BuddyAllocator,
    /// Optional byte-level backing for frames that tests want to inspect.
    bytes: HashMap<u64, Box<[u8]>>,
}

impl PhysicalMemory {
    /// Creates RAM with `total_frames` zeroed frames.
    pub fn new(total_frames: u64) -> Self {
        PhysicalMemory {
            contents: vec![0; total_frames as usize],
            flags: vec![FrameFlags::default(); total_frames as usize],
            buddy: BuddyAllocator::new(total_frames),
            bytes: HashMap::new(),
        }
    }

    /// Creates RAM of the given size in GiB.
    pub fn with_gib(gib: u64) -> Self {
        PhysicalMemory::new(gib * (1 << 30) / PAGE_SIZE)
    }

    /// Total number of frames.
    pub fn total_frames(&self) -> u64 {
        self.buddy.total_frames()
    }

    /// Number of free frames.
    pub fn free_frames(&self) -> u64 {
        self.buddy.free_frames()
    }

    /// Number of allocated frames.
    pub fn allocated_frames(&self) -> u64 {
        self.buddy.allocated_frames()
    }

    /// Allocates a `2^order` run of frames and marks it owned.
    pub fn alloc(&mut self, order: PageOrder) -> Result<Extent, MemError> {
        let e = self.buddy.alloc(order)?;
        for mfn in e.frames() {
            self.flags[mfn.0 as usize].allocated = true;
        }
        Ok(e)
    }

    /// Frees a run of frames. Contents are left in place (freeing does not
    /// scrub — exactly the property InPlaceTP exploits and the paper's
    /// "logic to ensure VM memory regions are not accidentally erased"
    /// guards).
    pub fn free(&mut self, extent: Extent) -> Result<(), MemError> {
        self.buddy.free(extent)?;
        for mfn in extent.frames() {
            self.flags[mfn.0 as usize].allocated = false;
        }
        Ok(())
    }

    fn flags(&self, mfn: Mfn) -> Result<FrameFlags, MemError> {
        self.flags
            .get(mfn.0 as usize)
            .copied()
            .ok_or(MemError::OutOfRange { mfn })
    }

    /// Writes a content word to an allocated frame.
    pub fn write(&mut self, mfn: Mfn, content: u64) -> Result<(), MemError> {
        if !self.flags(mfn)?.allocated {
            return Err(MemError::NotAllocated { mfn });
        }
        self.contents[mfn.0 as usize] = content;
        self.bytes.remove(&mfn.0);
        Ok(())
    }

    /// Reads a frame's content word. Reading free frames is allowed (the
    /// transplant path reads guest frames after kexec has cleared
    /// ownership).
    pub fn read(&self, mfn: Mfn) -> Result<u64, MemError> {
        self.contents
            .get(mfn.0 as usize)
            .copied()
            .ok_or(MemError::OutOfRange { mfn })
    }

    /// Borrows the content words of a physically-contiguous frame run as a
    /// slice — the zero-copy primitive behind the migration gather path.
    /// Where the old wire path copied every frame's word into a fresh
    /// per-round `Vec`, callers now read straight from the extent backing.
    /// Reading free frames is allowed, same as [`PhysicalMemory::read`].
    pub fn content_slice(&self, base: Mfn, pages: u64) -> Result<&[u64], MemError> {
        let start = base.0 as usize;
        let end = start
            .checked_add(pages as usize)
            .ok_or(MemError::OutOfRange { mfn: base })?;
        self.contents.get(start..end).ok_or(MemError::OutOfRange {
            mfn: Mfn(base.0 + pages.saturating_sub(1)),
        })
    }

    /// Attaches a full 4 KiB byte buffer to an allocated frame. The content
    /// word becomes a hash of the bytes.
    pub fn write_bytes(&mut self, mfn: Mfn, data: &[u8]) -> Result<(), MemError> {
        assert_eq!(data.len() as u64, PAGE_SIZE, "frame writes are page-sized");
        if !self.flags(mfn)?.allocated {
            return Err(MemError::NotAllocated { mfn });
        }
        self.contents[mfn.0 as usize] = fnv1a(data);
        self.bytes.insert(mfn.0, data.to_vec().into_boxed_slice());
        Ok(())
    }

    /// Reads the byte buffer attached to a frame, if any.
    pub fn read_bytes(&self, mfn: Mfn) -> Option<&[u8]> {
        self.bytes.get(&mfn.0).map(|b| &b[..])
    }

    /// Marks a frame range as reserved (PRAM-protected): the buddy allocator
    /// will never hand these frames out and boot scrubbing skips them.
    pub fn reserve_range(&mut self, base: Mfn, pages: u64) -> Result<u64, MemError> {
        if base.0 + pages > self.total_frames() {
            return Err(MemError::OutOfRange {
                mfn: Mfn(base.0 + pages - 1),
            });
        }
        let got = self.buddy.reserve_range(base, pages);
        for i in base.0..base.0 + pages {
            self.flags[i as usize].reserved = true;
        }
        Ok(got)
    }

    /// Returns true if the frame is reserved.
    pub fn is_reserved(&self, mfn: Mfn) -> bool {
        self.flags(mfn).map(|f| f.reserved).unwrap_or(false)
    }

    /// Returns true if the frame is allocated.
    pub fn is_allocated(&self, mfn: Mfn) -> bool {
        self.flags(mfn).map(|f| f.allocated).unwrap_or(false)
    }

    /// Kexec semantics: all ownership and reservations are forgotten (the
    /// new kernel starts with a fresh allocator), but contents survive.
    pub fn forget_ownership(&mut self) {
        for f in &mut self.flags {
            f.allocated = false;
            f.reserved = false;
        }
        self.buddy = BuddyAllocator::new(self.total_frames());
    }

    /// Boot-time scrubbing: zeroes the contents of every frame that is
    /// neither reserved nor allocated. A hypervisor that boots without
    /// parsing PRAM destroys all pre-existing guest memory here — the
    /// failure mode the paper's PRAM reservations exist to prevent.
    ///
    /// Returns the number of frames scrubbed.
    pub fn scrub_unreserved(&mut self) -> u64 {
        let mut scrubbed = 0;
        for (i, f) in self.flags.iter().enumerate() {
            if !f.reserved && !f.allocated && self.contents[i] != 0 {
                self.contents[i] = 0;
                self.bytes.remove(&(i as u64));
                scrubbed += 1;
            }
        }
        scrubbed
    }

    /// Re-adopts a reserved frame range as an allocated extent without
    /// touching contents (the PRAM filesystem handing guest memory to the
    /// new hypervisor). The range keeps its reserved marking.
    pub fn adopt_reserved(&mut self, base: Mfn, pages: u64) -> Result<(), MemError> {
        for i in base.0..base.0 + pages {
            let f = self
                .flags
                .get_mut(i as usize)
                .ok_or(MemError::OutOfRange { mfn: Mfn(i) })?;
            if !f.reserved {
                return Err(MemError::NotAllocated { mfn: Mfn(i) });
            }
            f.allocated = true;
        }
        Ok(())
    }

    /// Releases a reservation (cleanup step ❼ of Fig. 3 frees ephemeral
    /// PRAM metadata back to the allocator).
    pub fn unreserve_and_free(&mut self, base: Mfn, pages: u64) -> Result<(), MemError> {
        for i in base.0..base.0 + pages {
            let f = self
                .flags
                .get_mut(i as usize)
                .ok_or(MemError::OutOfRange { mfn: Mfn(i) })?;
            f.reserved = false;
            if !f.allocated {
                // Return to the allocator frame by frame.
                self.buddy.free(Extent::new(Mfn(i), PageOrder(0))).ok();
            }
        }
        Ok(())
    }

    /// Sums a simple checksum over a set of extents' content words (used by
    /// the transplant engine and tests to verify guest memory integrity end
    /// to end).
    ///
    /// The checksum is defined as per-extent partial hashes combined in
    /// extent order, so partials can be computed on any number of worker
    /// threads without changing the result. This convenience wrapper runs
    /// on the default pool ([`hypertp_sim::WorkerPool::from_env`], i.e.
    /// `HYPERTP_WORKERS` or the machine's available parallelism); callers
    /// on a latency-sensitive path can pass their own pool via
    /// [`PhysicalMemory::checksum_with_pool`].
    pub fn checksum(&self, extents: &[Extent]) -> u64 {
        self.checksum_with_pool(extents, &hypertp_sim::WorkerPool::from_env())
    }

    /// [`PhysicalMemory::checksum`] on an explicit worker pool. Serial and
    /// parallel runs return identical values for the same extents.
    pub fn checksum_with_pool(&self, extents: &[Extent], pool: &hypertp_sim::WorkerPool) -> u64 {
        combine_partials(&self.extent_partials_with_pool(extents, pool))
    }

    /// Computes the per-extent partial hashes that
    /// [`combine_partials`] folds into the final checksum. The returned
    /// vector is indexed like `extents`, so callers can cache it and later
    /// recompute only the partials of extents whose frames were redirtied
    /// ([`PhysicalMemory::refresh_partials_with_pool`]) instead of rehashing
    /// every frame — the incremental-translate fast path.
    pub fn extent_partials_with_pool(
        &self,
        extents: &[Extent],
        pool: &hypertp_sim::WorkerPool,
    ) -> Vec<u64> {
        // Fan out only when the work amortizes thread spawn: below ~128 MiB
        // of frames the serial loop wins.
        const PAR_THRESHOLD_FRAMES: u64 = 1 << 15;
        let total: u64 = extents.iter().map(|e| e.pages()).sum();
        if pool.workers() <= 1 || extents.len() <= 1 || total < PAR_THRESHOLD_FRAMES {
            extents.iter().map(|e| self.extent_partial(e)).collect()
        } else {
            pool.map_indices(extents.len(), |i| self.extent_partial(&extents[i]))
                .results
        }
    }

    /// Recomputes the cached partials of the extents named by `dirty`
    /// (indices into `extents`), leaving every clean extent's partial
    /// untouched. Combined with [`combine_partials`], this reproduces the
    /// exact value [`PhysicalMemory::checksum_with_pool`] would compute from
    /// scratch while only rehashing the dirtied extents.
    pub fn refresh_partials_with_pool(
        &self,
        extents: &[Extent],
        partials: &mut [u64],
        dirty: &[usize],
        pool: &hypertp_sim::WorkerPool,
    ) {
        assert_eq!(
            extents.len(),
            partials.len(),
            "partials cache must be indexed like extents"
        );
        const PAR_THRESHOLD_FRAMES: u64 = 1 << 15;
        let total: u64 = dirty.iter().map(|&i| extents[i].pages()).sum();
        if pool.workers() <= 1 || dirty.len() <= 1 || total < PAR_THRESHOLD_FRAMES {
            for &i in dirty {
                partials[i] = self.extent_partial(&extents[i]);
            }
        } else {
            let fresh = pool
                .map_indices(dirty.len(), |k| self.extent_partial(&extents[dirty[k]]))
                .results;
            for (&i, p) in dirty.iter().zip(fresh) {
                partials[i] = p;
            }
        }
    }

    /// Order-dependent fold over one extent's content words — the unit of
    /// parallelism for [`PhysicalMemory::checksum_with_pool`].
    pub fn extent_partial(&self, e: &Extent) -> u64 {
        let base = e.base.0 as usize;
        let mut acc = 0xcbf2_9ce4_8422_2325u64;
        for &c in &self.contents[base..base + e.pages() as usize] {
            acc = acc.rotate_left(5) ^ c.wrapping_mul(0x1000_0000_01b3);
        }
        acc
    }
}

/// Folds per-extent partial hashes (in extent order) into the final
/// checksum — the combining step of [`PhysicalMemory::checksum_with_pool`],
/// exposed so cached partials can be recombined after a dirty-extent
/// refresh without touching frame contents. The combiner is defined only
/// by the partial values and their order, never by the worker count that
/// produced them.
pub fn combine_partials(partials: &[u64]) -> u64 {
    let mut acc = 0xcbf2_9ce4_8422_2325u64;
    for &p in partials {
        acc = acc.rotate_left(17) ^ p.wrapping_mul(0x1000_0000_01b3);
    }
    acc
}

/// FNV-1a-style hash of a byte slice (content word for byte-backed
/// frames).
///
/// The inner loop folds eight bytes per multiply instead of one — the hash
/// is only ever compared against itself (frame content identity across a
/// kexec), so the exact constants matter less than the 4 KiB-page
/// throughput on the transplant hot path. The trailing `len % 8` bytes
/// fall back to the classic byte-at-a-time step.
pub fn fnv1a(data: &[u8]) -> u64 {
    const PRIME: u64 = 0x100_0000_01b3;
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        h ^= u64::from_le_bytes(c.try_into().expect("chunks_exact(8)"));
        h = h.wrapping_mul(PRIME);
    }
    for &b in chunks.remainder() {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_write_read() {
        let mut ram = PhysicalMemory::new(256);
        let e = ram.alloc(PageOrder(1)).unwrap();
        ram.write(e.base, 0xdead).unwrap();
        assert_eq!(ram.read(e.base).unwrap(), 0xdead);
        assert!(ram.is_allocated(e.base));
    }

    #[test]
    fn write_unallocated_rejected() {
        let mut ram = PhysicalMemory::new(16);
        assert_eq!(
            ram.write(Mfn(3), 1),
            Err(MemError::NotAllocated { mfn: Mfn(3) })
        );
    }

    #[test]
    fn out_of_range_rejected() {
        let ram = PhysicalMemory::new(16);
        assert!(matches!(
            ram.read(Mfn(99)),
            Err(MemError::OutOfRange { .. })
        ));
    }

    #[test]
    fn byte_backed_frames_hash_consistently() {
        let mut ram = PhysicalMemory::new(16);
        let e = ram.alloc(PageOrder(0)).unwrap();
        let page = vec![7u8; PAGE_SIZE as usize];
        ram.write_bytes(e.base, &page).unwrap();
        assert_eq!(ram.read(e.base).unwrap(), fnv1a(&page));
        assert_eq!(ram.read_bytes(e.base).unwrap(), &page[..]);
        // A word write invalidates the byte view.
        ram.write(e.base, 5).unwrap();
        assert!(ram.read_bytes(e.base).is_none());
    }

    #[test]
    fn contents_survive_free_and_kexec() {
        let mut ram = PhysicalMemory::new(256);
        let e = ram.alloc(PageOrder(2)).unwrap();
        for (i, mfn) in e.frames().enumerate() {
            ram.write(mfn, 100 + i as u64).unwrap();
        }
        ram.forget_ownership();
        for (i, mfn) in e.frames().enumerate() {
            assert_eq!(ram.read(mfn).unwrap(), 100 + i as u64);
        }
    }

    #[test]
    fn scrub_destroys_unreserved_contents() {
        let mut ram = PhysicalMemory::new(256);
        let keep = ram.alloc(PageOrder(0)).unwrap();
        let lose = ram.alloc(PageOrder(0)).unwrap();
        ram.write(keep.base, 111).unwrap();
        ram.write(lose.base, 222).unwrap();
        ram.forget_ownership();
        // Only `keep` gets a PRAM reservation.
        ram.reserve_range(keep.base, 1).unwrap();
        let scrubbed = ram.scrub_unreserved();
        assert!(scrubbed >= 1);
        assert_eq!(ram.read(keep.base).unwrap(), 111);
        assert_eq!(ram.read(lose.base).unwrap(), 0);
    }

    #[test]
    fn reserved_frames_not_reallocated() {
        let mut ram = PhysicalMemory::new(64);
        let e = ram.alloc(PageOrder(0)).unwrap();
        let target = e.base;
        ram.write(target, 42).unwrap();
        ram.forget_ownership();
        ram.reserve_range(target, 1).unwrap();
        // Exhaust the allocator; the reserved frame must never come back.
        while let Ok(got) = ram.alloc(PageOrder(0)) {
            assert_ne!(got.base, target);
        }
        assert_eq!(ram.read(target).unwrap(), 42);
    }

    #[test]
    fn adopt_reserved_roundtrip() {
        let mut ram = PhysicalMemory::new(64);
        let e = ram.alloc(PageOrder(3)).unwrap();
        ram.write(e.base, 9).unwrap();
        ram.forget_ownership();
        ram.reserve_range(e.base, e.pages()).unwrap();
        ram.adopt_reserved(e.base, e.pages()).unwrap();
        assert!(ram.is_allocated(e.base));
        assert_eq!(ram.read(e.base).unwrap(), 9);
        // Adoption of a non-reserved range fails.
        assert!(ram.adopt_reserved(Mfn(60), 2).is_err());
    }

    #[test]
    fn unreserve_returns_frames_to_pool() {
        let mut ram = PhysicalMemory::new(64);
        ram.forget_ownership();
        ram.reserve_range(Mfn(10), 4).unwrap();
        let before = ram.free_frames();
        ram.unreserve_and_free(Mfn(10), 4).unwrap();
        assert_eq!(ram.free_frames(), before + 4);
        assert!(!ram.is_reserved(Mfn(10)));
    }

    #[test]
    fn content_slice_borrows_extent_words() {
        let mut ram = PhysicalMemory::new(64);
        let e = ram.alloc(PageOrder(3)).unwrap();
        for (i, mfn) in e.frames().enumerate() {
            ram.write(mfn, 0x40 + i as u64).unwrap();
        }
        let s = ram.content_slice(e.base, e.pages()).unwrap();
        assert_eq!(s.len(), e.pages() as usize);
        for (i, &w) in s.iter().enumerate() {
            assert_eq!(w, 0x40 + i as u64);
        }
        // Free frames stay readable, like `read`.
        ram.free(e).unwrap();
        assert_eq!(ram.content_slice(e.base, e.pages()).unwrap()[0], 0x40);
        // Out-of-range runs are rejected, not truncated.
        assert!(matches!(
            ram.content_slice(Mfn(60), 8),
            Err(MemError::OutOfRange { .. })
        ));
        assert!(matches!(
            ram.content_slice(Mfn(99), 1),
            Err(MemError::OutOfRange { .. })
        ));
    }

    #[test]
    fn checksum_detects_change() {
        let mut ram = PhysicalMemory::new(64);
        let e = ram.alloc(PageOrder(2)).unwrap();
        for mfn in e.frames() {
            ram.write(mfn, mfn.0 * 3).unwrap();
        }
        let c1 = ram.checksum(&[e]);
        ram.write(e.base + 1, 999).unwrap();
        let c2 = ram.checksum(&[e]);
        assert_ne!(c1, c2);
    }

    #[test]
    fn checksum_serial_and_parallel_identical() {
        let mut ram = PhysicalMemory::new(1 << 16);
        let extents: Vec<Extent> = (0..64).map(|_| ram.alloc(PageOrder(9)).unwrap()).collect();
        for e in &extents {
            for mfn in e.frames() {
                ram.write(mfn, mfn.0 ^ 0x5a5a).unwrap();
            }
        }
        // 64 × 512 frames ≥ the parallel threshold, so worker counts > 1
        // actually take the fan-out path.
        let serial = ram.checksum_with_pool(&extents, &hypertp_sim::WorkerPool::serial());
        for w in [2usize, 4, 8, 32] {
            assert_eq!(
                serial,
                ram.checksum_with_pool(&extents, &hypertp_sim::WorkerPool::new(w)),
                "workers={w}"
            );
        }
        assert_eq!(serial, ram.checksum(&extents));
    }

    #[test]
    fn refreshed_partials_recombine_to_full_checksum() {
        let mut ram = PhysicalMemory::new(1 << 14);
        let extents: Vec<Extent> = (0..16).map(|_| ram.alloc(PageOrder(6)).unwrap()).collect();
        for e in &extents {
            for mfn in e.frames() {
                ram.write(mfn, mfn.0.wrapping_mul(0x9e37)).unwrap();
            }
        }
        let pool = hypertp_sim::WorkerPool::serial();
        let mut partials = ram.extent_partials_with_pool(&extents, &pool);
        assert_eq!(
            combine_partials(&partials),
            ram.checksum_with_pool(&extents, &pool)
        );
        // Dirty two extents, refresh only those partials: the recombined
        // value must match a from-scratch checksum.
        for &i in &[3usize, 11] {
            ram.write(extents[i].base, 0xfeed + i as u64).unwrap();
        }
        ram.refresh_partials_with_pool(&extents, &mut partials, &[3, 11], &pool);
        assert_eq!(
            combine_partials(&partials),
            ram.checksum_with_pool(&extents, &pool)
        );
    }

    #[test]
    fn partials_serial_and_pooled_agree_on_fragmented_layouts() {
        // Regression: the translate hot path reuses pooled partials; they
        // must equal the serial fold on a fragmented (mixed-order,
        // interleaved) extent layout, for any worker count.
        let mut ram = PhysicalMemory::new(1 << 17);
        let mut extents = Vec::new();
        for i in 0..96u64 {
            let order = PageOrder((i % 4 + 6) as u8); // 64..512-page extents
            let e = ram.alloc(order).unwrap();
            for mfn in e.frames() {
                ram.write(mfn, mfn.0.rotate_left((i % 13) as u32) ^ i)
                    .unwrap();
            }
            extents.push(e);
            if i % 3 == 0 {
                // Punch holes so later allocations fragment.
                let hole = ram.alloc(PageOrder(5)).unwrap();
                ram.free(hole).unwrap();
            }
        }
        let serial = ram.extent_partials_with_pool(&extents, &hypertp_sim::WorkerPool::serial());
        assert_eq!(combine_partials(&serial), ram.checksum(&extents));
        for w in [2usize, 3, 8, 16] {
            let pooled = ram.extent_partials_with_pool(&extents, &hypertp_sim::WorkerPool::new(w));
            assert_eq!(serial, pooled, "workers={w}");
        }
    }

    #[test]
    fn fnv1a_sensitive_at_every_offset_and_tail_length() {
        // The word-at-a-time loop plus byte tail must react to a flipped
        // bit at any position, for lengths around the 8-byte boundary.
        for len in 0..=17usize {
            let a: Vec<u8> = (0..len as u8).collect();
            let h = fnv1a(&a);
            for i in 0..len {
                let mut b = a.clone();
                b[i] ^= 1;
                assert_ne!(h, fnv1a(&b), "len={len} i={i}");
            }
        }
    }

    #[test]
    fn with_gib_sizes() {
        let ram = PhysicalMemory::with_gib(1);
        assert_eq!(ram.total_frames(), 262_144);
    }
}
