//! Machine specifications for the paper's testbed (Table 3).

use hypertp_sim::cost::MachinePerf;
use hypertp_sim::SimDuration;

/// Hardware description of a physical server.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineSpec {
    /// Human-readable name ("M1", "M2", ...).
    pub name: String,
    /// CPU model string (documentation only).
    pub cpu_model: String,
    /// Physical cores.
    pub cores: usize,
    /// Hardware threads.
    pub threads: usize,
    /// Base clock frequency in GHz.
    pub freq_ghz: f64,
    /// Physical RAM in GiB.
    pub ram_gb: u64,
    /// NIC line rate in Gbit/s.
    pub nic_gbps: f64,
    /// NIC bring-up time after a reboot.
    pub nic_init: SimDuration,
    /// Threads reserved for the administration OS (dom0 / host Linux) —
    /// §5.1 reserves 2 CPUs.
    pub reserved_threads: usize,
}

impl MachineSpec {
    /// M1 from Table 3: Intel i5-8400H, 4 cores / 8 threads @ 2.5 GHz,
    /// 16 GB RAM, 1 Gbps Ethernet. NIC bring-up 6.6 s (§5.2.1).
    pub fn m1() -> Self {
        MachineSpec {
            name: "M1".to_string(),
            cpu_model: "Intel(R) i5-8400H".to_string(),
            cores: 4,
            threads: 8,
            freq_ghz: 2.5,
            ram_gb: 16,
            nic_gbps: 1.0,
            nic_init: SimDuration::from_millis(6600),
            reserved_threads: 2,
        }
    }

    /// M2 from Table 3: 2× Intel Xeon E5-2650L v4, 14 cores / 28 threads @
    /// 1.7 GHz, 64 GB RAM, 1 Gbps Ethernet. NIC bring-up 2.3 s (§5.2.1).
    pub fn m2() -> Self {
        MachineSpec {
            name: "M2".to_string(),
            cpu_model: "2x Intel(R) Xeon(R) E5-2650L v4".to_string(),
            cores: 28,
            threads: 28,
            freq_ghz: 1.7,
            ram_gb: 64,
            nic_gbps: 1.0,
            nic_init: SimDuration::from_millis(2300),
            reserved_threads: 2,
        }
    }

    /// A cluster node from §5.1: 2× Intel Xeon E5-2630 v3, 96 GB RAM,
    /// 10 Gbps network (the public research infrastructure used for the
    /// cluster-scale evaluation).
    pub fn cluster_node() -> Self {
        MachineSpec {
            name: "G5K".to_string(),
            cpu_model: "2x Intel(R) Xeon(R) E5-2630 v3".to_string(),
            cores: 16,
            threads: 32,
            freq_ghz: 2.4,
            ram_gb: 96,
            nic_gbps: 10.0,
            nic_init: SimDuration::from_millis(2500),
            reserved_threads: 2,
        }
    }

    /// Converts the spec into the cost model's performance description.
    pub fn perf(&self) -> MachinePerf {
        MachinePerf {
            freq_ghz: self.freq_ghz,
            threads: self.threads,
            reserved_threads: self.reserved_threads,
            host_ram_gb: self.ram_gb as f64,
            nic_gbps: self.nic_gbps,
            nic_init: self.nic_init,
        }
    }

    /// Number of VMs of `vm_gb` GiB each the machine can host, leaving
    /// `reserve_gb` for the administration OS.
    pub fn vm_capacity(&self, vm_gb: u64, reserve_gb: u64) -> u64 {
        self.ram_gb.saturating_sub(reserve_gb) / vm_gb.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_specs() {
        let m1 = MachineSpec::m1();
        assert_eq!(m1.threads, 8);
        assert_eq!(m1.ram_gb, 16);
        let m2 = MachineSpec::m2();
        assert_eq!(m2.threads, 28);
        assert_eq!(m2.ram_gb, 64);
    }

    #[test]
    fn m1_hosts_12_one_gb_vms() {
        // §5.2.1: "With this VM size, our smallest machine (M1) can host up
        // to 12 VMs" (1 GB VMs, ~4 GB kept for dom0).
        assert_eq!(MachineSpec::m1().vm_capacity(1, 4), 12);
    }

    #[test]
    fn perf_conversion() {
        let p = MachineSpec::m2().perf();
        assert_eq!(p.freq_ghz, 1.7);
        assert_eq!(p.worker_threads(), 26);
    }
}
