//! A binary buddy frame allocator.
//!
//! Hypervisors manage host frames with buddy allocators (Xen's page
//! allocator, Linux's zoned buddy system); the transplant path depends on
//! their behaviour in two ways: guest memory ends up *scattered* across the
//! host (motivating PRAM, §4.2.2), and huge pages require order-9 aligned
//! runs. This is a faithful power-of-two buddy system with per-order free
//! lists, block splitting on allocation and buddy coalescing on free.

use std::collections::BTreeSet;

use crate::addr::{Extent, Mfn, PageOrder};

/// Errors returned by the buddy allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuddyError {
    /// No contiguous run of the requested order is available.
    OutOfMemory {
        /// The order that could not be satisfied.
        order: PageOrder,
    },
    /// The freed block was not allocated (double free or bad address).
    BadFree {
        /// Base frame of the rejected free.
        base: Mfn,
    },
}

impl std::fmt::Display for BuddyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuddyError::OutOfMemory { order } => {
                write!(f, "out of memory for order-{} allocation", order.0)
            }
            BuddyError::BadFree { base } => write!(f, "bad free at {base}"),
        }
    }
}

impl std::error::Error for BuddyError {}

/// A binary buddy allocator over the frame range `0..total_frames`.
#[derive(Debug, Clone)]
pub struct BuddyAllocator {
    /// Free blocks per order, kept sorted so allocation is deterministic
    /// (lowest address first).
    free: Vec<BTreeSet<u64>>,
    total_frames: u64,
    free_frames: u64,
}

impl BuddyAllocator {
    /// Creates an allocator managing `total_frames` base frames, all free.
    ///
    /// A non-power-of-two total is handled by greedily covering the range
    /// with maximal aligned blocks.
    pub fn new(total_frames: u64) -> Self {
        let max = PageOrder::MAX.0 as usize;
        let mut a = BuddyAllocator {
            free: vec![BTreeSet::new(); max + 1],
            total_frames,
            free_frames: 0,
        };
        let mut base = 0u64;
        while base < total_frames {
            // The largest order both aligned at `base` and fitting the
            // remaining range.
            let align_order = if base == 0 {
                PageOrder::MAX.0
            } else {
                (base.trailing_zeros() as u8).min(PageOrder::MAX.0)
            };
            let mut order = align_order;
            while (1u64 << order) > total_frames - base {
                order -= 1;
            }
            a.free[order as usize].insert(base);
            a.free_frames += 1 << order;
            base += 1 << order;
        }
        a
    }

    /// Total frames managed.
    pub fn total_frames(&self) -> u64 {
        self.total_frames
    }

    /// Frames currently free.
    pub fn free_frames(&self) -> u64 {
        self.free_frames
    }

    /// Frames currently allocated.
    pub fn allocated_frames(&self) -> u64 {
        self.total_frames - self.free_frames
    }

    /// Allocates a `2^order` aligned run of frames.
    pub fn alloc(&mut self, order: PageOrder) -> Result<Extent, BuddyError> {
        assert!(order <= PageOrder::MAX, "order above maximum");
        // Find the smallest order with a free block.
        let mut from = order.0 as usize;
        while from < self.free.len() && self.free[from].is_empty() {
            from += 1;
        }
        if from >= self.free.len() {
            return Err(BuddyError::OutOfMemory { order });
        }
        let base = *self.free[from]
            .iter()
            .next()
            .expect("non-empty free list has a first element");
        self.free[from].remove(&base);
        // Split down to the requested order, returning upper halves to the
        // free lists.
        let mut cur = from;
        while cur > order.0 as usize {
            cur -= 1;
            let buddy = base + (1u64 << cur);
            self.free[cur].insert(buddy);
        }
        self.free_frames -= order.pages();
        Ok(Extent::new(Mfn(base), order))
    }

    /// Frees a previously allocated extent, coalescing with free buddies.
    pub fn free(&mut self, extent: Extent) -> Result<(), BuddyError> {
        let mut base = extent.base.0;
        let mut order = extent.order.0 as usize;
        if base + extent.pages() > self.total_frames {
            return Err(BuddyError::BadFree { base: extent.base });
        }
        // Reject frees of blocks that overlap a free block (double free).
        if self.overlaps_free(base, extent.pages()) {
            return Err(BuddyError::BadFree { base: extent.base });
        }
        while order < PageOrder::MAX.0 as usize {
            let buddy = base ^ (1u64 << order);
            if buddy + (1 << order) > self.total_frames || !self.free[order].remove(&buddy) {
                break;
            }
            base = base.min(buddy);
            order += 1;
        }
        self.free[order].insert(base);
        self.free_frames += extent.pages();
        Ok(())
    }

    /// Returns true if any free block overlaps `[base, base+len)`.
    fn overlaps_free(&self, base: u64, len: u64) -> bool {
        for (order, list) in self.free.iter().enumerate() {
            let block = 1u64 << order;
            // A free block [b, b+block) overlaps iff b < base+len and
            // b+block > base; candidates have b > base - block.
            let lo = base.saturating_sub(block - 1);
            for &b in list.range(lo..base + len) {
                if b + block > base {
                    return true;
                }
            }
        }
        false
    }

    /// Removes a specific frame range from the free pool (used at boot to
    /// reserve PRAM-protected memory). The range need not be aligned; it is
    /// carved out block by block. Returns the number of frames newly
    /// reserved (frames already allocated are skipped — the caller decides
    /// whether that is an error).
    pub fn reserve_range(&mut self, base: Mfn, pages: u64) -> u64 {
        let mut reserved = 0;
        let mut pending: Vec<(u64, usize)> = Vec::new();
        for (order, list) in self.free.iter().enumerate() {
            let block = 1u64 << order;
            let lo = base.0.saturating_sub(block - 1);
            for &b in list.range(lo..base.0 + pages) {
                if b + block > base.0 {
                    pending.push((b, order));
                }
            }
        }
        for (b, order) in pending {
            self.free[order].remove(&b);
            self.free_frames -= 1u64 << order;
            let block = 1u64 << order;
            // Re-free the parts of the block outside the reserved range.
            for f in b..b + block {
                if f >= base.0 && f < base.0 + pages {
                    reserved += 1;
                } else {
                    self.free[0].insert(f);
                    self.free_frames += 1;
                }
            }
        }
        reserved
    }

    /// Returns true if the frame is currently free.
    pub fn is_free(&self, mfn: Mfn) -> bool {
        self.overlaps_free(mfn.0, 1)
    }

    /// Checks internal invariants (free lists aligned, within range,
    /// non-overlapping, count consistent). Intended for tests.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut seen = BTreeSet::new();
        let mut count = 0u64;
        for (order, list) in self.free.iter().enumerate() {
            let block = 1u64 << order;
            for &b in list {
                if b % block != 0 {
                    return Err(format!("block {b} misaligned at order {order}"));
                }
                if b + block > self.total_frames {
                    return Err(format!("block {b} out of range at order {order}"));
                }
                for f in b..b + block {
                    if !seen.insert(f) {
                        return Err(format!("frame {f} on two free lists"));
                    }
                }
                count += block;
            }
        }
        if count != self.free_frames {
            return Err(format!(
                "free count mismatch: lists say {count}, counter says {}",
                self.free_frames
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_range_starts_free() {
        let a = BuddyAllocator::new(1024);
        assert_eq!(a.free_frames(), 1024);
        assert_eq!(a.allocated_frames(), 0);
        a.check_invariants().unwrap();
    }

    #[test]
    fn non_power_of_two_total() {
        let a = BuddyAllocator::new(1000);
        assert_eq!(a.free_frames(), 1000);
        a.check_invariants().unwrap();
    }

    #[test]
    fn alloc_and_free_roundtrip() {
        let mut a = BuddyAllocator::new(1024);
        let e = a.alloc(PageOrder(3)).unwrap();
        assert_eq!(e.pages(), 8);
        assert!(e.base.is_aligned(PageOrder(3)));
        assert_eq!(a.free_frames(), 1016);
        a.free(e).unwrap();
        assert_eq!(a.free_frames(), 1024);
        a.check_invariants().unwrap();
    }

    #[test]
    fn coalescing_restores_huge_block() {
        let mut a = BuddyAllocator::new(512);
        let mut extents = Vec::new();
        for _ in 0..512 {
            extents.push(a.alloc(PageOrder(0)).unwrap());
        }
        assert_eq!(a.free_frames(), 0);
        assert!(a.alloc(PageOrder(0)).is_err());
        for e in extents {
            a.free(e).unwrap();
        }
        a.check_invariants().unwrap();
        // After coalescing a full order-9 block must be allocatable again.
        let huge = a.alloc(PageOrder(9)).unwrap();
        assert_eq!(huge.pages(), 512);
    }

    #[test]
    fn double_free_detected() {
        let mut a = BuddyAllocator::new(64);
        let e = a.alloc(PageOrder(1)).unwrap();
        a.free(e).unwrap();
        assert!(matches!(a.free(e), Err(BuddyError::BadFree { .. })));
        a.check_invariants().unwrap();
    }

    #[test]
    fn out_of_range_free_detected() {
        let mut a = BuddyAllocator::new(64);
        let bogus = Extent::new(Mfn(128), PageOrder(0));
        assert!(matches!(a.free(bogus), Err(BuddyError::BadFree { .. })));
    }

    #[test]
    fn huge_alloc_fails_when_fragmented() {
        let mut a = BuddyAllocator::new(512);
        // Allocate all, free all but one frame in the middle.
        let extents: Vec<_> = (0..512).map(|_| a.alloc(PageOrder(0)).unwrap()).collect();
        for (i, e) in extents.iter().enumerate() {
            if i != 256 {
                a.free(*e).unwrap();
            }
        }
        assert!(a.alloc(PageOrder(9)).is_err());
        assert!(a.alloc(PageOrder(7)).is_ok());
        a.check_invariants().unwrap();
    }

    #[test]
    fn reserve_range_removes_frames() {
        let mut a = BuddyAllocator::new(1024);
        let got = a.reserve_range(Mfn(100), 50);
        assert_eq!(got, 50);
        assert_eq!(a.free_frames(), 974);
        assert!(!a.is_free(Mfn(120)));
        assert!(a.is_free(Mfn(99)));
        assert!(a.is_free(Mfn(150)));
        a.check_invariants().unwrap();
        // Allocations never land in the reserved range.
        while let Ok(e) = a.alloc(PageOrder(0)) {
            assert!(!(100..150).contains(&e.base.0));
        }
    }

    #[test]
    fn reserve_skips_already_allocated() {
        let mut a = BuddyAllocator::new(64);
        let e = a.alloc(PageOrder(9).min(PageOrder(5))).unwrap();
        assert_eq!(e.base.0, 0);
        let got = a.reserve_range(Mfn(0), 32);
        assert_eq!(got, 0, "allocated frames are not re-reserved");
    }

    #[test]
    fn deterministic_allocation_order() {
        let mut a = BuddyAllocator::new(256);
        let mut b = BuddyAllocator::new(256);
        for _ in 0..50 {
            assert_eq!(
                a.alloc(PageOrder(0)).unwrap(),
                b.alloc(PageOrder(0)).unwrap()
            );
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use hypertp_sim::SimRng;

    /// Random interleavings of allocs and frees keep every allocator
    /// invariant: aligned free lists, disjoint blocks, exact counters,
    /// and full recovery after freeing everything.
    /// (Formerly proptest, 64 cases.)
    #[test]
    fn random_alloc_free_maintains_invariants() {
        let mut rng = SimRng::new(0xb0dd_0001);
        for _ in 0..64 {
            let total = 64 + rng.gen_range(2048 - 64);
            let n_ops = 1 + rng.gen_range(199) as usize;
            let mut a = BuddyAllocator::new(total);
            let mut live: Vec<Extent> = Vec::new();
            for _ in 0..n_ops {
                let op = rng.gen_range(10) as u8;
                let sel = rng.next_u64() as u16;
                if op < 6 || live.is_empty() {
                    let order = PageOrder(op % 4);
                    if let Ok(e) = a.alloc(order) {
                        assert!(e.base.is_aligned(order));
                        assert!(e.base.0 + e.pages() <= total);
                        // No overlap with any live extent.
                        for other in &live {
                            assert!(
                                e.base.0 + e.pages() <= other.base.0
                                    || other.base.0 + other.pages() <= e.base.0
                            );
                        }
                        live.push(e);
                    }
                } else {
                    let idx = sel as usize % live.len();
                    let e = live.swap_remove(idx);
                    assert!(a.free(e).is_ok());
                }
                a.check_invariants().expect("allocator invariants");
                let held: u64 = live.iter().map(|e| e.pages()).sum();
                assert_eq!(a.allocated_frames(), held);
            }
            for e in live.drain(..) {
                assert!(a.free(e).is_ok());
            }
            assert_eq!(a.free_frames(), total);
            a.check_invariants().expect("allocator invariants");
        }
    }
}
