//! The physical machine: RAM + clock + kexec + NIC.
//!
//! A [`Machine`] ties together the frame-level RAM model, the shared
//! simulated clock and the two pieces of platform behaviour the transplant
//! path depends on: **kexec** (boot a new kernel without hardware reset,
//! §4.2.4) and **NIC re-initialization** after the micro-reboot (§5.2.1).
//!
//! The machine deliberately does not own the hypervisor object; the
//! transplant engine in `hypertp-core` owns both and coordinates them, which
//! mirrors how the prototype's orchestration lives in userspace tools rather
//! than in either hypervisor.

use hypertp_sim::cost::BootTarget;
use hypertp_sim::{SimClock, SimDuration};

use crate::ram::PhysicalMemory;
use crate::spec::MachineSpec;

/// State of the machine's network interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NicState {
    /// Link up, traffic flows.
    Up,
    /// Link down (during and after a micro-reboot until re-initialized).
    Down,
}

/// A kernel image staged for kexec (Fig. 3 step ❶: "binaries of Htarget are
/// loaded ahead of time into physical RAM").
#[derive(Debug, Clone, PartialEq)]
pub struct KexecImage {
    /// Which kernel the image boots.
    pub target: BootTarget,
    /// Boot command line; InPlaceTP passes the PRAM pointer here
    /// ("we inform the target hypervisor of any existing VM memory maps by
    /// passing the PRAM pointer through the target's boot command line").
    pub cmdline: String,
}

/// A simulated physical machine.
#[derive(Debug)]
pub struct Machine {
    spec: MachineSpec,
    clock: SimClock,
    ram: PhysicalMemory,
    nic: NicState,
    staged: Option<KexecImage>,
    booted_cmdline: String,
    boot_count: u64,
}

impl Machine {
    /// Creates a machine from a spec with a fresh clock.
    pub fn new(spec: MachineSpec) -> Self {
        Machine::with_clock(spec, SimClock::new())
    }

    /// Creates a machine sharing an existing clock (e.g. two hosts in a
    /// migration experiment observe common time).
    pub fn with_clock(spec: MachineSpec, clock: SimClock) -> Self {
        let ram = PhysicalMemory::with_gib(spec.ram_gb);
        Machine {
            spec,
            clock,
            ram,
            nic: NicState::Up,
            staged: None,
            booted_cmdline: String::new(),
            boot_count: 1,
        }
    }

    /// The machine's hardware spec.
    pub fn spec(&self) -> &MachineSpec {
        &self.spec
    }

    /// Handle to the machine's clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Shared access to physical RAM.
    pub fn ram(&self) -> &PhysicalMemory {
        &self.ram
    }

    /// Mutable access to physical RAM.
    pub fn ram_mut(&mut self) -> &mut PhysicalMemory {
        &mut self.ram
    }

    /// Current NIC state.
    pub fn nic(&self) -> NicState {
        self.nic
    }

    /// Number of kernels booted on this machine (1 after construction).
    pub fn boot_count(&self) -> u64 {
        self.boot_count
    }

    /// Command line the currently running kernel was booted with.
    pub fn booted_cmdline(&self) -> &str {
        &self.booted_cmdline
    }

    /// Stages a kernel image for kexec (Fig. 3 step ❶). Replaces any
    /// previously staged image.
    pub fn kexec_load(&mut self, image: KexecImage) {
        self.staged = Some(image);
    }

    /// Returns the staged image, if any.
    pub fn staged_image(&self) -> Option<&KexecImage> {
        self.staged.as_ref()
    }

    /// Executes the staged kexec (Fig. 3 step ❹).
    ///
    /// Semantics: RAM *contents* survive; RAM *ownership* and reservations
    /// are forgotten (the new kernel builds a fresh allocator); the NIC goes
    /// down; the staged command line becomes the running kernel's command
    /// line. The time cost of the reboot is charged by the caller through
    /// the cost model — the machine only performs the state transition.
    ///
    /// Returns the booted image.
    ///
    /// # Errors
    ///
    /// Fails if no image is staged.
    pub fn kexec(&mut self) -> Result<KexecImage, KexecError> {
        let image = self.staged.take().ok_or(KexecError::NoImageStaged)?;
        self.ram.forget_ownership();
        self.nic = NicState::Down;
        self.booted_cmdline = image.cmdline.clone();
        self.boot_count += 1;
        Ok(image)
    }

    /// Brings the NIC back up, advancing the clock by the machine's NIC
    /// initialization time. Idempotent when the NIC is already up.
    ///
    /// Returns the time spent.
    pub fn bring_up_nic(&mut self) -> SimDuration {
        if self.nic == NicState::Up {
            return SimDuration::ZERO;
        }
        let d = self.spec.nic_init;
        self.clock.advance(d);
        self.nic = NicState::Up;
        d
    }
}

/// Errors from kexec operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KexecError {
    /// `kexec` was invoked with no staged image.
    NoImageStaged,
}

impl std::fmt::Display for KexecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KexecError::NoImageStaged => write!(f, "no kexec image staged"),
        }
    }
}

impl std::error::Error for KexecError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::PageOrder;

    fn small_machine() -> Machine {
        let mut spec = MachineSpec::m1();
        spec.ram_gb = 1; // Keep tests fast.
        Machine::new(spec)
    }

    #[test]
    fn kexec_requires_staged_image() {
        let mut m = small_machine();
        assert_eq!(m.kexec(), Err(KexecError::NoImageStaged));
    }

    #[test]
    fn kexec_preserves_contents_forgets_ownership() {
        let mut m = small_machine();
        let e = m.ram_mut().alloc(PageOrder(0)).unwrap();
        m.ram_mut().write(e.base, 77).unwrap();
        m.kexec_load(KexecImage {
            target: BootTarget::LinuxKvm,
            cmdline: "pram=0x1000".to_string(),
        });
        let img = m.kexec().unwrap();
        assert_eq!(img.target, BootTarget::LinuxKvm);
        assert_eq!(m.booted_cmdline(), "pram=0x1000");
        assert_eq!(m.boot_count(), 2);
        assert_eq!(m.ram().read(e.base).unwrap(), 77);
        assert!(!m.ram().is_allocated(e.base));
        assert_eq!(m.nic(), NicState::Down);
    }

    #[test]
    fn nic_bring_up_costs_machine_specific_time() {
        let mut m = small_machine();
        m.kexec_load(KexecImage {
            target: BootTarget::LinuxKvm,
            cmdline: String::new(),
        });
        m.kexec().unwrap();
        let t0 = m.clock().now();
        let d = m.bring_up_nic();
        assert_eq!(d, MachineSpec::m1().nic_init);
        assert_eq!(m.clock().now().duration_since(t0), d);
        assert_eq!(m.nic(), NicState::Up);
        // Idempotent.
        assert_eq!(m.bring_up_nic(), SimDuration::ZERO);
    }

    #[test]
    fn staged_image_replaced() {
        let mut m = small_machine();
        m.kexec_load(KexecImage {
            target: BootTarget::LinuxKvm,
            cmdline: "a".into(),
        });
        m.kexec_load(KexecImage {
            target: BootTarget::XenDom0,
            cmdline: "b".into(),
        });
        assert_eq!(m.staged_image().unwrap().cmdline, "b");
        assert_eq!(m.kexec().unwrap().target, BootTarget::XenDom0);
        // The staged slot is consumed.
        assert_eq!(m.kexec(), Err(KexecError::NoImageStaged));
    }

    #[test]
    fn shared_clock() {
        let clock = SimClock::new();
        let mut spec = MachineSpec::m1();
        spec.ram_gb = 1;
        let m1 = Machine::with_clock(spec.clone(), clock.clone());
        let m2 = Machine::with_clock(spec, clock.clone());
        clock.advance(SimDuration::from_secs(3));
        assert_eq!(m1.clock().now(), m2.clock().now());
    }
}
