//! Simulated physical machine for the HyperTP reproduction.
//!
//! The paper runs on bare-metal x86 servers; this crate substitutes a
//! frame-level machine model that preserves exactly the properties the
//! transplant mechanism depends on:
//!
//! * physical RAM is an array of 4 KiB frames managed by a real buddy
//!   allocator ([`buddy`]) with 2 MiB huge-page support;
//! * frame *contents* survive a kexec micro-reboot, frame *ownership* does
//!   not ([`machine::Machine::kexec`]);
//! * the freshly booted hypervisor scrubs or reallocates any frame that was
//!   not explicitly reserved, so guest memory that is not protected by a
//!   parsed PRAM structure is genuinely destroyed
//!   ([`ram::PhysicalMemory::scrub_unreserved`]);
//! * the NIC goes down across a reboot and takes a machine-specific time to
//!   come back (6.6 s on M1, 2.3 s on M2 — §5.2.1).
//!
//! Machine specs for the paper's testbed (Table 3) are in [`spec`].

pub mod addr;
pub mod buddy;
pub mod machine;
pub mod ram;
pub mod spec;

pub use addr::{Extent, Gfn, Mfn, PageOrder, GIB, HUGE_PAGE_SIZE, PAGE_SIZE};
pub use machine::{KexecImage, Machine, NicState};
pub use ram::{combine_partials, MemError, PhysicalMemory};
pub use spec::MachineSpec;
