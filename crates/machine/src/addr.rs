//! Frame numbers, page orders and extents.
//!
//! Terminology follows Xen (and the paper's Fig. 4): a **GFN** is a guest
//! frame number (guest-physical address >> 12), an **MFN** is a machine
//! frame number (host-physical address >> 12). A PRAM page entry maps a GFN
//! run to an MFN run of `2^order` pages.

use std::fmt;
use std::ops::Add;

/// Size of a base page in bytes (4 KiB).
pub const PAGE_SIZE: u64 = 4096;

/// Size of a huge page in bytes (2 MiB).
pub const HUGE_PAGE_SIZE: u64 = 2 * 1024 * 1024;

/// One GiB in bytes.
pub const GIB: u64 = 1 << 30;

/// Page order of a 2 MiB huge page (2^9 base pages).
pub const HUGE_PAGE_ORDER: PageOrder = PageOrder(9);

/// A machine (host-physical) frame number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Mfn(pub u64);

/// A guest (guest-physical) frame number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Gfn(pub u64);

/// A power-of-two allocation order: a run of `2^order` base pages.
///
/// Order 0 is a 4 KiB page; order 9 is a 2 MiB huge page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageOrder(pub u8);

impl PageOrder {
    /// Maximum order supported by the buddy allocator (2 MiB).
    pub const MAX: PageOrder = HUGE_PAGE_ORDER;

    /// Number of base pages in this order.
    pub const fn pages(self) -> u64 {
        1u64 << self.0
    }

    /// Number of bytes covered by this order.
    pub const fn bytes(self) -> u64 {
        PAGE_SIZE << self.0
    }
}

impl Mfn {
    /// Returns the host-physical byte address of the frame.
    pub const fn addr(self) -> u64 {
        self.0 * PAGE_SIZE
    }

    /// Returns true if this MFN is aligned to the given order.
    pub const fn is_aligned(self, order: PageOrder) -> bool {
        self.0 & (order.pages() - 1) == 0
    }
}

impl Gfn {
    /// Returns the guest-physical byte address of the frame.
    pub const fn addr(self) -> u64 {
        self.0 * PAGE_SIZE
    }
}

impl Add<u64> for Mfn {
    type Output = Mfn;

    fn add(self, rhs: u64) -> Mfn {
        Mfn(self.0 + rhs)
    }
}

impl Add<u64> for Gfn {
    type Output = Gfn;

    fn add(self, rhs: u64) -> Gfn {
        Gfn(self.0 + rhs)
    }
}

impl fmt::Display for Mfn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mfn:{:#x}", self.0)
    }
}

impl fmt::Display for Gfn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gfn:{:#x}", self.0)
    }
}

/// A contiguous run of machine frames: `2^order` base pages starting at
/// `base`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Extent {
    /// First machine frame of the run.
    pub base: Mfn,
    /// Allocation order: the run covers `2^order` base pages.
    pub order: PageOrder,
}

impl Extent {
    /// Creates an extent; the base must be aligned to the order.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not aligned to `order`.
    pub fn new(base: Mfn, order: PageOrder) -> Self {
        assert!(
            base.is_aligned(order),
            "extent base {base} not aligned to order {}",
            order.0
        );
        Extent { base, order }
    }

    /// Number of base pages covered.
    pub const fn pages(self) -> u64 {
        self.order.pages()
    }

    /// Number of bytes covered.
    pub const fn bytes(self) -> u64 {
        self.order.bytes()
    }

    /// Iterates over every base frame in the run.
    pub fn frames(self) -> impl Iterator<Item = Mfn> {
        (self.base.0..self.base.0 + self.pages()).map(Mfn)
    }

    /// Returns true if `mfn` lies inside the run.
    pub fn contains(self, mfn: Mfn) -> bool {
        mfn.0 >= self.base.0 && mfn.0 < self.base.0 + self.pages()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_sizes() {
        assert_eq!(PageOrder(0).pages(), 1);
        assert_eq!(PageOrder(0).bytes(), 4096);
        assert_eq!(PageOrder(9).pages(), 512);
        assert_eq!(PageOrder(9).bytes(), HUGE_PAGE_SIZE);
    }

    #[test]
    fn frame_addresses() {
        assert_eq!(Mfn(2).addr(), 8192);
        assert_eq!(Gfn(1).addr(), 4096);
    }

    #[test]
    fn alignment() {
        assert!(Mfn(512).is_aligned(PageOrder(9)));
        assert!(!Mfn(513).is_aligned(PageOrder(9)));
        assert!(Mfn(513).is_aligned(PageOrder(0)));
    }

    #[test]
    fn extent_iteration_and_contains() {
        let e = Extent::new(Mfn(8), PageOrder(2));
        let frames: Vec<u64> = e.frames().map(|m| m.0).collect();
        assert_eq!(frames, vec![8, 9, 10, 11]);
        assert!(e.contains(Mfn(10)));
        assert!(!e.contains(Mfn(12)));
        assert_eq!(e.bytes(), 4 * 4096);
    }

    #[test]
    #[should_panic(expected = "not aligned")]
    fn misaligned_extent_panics() {
        Extent::new(Mfn(3), PageOrder(1));
    }
}
