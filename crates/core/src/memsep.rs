//! Memory separation: the four-way classification of RAM contents (§3.1,
//! Fig. 2).
//!
//! HyperTP's downtime depends on translating as little as possible. The
//! paper classifies every byte of RAM a virtualized system uses into four
//! categories with different transplant treatment:
//!
//! | Category | Treatment under InPlaceTP |
//! |---|---|
//! | Guest State | kept untouched, in place |
//! | VMi State | translated through UISR |
//! | VM Management State | discarded; rebuilt from the VMi States |
//! | HV State | discarded; reinitialized by the micro-reboot |
//!
//! Hypervisor models report their footprint per category via
//! [`MemSepReport`]; the engine and the test suite use the report to check
//! the treatment invariants (e.g. only VMi State bytes flow through the
//! UISR codec).

/// The four categories of Fig. 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StateCategory {
    /// The guest's own address space: OS + applications. Hypervisor-
    /// independent.
    GuestState,
    /// Per-VM hypervisor structures (NPT, vCPU contexts, device emulation
    /// state). Hypervisor-dependent; translated via UISR.
    VmiState,
    /// Management structures referencing VMi State (scheduler queues,
    /// domain/VM lists). Rebuilt, never translated.
    VmMgmtState,
    /// Hypervisor-global state with no VM linkage. Reinitialized by the
    /// micro-reboot.
    HvState,
}

impl StateCategory {
    /// All categories, in Fig. 2 order.
    pub const ALL: [StateCategory; 4] = [
        StateCategory::GuestState,
        StateCategory::VmiState,
        StateCategory::VmMgmtState,
        StateCategory::HvState,
    ];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            StateCategory::GuestState => "Guest State",
            StateCategory::VmiState => "VMi State",
            StateCategory::VmMgmtState => "VM Management State",
            StateCategory::HvState => "HV State",
        }
    }

    /// True if the category must be translated through UISR during a
    /// transplant.
    pub fn needs_translation(self) -> bool {
        matches!(self, StateCategory::VmiState)
    }

    /// True if the category survives the micro-reboot in place.
    pub fn survives_reboot(self) -> bool {
        matches!(self, StateCategory::GuestState)
    }
}

/// A hypervisor's memory footprint broken down by category, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemSepReport {
    /// Guest State bytes (guest RAM).
    pub guest_state: u64,
    /// VMi State bytes (NPTs, vCPU contexts, device state).
    pub vmi_state: u64,
    /// VM Management State bytes (run queues, domain tables).
    pub vm_mgmt_state: u64,
    /// HV State bytes (heap, free-page bookkeeping, consoles...).
    pub hv_state: u64,
}

impl MemSepReport {
    /// Bytes in a given category.
    pub fn of(&self, cat: StateCategory) -> u64 {
        match cat {
            StateCategory::GuestState => self.guest_state,
            StateCategory::VmiState => self.vmi_state,
            StateCategory::VmMgmtState => self.vm_mgmt_state,
            StateCategory::HvState => self.hv_state,
        }
    }

    /// Total bytes across all categories.
    pub fn total(&self) -> u64 {
        self.guest_state + self.vmi_state + self.vm_mgmt_state + self.hv_state
    }

    /// Bytes that must be translated during transplant (VMi State only) —
    /// the quantity memory separation minimizes.
    pub fn translated_bytes(&self) -> u64 {
        self.vmi_state
    }

    /// Fraction of total state that needs translation. The paper's central
    /// efficiency claim is that this is tiny (guest state dominates).
    pub fn translation_ratio(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.translated_bytes() as f64 / self.total() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_properties() {
        assert!(StateCategory::VmiState.needs_translation());
        assert!(!StateCategory::GuestState.needs_translation());
        assert!(StateCategory::GuestState.survives_reboot());
        assert!(!StateCategory::HvState.survives_reboot());
        assert_eq!(StateCategory::ALL.len(), 4);
    }

    #[test]
    fn report_accounting() {
        let r = MemSepReport {
            guest_state: 1 << 30,
            vmi_state: 2 << 20,
            vm_mgmt_state: 1 << 20,
            hv_state: 64 << 20,
        };
        assert_eq!(r.of(StateCategory::VmiState), 2 << 20);
        assert_eq!(r.total(), (1u64 << 30) + (2 << 20) + (1 << 20) + (64 << 20));
        assert_eq!(r.translated_bytes(), 2 << 20);
        assert!(r.translation_ratio() < 0.01);
    }

    #[test]
    fn empty_report_ratio_is_zero() {
        assert_eq!(MemSepReport::default().translation_ratio(), 0.0);
    }
}
