//! HyperTP core: the hypervisor transplant framework.
//!
//! This crate implements the paper's primary contribution — a unified
//! framework for replacing the running hypervisor with a different one
//! during a vulnerability window (§3):
//!
//! * [`hypervisor`] — the [`Hypervisor`] trait every HyperTP-compliant
//!   hypervisor implements: VM lifecycle, guest memory access with dirty
//!   logging, and the `to_uisr` / `from_uisr` translation entry points.
//! * [`registry`] — the hypervisor pool: named factories so the engine can
//!   boot an `Htarget` chosen at transplant time.
//! * [`memsep`] — the memory-separation taxonomy (Guest State, VMi State,
//!   VM Management State, HV State) and its accounting report.
//! * [`uisr_store`] — persistence of encoded UISR blobs in RAM across the
//!   micro-reboot, layered on PRAM files.
//! * [`inplace`] — the InPlaceTP workflow (Fig. 3) with the §4.2.5
//!   optimizations individually toggleable.
//! * [`unplanned`] — ReHype-style unplanned transplant: an always-on warm
//!   UISR checkpointer plus a crash-recovery engine that micro-reboots
//!   into the other hypervisor from the freshest persisted checkpoint.
//! * [`devices`] — the §4.2.3 device quiescing/restoration rules shared
//!   by the hypervisor models.
//! * [`vm`] — VM identity and configuration.
//! * [`error`] — the unified error type.
//!
//! MigrationTP lives in `hypertp-migrate`, which builds on the same trait.

pub mod devices;
pub mod error;
pub mod hypervisor;
pub mod inplace;
pub mod memsep;
pub mod recovery;
pub mod registry;
pub mod testing;
pub mod uisr_store;
pub mod unplanned;
pub mod vm;

pub use error::HtpError;
pub use hypervisor::{Hypervisor, HypervisorKind, RestoredVm};
pub use inplace::{InPlaceReport, InPlaceTransplant, IncrementalConfig, Optimizations, WarmRound};
pub use memsep::{MemSepReport, StateCategory};
pub use recovery::{
    host_failure_gate, migrate_or_inplace, migration_error_is_recoverable, FallbackOutcome,
    HostGate,
};
pub use registry::HypervisorRegistry;
pub use unplanned::{
    cold_recovery_latency, crash_gate, patch_uisr_fields, warm_recovery_latency, CheckpointConfig,
    CrashPhase, RecoveryReport, TickReport, UnplannedRecovery, VmLoss, WarmCheckpointer,
};
pub use vm::{VmConfig, VmId, VmState};
