//! Device quiescing and restoration (§4.2.3).
//!
//! Before a transplant, the guest is notified "similarly to what is done
//! on Azure with the Scheduled Events API" and prepares each device class
//! differently:
//!
//! * **pass-through** — the guest driver pauses the device, leaving driver
//!   state in guest memory (which transplants untouched); restoration is a
//!   resume notification;
//! * **emulated block** — in-flight requests drain so the emulation state
//!   is consistent when copied/translated;
//! * **emulated network** — unplugged entirely and rescanned after
//!   restoration (TCP connections survive the interruption);
//! * **console** — transmit buffers flush.
//!
//! Both hypervisor models share these rules; each invokes them from its
//! `notify_prepare_transplant` and restore paths.

use hypertp_sim::SimDuration;
use hypertp_uisr::DeviceState;

use crate::error::HtpError;

/// Guest notification round-trip cost.
pub const NOTIFY_RTT: SimDuration = SimDuration::from_millis(5);
/// Cost of draining one in-flight block request.
pub const DRAIN_PER_REQUEST: SimDuration = SimDuration::from_micros(800);
/// Cost of a guest-side network unplug.
pub const NET_UNPLUG: SimDuration = SimDuration::from_millis(20);
/// Cost of pausing a pass-through device through its guest driver.
pub const PASSTHROUGH_PAUSE: SimDuration = SimDuration::from_millis(50);
/// Cost of flushing a console transmit buffer.
pub const CONSOLE_FLUSH: SimDuration = SimDuration::from_millis(1);

/// Quiesces every device in place and returns the simulated time the
/// guest took (runs before the VM is paused, so this is preparation time,
/// not downtime).
pub fn quiesce(devices: &mut [DeviceState]) -> SimDuration {
    let mut cost = NOTIFY_RTT;
    for dev in devices.iter_mut() {
        match dev {
            DeviceState::Block {
                pending_requests, ..
            } => {
                cost += DRAIN_PER_REQUEST * *pending_requests as u64;
                *pending_requests = 0;
            }
            DeviceState::Network { unplugged, .. } => {
                if !*unplugged {
                    *unplugged = true;
                    cost += NET_UNPLUG;
                }
            }
            DeviceState::Console { tx_buffered } => {
                if *tx_buffered > 0 {
                    *tx_buffered = 0;
                    cost += CONSOLE_FLUSH;
                }
            }
            DeviceState::PassThrough { guest_paused, .. } => {
                if !*guest_paused {
                    *guest_paused = true;
                    cost += PASSTHROUGH_PAUSE;
                }
            }
        }
    }
    cost
}

/// Verifies that every device is in a transplant-safe state; the save
/// path refuses to translate inconsistent emulation state.
pub fn check_quiesced(devices: &[DeviceState]) -> Result<(), HtpError> {
    for dev in devices {
        match dev {
            DeviceState::Block {
                pending_requests, ..
            } if *pending_requests > 0 => {
                return Err(HtpError::IncompatibleState {
                    section: "devices",
                    detail: format!(
                        "block device has {pending_requests} in-flight requests; \
                         guest not quiesced"
                    ),
                });
            }
            DeviceState::PassThrough {
                bdf, guest_paused, ..
            } if !guest_paused => {
                return Err(HtpError::IncompatibleState {
                    section: "devices",
                    detail: format!("pass-through device {bdf} not paused by the guest"),
                });
            }
            _ => {}
        }
    }
    Ok(())
}

/// Restores devices after transplant: re-plugs networks (the rescan) and
/// resumes pass-through devices. Returns the restoration-side device cost.
pub fn restore(devices: &mut [DeviceState]) -> SimDuration {
    let mut cost = SimDuration::ZERO;
    for dev in devices.iter_mut() {
        match dev {
            DeviceState::Network { unplugged, .. } if *unplugged => {
                *unplugged = false;
                cost += NET_UNPLUG;
            }
            DeviceState::PassThrough { guest_paused, .. } if *guest_paused => {
                *guest_paused = false;
                cost += NOTIFY_RTT;
            }
            _ => {}
        }
    }
    cost
}

#[cfg(test)]
mod tests {
    use super::*;

    fn busy_devices() -> Vec<DeviceState> {
        vec![
            DeviceState::Block {
                backend: "nbd://x".into(),
                sectors: 100,
                pending_requests: 12,
            },
            DeviceState::Network {
                mac: [0; 6],
                unplugged: false,
            },
            DeviceState::Console { tx_buffered: 64 },
            DeviceState::PassThrough {
                bdf: "0000:03:00.0".into(),
                guest_paused: false,
            },
        ]
    }

    #[test]
    fn quiesce_clears_everything() {
        let mut devs = busy_devices();
        assert!(check_quiesced(&devs).is_err());
        let cost = quiesce(&mut devs);
        assert!(cost > NOTIFY_RTT);
        check_quiesced(&devs).unwrap();
        assert!(matches!(
            devs[1],
            DeviceState::Network {
                unplugged: true,
                ..
            }
        ));
        assert!(matches!(
            devs[3],
            DeviceState::PassThrough {
                guest_paused: true,
                ..
            }
        ));
    }

    #[test]
    fn quiesce_cost_scales_with_queue_depth() {
        let mut shallow = vec![DeviceState::Block {
            backend: "x".into(),
            sectors: 1,
            pending_requests: 1,
        }];
        let mut deep = vec![DeviceState::Block {
            backend: "x".into(),
            sectors: 1,
            pending_requests: 1000,
        }];
        assert!(quiesce(&mut deep) > quiesce(&mut shallow));
    }

    #[test]
    fn quiesce_is_idempotent() {
        let mut devs = busy_devices();
        quiesce(&mut devs);
        let second = quiesce(&mut devs);
        assert_eq!(second, NOTIFY_RTT, "nothing left to do but the RTT");
    }

    #[test]
    fn restore_replugs_and_resumes() {
        let mut devs = busy_devices();
        quiesce(&mut devs);
        let cost = restore(&mut devs);
        assert!(cost > SimDuration::ZERO);
        assert!(matches!(
            devs[1],
            DeviceState::Network {
                unplugged: false,
                ..
            }
        ));
        assert!(matches!(
            devs[3],
            DeviceState::PassThrough {
                guest_paused: false,
                ..
            }
        ));
    }

    #[test]
    fn unquiesced_passthrough_detected() {
        let devs = vec![DeviceState::PassThrough {
            bdf: "0000:01:00.0".into(),
            guest_paused: false,
        }];
        assert!(matches!(
            check_quiesced(&devs),
            Err(HtpError::IncompatibleState {
                section: "devices",
                ..
            })
        ));
    }
}
