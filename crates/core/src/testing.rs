//! A minimal reference implementation of the [`Hypervisor`] trait.
//!
//! [`SimpleHv`] is the smallest hypervisor that satisfies the HyperTP
//! contract; it exists to (a) unit-test the transplant engine inside this
//! crate without depending on the full Xen/KVM models, and (b) document for
//! implementors exactly what each trait method must do. The realistic
//! models live in `hypertp-xen` and `hypertp-kvm`.

use std::collections::BTreeMap;

use hypertp_machine::{Extent, Gfn, Machine, PageOrder};
use hypertp_sim::SimRng;
use hypertp_uisr::state::{KVM_IOAPIC_PINS, LAPIC_REGS_SIZE};
use hypertp_uisr::{DeviceState, MemoryRegion, UisrVm, VcpuState};

use crate::error::HtpError;
use crate::hypervisor::{config_from_uisr, Hypervisor, HypervisorKind, RestoredVm};
use crate::memsep::MemSepReport;
use crate::vm::{VmConfig, VmId, VmState};

struct SimpleVm {
    config: VmConfig,
    state: VmState,
    /// gfn -> extent map.
    memory: BTreeMap<u64, Extent>,
    vcpus: Vec<VcpuState>,
    dirty_log: Option<Vec<Gfn>>,
    rng: SimRng,
}

/// A minimal HyperTP-compliant hypervisor for tests.
pub struct SimpleHv {
    kind: HypervisorKind,
    vms: BTreeMap<u32, SimpleVm>,
    next_id: u32,
}

impl SimpleHv {
    /// Creates a hypervisor presenting as `kind`.
    pub fn new(kind: HypervisorKind) -> Self {
        SimpleHv {
            kind,
            vms: BTreeMap::new(),
            next_id: 1,
        }
    }

    fn vm(&self, id: VmId) -> Result<&SimpleVm, HtpError> {
        self.vms.get(&id.0).ok_or(HtpError::UnknownVm(id))
    }

    fn vm_mut(&mut self, id: VmId) -> Result<&mut SimpleVm, HtpError> {
        self.vms.get_mut(&id.0).ok_or(HtpError::UnknownVm(id))
    }

    fn alloc_guest(
        machine: &mut Machine,
        config: &VmConfig,
    ) -> Result<BTreeMap<u64, Extent>, HtpError> {
        let order = if config.huge_pages {
            PageOrder(9)
        } else {
            PageOrder(0)
        };
        let chunks = config.pages() / order.pages();
        let mut memory = BTreeMap::new();
        for i in 0..chunks {
            let e = machine.ram_mut().alloc(order)?;
            memory.insert(i * order.pages(), e);
        }
        Ok(memory)
    }

    fn insert_vm(&mut self, vm: SimpleVm) -> VmId {
        let id = VmId(self.next_id);
        self.next_id += 1;
        self.vms.insert(id.0, vm);
        id
    }
}

impl Hypervisor for SimpleHv {
    fn kind(&self) -> HypervisorKind {
        self.kind
    }

    fn version(&self) -> &str {
        "simple-0.1"
    }

    fn create_vm(&mut self, machine: &mut Machine, config: &VmConfig) -> Result<VmId, HtpError> {
        let memory = Self::alloc_guest(machine, config)?;
        // Seed the first frame of each extent with deterministic content so
        // integrity checks have something to verify.
        for (gfn, e) in &memory {
            machine
                .ram_mut()
                .write(e.base, 0x5111_0000 ^ gfn.wrapping_mul(0x9e37))?;
        }
        let vcpus = (0..config.vcpus)
            .map(|i| {
                let mut v = VcpuState::reset(i);
                v.regs.rip = 0x10_0000;
                v
            })
            .collect();
        let name_seed = config.name.bytes().fold(7u64, |a, b| a * 31 + b as u64);
        Ok(self.insert_vm(SimpleVm {
            config: config.clone(),
            state: VmState::Running,
            memory,
            vcpus,
            dirty_log: None,
            rng: SimRng::new(name_seed),
        }))
    }

    fn destroy_vm(&mut self, machine: &mut Machine, id: VmId) -> Result<(), HtpError> {
        let vm = self.vms.remove(&id.0).ok_or(HtpError::UnknownVm(id))?;
        for e in vm.memory.values() {
            machine.ram_mut().free(*e)?;
        }
        Ok(())
    }

    fn pause_vm(&mut self, id: VmId) -> Result<(), HtpError> {
        self.vm_mut(id)?.state = VmState::Paused;
        Ok(())
    }

    fn resume_vm(&mut self, id: VmId) -> Result<(), HtpError> {
        self.vm_mut(id)?.state = VmState::Running;
        Ok(())
    }

    fn vm_state(&self, id: VmId) -> Result<VmState, HtpError> {
        Ok(self.vm(id)?.state)
    }

    fn vm_ids(&self) -> Vec<VmId> {
        self.vms.keys().map(|&k| VmId(k)).collect()
    }

    fn vm_config(&self, id: VmId) -> Result<&VmConfig, HtpError> {
        Ok(&self.vm(id)?.config)
    }

    fn find_vm(&self, name: &str) -> Option<VmId> {
        self.vms
            .iter()
            .find(|(_, v)| v.config.name == name)
            .map(|(&k, _)| VmId(k))
    }

    fn guest_memory_map(&self, id: VmId) -> Result<Vec<(Gfn, Extent)>, HtpError> {
        Ok(self
            .vm(id)?
            .memory
            .iter()
            .map(|(&g, &e)| (Gfn(g), e))
            .collect())
    }

    fn read_guest(&self, machine: &Machine, id: VmId, gfn: Gfn) -> Result<u64, HtpError> {
        let vm = self.vm(id)?;
        let (mfn, _) = resolve(&vm.memory, gfn).ok_or(HtpError::UnknownVm(id))?;
        Ok(machine.ram().read(mfn)?)
    }

    fn write_guest(
        &mut self,
        machine: &mut Machine,
        id: VmId,
        gfn: Gfn,
        content: u64,
    ) -> Result<(), HtpError> {
        let vm = self.vm_mut(id)?;
        let (mfn, _) = resolve(&vm.memory, gfn).ok_or(HtpError::UnknownVm(id))?;
        machine.ram_mut().write(mfn, content)?;
        if let Some(log) = &mut vm.dirty_log {
            log.push(gfn);
        }
        Ok(())
    }

    fn guest_tick(
        &mut self,
        machine: &mut Machine,
        id: VmId,
        dirty_pages: u64,
    ) -> Result<(), HtpError> {
        let vm = self.vm_mut(id)?;
        if vm.state != VmState::Running {
            return Err(HtpError::WrongVmState {
                vm: id,
                expected: "running",
                found: vm.state.name(),
            });
        }
        let total_pages = vm.config.pages();
        let mut writes = Vec::with_capacity(dirty_pages as usize);
        for _ in 0..dirty_pages {
            let gfn = Gfn(vm.rng.gen_range(total_pages));
            let val = vm.rng.next_u64();
            writes.push((gfn, val));
        }
        for v in &mut vm.vcpus {
            v.regs.rip = v.regs.rip.wrapping_add(dirty_pages * 16 + 4);
            v.regs.rax = v.regs.rax.wrapping_add(1);
        }
        for (gfn, val) in writes {
            self.write_guest(machine, id, gfn, val)?;
        }
        Ok(())
    }

    fn enable_dirty_log(&mut self, id: VmId) -> Result<(), HtpError> {
        self.vm_mut(id)?.dirty_log = Some(Vec::new());
        Ok(())
    }

    fn collect_dirty(&mut self, id: VmId) -> Result<Vec<Gfn>, HtpError> {
        let vm = self.vm_mut(id)?;
        let log = vm
            .dirty_log
            .as_mut()
            .ok_or(HtpError::Unsupported("dirty log not enabled"))?;
        let mut out = std::mem::take(log);
        out.sort_unstable();
        out.dedup();
        Ok(out)
    }

    fn save_uisr(&self, _machine: &Machine, id: VmId) -> Result<UisrVm, HtpError> {
        let vm = self.vm(id)?;
        if vm.state != VmState::Paused {
            return Err(HtpError::WrongVmState {
                vm: id,
                expected: "paused",
                found: vm.state.name(),
            });
        }
        let mut u = UisrVm::new(vm.config.name.clone());
        u.vcpus = vm.vcpus.clone();
        for v in &mut u.vcpus {
            if v.lapic_regs.is_empty() {
                v.lapic_regs = vec![0; LAPIC_REGS_SIZE];
            }
        }
        u.ioapic.resize_pins(KVM_IOAPIC_PINS);
        u.memory.regions.push(MemoryRegion {
            gfn_start: 0,
            pages: vm.config.pages(),
        });
        u.memory.pram_file = Some(vm.config.name.clone());
        if vm.config.has_network {
            u.devices.push(DeviceState::Network {
                mac: [2, 0, 0, 0, 0, 1],
                unplugged: true,
            });
        }
        Ok(u)
    }

    fn prepare_incoming(
        &mut self,
        machine: &mut Machine,
        config: &VmConfig,
    ) -> Result<VmId, HtpError> {
        let memory = Self::alloc_guest(machine, config)?;
        Ok(self.insert_vm(SimpleVm {
            config: config.clone(),
            state: VmState::Paused,
            memory,
            vcpus: Vec::new(),
            dirty_log: None,
            rng: SimRng::new(1),
        }))
    }

    fn restore_uisr(
        &mut self,
        _machine: &mut Machine,
        id: VmId,
        uisr: &UisrVm,
    ) -> Result<RestoredVm, HtpError> {
        let vm = self.vm_mut(id)?;
        vm.vcpus = uisr.vcpus.clone();
        Ok(RestoredVm {
            id,
            warnings: Vec::new(),
        })
    }

    fn adopt_vm(
        &mut self,
        machine: &mut Machine,
        uisr: &UisrVm,
        mappings: &[(Gfn, Extent)],
    ) -> Result<RestoredVm, HtpError> {
        // Re-own the in-place frames so the allocator cannot recycle them
        // once the engine drops the PRAM reservations.
        for (_, e) in mappings {
            machine.ram_mut().adopt_reserved(e.base, e.pages())?;
        }
        let huge = mappings
            .first()
            .map(|(_, e)| e.order.0 == 9)
            .unwrap_or(true);
        let config = config_from_uisr(uisr, huge);
        let memory = mappings.iter().map(|(g, e)| (g.0, *e)).collect();
        let id = self.insert_vm(SimpleVm {
            config,
            state: VmState::Paused,
            memory,
            vcpus: uisr.vcpus.clone(),
            dirty_log: None,
            rng: SimRng::new(2),
        });
        Ok(RestoredVm {
            id,
            warnings: Vec::new(),
        })
    }

    fn memsep_report(&self, machine: &Machine) -> MemSepReport {
        let guest: u64 = self.vms.values().map(|v| v.config.memory_gb << 30).sum();
        MemSepReport {
            guest_state: guest,
            vmi_state: self.vms.len() as u64 * 64 * 1024,
            vm_mgmt_state: 4096 + self.vms.len() as u64 * 256,
            hv_state: machine.spec().ram_gb << 20,
        }
    }
}

fn resolve(memory: &BTreeMap<u64, Extent>, gfn: Gfn) -> Option<(hypertp_machine::Mfn, Extent)> {
    let (&base, &e) = memory.range(..=gfn.0).next_back()?;
    if gfn.0 < base + e.pages() {
        Some((e.base + (gfn.0 - base), e))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypertp_machine::MachineSpec;

    fn machine() -> Machine {
        let mut spec = MachineSpec::m1();
        spec.ram_gb = 4;
        Machine::new(spec)
    }

    #[test]
    fn lifecycle() {
        let mut m = machine();
        let mut hv = SimpleHv::new(HypervisorKind::Xen);
        let id = hv.create_vm(&mut m, &VmConfig::small("a")).unwrap();
        assert_eq!(hv.vm_state(id).unwrap(), VmState::Running);
        assert_eq!(hv.find_vm("a"), Some(id));
        hv.pause_vm(id).unwrap();
        assert_eq!(hv.vm_state(id).unwrap(), VmState::Paused);
        hv.resume_vm(id).unwrap();
        hv.destroy_vm(&mut m, id).unwrap();
        assert!(hv.vm_ids().is_empty());
    }

    #[test]
    fn guest_rw_and_dirty_log() {
        let mut m = machine();
        let mut hv = SimpleHv::new(HypervisorKind::Kvm);
        let id = hv.create_vm(&mut m, &VmConfig::small("a")).unwrap();
        hv.enable_dirty_log(id).unwrap();
        hv.write_guest(&mut m, id, Gfn(100), 7).unwrap();
        assert_eq!(hv.read_guest(&m, id, Gfn(100)).unwrap(), 7);
        assert_eq!(hv.collect_dirty(id).unwrap(), vec![Gfn(100)]);
        assert!(hv.collect_dirty(id).unwrap().is_empty());
    }

    #[test]
    fn tick_requires_running() {
        let mut m = machine();
        let mut hv = SimpleHv::new(HypervisorKind::Kvm);
        let id = hv.create_vm(&mut m, &VmConfig::small("a")).unwrap();
        hv.pause_vm(id).unwrap();
        assert!(matches!(
            hv.guest_tick(&mut m, id, 10),
            Err(HtpError::WrongVmState { .. })
        ));
    }

    #[test]
    fn save_uisr_requires_paused() {
        let mut m = machine();
        let mut hv = SimpleHv::new(HypervisorKind::Xen);
        let id = hv.create_vm(&mut m, &VmConfig::small("a")).unwrap();
        assert!(hv.save_uisr(&m, id).is_err());
        hv.pause_vm(id).unwrap();
        let u = hv.save_uisr(&m, id).unwrap();
        assert_eq!(u.name, "a");
        assert_eq!(u.vcpus.len(), 1);
    }
}
