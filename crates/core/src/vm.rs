//! VM identity, configuration and lifecycle state.

use std::fmt;

/// A hypervisor-local VM identifier (Xen calls these domids; KVM models
/// them as VM file descriptors — both are small integers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VmId(pub u32);

impl fmt::Display for VmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vm{}", self.0)
    }
}

/// Lifecycle state of a VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmState {
    /// vCPUs are scheduled and the guest makes progress.
    Running,
    /// vCPUs are descheduled; guest state is frozen (transplant step 1).
    Paused,
}

impl VmState {
    /// Short name for error messages.
    pub fn name(self) -> &'static str {
        match self {
            VmState::Running => "running",
            VmState::Paused => "paused",
        }
    }
}

/// Configuration of a VM, stable across hypervisors.
#[derive(Debug, Clone, PartialEq)]
pub struct VmConfig {
    /// VM name (globally unique in a datacenter; used as the PRAM file
    /// name).
    pub name: String,
    /// Number of virtual CPUs.
    pub vcpus: u32,
    /// Guest memory size in GiB.
    pub memory_gb: u64,
    /// Allocate guest memory with 2 MiB huge pages (§5.1 configures guests
    /// with huge pages; the ablation bench turns this off).
    pub huge_pages: bool,
    /// True if the VM tolerates the few seconds of InPlaceTP downtime
    /// (drives the cluster planner's InPlaceTP/MigrationTP split, §5.4).
    pub inplace_compatible: bool,
    /// Whether the VM has an emulated network device.
    pub has_network: bool,
    /// Network storage backend for the root disk (§4.1 uses network-based
    /// remote storage so storage is hypervisor-independent).
    pub storage_backend: String,
}

impl VmConfig {
    /// A 1 vCPU / 1 GiB VM — the paper's representative cloud VM size
    /// (§5.2.1, citing the Azure workload study).
    pub fn small(name: impl Into<String>) -> Self {
        VmConfig {
            name: name.into(),
            vcpus: 1,
            memory_gb: 1,
            huge_pages: true,
            inplace_compatible: true,
            has_network: true,
            storage_backend: "nbd://storage/root".to_string(),
        }
    }

    /// Builder-style: set vCPU count.
    pub fn with_vcpus(mut self, vcpus: u32) -> Self {
        self.vcpus = vcpus;
        self
    }

    /// Builder-style: set memory size in GiB.
    pub fn with_memory_gb(mut self, gb: u64) -> Self {
        self.memory_gb = gb;
        self
    }

    /// Builder-style: set huge-page usage.
    pub fn with_huge_pages(mut self, huge: bool) -> Self {
        self.huge_pages = huge;
        self
    }

    /// Builder-style: set InPlaceTP compatibility.
    pub fn with_inplace_compatible(mut self, compat: bool) -> Self {
        self.inplace_compatible = compat;
        self
    }

    /// Guest memory size in 4 KiB pages.
    pub fn pages(&self) -> u64 {
        self.memory_gb * (1 << 30) / 4096
    }

    /// Number of PRAM entries this VM's memory map produces (512 per GiB
    /// with huge pages, 262 144 per GiB without).
    pub fn pram_entries(&self) -> u64 {
        if self.huge_pages {
            self.memory_gb * 512
        } else {
            self.pages()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_vm_matches_paper_default() {
        let c = VmConfig::small("vm0");
        assert_eq!(c.vcpus, 1);
        assert_eq!(c.memory_gb, 1);
        assert!(c.huge_pages);
        assert_eq!(c.pages(), 262_144);
        assert_eq!(c.pram_entries(), 512);
    }

    #[test]
    fn builders() {
        let c = VmConfig::small("vm0")
            .with_vcpus(4)
            .with_memory_gb(8)
            .with_huge_pages(false)
            .with_inplace_compatible(false);
        assert_eq!(c.vcpus, 4);
        assert_eq!(c.memory_gb, 8);
        assert_eq!(c.pram_entries(), 8 * 262_144);
        assert!(!c.inplace_compatible);
    }

    #[test]
    fn display_and_state_names() {
        assert_eq!(VmId(7).to_string(), "vm7");
        assert_eq!(VmState::Running.name(), "running");
        assert_eq!(VmState::Paused.name(), "paused");
    }
}
