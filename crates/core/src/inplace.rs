//! InPlaceTP: in-place, micro-reboot-based hypervisor transplant (Fig. 3).
//!
//! Workflow: ❶ stage the target kernel, ❷ pause all VMs, ❸ translate each
//! VM's VMi State to UISR (saved in RAM via PRAM files), ❹ micro-reboot
//! into the target with the PRAM pointer on the command line, ❺ parse PRAM,
//! rebuild VM management state, ❻ adopt the in-place guest memory and apply
//! the UISR, ❼ resume guests and free ephemeral metadata.
//!
//! The §4.2.5 optimizations are individually toggleable through
//! [`Optimizations`]; the ablation bench measures each one's contribution.

use hypertp_machine::{combine_partials, Extent, Machine, PageOrder};
use hypertp_pram::{PramBuilder, PramError, PramHandle, PramImage, PramStats};
use hypertp_sim::cost::MachinePerf;
use hypertp_sim::fault::{FaultPlan, InjectionPoint, RecoveryAction};
use hypertp_sim::{CostModel, Ewma, SimClock, SimDuration, WorkerPool};

use crate::vm::VmId;

use crate::error::HtpError;
use crate::hypervisor::{Hypervisor, HypervisorKind};
use crate::registry::HypervisorRegistry;
use crate::uisr_store;

/// The §4.2.5 optimization toggles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Optimizations {
    /// "Preparation work without pausing the guest": build PRAM structures
    /// before pausing VMs, so only finalization lands in the downtime.
    pub prepare_before_pause: bool,
    /// "Parallelization": translate/restore each VM on its own worker
    /// thread. When off, all per-VM work is serialized on one core.
    pub parallel: bool,
    /// "Early restoration": start VM restoration as soon as KVM's services
    /// are up instead of waiting for full userspace boot.
    pub early_restoration: bool,
    /// Strict pre-flight: run the target hypervisor's compatibility
    /// validator over every VM's UISR before the micro-reboot and abort
    /// (resuming the VMs on the source) if any translation would be lossy
    /// — the compatible-IOAPIC direction the paper sketches as future
    /// work in §4.2.1. Off by default: the paper's prototype applies the
    /// lossy fixes and reports them.
    pub strict_preflight: bool,
    /// Incremental pre-pause UISR translation: enable dirty logging and
    /// take warm `save → to_uisr → encode` snapshots (plus per-extent
    /// checksum partials) while the VMs are still running, iterating
    /// EWMA-driven refresh rounds until the redirty rate converges. At
    /// pause time only the final dirty slices are re-translated and only
    /// the dirty extents' partials recombined, so the blackout translation
    /// term scales with the final dirty set instead of the VM size — the
    /// InPlaceTP analogue of iterative pre-copy (Clark et al., NSDI'05).
    /// Off by default: the pinned Fig. 6 timings are the full-translate
    /// path.
    pub incremental_translate: bool,
}

impl Default for Optimizations {
    fn default() -> Self {
        Optimizations {
            prepare_before_pause: true,
            parallel: true,
            early_restoration: true,
            strict_preflight: false,
            incremental_translate: false,
        }
    }
}

impl Optimizations {
    /// All optimizations disabled (baseline for the ablation).
    pub fn none() -> Self {
        Optimizations {
            prepare_before_pause: false,
            parallel: false,
            early_restoration: false,
            strict_preflight: false,
            incremental_translate: false,
        }
    }
}

/// Tuning knobs for the incremental warm-translate loop
/// ([`Optimizations::incremental_translate`]). The stop rule mirrors the
/// MigrationTP pre-copy controller: keep refreshing while the EWMA of the
/// redirty rate is still shrinking, bail out once returns diminish or the
/// dirty fraction is already small enough to pause.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IncrementalConfig {
    /// Pages per second the guests redirty while warm rounds run (the
    /// simulated workload; each warm round ticks every guest with
    /// `rate × previous round duration` pages).
    pub dirty_rate_pages_per_sec: f64,
    /// EWMA smoothing factor for the per-round redirty page count.
    pub ewma_alpha: f64,
    /// Hard cap on warm refresh rounds after the initial snapshot.
    pub max_warm_rounds: u32,
    /// Pause as soon as the observed dirty fraction of guest memory drops
    /// to or below this value.
    pub stop_dirty_fraction: f64,
    /// Stop refreshing when the redirty EWMA improves by less than this
    /// relative amount between rounds (diminishing returns).
    pub min_improvement: f64,
}

impl Default for IncrementalConfig {
    fn default() -> Self {
        IncrementalConfig {
            dirty_rate_pages_per_sec: 0.0,
            ewma_alpha: 0.5,
            max_warm_rounds: 8,
            stop_dirty_fraction: 0.01,
            min_improvement: 0.10,
        }
    }
}

/// Telemetry for one warm refresh round of the incremental translate loop
/// (round 0 is the initial full snapshot).
#[derive(Debug, Clone, PartialEq)]
pub struct WarmRound {
    /// Pages the simulated workload dirtied in *each* guest before this
    /// round's collection (0 for the initial snapshot round).
    pub tick_pages: u64,
    /// Total dirty pages collected across all VMs this round.
    pub dirty_pages: u64,
    /// Dirty fraction of total guest memory this round re-translated.
    pub dirty_fraction: f64,
    /// EWMA of the redirty page count after observing this round.
    pub redirty_ewma: f64,
    /// Simulated duration of this round's warm translation work.
    pub duration: SimDuration,
}

/// Timing breakdown and bookkeeping of one InPlaceTP run (the Fig. 6 bars).
#[derive(Debug, Clone, PartialEq)]
pub struct InPlaceReport {
    /// Number of VMs transplanted.
    pub vm_count: usize,
    /// Device quiescing time (§4.2.3: guest notification, queue draining,
    /// network unplug). Pre-pause, like PRAM construction.
    pub device_prepare: SimDuration,
    /// PRAM structure construction time. Below the time axis in Fig. 6
    /// when `prepare_before_pause` is on (it does not count as downtime).
    pub pram: SimDuration,
    /// UISR translation time (plus PRAM construction when preparation is
    /// disabled).
    pub translation: SimDuration,
    /// Micro-reboot time: kexec + target kernel boot + early-boot PRAM
    /// parse.
    pub reboot: SimDuration,
    /// UISR restoration time.
    pub restoration: SimDuration,
    /// Network re-initialization time (reported separately, as in Fig. 6:
    /// it only affects network-dependent applications).
    pub network: SimDuration,
    /// Size statistics of the PRAM metadata that was built.
    pub pram_stats: PramStats,
    /// Total encoded UISR bytes saved across the reboot.
    pub uisr_bytes: u64,
    /// Frames scrubbed by the target's boot (unreserved leftovers).
    pub scrubbed_frames: u64,
    /// Compatibility warnings from the target's `from_uisr` translations.
    pub warnings: Vec<String>,
    /// Total warm-translate time spent while the VMs were still running
    /// (below the Fig. 6 time axis, like pre-pause PRAM construction).
    /// Zero unless [`Optimizations::incremental_translate`] was on and the
    /// warm phase completed.
    pub warm_translate: SimDuration,
    /// Pause-time dirty-delta translation cost — the part of
    /// `translation` that the incremental path actually spends inside the
    /// blackout. Zero on the full-translate path.
    pub delta_translate: SimDuration,
    /// Final dirty fraction of guest memory re-translated inside the
    /// pause window (1.0 on the full-translate path).
    pub dirty_fraction: f64,
    /// Per-round telemetry of the warm refresh loop (empty on the
    /// full-translate path). Round 0 is the initial full snapshot.
    pub warm_rounds: Vec<WarmRound>,
    /// Pages dirtied in each guest by the simulated workload during the
    /// last warm round — collected into the pause-time delta set.
    pub warm_carryover_pages: u64,
    /// UISR sections patched from the final pause-time save instead of
    /// reused from the warm snapshot, summed over all VMs.
    pub patched_sections: u64,
}

impl InPlaceReport {
    /// VM downtime: Translation + Reboot + Restoration (§5.2).
    pub fn downtime(&self) -> SimDuration {
        self.translation + self.reboot + self.restoration
    }

    /// Total transplant time including pre-pause preparation (PRAM
    /// construction and any incremental warm-translate rounds).
    pub fn total(&self) -> SimDuration {
        self.device_prepare + self.pram + self.warm_translate + self.downtime()
    }

    /// Downtime observed by network-dependent applications: the NIC comes
    /// back after the reboot, concurrently with restoration but typically
    /// much slower (6.6 s on M1).
    pub fn downtime_with_network(&self) -> SimDuration {
        self.downtime()
            .max(self.translation + self.reboot + self.network)
    }
}

/// Per-VM artifacts produced by the parallel translate phase: everything
/// the engine needs downstream of `save_uisr`, computed on one pool worker.
struct SavedVm {
    name: String,
    map: Vec<(hypertp_machine::Gfn, hypertp_machine::Extent)>,
    uisr: hypertp_uisr::UisrVm,
    blob: Vec<u8>,
    checksum: u64,
    /// UISR sections the pause-time finalize had to patch over the warm
    /// snapshot (0 on the full-translate path).
    patched_sections: u64,
}

/// Per-VM warm-translate cache built while the VM was still running: the
/// snapshot UISR plus the per-extent checksum partials the pause-time
/// delta pass refreshes instead of rehashing every frame.
struct WarmVm {
    /// Memory map exactly as `guest_memory_map` returned it (the PRAM
    /// file mappings must be byte-identical to the full path's).
    map: Vec<(hypertp_machine::Gfn, hypertp_machine::Extent)>,
    /// Extents in map order — the checksum unit.
    extents: Vec<Extent>,
    /// `(gfn_start, pages, extent index)` sorted by `gfn_start`, for
    /// dirty-Gfn → extent lookup.
    lookup: Vec<(u64, u64, usize)>,
    /// Cached per-extent checksum partials, refreshed each warm round.
    partials: Vec<u64>,
    /// Latest warm UISR snapshot (patched at pause time).
    uisr: hypertp_uisr::UisrVm,
    /// Total guest pages (denominator of the dirty fraction).
    total_pages: u64,
}

impl WarmVm {
    fn new(
        map: Vec<(hypertp_machine::Gfn, hypertp_machine::Extent)>,
        uisr: hypertp_uisr::UisrVm,
    ) -> Self {
        let extents: Vec<Extent> = map.iter().map(|(_, e)| *e).collect();
        let mut lookup: Vec<(u64, u64, usize)> = map
            .iter()
            .enumerate()
            .map(|(i, (g, e))| (g.0, e.pages(), i))
            .collect();
        lookup.sort_unstable();
        let total_pages = extents.iter().map(|e| e.pages()).sum();
        WarmVm {
            map,
            extents,
            lookup,
            partials: Vec::new(),
            uisr,
            total_pages,
        }
    }

    /// Maps a sorted dirty-Gfn list to the (ascending) indices of the
    /// extents containing them.
    fn dirty_extent_indices(&self, dirty: &[hypertp_machine::Gfn]) -> Vec<usize> {
        let mut hit = vec![false; self.extents.len()];
        for g in dirty {
            let pos = self.lookup.partition_point(|&(start, _, _)| start <= g.0);
            if pos > 0 {
                let (start, pages, idx) = self.lookup[pos - 1];
                if g.0 < start + pages {
                    hit[idx] = true;
                }
            }
        }
        (0..hit.len()).filter(|&i| hit[i]).collect()
    }
}

/// Everything the warm phase hands to the pause-time delta finalize.
struct WarmState {
    vms: Vec<WarmVm>,
    total: SimDuration,
    rounds: Vec<WarmRound>,
    carryover_pages: u64,
}

/// Rebuilds the final UISR from a warm snapshot by patching only the
/// sections the fresh pause-time save shows changed. The result is equal
/// to `fresh` by construction (changed sections are overwritten, unchanged
/// ones are already equal); the return also counts how many sections
/// needed patching. The unplanned checkpointer reuses this as its
/// section-level (default) refresh path.
pub(crate) fn patch_uisr(
    warm: &hypertp_uisr::UisrVm,
    fresh: hypertp_uisr::UisrVm,
) -> (hypertp_uisr::UisrVm, u64) {
    let mut out = warm.clone();
    let mut patched = 0u64;
    let hypertp_uisr::UisrVm {
        name,
        vcpus,
        ioapic,
        pit,
        devices,
        memory,
    } = fresh;
    if out.name != name {
        out.name = name;
        patched += 1;
    }
    if out.vcpus != vcpus {
        out.vcpus = vcpus;
        patched += 1;
    }
    if out.ioapic != ioapic {
        out.ioapic = ioapic;
        patched += 1;
    }
    if out.pit != pit {
        out.pit = pit;
        patched += 1;
    }
    if out.devices != devices {
        out.devices = devices;
        patched += 1;
    }
    if out.memory != memory {
        out.memory = memory;
        patched += 1;
    }
    (out, patched)
}

/// The InPlaceTP engine.
pub struct InPlaceTransplant<'r> {
    registry: &'r HypervisorRegistry,
    cost: CostModel,
    opts: Optimizations,
    incremental: IncrementalConfig,
    faults: FaultPlan,
}

impl<'r> InPlaceTransplant<'r> {
    /// Creates an engine over a hypervisor pool with default cost model and
    /// all optimizations enabled.
    pub fn new(registry: &'r HypervisorRegistry) -> Self {
        InPlaceTransplant {
            registry,
            cost: CostModel::paper_calibrated(),
            opts: Optimizations::default(),
            incremental: IncrementalConfig::default(),
            faults: FaultPlan::disarmed(),
        }
    }

    /// Replaces the incremental warm-translate tuning knobs (only
    /// consulted when [`Optimizations::incremental_translate`] is on).
    pub fn with_incremental(mut self, incremental: IncrementalConfig) -> Self {
        self.incremental = incremental;
        self
    }

    /// Replaces the cost model.
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Installs a fault plan (chaos testing). The engine consults it at
    /// the `WorkerPanic` (translate phase) and `PramChecksum` (pre-kexec
    /// verify) injection points.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Replaces the optimization toggles.
    pub fn with_optimizations(mut self, opts: Optimizations) -> Self {
        self.opts = opts;
        self
    }

    /// Worker-pool view of the machine: a single worker when the
    /// parallelization optimization is off.
    fn pool_perf(&self, perf: MachinePerf) -> MachinePerf {
        if self.opts.parallel {
            perf
        } else {
            MachinePerf {
                threads: perf.reserved_threads + 1,
                ..perf
            }
        }
    }

    /// The real (wall-clock) worker pool matching the simulated one:
    /// `HYPERTP_WORKERS`/`available_parallelism` workers when the
    /// parallelization optimization is on, a serial inline pool otherwise.
    fn worker_pool(&self) -> WorkerPool {
        if self.opts.parallel {
            WorkerPool::from_env()
        } else {
            WorkerPool::serial()
        }
    }

    /// Pre-kexec PRAM verification and checksum-mismatch recovery.
    ///
    /// When a file's stored checksum disagrees with its entries, the
    /// entries are cross-checked against the *live source hypervisor*
    /// (still running at this point): guest files must match the current
    /// memory maps and UISR blob files must still decode. Only then are
    /// the suspect metadata pages released and the structure rebuilt over
    /// the untouched data frames. If the cross-check fails, the corruption
    /// reached the entries themselves and the transplant aborts.
    fn verify_or_rebuild_pram(
        &self,
        machine: &mut Machine,
        source: &dyn Hypervisor,
        handle: PramHandle,
        wpool: &WorkerPool,
    ) -> Result<PramHandle, HtpError> {
        if self
            .faults
            .should_inject(InjectionPoint::PramChecksum, "pre-kexec verify")
        {
            let image = PramImage::parse(machine.ram(), handle.pram_ptr)?;
            if !image.checksums.is_empty() {
                image.corrupt_checksum(machine.ram_mut(), 0)?;
            }
        }
        let image = PramImage::parse(machine.ram(), handle.pram_ptr)?;
        match image.verify() {
            Ok(()) => Ok(handle),
            Err(PramError::ChecksumMismatch { mfn, .. }) => {
                // Cross-check every parsed file against the live source
                // before trusting the structure for a rebuild.
                for f in &image.files {
                    if uisr_store::is_uisr_file(f) {
                        let blob = uisr_store::load_blob(machine.ram(), f)?;
                        hypertp_uisr::decode(&blob)?;
                    } else {
                        let id = source.find_vm(&f.name).ok_or_else(|| {
                            HtpError::IntegrityViolation {
                                vm_name: f.name.clone(),
                            }
                        })?;
                        let mut live = source.guest_memory_map(id)?;
                        live.sort_by_key(|(g, _)| *g);
                        if live != f.mappings {
                            self.faults.record_recovery(
                                InjectionPoint::PramChecksum,
                                RecoveryAction::GaveUp,
                                &format!("{}: parsed map disagrees with live source", f.name),
                            );
                            return Err(HtpError::IntegrityViolation {
                                vm_name: f.name.clone(),
                            });
                        }
                    }
                }
                // Entries check out: recycle only the metadata pages and
                // re-encode; guest and blob frames are untouched.
                let released = handle.meta_frames.len();
                for &m in &handle.meta_frames {
                    machine.ram_mut().free(Extent::new(m, PageOrder(0)))?;
                }
                let mut rebuilt = PramBuilder::new().with_pool(*wpool);
                for f in &image.files {
                    rebuilt.add_file(f.name.clone(), f.mode, f.mappings.clone());
                }
                let fresh = rebuilt.write(machine.ram_mut())?;
                PramImage::parse(machine.ram(), fresh.pram_ptr)?
                    .verify()
                    .map_err(HtpError::Pram)?;
                self.faults.record_recovery(
                    InjectionPoint::PramChecksum,
                    RecoveryAction::RebuiltPram,
                    &format!(
                        "released {released} metadata pages (bad file-info at {mfn}), rebuilt {} files",
                        image.files.len()
                    ),
                );
                Ok(fresh)
            }
            Err(e) => Err(e.into()),
        }
    }

    /// The incremental pre-pause warm-translate phase (§4.2.5 extended):
    /// dirty logging goes on, every VM gets a full warm
    /// `save → to_uisr → encode` snapshot plus per-extent checksum
    /// partials, then EWMA-driven refresh rounds re-translate only the
    /// redirtied slices until the redirty rate converges. Runs below the
    /// Fig. 6 time axis — each VM is only micro-paused for its own
    /// snapshot, never the whole fleet.
    ///
    /// Returns `None` when a worker fault forced the engine to abandon
    /// the warm state and fall back to full pause-time translation
    /// (recorded in the fault log as `fell_back_to_full_translate`).
    #[allow(clippy::too_many_arguments)] // internal phase helper: the args are run()'s locals
    fn warm_phase(
        &self,
        machine: &mut Machine,
        source: &mut dyn Hypervisor,
        ids: &[VmId],
        xlate_list: &[(f64, u32, u64)],
        pool: &MachinePerf,
        wpool: &WorkerPool,
        clock: &SimClock,
    ) -> Result<Option<WarmState>, HtpError> {
        let n = ids.len();
        for &id in ids {
            source.enable_dirty_log(id)?;
        }

        // Round 0: full warm snapshot. The per-VM control ops (pause /
        // save / resume) are cheap and serial; the heavy partial hashing
        // runs on the pool with the guests already back up, so worker
        // deaths are decided before dispatch — and doom the whole warm
        // phase rather than one task, since a half-warm cache cannot be
        // trusted for a delta finalize.
        let doomed = self.faults.pick_doomed_tasks(n, "warm snapshot");
        if !doomed.is_empty() {
            self.faults.record_recovery(
                InjectionPoint::WorkerPanic,
                RecoveryAction::FellBackToFullTranslate,
                &format!(
                    "warm snapshot lost {} of {n} tasks; reverting to full pause-time translation",
                    doomed.len()
                ),
            );
            return Ok(None);
        }
        let mut vms = Vec::with_capacity(n);
        for &id in ids {
            source.pause_vm(id)?;
            let map = source.guest_memory_map(id)?;
            let uisr = source.save_uisr(machine, id)?;
            // Discard anything dirtied before the snapshot existed.
            let _ = source.collect_dirty(id)?;
            source.resume_vm(id)?;
            vms.push(WarmVm::new(map, uisr));
        }
        {
            let machine_ref: &Machine = machine;
            let vms_ref = &vms;
            let partials = wpool
                .map_indices(n, |i| {
                    machine_ref
                        .ram()
                        .extent_partials_with_pool(&vms_ref[i].extents, &WorkerPool::serial())
                })
                .results;
            for (wv, p) in vms.iter_mut().zip(partials) {
                wv.partials = p;
            }
        }
        let total_pages_all: u64 = vms.iter().map(|v| v.total_pages).sum();
        let full_list: Vec<(f64, u32, u64, f64)> = xlate_list
            .iter()
            .map(|&(gb, vcpus, entries)| (gb, vcpus, entries, 1.0))
            .collect();
        let mut round_cost = self.cost.warm_translate(pool, &full_list);
        clock.advance(round_cost);
        let mut total = round_cost;
        let mut rounds = vec![WarmRound {
            tick_pages: 0,
            dirty_pages: total_pages_all,
            dirty_fraction: 1.0,
            redirty_ewma: total_pages_all as f64,
            duration: round_cost,
        }];

        // Warm refresh rounds: tick the workload for the time the previous
        // round took, collect the redirtied pages, and re-translate only
        // those slices. Stop when the dirty fraction is small enough to
        // pause or the redirty EWMA stops shrinking (the same shape of
        // stop rule as the MigrationTP pre-copy controller).
        let rate = self.incremental.dirty_rate_pages_per_sec.max(0.0);
        let mut ewma = Ewma::new(self.incremental.ewma_alpha);
        let mut prev_ewma: Option<f64> = None;
        for round in 1..=self.incremental.max_warm_rounds {
            let tick = (rate * round_cost.as_secs_f64()).round() as u64;
            if tick > 0 {
                for &id in ids {
                    source.guest_tick(machine, id, tick)?;
                }
            }
            let doomed = self
                .faults
                .pick_doomed_tasks(n, &format!("warm round {round}"));
            if !doomed.is_empty() {
                self.faults.record_recovery(
                    InjectionPoint::WorkerPanic,
                    RecoveryAction::FellBackToFullTranslate,
                    &format!(
                        "warm round {round} lost {} of {n} tasks; \
                         reverting to full pause-time translation",
                        doomed.len()
                    ),
                );
                return Ok(None);
            }
            let mut round_dirty = 0u64;
            let mut dirty_ext: Vec<Vec<usize>> = Vec::with_capacity(n);
            let mut delta_list = Vec::with_capacity(n);
            for (k, &id) in ids.iter().enumerate() {
                source.pause_vm(id)?;
                let dirty = source.collect_dirty(id)?;
                let uisr = source.save_uisr(machine, id)?;
                source.resume_vm(id)?;
                let wv = &mut vms[k];
                wv.uisr = uisr;
                dirty_ext.push(wv.dirty_extent_indices(&dirty));
                round_dirty += dirty.len() as u64;
                let (gb, vcpus, entries) = xlate_list[k];
                delta_list.push((
                    gb,
                    vcpus,
                    entries,
                    dirty.len() as f64 / wv.total_pages.max(1) as f64,
                ));
            }
            // Refresh only the dirty extents' partials, on the pool.
            {
                let machine_ref: &Machine = machine;
                let vms_ref = &vms;
                let dirty_ref = &dirty_ext;
                let refreshed = wpool
                    .map_indices(n, |k| {
                        let wv = &vms_ref[k];
                        let mut p = wv.partials.clone();
                        machine_ref.ram().refresh_partials_with_pool(
                            &wv.extents,
                            &mut p,
                            &dirty_ref[k],
                            &WorkerPool::serial(),
                        );
                        p
                    })
                    .results;
                for (wv, p) in vms.iter_mut().zip(refreshed) {
                    wv.partials = p;
                }
            }
            let smoothed = ewma.observe(round_dirty as f64);
            let fraction = round_dirty as f64 / total_pages_all.max(1) as f64;
            round_cost = self.cost.warm_translate(pool, &delta_list);
            clock.advance(round_cost);
            total += round_cost;
            rounds.push(WarmRound {
                tick_pages: tick,
                dirty_pages: round_dirty,
                dirty_fraction: fraction,
                redirty_ewma: smoothed,
                duration: round_cost,
            });
            if fraction <= self.incremental.stop_dirty_fraction {
                break;
            }
            if let Some(prev) = prev_ewma {
                if smoothed >= prev * (1.0 - self.incremental.min_improvement) {
                    break;
                }
            }
            prev_ewma = Some(smoothed);
        }

        // The workload kept running while the last refresh round worked;
        // those pages land in the pause-time delta set.
        let carryover_pages = (rate * round_cost.as_secs_f64()).round() as u64;
        if carryover_pages > 0 {
            for &id in ids {
                source.guest_tick(machine, id, carryover_pages)?;
            }
        }
        Ok(Some(WarmState {
            vms,
            total,
            rounds,
            carryover_pages,
        }))
    }

    /// Runs the full InPlaceTP workflow on `machine`, transplanting every
    /// VM from `source` onto a freshly booted `target` hypervisor.
    ///
    /// Returns the new hypervisor (with all VMs adopted and running) and
    /// the timing report.
    pub fn run(
        &self,
        machine: &mut Machine,
        mut source: Box<dyn Hypervisor>,
        target: HypervisorKind,
    ) -> Result<(Box<dyn Hypervisor>, InPlaceReport), HtpError> {
        if !self.registry.contains(target) {
            return Err(HtpError::UnknownHypervisor(target.name().to_string()));
        }
        let perf = machine.spec().perf();
        let pool = self.pool_perf(perf);
        let clock = machine.clock().clone();

        // Gather per-VM parameters.
        let ids = source.vm_ids();
        let mut build_list = Vec::new(); // (gb, entries)
        let mut xlate_list = Vec::new(); // (gb, vcpus, entries)
        let mut restore_list = Vec::new(); // (gb, vcpus)
        let mut total_gb = 0.0f64;
        for &id in &ids {
            let c = source.vm_config(id)?;
            build_list.push((c.memory_gb as f64, c.pram_entries()));
            xlate_list.push((c.memory_gb as f64, c.vcpus, c.pram_entries()));
            restore_list.push((c.memory_gb as f64, c.vcpus));
            total_gb += c.memory_gb as f64;
        }

        // ❶ Stage the target kernel ahead of time (cost-free: done in the
        // background during normal operation) — the image is completed with
        // the PRAM pointer below, before the reboot.

        // §4.2.3: ask every guest to quiesce its devices before anything
        // else pauses (notifications go out in parallel; the slowest guest
        // bounds the phase).
        let mut device_prepare = SimDuration::ZERO;
        for &id in &ids {
            device_prepare = device_prepare.max(source.notify_prepare_transplant(machine, id)?);
        }
        clock.advance(device_prepare);

        // Pre-pause PRAM construction.
        let pram_cost = self.cost.pram_build(&pool, &build_list);
        let mut pram_span = SimDuration::ZERO;
        if self.opts.prepare_before_pause {
            clock.advance(pram_cost);
            pram_span = pram_cost;
        }

        // Incremental warm translation (still pre-pause): snapshot every
        // VM's UISR and checksum partials while the guests keep running,
        // then refresh until the redirty rate converges. `None` when the
        // optimization is off *or* a warm-round fault forced the fallback
        // to full pause-time translation.
        let wpool = self.worker_pool();
        let warm: Option<WarmState> = if self.opts.incremental_translate {
            self.warm_phase(
                machine,
                source.as_mut(),
                &ids,
                &xlate_list,
                &pool,
                &wpool,
                &clock,
            )?
        } else {
            None
        };

        // ❷ Pause all VMs.
        for &id in &ids {
            source.pause_vm(id)?;
        }
        clock.advance(perf.cpu(self.cost.pause_ghz_s_per_vm * ids.len() as f64));
        let t_pause = clock.now();

        // With a warm cache in hand, collect the final dirty sets now
        // (dirty-log collection mutates the source, so it cannot run
        // inside the pool closure below).
        let final_dirty: Option<(Vec<Vec<usize>>, Vec<u64>)> = match &warm {
            Some(w) => {
                let mut dirty_ext = Vec::with_capacity(ids.len());
                let mut dirty_pages = Vec::with_capacity(ids.len());
                for (k, &id) in ids.iter().enumerate() {
                    let dirty = source.collect_dirty(id)?;
                    dirty_ext.push(w.vms[k].dirty_extent_indices(&dirty));
                    dirty_pages.push(dirty.len() as u64);
                }
                Some((dirty_ext, dirty_pages))
            }
            None => None,
        };

        // ❸ Translate VMi State to UISR — the §4.2.5 parallelization hot
        // path. Each VM's `save → to_uisr → encode` chain (plus its
        // pause-time integrity baseline) runs on its own worker of the real
        // thread pool; the pool returns results in VM order regardless of
        // worker count, so serial and parallel runs are byte-identical.
        //
        // Worker-death faults are decided before dispatch so the fault log
        // stays deterministic; lost tasks are re-run inline by the
        // orchestrator (ReHype-style task-level microrecovery).
        let doomed = self
            .faults
            .pick_doomed_tasks(ids.len(), "inplace translate");
        let (per_vm, retried) = {
            let source_ref: &dyn Hypervisor = source.as_ref();
            let machine_ref: &Machine = machine;
            let ids_ref = &ids;
            let warm_ref = warm.as_ref();
            let final_dirty_ref = final_dirty.as_ref();
            let (batch, retried) = wpool.map_indices_recovering(
                ids.len(),
                &doomed,
                |i| -> Result<SavedVm, HtpError> {
                    let id = ids_ref[i];
                    let name = source_ref.vm_config(id)?.name.clone();
                    if let (Some(w), Some((dirty_ext, _))) = (warm_ref, final_dirty_ref) {
                        // Dirty-delta finalize: refresh only the dirtied
                        // extents' cached partials (instead of rehashing
                        // every frame), recombine them into the integrity
                        // baseline, and patch only the UISR sections the
                        // final save shows changed over the warm snapshot.
                        let wv = &w.vms[i];
                        let mut partials = wv.partials.clone();
                        machine_ref.ram().refresh_partials_with_pool(
                            &wv.extents,
                            &mut partials,
                            &dirty_ext[i],
                            &WorkerPool::serial(),
                        );
                        let checksum = combine_partials(&partials);
                        let fresh = source_ref.save_uisr(machine_ref, id)?;
                        let (uisr, patched_sections) = patch_uisr(&wv.uisr, fresh);
                        let mut blob = Vec::new();
                        hypertp_uisr::codec::encode_into(&uisr, &mut blob);
                        Ok(SavedVm {
                            name,
                            map: wv.map.clone(),
                            uisr,
                            blob,
                            checksum,
                            patched_sections,
                        })
                    } else {
                        let map = source_ref.guest_memory_map(id)?;
                        let extents: Vec<_> = map.iter().map(|(_, e)| *e).collect();
                        // Serial inner checksum: the per-VM tasks already
                        // saturate the pool; nesting another fan-out here
                        // would only oversubscribe the machine.
                        let checksum = machine_ref
                            .ram()
                            .checksum_with_pool(&extents, &WorkerPool::serial());
                        let uisr = source_ref.save_uisr(machine_ref, id)?;
                        let mut blob = Vec::new();
                        hypertp_uisr::codec::encode_into(&uisr, &mut blob);
                        Ok(SavedVm {
                            name,
                            map,
                            uisr,
                            blob,
                            checksum,
                            patched_sections: 0,
                        })
                    }
                },
            );
            (batch.results, retried)
        };
        for &i in &retried {
            self.faults.record_recovery(
                InjectionPoint::WorkerPanic,
                RecoveryAction::TaskRetriedInline,
                &format!("translate task {i} re-run on orchestrator"),
            );
        }
        let mut saved = Vec::with_capacity(per_vm.len());
        for r in per_vm {
            saved.push(r?);
        }
        // Integrity baseline: guest memory contents at pause time.
        let baselines: Vec<(String, u64)> =
            saved.iter().map(|s| (s.name.clone(), s.checksum)).collect();

        // Strict pre-flight: before the micro-reboot's point of no return,
        // ask the target's validator whether any translation would be
        // lossy. On rejection the transplant aborts cleanly — the VMs
        // simply resume on the source hypervisor.
        if self.opts.strict_preflight {
            let issue_lists = wpool
                .map_indices(saved.len(), |i| {
                    let s = &saved[i];
                    self.registry
                        .validate(target, &s.uisr)
                        .into_iter()
                        .map(|issue| format!("{}: {issue}", s.name))
                        .collect::<Vec<_>>()
                })
                .results;
            let issues: Vec<String> = issue_lists.into_iter().flatten().collect();
            if !issues.is_empty() {
                for &id in &ids {
                    source.resume_vm(id)?;
                }
                return Err(HtpError::IncompatibleState {
                    section: "preflight",
                    detail: issues.join("; "),
                });
            }
        }

        // Persist everything in RAM across the reboot. The per-VM blobs
        // were already encoded on the pool above; the maps move into the
        // builder (no per-VM clone), and `write` runs its per-file node
        // construction on the same pool.
        let mut builder = PramBuilder::new().with_pool(wpool);
        let mut uisr_bytes = 0u64;
        let mut patched_sections = 0u64;
        for s in saved {
            builder.add_file(s.name.clone(), 0o600, s.map);
            uisr_bytes += s.blob.len() as u64;
            patched_sections += s.patched_sections;
            uisr_store::store_blob(machine.ram_mut(), &mut builder, &s.name, &s.blob)?;
        }
        let handle = builder.write(machine.ram_mut())?;
        // Pre-kexec PRAM verification — the PramChecksum injection point.
        // Past the micro-reboot there is no source hypervisor left to
        // rebuild from, so corruption must be caught *here*.
        let handle = self.verify_or_rebuild_pram(machine, source.as_ref(), handle, &wpool)?;
        // Blackout translation cost: with a warm cache, only the dirtied
        // slices are re-translated (per-vCPU serialization and the
        // host-wide sweep are irreducible); otherwise the full per-VM
        // chain lands inside the pause window.
        let (translate_cost, delta_translate, dirty_fraction) = match (&warm, &final_dirty) {
            (Some(w), Some((_, dirty_pages))) => {
                let delta_list: Vec<(f64, u32, u64, f64)> = xlate_list
                    .iter()
                    .zip(dirty_pages.iter().zip(&w.vms))
                    .map(|(&(gb, vcpus, entries), (&dp, wv))| {
                        (gb, vcpus, entries, dp as f64 / wv.total_pages.max(1) as f64)
                    })
                    .collect();
                let cost = self.cost.delta_translate(&pool, &delta_list);
                let total_dirty: u64 = dirty_pages.iter().sum();
                let total_pages: u64 = w.vms.iter().map(|v| v.total_pages).sum();
                (cost, cost, total_dirty as f64 / total_pages.max(1) as f64)
            }
            _ => (
                self.cost.translate(&pool, &xlate_list),
                SimDuration::ZERO,
                1.0,
            ),
        };
        clock.advance(translate_cost);
        let translation_span = if self.opts.prepare_before_pause {
            translate_cost
        } else {
            // PRAM construction lands inside the downtime.
            clock.advance(pram_cost);
            pram_span = SimDuration::ZERO;
            translate_cost + pram_cost
        };

        // ❹ Micro-reboot into the target.
        machine.kexec_load(hypertp_machine::KexecImage {
            target: target.boot_target(),
            cmdline: format!("hypertp {}", handle.cmdline_arg()),
        });
        drop(source); // HV State dies with the old kernel.
        machine.kexec()?;
        let total_entries = handle.stats().entries;
        let reboot_cost = self
            .cost
            .reboot(&perf, target.boot_target(), total_gb, total_entries);
        clock.advance(reboot_cost);

        // Early boot of the target: parse PRAM from the command line,
        // reserve every recorded frame, then let boot scrubbing run.
        let pram_ptr = hypertp_pram::fs::pram_ptr_from_cmdline(machine.booted_cmdline()).ok_or(
            HtpError::Pram(hypertp_pram::PramError::BadMagic {
                mfn: hypertp_machine::Mfn(0),
            }),
        )?;
        let image = PramImage::parse(machine.ram(), pram_ptr)?;
        image.verify().map_err(HtpError::Pram)?;
        image.reserve_all(machine.ram_mut())?;
        let scrubbed = machine.ram_mut().scrub_unreserved();

        // ❺ Boot the target hypervisor (rebuilds VM Management State).
        let mut target_hv = self.registry.create(target, machine)?;

        // ❻ Adopt each VM: decode its UISR blob and link the in-place
        // guest memory. Blob load + decode are read-only and run per VM on
        // the pool; the adopt step mutates the target hypervisor and stays
        // serial, in PRAM directory order.
        let guest_files: Vec<_> = image
            .files
            .iter()
            .filter(|f| !uisr_store::is_uisr_file(f))
            .collect();
        let decoded = {
            let machine_ref: &Machine = machine;
            let image_ref = &image;
            wpool
                .map_indices(guest_files.len(), |i| -> Result<_, HtpError> {
                    let file = guest_files[i];
                    let blob_file = image_ref
                        .file(&uisr_store::uisr_file_name(&file.name))
                        .ok_or_else(|| HtpError::IncompatibleState {
                            section: "UISR",
                            detail: format!("no UISR blob for VM '{}'", file.name),
                        })?;
                    let blob = uisr_store::load_blob(machine_ref.ram(), blob_file)?;
                    Ok(hypertp_uisr::decode(&blob)?)
                })
                .results
        };
        let mut warnings = Vec::new();
        let mut adopted = Vec::new();
        for (file, uisr) in guest_files.iter().zip(decoded) {
            let restored = target_hv.adopt_vm(machine, &uisr?, &file.mappings)?;
            warnings.extend(restored.warnings.iter().cloned());
            adopted.push((file.name.clone(), restored.id));
        }
        let restore_cost = self
            .cost
            .restore(&perf, &restore_list, self.opts.early_restoration);
        clock.advance(restore_cost);

        // Integrity check: guest memory must be byte-identical.
        for (name, expected) in &baselines {
            let id = target_hv
                .find_vm(name)
                .ok_or_else(|| HtpError::IntegrityViolation {
                    vm_name: name.clone(),
                })?;
            let map = target_hv.guest_memory_map(id)?;
            let extents: Vec<_> = map.iter().map(|(_, e)| *e).collect();
            if machine.ram().checksum_with_pool(&extents, &wpool) != *expected {
                return Err(HtpError::IntegrityViolation {
                    vm_name: name.clone(),
                });
            }
            // The target must have re-owned every guest frame; otherwise
            // dropping the PRAM reservations below would let the allocator
            // recycle live guest memory.
            if !extents.iter().all(|e| machine.ram().is_allocated(e.base)) {
                return Err(HtpError::IntegrityViolation {
                    vm_name: name.clone(),
                });
            }
        }

        // ❼ Resume guests and free ephemeral metadata.
        for (_, id) in &adopted {
            target_hv.resume_vm(*id)?;
        }
        clock.advance(perf.cpu(self.cost.resume_ghz_s_per_vm * adopted.len() as f64));
        let t_resumed = clock.now();
        for file in image.files.iter().filter(|f| uisr_store::is_uisr_file(f)) {
            uisr_store::release_blob(machine.ram_mut(), file)?;
        }
        image.release_metadata(machine.ram_mut())?;
        // Guest frames stay allocated (adopted); drop their reservations.
        for file in image.files.iter().filter(|f| !uisr_store::is_uisr_file(f)) {
            for (_, e) in &file.mappings {
                machine.ram_mut().unreserve_and_free(e.base, e.pages())?;
            }
        }

        // NIC re-initialization, reported separately (Fig. 6 "Network").
        let network = machine.bring_up_nic();

        // Attribute the pause→resume distance to the three downtime phases
        // (pause/resume costs fold into translation/restoration).
        let measured_downtime = t_resumed.duration_since(t_pause);
        debug_assert!(measured_downtime >= translation_span + reboot_cost + restore_cost);

        let (warm_translate, warm_rounds, warm_carryover_pages) = match warm {
            Some(w) => (w.total, w.rounds, w.carryover_pages),
            None => (SimDuration::ZERO, Vec::new(), 0),
        };
        let report = InPlaceReport {
            vm_count: ids.len(),
            device_prepare,
            pram: pram_span,
            translation: translation_span,
            reboot: reboot_cost,
            restoration: measured_downtime - translation_span - reboot_cost,
            network,
            pram_stats: handle.stats(),
            uisr_bytes,
            scrubbed_frames: scrubbed,
            warnings,
            warm_translate,
            delta_translate,
            dirty_fraction,
            warm_rounds,
            warm_carryover_pages,
            patched_sections,
        };
        Ok((target_hv, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::SimpleHv;
    use crate::vm::VmConfig;
    use hypertp_machine::MachineSpec;

    fn registry() -> HypervisorRegistry {
        let mut r = HypervisorRegistry::new();
        r.register(HypervisorKind::Xen, |_m| {
            Box::new(SimpleHv::new(HypervisorKind::Xen))
        });
        r.register(HypervisorKind::Kvm, |_m| {
            Box::new(SimpleHv::new(HypervisorKind::Kvm))
        });
        r
    }

    fn machine_gb(gb: u64) -> Machine {
        let mut spec = MachineSpec::m1();
        spec.ram_gb = gb;
        Machine::new(spec)
    }

    #[test]
    fn transplant_preserves_guest_memory_and_state() {
        let reg = registry();
        let mut m = machine_gb(4);
        let mut src: Box<dyn Hypervisor> = Box::new(SimpleHv::new(HypervisorKind::Xen));
        let cfg = VmConfig::small("vm0");
        let id = src.create_vm(&mut m, &cfg).unwrap();
        src.write_guest(&mut m, id, hypertp_machine::Gfn(1234), 0xfeed)
            .unwrap();
        let pre_rip = {
            let s = src.as_mut();
            s.guest_tick(&mut m, id, 5).unwrap();
            s.pause_vm(id).unwrap();
            let u = s.save_uisr(&m, id).unwrap();
            s.resume_vm(id).unwrap();
            u.vcpus[0].regs.rip
        };

        let engine = InPlaceTransplant::new(&reg);
        let (hv, report) = engine.run(&mut m, src, HypervisorKind::Kvm).unwrap();
        assert_eq!(hv.kind(), HypervisorKind::Kvm);
        assert_eq!(report.vm_count, 1);
        let new_id = hv.find_vm("vm0").unwrap();
        assert_eq!(
            hv.read_guest(&m, new_id, hypertp_machine::Gfn(1234))
                .unwrap(),
            0xfeed
        );
        assert_eq!(hv.vm_state(new_id).unwrap(), crate::vm::VmState::Running);
        // vCPU architectural state carried over.
        let mut hv = hv;
        hv.pause_vm(new_id).unwrap();
        let u2 = hv.save_uisr(&m, new_id).unwrap();
        assert_eq!(u2.vcpus[0].regs.rip, pre_rip);
        assert_eq!(m.boot_count(), 2);
    }

    #[test]
    fn fig6_shape_on_m1() {
        // Downtime ≈ 1.7 s for a 1 vCPU / 1 GB VM on M1 (Xen→KVM), with
        // Reboot the dominant phase (~71% of total transplant time).
        let reg = registry();
        let mut m = Machine::new(MachineSpec::m1());
        let mut src: Box<dyn Hypervisor> = Box::new(SimpleHv::new(HypervisorKind::Xen));
        src.create_vm(&mut m, &VmConfig::small("vm0")).unwrap();
        let engine = InPlaceTransplant::new(&reg);
        let (_hv, r) = engine.run(&mut m, src, HypervisorKind::Kvm).unwrap();
        let downtime = r.downtime().as_secs_f64();
        assert!((1.4..2.1).contains(&downtime), "downtime = {downtime}");
        let frac = r.reboot.as_secs_f64() / r.total().as_secs_f64();
        assert!((0.6..0.8).contains(&frac), "reboot fraction = {frac}");
        // Network bring-up dominates for network apps: ≈ 6.6 s extra.
        assert!(r.downtime_with_network().as_secs_f64() > 7.0);
    }

    #[test]
    fn kvm_to_xen_is_slower() {
        let reg = registry();
        let mut m = Machine::new(MachineSpec::m1());
        let mut src: Box<dyn Hypervisor> = Box::new(SimpleHv::new(HypervisorKind::Kvm));
        src.create_vm(&mut m, &VmConfig::small("vm0")).unwrap();
        let engine = InPlaceTransplant::new(&reg);
        let (_hv, r) = engine.run(&mut m, src, HypervisorKind::Xen).unwrap();
        // ≈7.8 s downtime for KVM→Xen on M1 (§5.2.2).
        let downtime = r.downtime().as_secs_f64();
        assert!((6.5..9.0).contains(&downtime), "downtime = {downtime}");
    }

    #[test]
    fn unknown_target_fails_before_pausing() {
        let mut reg = HypervisorRegistry::new();
        reg.register(HypervisorKind::Xen, |_m| {
            Box::new(SimpleHv::new(HypervisorKind::Xen))
        });
        let mut m = machine_gb(4);
        let mut src: Box<dyn Hypervisor> = Box::new(SimpleHv::new(HypervisorKind::Xen));
        let id = src.create_vm(&mut m, &VmConfig::small("vm0")).unwrap();
        let engine = InPlaceTransplant::new(&reg);
        let src_state = src.vm_state(id).unwrap();
        match engine.run(&mut m, src, HypervisorKind::Kvm) {
            Err(HtpError::UnknownHypervisor(_)) => {}
            Err(other) => panic!("unexpected error {other}"),
            Ok(_) => panic!("transplant to unregistered target must fail"),
        }
        assert_eq!(src_state, crate::vm::VmState::Running);
    }

    #[test]
    fn optimizations_change_downtime() {
        let reg = registry();
        let run = |opts: Optimizations| {
            let mut m = Machine::new(MachineSpec::m1());
            let mut src: Box<dyn Hypervisor> = Box::new(SimpleHv::new(HypervisorKind::Xen));
            for i in 0..4 {
                src.create_vm(&mut m, &VmConfig::small(format!("vm{i}")))
                    .unwrap();
            }
            let engine = InPlaceTransplant::new(&reg).with_optimizations(opts);
            let (_hv, r) = engine.run(&mut m, src, HypervisorKind::Kvm).unwrap();
            r
        };
        let all = run(Optimizations::default());
        let none = run(Optimizations::none());
        assert!(none.downtime() > all.downtime());
        // Without preparation, PRAM construction lands in the downtime.
        assert_eq!(none.pram, SimDuration::ZERO);
        assert!(none.translation > all.translation + all.pram.saturating_sub(all.translation));

        let no_early = run(Optimizations {
            early_restoration: false,
            ..Optimizations::default()
        });
        assert!(no_early.restoration > all.restoration + SimDuration::from_secs(1));
    }

    #[test]
    fn multiple_vms_all_adopted() {
        let reg = registry();
        let mut m = machine_gb(16);
        let mut src: Box<dyn Hypervisor> = Box::new(SimpleHv::new(HypervisorKind::Xen));
        for i in 0..8 {
            let id = src
                .create_vm(&mut m, &VmConfig::small(format!("vm{i}")))
                .unwrap();
            src.write_guest(&mut m, id, hypertp_machine::Gfn(i), 0x1000 + i)
                .unwrap();
        }
        let engine = InPlaceTransplant::new(&reg);
        let (hv, r) = engine.run(&mut m, src, HypervisorKind::Kvm).unwrap();
        assert_eq!(r.vm_count, 8);
        for i in 0..8u64 {
            let id = hv.find_vm(&format!("vm{i}")).unwrap();
            assert_eq!(
                hv.read_guest(&m, id, hypertp_machine::Gfn(i)).unwrap(),
                0x1000 + i
            );
        }
        // Metadata released: allocated frames ≈ guest frames only.
        assert_eq!(r.pram_stats.files, 16); // 8 guest + 8 UISR files.
    }

    #[test]
    fn pram_checksum_fault_is_rebuilt_before_kexec() {
        let reg = registry();
        let mut m = machine_gb(8);
        let mut src: Box<dyn Hypervisor> = Box::new(SimpleHv::new(HypervisorKind::Xen));
        let mut expected = Vec::new();
        for i in 0..3u64 {
            let id = src
                .create_vm(&mut m, &VmConfig::small(format!("vm{i}")))
                .unwrap();
            src.write_guest(&mut m, id, hypertp_machine::Gfn(i * 11), 0x9000 + i)
                .unwrap();
            expected.push((format!("vm{i}"), hypertp_machine::Gfn(i * 11), 0x9000 + i));
        }
        let plan = FaultPlan::new(0x66);
        plan.arm_once(InjectionPoint::PramChecksum);
        let engine = InPlaceTransplant::new(&reg).with_faults(plan.clone());
        let (hv, r) = engine.run(&mut m, src, HypervisorKind::Kvm).unwrap();
        // Recovery fired and the transplant still landed every VM.
        assert!(plan
            .log()
            .recovered_via(InjectionPoint::PramChecksum, RecoveryAction::RebuiltPram));
        assert_eq!(r.vm_count, 3);
        for (name, gfn, val) in expected {
            let id = hv.find_vm(&name).unwrap();
            assert_eq!(hv.read_guest(&m, id, gfn).unwrap(), val, "{name}");
        }
    }

    #[test]
    fn worker_panic_tasks_are_retried_inline() {
        let reg = registry();
        let mut m = machine_gb(8);
        let mut src: Box<dyn Hypervisor> = Box::new(SimpleHv::new(HypervisorKind::Xen));
        for i in 0..6 {
            src.create_vm(&mut m, &VmConfig::small(format!("vm{i}")))
                .unwrap();
        }
        let plan = FaultPlan::new(0x77);
        plan.arm_calls(InjectionPoint::WorkerPanic, &[2, 5]); // tasks 1 and 4 die
        let engine = InPlaceTransplant::new(&reg).with_faults(plan.clone());
        let (hv, r) = engine.run(&mut m, src, HypervisorKind::Kvm).unwrap();
        assert_eq!(r.vm_count, 6);
        for i in 0..6 {
            assert!(hv.find_vm(&format!("vm{i}")).is_some(), "vm{i}");
        }
        let log = plan.log();
        assert_eq!(log.injections_at(InjectionPoint::WorkerPanic), 2);
        assert_eq!(
            log.recoveries(
                InjectionPoint::WorkerPanic,
                RecoveryAction::TaskRetriedInline
            ),
            2
        );
    }

    #[test]
    fn faulted_and_clean_runs_agree_on_results() {
        // A transplant with recovered faults must produce the same final
        // state as a clean one — recovery may cost time, never data.
        let run = |plan: Option<FaultPlan>| {
            let reg = registry();
            let mut m = machine_gb(8);
            let mut src: Box<dyn Hypervisor> = Box::new(SimpleHv::new(HypervisorKind::Xen));
            for i in 0..4u64 {
                let id = src
                    .create_vm(&mut m, &VmConfig::small(format!("vm{i}")))
                    .unwrap();
                src.write_guest(&mut m, id, hypertp_machine::Gfn(i), 0xaa00 + i)
                    .unwrap();
            }
            let mut engine = InPlaceTransplant::new(&reg);
            if let Some(p) = plan {
                engine = engine.with_faults(p);
            }
            let (hv, _) = engine.run(&mut m, src, HypervisorKind::Kvm).unwrap();
            (0..4u64)
                .map(|i| {
                    let id = hv.find_vm(&format!("vm{i}")).unwrap();
                    hv.read_guest(&m, id, hypertp_machine::Gfn(i)).unwrap()
                })
                .collect::<Vec<_>>()
        };
        let clean = run(None);
        let plan = FaultPlan::new(0x88);
        plan.arm_once(InjectionPoint::PramChecksum);
        plan.arm_calls(InjectionPoint::WorkerPanic, &[1, 3]);
        let faulted = run(Some(plan.clone()));
        assert_eq!(clean, faulted);
        assert!(!plan.log().is_empty());
    }

    #[test]
    fn roundtrip_back_to_original_kind() {
        // Transplant Xen→KVM→Xen; guest memory must survive both hops.
        let reg = registry();
        let mut m = machine_gb(4);
        let mut src: Box<dyn Hypervisor> = Box::new(SimpleHv::new(HypervisorKind::Xen));
        let id = src.create_vm(&mut m, &VmConfig::small("vm0")).unwrap();
        src.write_guest(&mut m, id, hypertp_machine::Gfn(77), 0xabcd)
            .unwrap();
        let engine = InPlaceTransplant::new(&reg);
        let (kvm, _) = engine.run(&mut m, src, HypervisorKind::Kvm).unwrap();
        let (xen, _) = engine.run(&mut m, kvm, HypervisorKind::Xen).unwrap();
        let id2 = xen.find_vm("vm0").unwrap();
        assert_eq!(
            xen.read_guest(&m, id2, hypertp_machine::Gfn(77)).unwrap(),
            0xabcd
        );
        assert_eq!(m.boot_count(), 3);
    }
}
