//! The `Hypervisor` trait: what a hypervisor must expose to be
//! HyperTP-compliant.
//!
//! The paper re-engineers Xen and KVM by adding exactly two families of
//! functions — `struct uisr* to_uisr_xxx` and `void* from_uisr_xxx`
//! (§3.1) — plus the PRAM hooks. The trait below is the Rust equivalent:
//! everything else (VM lifecycle, guest memory access, dirty logging) is
//! functionality the paper notes is "natively provided by all hypervisors".

use hypertp_machine::{Extent, Gfn, Machine};
use hypertp_sim::cost::BootTarget;
use hypertp_uisr::UisrVm;

use crate::error::HtpError;
use crate::memsep::MemSepReport;
use crate::vm::{VmConfig, VmId, VmState};

/// The hypervisors in this reproduction's pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HypervisorKind {
    /// Xen 4.12-style type-1 hypervisor (HVM guests).
    Xen,
    /// Linux-KVM 5.3-style type-2 hypervisor with a kvmtool-like VMM.
    Kvm,
}

impl HypervisorKind {
    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            HypervisorKind::Xen => "Xen",
            HypervisorKind::Kvm => "KVM",
        }
    }

    /// The kernel(s) a micro-reboot into this hypervisor boots.
    pub fn boot_target(self) -> BootTarget {
        match self {
            HypervisorKind::Xen => BootTarget::XenDom0,
            HypervisorKind::Kvm => BootTarget::LinuxKvm,
        }
    }

    /// The userspace VMM managing guests on this hypervisor.
    pub fn vmm_name(self) -> &'static str {
        match self {
            HypervisorKind::Xen => "libxl/QEMU",
            HypervisorKind::Kvm => "kvmtool",
        }
    }
}

impl std::fmt::Display for HypervisorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Result of restoring a VM into a target hypervisor.
#[derive(Debug, Clone)]
pub struct RestoredVm {
    /// The VM's id on the target hypervisor.
    pub id: VmId,
    /// Compatibility fixes that were applied (e.g. "IOAPIC pins 24–47
    /// disconnected"). Surfaced so operators can audit lossy translations.
    pub warnings: Vec<String>,
}

/// A HyperTP-compliant hypervisor.
///
/// Object safety: the transplant engine holds hypervisors as
/// `Box<dyn Hypervisor>` so the pool can mix implementations.
///
/// `Send + Sync` are supertraits so the transplant engine can share
/// `&dyn Hypervisor` across the worker threads of
/// [`hypertp_sim::WorkerPool`]: the read-side hot path (`save_uisr`,
/// `guest_memory_map`, `vm_config`) takes `&self` and runs one VM per
/// worker during the §4.2.5 parallelization optimization.
pub trait Hypervisor: Send + Sync {
    /// Which hypervisor this is.
    fn kind(&self) -> HypervisorKind;

    /// Version string (e.g. "4.12.1").
    fn version(&self) -> &str;

    // --- VM lifecycle (natively provided by all hypervisors) ---

    /// Creates and boots a fresh VM.
    fn create_vm(&mut self, machine: &mut Machine, config: &VmConfig) -> Result<VmId, HtpError>;

    /// Destroys a VM, freeing its guest memory.
    fn destroy_vm(&mut self, machine: &mut Machine, id: VmId) -> Result<(), HtpError>;

    /// Pauses a VM (transplant step 1).
    fn pause_vm(&mut self, id: VmId) -> Result<(), HtpError>;

    /// Resumes a paused VM (transplant step 5).
    fn resume_vm(&mut self, id: VmId) -> Result<(), HtpError>;

    /// Current lifecycle state.
    fn vm_state(&self, id: VmId) -> Result<VmState, HtpError>;

    /// All VM ids, in creation order.
    fn vm_ids(&self) -> Vec<VmId>;

    /// A VM's configuration.
    fn vm_config(&self, id: VmId) -> Result<&VmConfig, HtpError>;

    /// Looks up a VM by name.
    fn find_vm(&self, name: &str) -> Option<VmId>;

    // --- Guest memory ---

    /// The VM's guest-physical → machine mapping (the input to PRAM
    /// construction).
    fn guest_memory_map(&self, id: VmId) -> Result<Vec<(Gfn, Extent)>, HtpError>;

    /// Reads a guest page's content word.
    fn read_guest(&self, machine: &Machine, id: VmId, gfn: Gfn) -> Result<u64, HtpError>;

    /// Reads many guest pages in one call, in input order.
    ///
    /// Semantically identical to mapping [`Hypervisor::read_guest`] over
    /// `gfns` (the default implementation does exactly that), but
    /// hypervisors override it with batched translation: migration
    /// gathers, write-elision probes and content verification are
    /// per-page hot loops, and resolving the VM + walking the mapping
    /// structure once per *batch* instead of once per *page* is the
    /// difference the `BENCH_parallel.json` migrate numbers measure.
    /// Implementations must preserve per-page error behaviour.
    fn read_guest_many(
        &self,
        machine: &Machine,
        id: VmId,
        gfns: &[Gfn],
    ) -> Result<Vec<u64>, HtpError> {
        gfns.iter()
            .map(|&g| self.read_guest(machine, id, g))
            .collect()
    }

    /// [`Hypervisor::read_guest_many`] into a caller-owned buffer — the
    /// zero-allocation gather primitive. `out` is cleared and refilled in
    /// input order; steady-state callers reuse one buffer across rounds so
    /// the gather path performs no heap allocation at all. Hypervisors
    /// override this to copy whole physically-contiguous runs straight
    /// from RAM extent backing ([`content_slice`]) instead of reading one
    /// word per page. Implementations must preserve per-page error
    /// behaviour and must leave `out`'s contents unspecified on error.
    ///
    /// [`content_slice`]: hypertp_machine::ram::PhysicalMemory::content_slice
    fn read_guest_into(
        &self,
        machine: &Machine,
        id: VmId,
        gfns: &[Gfn],
        out: &mut Vec<u64>,
    ) -> Result<(), HtpError> {
        out.clear();
        out.reserve(gfns.len());
        for &g in gfns {
            out.push(self.read_guest(machine, id, g)?);
        }
        Ok(())
    }

    /// Writes a guest page (dirties it if dirty logging is on).
    fn write_guest(
        &mut self,
        machine: &mut Machine,
        id: VmId,
        gfn: Gfn,
        content: u64,
    ) -> Result<(), HtpError>;

    /// Simulates guest execution: advances the vCPUs' architectural state
    /// and dirties `dirty_pages` guest pages chosen by the VM's
    /// deterministic stream. Returns an error if the VM is paused.
    fn guest_tick(
        &mut self,
        machine: &mut Machine,
        id: VmId,
        dirty_pages: u64,
    ) -> Result<(), HtpError>;

    // --- Dirty logging (pre-copy migration) ---

    /// Enables write tracking for a VM.
    fn enable_dirty_log(&mut self, id: VmId) -> Result<(), HtpError>;

    /// Returns and clears the set of GFNs dirtied since the last call.
    fn collect_dirty(&mut self, id: VmId) -> Result<Vec<Gfn>, HtpError>;

    // --- UISR translation (the HyperTP additions) ---

    /// Translates a paused VM's VMi State into UISR (`to_uisr_*`).
    fn save_uisr(&self, machine: &Machine, id: VmId) -> Result<UisrVm, HtpError>;

    /// Creates a paused, empty VM shell with freshly allocated guest memory
    /// — the destination side of MigrationTP, filled page by page during
    /// pre-copy.
    fn prepare_incoming(
        &mut self,
        machine: &mut Machine,
        config: &VmConfig,
    ) -> Result<VmId, HtpError>;

    /// Applies a UISR description onto a prepared shell (`from_uisr_*`).
    /// The VM stays paused; the caller resumes it.
    fn restore_uisr(
        &mut self,
        machine: &mut Machine,
        id: VmId,
        uisr: &UisrVm,
    ) -> Result<RestoredVm, HtpError>;

    /// InPlaceTP restoration: adopts guest memory that is already in RAM
    /// (the PRAM mappings) and applies the UISR description. The VM stays
    /// paused; the caller resumes it.
    fn adopt_vm(
        &mut self,
        machine: &mut Machine,
        uisr: &UisrVm,
        mappings: &[(Gfn, Extent)],
    ) -> Result<RestoredVm, HtpError>;

    // --- Device quiescing (§4.2.3) ---

    /// Notifies the guest to prepare for transplant, "similarly to what is
    /// done on Azure with the Scheduled Events API": pause pass-through
    /// devices (putting device and driver into a consistent state inside
    /// guest memory), drain emulated devices' in-flight requests, and
    /// unplug network devices for post-transplant rescan. Runs *before*
    /// the VM is paused, so the time it takes is preparation, not
    /// downtime.
    ///
    /// Returns the simulated time the guest took to acknowledge. The
    /// default implementation is an immediate no-op for hypervisors whose
    /// device models need no quiescing.
    fn notify_prepare_transplant(
        &mut self,
        machine: &mut Machine,
        id: VmId,
    ) -> Result<hypertp_sim::SimDuration, HtpError> {
        let _ = (machine, id);
        Ok(hypertp_sim::SimDuration::ZERO)
    }

    // --- Introspection ---

    /// Memory-separation accounting (Fig. 2) for everything this
    /// hypervisor currently holds.
    fn memsep_report(&self, machine: &Machine) -> MemSepReport;
}

/// Derives the cross-hypervisor [`VmConfig`] from a UISR description
/// (used at adopt time, when the target hypervisor only has the UISR and
/// the PRAM mappings).
pub fn config_from_uisr(uisr: &UisrVm, huge_pages: bool) -> VmConfig {
    let has_network = uisr
        .devices
        .iter()
        .any(|d| matches!(d, hypertp_uisr::DeviceState::Network { .. }));
    let storage_backend = uisr
        .devices
        .iter()
        .find_map(|d| match d {
            hypertp_uisr::DeviceState::Block { backend, .. } => Some(backend.clone()),
            _ => None,
        })
        .unwrap_or_default();
    VmConfig {
        name: uisr.name.clone(),
        vcpus: uisr.vcpus.len() as u32,
        memory_gb: uisr.memory.total_bytes() >> 30,
        huge_pages,
        inplace_compatible: true,
        has_network,
        storage_backend,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypertp_uisr::{DeviceState, MemoryRegion, VcpuState};

    #[test]
    fn kind_properties() {
        assert_eq!(HypervisorKind::Xen.name(), "Xen");
        assert_eq!(HypervisorKind::Xen.boot_target(), BootTarget::XenDom0);
        assert_eq!(HypervisorKind::Kvm.boot_target(), BootTarget::LinuxKvm);
        assert_eq!(HypervisorKind::Kvm.vmm_name(), "kvmtool");
        assert_eq!(HypervisorKind::Kvm.to_string(), "KVM");
    }

    #[test]
    fn config_from_uisr_derivation() {
        let mut u = UisrVm::new("vm7");
        u.vcpus.push(VcpuState::reset(0));
        u.vcpus.push(VcpuState::reset(1));
        u.memory.regions.push(MemoryRegion {
            gfn_start: 0,
            pages: 2 * 262_144,
        });
        u.devices.push(DeviceState::Network {
            mac: [0; 6],
            unplugged: false,
        });
        u.devices.push(DeviceState::Block {
            backend: "nbd://x".into(),
            sectors: 1,
            pending_requests: 0,
        });
        let c = config_from_uisr(&u, true);
        assert_eq!(c.name, "vm7");
        assert_eq!(c.vcpus, 2);
        assert_eq!(c.memory_gb, 2);
        assert!(c.has_network);
        assert_eq!(c.storage_backend, "nbd://x");
    }
}
