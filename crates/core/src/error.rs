//! Unified error type for transplant operations.

use hypertp_machine::machine::KexecError;
use hypertp_machine::MemError;
use hypertp_pram::PramError;
use hypertp_uisr::CodecError;

use crate::vm::VmId;

/// Errors surfaced by the HyperTP framework.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HtpError {
    /// Physical memory error.
    Mem(MemError),
    /// PRAM encode/parse error.
    Pram(PramError),
    /// UISR codec error.
    Codec(CodecError),
    /// Kexec failure.
    Kexec(KexecError),
    /// Unknown VM id.
    UnknownVm(VmId),
    /// A VM was in the wrong state for the requested operation.
    WrongVmState {
        /// The VM concerned.
        vm: VmId,
        /// What the operation needed.
        expected: &'static str,
        /// What it found.
        found: &'static str,
    },
    /// The hypervisor pool has no registered factory for the target.
    UnknownHypervisor(String),
    /// A UISR section could not be applied by the target hypervisor.
    IncompatibleState {
        /// The UISR section concerned.
        section: &'static str,
        /// Human-readable detail.
        detail: String,
    },
    /// Guest memory integrity check failed after transplant.
    IntegrityViolation {
        /// The VM whose memory changed.
        vm_name: String,
    },
    /// The operation is not supported by this hypervisor.
    Unsupported(&'static str),
    /// The migration link failed repeatedly and the retry budget ran out.
    LinkFailure {
        /// The VM whose migration was abandoned.
        vm_name: String,
        /// Retries attempted before giving up.
        retries: u32,
    },
}

impl std::fmt::Display for HtpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HtpError::Mem(e) => write!(f, "memory: {e}"),
            HtpError::Pram(e) => write!(f, "pram: {e}"),
            HtpError::Codec(e) => write!(f, "uisr codec: {e}"),
            HtpError::Kexec(e) => write!(f, "kexec: {e}"),
            HtpError::UnknownVm(id) => write!(f, "unknown VM {id}"),
            HtpError::WrongVmState {
                vm,
                expected,
                found,
            } => write!(f, "VM {vm} is {found}, expected {expected}"),
            HtpError::UnknownHypervisor(name) => {
                write!(f, "no hypervisor '{name}' in the pool")
            }
            HtpError::IncompatibleState { section, detail } => {
                write!(f, "cannot apply UISR section {section}: {detail}")
            }
            HtpError::IntegrityViolation { vm_name } => {
                write!(f, "guest memory of '{vm_name}' changed across transplant")
            }
            HtpError::Unsupported(what) => write!(f, "unsupported operation: {what}"),
            HtpError::LinkFailure { vm_name, retries } => write!(
                f,
                "migration link for '{vm_name}' failed after {retries} retries"
            ),
        }
    }
}

impl std::error::Error for HtpError {}

impl From<MemError> for HtpError {
    fn from(e: MemError) -> Self {
        HtpError::Mem(e)
    }
}

impl From<PramError> for HtpError {
    fn from(e: PramError) -> Self {
        HtpError::Pram(e)
    }
}

impl From<CodecError> for HtpError {
    fn from(e: CodecError) -> Self {
        HtpError::Codec(e)
    }
}

impl From<KexecError> for HtpError {
    fn from(e: KexecError) -> Self {
        HtpError::Kexec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = HtpError::UnknownHypervisor("esxi".into());
        assert!(e.to_string().contains("esxi"));
        let e = HtpError::WrongVmState {
            vm: VmId(3),
            expected: "paused",
            found: "running",
        };
        assert!(e.to_string().contains("paused"));
    }

    #[test]
    fn conversions() {
        let m: HtpError = MemError::OutOfRange {
            mfn: hypertp_machine::Mfn(1),
        }
        .into();
        assert!(matches!(m, HtpError::Mem(_)));
        let c: HtpError = CodecError::BadMagic.into();
        assert!(matches!(c, HtpError::Codec(_)));
    }
}
