//! Persisting encoded UISR blobs in RAM across the micro-reboot.
//!
//! InPlaceTP "translates VM states into the UISR neutral format, followed by
//! the saving of the latter in RAM" (§4.2). We persist each VM's encoded
//! UISR as an extra PRAM file named `uisr/<vm>`: the blob is chunked into
//! freshly allocated frames whose byte contents carry the encoding, and the
//! PRAM reservation machinery then protects them across the kexec exactly
//! like guest memory.
//!
//! Blob file layout: the first page starts with an 8-byte little-endian
//! length, followed by the blob bytes; subsequent pages are raw
//! continuation bytes. File GFNs are the sequential chunk index (the blob
//! is a file, not guest-physical memory).

use hypertp_machine::{Extent, Gfn, PageOrder, PhysicalMemory, PAGE_SIZE};
use hypertp_pram::{PramBuilder, PramFile};

use crate::error::HtpError;

/// Name prefix distinguishing UISR blob files from guest-memory files
/// inside the same PRAM directory.
pub const UISR_FILE_PREFIX: &str = "uisr/";

/// Returns the PRAM file name for a VM's UISR blob.
pub fn uisr_file_name(vm_name: &str) -> String {
    format!("{UISR_FILE_PREFIX}{vm_name}")
}

/// True if a PRAM file carries a UISR blob rather than guest memory.
pub fn is_uisr_file(file: &PramFile) -> bool {
    file.name.starts_with(UISR_FILE_PREFIX)
}

/// The VM name a UISR blob file belongs to (inverse of
/// [`uisr_file_name`]), or `None` for guest-memory files. Unplanned
/// recovery enumerates VMs from these names alone — after a hypervisor
/// crash there is no live source left to ask.
pub fn vm_name_from_uisr_file(file: &PramFile) -> Option<&str> {
    file.name.strip_prefix(UISR_FILE_PREFIX)
}

/// Writes `blob` into freshly allocated frames and returns the chunk
/// mappings (without recording a PRAM file). The warm checkpointer reuses
/// this to re-encode one VM's blob while keeping the other VMs' existing
/// frames in place.
pub fn write_blob(ram: &mut PhysicalMemory, blob: &[u8]) -> Result<Vec<(Gfn, Extent)>, HtpError> {
    let total = 8 + blob.len();
    let pages = total.div_ceil(PAGE_SIZE as usize);
    let mut mappings = Vec::with_capacity(pages);
    let mut cursor = 0usize;
    for chunk_idx in 0..pages {
        let extent = ram.alloc(PageOrder(0))?;
        let mut page = vec![0u8; PAGE_SIZE as usize];
        let mut off = 0usize;
        if chunk_idx == 0 {
            page[0..8].copy_from_slice(&(blob.len() as u64).to_le_bytes());
            off = 8;
        }
        let n = (PAGE_SIZE as usize - off).min(blob.len() - cursor);
        page[off..off + n].copy_from_slice(&blob[cursor..cursor + n]);
        cursor += n;
        ram.write_bytes(extent.base, &page)?;
        mappings.push((Gfn(chunk_idx as u64), extent));
    }
    Ok(mappings)
}

/// Stores `blob` into freshly allocated frames and records them as a PRAM
/// file on `builder`.
pub fn store_blob(
    ram: &mut PhysicalMemory,
    builder: &mut PramBuilder,
    vm_name: &str,
    blob: &[u8],
) -> Result<(), HtpError> {
    let mappings = write_blob(ram, blob)?;
    builder.add_file(uisr_file_name(vm_name), 0o400, mappings);
    Ok(())
}

/// Loads a blob back from a parsed PRAM file.
pub fn load_blob(ram: &PhysicalMemory, file: &PramFile) -> Result<Vec<u8>, HtpError> {
    let mut pages = file.mappings.clone();
    pages.sort_by_key(|(g, _)| *g);
    let mut raw = Vec::with_capacity(pages.len() * PAGE_SIZE as usize);
    for (_, e) in &pages {
        for mfn in e.frames() {
            let bytes = ram
                .read_bytes(mfn)
                .ok_or(HtpError::Pram(hypertp_pram::PramError::BadMagic { mfn }))?;
            raw.extend_from_slice(bytes);
        }
    }
    if raw.len() < 8 {
        return Err(HtpError::Codec(hypertp_uisr::CodecError::Truncated));
    }
    let len = u64::from_le_bytes(raw[0..8].try_into().expect("len 8")) as usize;
    if raw.len() < 8 + len {
        return Err(HtpError::Codec(hypertp_uisr::CodecError::Truncated));
    }
    Ok(raw[8..8 + len].to_vec())
}

/// Frees a UISR blob file's frames (cleanup step ❼).
pub fn release_blob(ram: &mut PhysicalMemory, file: &PramFile) -> Result<(), HtpError> {
    for (_, e) in &file.mappings {
        ram.unreserve_and_free(e.base, e.pages())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypertp_pram::PramImage;

    #[test]
    fn blob_roundtrip_through_kexec() {
        let mut ram = PhysicalMemory::new(4096);
        let blob: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        let mut builder = PramBuilder::new();
        store_blob(&mut ram, &mut builder, "vm0", &blob).unwrap();
        let handle = builder.write(&mut ram).unwrap();

        // Simulate the micro-reboot.
        ram.forget_ownership();
        let img = PramImage::parse(&ram, handle.pram_ptr).unwrap();
        img.reserve_all(&mut ram).unwrap();
        ram.scrub_unreserved();

        let file = img.file(&uisr_file_name("vm0")).unwrap();
        assert!(is_uisr_file(file));
        let back = load_blob(&ram, file).unwrap();
        assert_eq!(back, blob);

        // Cleanup returns frames to the allocator.
        let free_before = ram.free_frames();
        release_blob(&mut ram, file).unwrap();
        assert!(ram.free_frames() > free_before);
    }

    #[test]
    fn vm_name_roundtrips_through_file_name() {
        let mut ram = PhysicalMemory::new(64);
        let mut builder = PramBuilder::new();
        store_blob(&mut ram, &mut builder, "web-01", b"x").unwrap();
        let handle = builder.write(&mut ram).unwrap();
        let img = PramImage::parse(&ram, handle.pram_ptr).unwrap();
        let file = img.file("uisr/web-01").unwrap();
        assert_eq!(vm_name_from_uisr_file(file), Some("web-01"));
        // A guest-memory file is not a UISR file.
        let guest = PramFile {
            name: "web-01".to_string(),
            mode: 0o600,
            mappings: Vec::new(),
        };
        assert_eq!(vm_name_from_uisr_file(&guest), None);
    }

    #[test]
    fn empty_blob() {
        let mut ram = PhysicalMemory::new(64);
        let mut builder = PramBuilder::new();
        store_blob(&mut ram, &mut builder, "vm0", &[]).unwrap();
        let handle = builder.write(&mut ram).unwrap();
        let img = PramImage::parse(&ram, handle.pram_ptr).unwrap();
        let back = load_blob(&ram, img.file("uisr/vm0").unwrap()).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn page_boundary_blob_sizes() {
        for len in [4087usize, 4088, 4089, 8184, 8192] {
            let mut ram = PhysicalMemory::new(4096);
            let blob: Vec<u8> = (0..len).map(|i| (i * 7 % 256) as u8).collect();
            let mut builder = PramBuilder::new();
            store_blob(&mut ram, &mut builder, "vm0", &blob).unwrap();
            let handle = builder.write(&mut ram).unwrap();
            let img = PramImage::parse(&ram, handle.pram_ptr).unwrap();
            let back = load_blob(&ram, img.file("uisr/vm0").unwrap()).unwrap();
            assert_eq!(back, blob, "len {len}");
        }
    }

    #[test]
    fn scrubbed_blob_fails_cleanly() {
        let mut ram = PhysicalMemory::new(64);
        let mut builder = PramBuilder::new();
        store_blob(&mut ram, &mut builder, "vm0", b"hello").unwrap();
        let handle = builder.write(&mut ram).unwrap();
        let img = PramImage::parse(&ram, handle.pram_ptr).unwrap();
        ram.forget_ownership();
        ram.scrub_unreserved(); // No reservation -> blob destroyed.
        assert!(load_blob(&ram, img.file("uisr/vm0").unwrap()).is_err());
    }
}
