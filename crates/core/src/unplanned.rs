//! Unplanned transplant: ReHype-style recovery from a hypervisor crash.
//!
//! The planned paths (`inplace`, `migration`) assume a cooperating source
//! hypervisor. This module drops that assumption: an always-on
//! [`WarmCheckpointer`] keeps every VM's UISR translated and persisted in
//! PRAM *while the hypervisor is healthy* (generalizing the incremental
//! pre-pause warm translation to a continuous background service), and a
//! pre-staged rescue kexec image always points at the freshest checkpoint
//! directory. When the hypervisor crashes, [`UnplannedRecovery`]
//! micro-reboots into the *other* hypervisor over the existing kexec+PRAM
//! path and adopts every VM from its warm checkpoint — no source
//! cooperation required.
//!
//! What survives and what is lost:
//! - **Guest memory** survives byte-identical: it stays in place across the
//!   micro-reboot exactly like a planned InPlaceTP, including pages dirtied
//!   *after* the last checkpoint (the PRAM guest files map the live frames,
//!   not copies).
//! - **Register/device state** rolls back to the VM's last *persisted*
//!   checkpoint. The checkpointer's staleness bound makes the rollback
//!   provable: at the end of every completed background tick, each VM's
//!   un-persisted dirty page count is strictly below
//!   [`CheckpointConfig::staleness_bound_pages`], so the state lost to a
//!   crash is bounded by that plus whatever the workload dirtied since the
//!   last completed tick.

use hypertp_machine::{combine_partials, Extent, Gfn, KexecImage, Machine, PageOrder};
use hypertp_pram::{PramBuilder, PramFile, PramHandle, PramImage};
use hypertp_sim::cost::MachinePerf;
use hypertp_sim::fault::{FaultPlan, InjectionPoint, RecoveryAction};
use hypertp_sim::{CostModel, Ewma, SimDuration, WorkerPool};
use hypertp_uisr::{UisrVm, VcpuState};

use crate::error::HtpError;
use crate::hypervisor::{Hypervisor, HypervisorKind};
use crate::inplace::patch_uisr;
use crate::registry::HypervisorRegistry;
use crate::uisr_store;
use crate::vm::VmId;

/// Consults the `HypervisorCrash` injection point at `site`. Callers that
/// orchestrate hypervisors (campaign waves, the sharded executor) gate
/// each step through this so chaos plans can kill a host mid-operation.
pub fn crash_gate(faults: &FaultPlan, site: &str) -> bool {
    faults.should_inject(InjectionPoint::HypervisorCrash, site)
}

/// Tuning knobs for the always-on warm checkpointer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckpointConfig {
    /// Per-VM staleness bound: once a VM has accumulated at least this many
    /// un-persisted dirty pages, the next background tick must refresh and
    /// re-persist its checkpoint. The provable state-loss bound of a crash
    /// derives from this: at the end of every completed tick each VM's
    /// un-persisted count is strictly below the bound.
    pub staleness_bound_pages: u64,
    /// EWMA smoothing factor for the per-VM per-tick dirty page count. The
    /// smoothed rate paces refreshes *proactively*: a VM is refreshed as
    /// soon as its staleness plus its predicted next-tick dirt would reach
    /// the bound, instead of waiting to exceed it.
    pub ewma_alpha: f64,
    /// Patch individual per-vCPU register blocks (regs, sregs, FPU, MSRs,
    /// XSAVE, LAPIC, LAPIC page, MTRR) during warm refresh instead of the
    /// whole `vcpus` section. Off by default; the result is identical
    /// either way (see [`patch_uisr_fields`]).
    pub field_diff: bool,
    /// Watchdog window between the hypervisor dying and the rescue kexec
    /// being taken.
    pub detection: SimDuration,
}

impl Default for CheckpointConfig {
    fn default() -> Self {
        CheckpointConfig {
            staleness_bound_pages: 512,
            ewma_alpha: 0.5,
            field_diff: false,
            detection: SimDuration::from_millis(100),
        }
    }
}

/// Where inside the checkpointer lifecycle a crash landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPhase {
    /// Between background ticks (steady state).
    Idle,
    /// At the start of a tick, before this interval's dirty pages were
    /// collected.
    WarmRound,
    /// After dirty collection, before any checkpoint cache was refreshed.
    Refresh,
    /// After the in-memory caches were refreshed but before the PRAM
    /// directory was rebuilt — recovery restores the *previous* persisted
    /// image.
    Finalize,
}

impl CrashPhase {
    /// Stable lowercase name (fault-log vocabulary).
    pub fn name(self) -> &'static str {
        match self {
            CrashPhase::Idle => "idle",
            CrashPhase::WarmRound => "warm_round",
            CrashPhase::Refresh => "refresh",
            CrashPhase::Finalize => "finalize",
        }
    }
}

/// Outcome of one background checkpointer tick.
#[derive(Debug, Clone, PartialEq)]
pub struct TickReport {
    /// 1-based tick number.
    pub tick: u64,
    /// Dirty pages collected across all VMs this tick.
    pub collected_pages: u64,
    /// Names of the VMs whose checkpoints were refreshed *and persisted*.
    pub refreshed: Vec<String>,
    /// True when the PRAM directory was rebuilt and the rescue image
    /// restaged.
    pub persisted: bool,
    /// Set when the `HypervisorCrash` gate fired mid-tick; the tick aborted
    /// at that phase and the caller should run recovery.
    pub crashed: Option<CrashPhase>,
    /// Whole UISR sections patched over warm snapshots this tick
    /// (field_diff off).
    pub patched_sections: u64,
    /// Individual per-vCPU blocks patched this tick (field_diff on).
    pub patched_fields: u64,
    /// Simulated background cost of this tick (below the time axis).
    pub duration: SimDuration,
}

/// Per-VM warm checkpoint cache (the always-on analogue of the in-place
/// engine's warm-translate cache).
struct CkptVm {
    name: String,
    /// Memory map exactly as `guest_memory_map` returned it.
    map: Vec<(Gfn, Extent)>,
    /// Extents in map order — the checksum unit.
    extents: Vec<Extent>,
    /// `(gfn_start, pages, extent index)` sorted by `gfn_start`.
    lookup: Vec<(u64, u64, usize)>,
    /// Cached per-extent checksum partials, refreshed with each checkpoint.
    partials: Vec<u64>,
    /// Latest checkpointed UISR (may be newer than the persisted blob if a
    /// crash hit the finalize phase).
    uisr: UisrVm,
    /// PRAM chunk mappings of the currently persisted blob.
    blob_mappings: Vec<(Gfn, Extent)>,
    total_pages: u64,
    gb: f64,
    vcpus: u32,
    entries: u64,
    /// Dirty pages observed since this VM's checkpoint was last *persisted*
    /// (an in-memory refresh without a persist does not reset it).
    persisted_staleness: u64,
    /// `persisted_staleness` as recorded at the end of the last completed
    /// tick — the quantity the staleness bound provably constrains.
    staleness_at_tick_end: u64,
    /// Dirty GFNs since the partials were last recomputed; recovery
    /// refreshes exactly these (plus the crash tail) for its crash-instant
    /// memory checksum.
    pending: Vec<Gfn>,
    ewma: Ewma,
    last_ewma: f64,
}

impl CkptVm {
    /// Maps a dirty-GFN list to the (ascending) indices of the extents
    /// containing them.
    fn dirty_extent_indices(&self, dirty: &[Gfn]) -> Vec<usize> {
        let mut hit = vec![false; self.extents.len()];
        for g in dirty {
            let pos = self.lookup.partition_point(|&(start, _, _)| start <= g.0);
            if pos > 0 {
                let (start, pages, idx) = self.lookup[pos - 1];
                if g.0 < start + pages {
                    hit[idx] = true;
                }
            }
        }
        (0..hit.len()).filter(|&i| hit[i]).collect()
    }
}

/// The always-on background checkpointer: continuous incremental UISR
/// snapshots persisted in PRAM, with a pre-staged rescue kexec image that
/// always points at the freshest directory.
pub struct WarmCheckpointer {
    cfg: CheckpointConfig,
    cost: CostModel,
    faults: FaultPlan,
    pool: WorkerPool,
    target: HypervisorKind,
    ids: Vec<VmId>,
    vms: Vec<CkptVm>,
    handle: PramHandle,
    ticks: u64,
    refreshes: u64,
    background: SimDuration,
    cadence: Vec<String>,
    patched_sections: u64,
    patched_fields: u64,
}

impl WarmCheckpointer {
    /// Starts checkpointing every VM of `source` with default cost model,
    /// disarmed faults and the environment worker pool. `target` is the
    /// hypervisor the rescue image boots into on a crash.
    pub fn start(
        machine: &mut Machine,
        source: &mut dyn Hypervisor,
        target: HypervisorKind,
        cfg: CheckpointConfig,
    ) -> Result<Self, HtpError> {
        Self::start_with(
            machine,
            source,
            target,
            cfg,
            CostModel::paper_calibrated(),
            FaultPlan::disarmed(),
            WorkerPool::from_env(),
        )
    }

    /// Starts checkpointing with explicit cost model, fault plan and
    /// worker pool.
    pub fn start_with(
        machine: &mut Machine,
        source: &mut dyn Hypervisor,
        target: HypervisorKind,
        cfg: CheckpointConfig,
        cost: CostModel,
        faults: FaultPlan,
        pool: WorkerPool,
    ) -> Result<Self, HtpError> {
        let perf = machine.spec().perf();
        let clock = machine.clock().clone();
        let ids = source.vm_ids();
        let mut vms = Vec::with_capacity(ids.len());
        for &id in &ids {
            source.enable_dirty_log(id)?;
            source.pause_vm(id)?;
            let map = source.guest_memory_map(id)?;
            let uisr = source.save_uisr(machine, id)?;
            // Discard anything dirtied before the snapshot existed.
            let _ = source.collect_dirty(id)?;
            source.resume_vm(id)?;
            let c = source.vm_config(id)?;
            let extents: Vec<Extent> = map.iter().map(|(_, e)| *e).collect();
            let mut lookup: Vec<(u64, u64, usize)> = map
                .iter()
                .enumerate()
                .map(|(i, (g, e))| (g.0, e.pages(), i))
                .collect();
            lookup.sort_unstable();
            let total_pages = extents.iter().map(|e| e.pages()).sum();
            vms.push(CkptVm {
                name: c.name.clone(),
                gb: c.memory_gb as f64,
                vcpus: c.vcpus,
                entries: c.pram_entries(),
                map,
                extents,
                lookup,
                partials: Vec::new(),
                uisr,
                blob_mappings: Vec::new(),
                total_pages,
                persisted_staleness: 0,
                staleness_at_tick_end: 0,
                pending: Vec::new(),
                ewma: Ewma::new(cfg.ewma_alpha),
                last_ewma: 0.0,
            });
        }

        // Initial per-extent partials on the pool (serial inner hashing:
        // the per-VM tasks already saturate the workers).
        {
            let machine_ref: &Machine = machine;
            let vms_ref = &vms;
            let partials = pool
                .map_indices(vms.len(), |i| {
                    machine_ref
                        .ram()
                        .extent_partials_with_pool(&vms_ref[i].extents, &WorkerPool::serial())
                })
                .results;
            for (vm, p) in vms.iter_mut().zip(partials) {
                vm.partials = p;
            }
        }

        // Persist the initial checkpoints and arm the rescue image.
        for vm in &mut vms {
            let mut blob = Vec::new();
            hypertp_uisr::codec::encode_into(&vm.uisr, &mut blob);
            vm.blob_mappings = uisr_store::write_blob(machine.ram_mut(), &blob)?;
        }
        let mut builder = PramBuilder::new().with_pool(pool);
        for vm in &vms {
            builder.add_file(vm.name.clone(), 0o600, vm.map.clone());
            builder.add_file(
                uisr_store::uisr_file_name(&vm.name),
                0o400,
                vm.blob_mappings.clone(),
            );
        }
        let handle = builder.write(machine.ram_mut())?;
        machine.kexec_load(KexecImage {
            target: target.boot_target(),
            cmdline: format!("hypertp {}", handle.cmdline_arg()),
        });

        // Background cost of the initial full warm translation + directory
        // build (below the time axis: each VM was only micro-paused).
        let full_list: Vec<(f64, u32, u64, f64)> = vms
            .iter()
            .map(|v| (v.gb, v.vcpus, v.entries, 1.0))
            .collect();
        let build_list: Vec<(f64, u64)> = vms.iter().map(|v| (v.gb, v.entries)).collect();
        let setup = cost.warm_translate(&perf, &full_list) + cost.pram_build(&perf, &build_list);
        clock.advance(setup);

        let cadence = vec![format!("start: {} vms checkpointed", vms.len())];
        Ok(WarmCheckpointer {
            cfg,
            cost,
            faults,
            pool,
            target,
            ids,
            vms,
            handle,
            ticks: 0,
            refreshes: 0,
            background: setup,
            cadence,
            patched_sections: 0,
            patched_fields: 0,
        })
    }

    /// The hypervisor the rescue image boots into.
    pub fn target(&self) -> HypervisorKind {
        self.target
    }

    /// The configuration the checkpointer runs with.
    pub fn config(&self) -> CheckpointConfig {
        self.cfg
    }

    /// Completed background ticks.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Total per-VM checkpoint refreshes persisted so far.
    pub fn refreshes(&self) -> u64 {
        self.refreshes
    }

    /// Cumulative simulated background cost (setup + all ticks).
    pub fn background_time(&self) -> SimDuration {
        self.background
    }

    /// Un-persisted dirty pages currently accumulated against `name`'s
    /// checkpoint.
    pub fn checkpoint_lag(&self, name: &str) -> Option<u64> {
        self.vms
            .iter()
            .find(|v| v.name == name)
            .map(|v| v.persisted_staleness)
    }

    /// Names of the checkpointed VMs, in VM-id order.
    pub fn vm_names(&self) -> Vec<String> {
        self.vms.iter().map(|v| v.name.clone()).collect()
    }

    /// Byte-stable rendering of the refresh cadence, for determinism and
    /// worker-count-invariance assertions.
    pub fn cadence_render(&self) -> String {
        self.cadence.join("\n")
    }

    /// One background interval: the workload dirties `workload_pages` per
    /// VM, the checkpointer collects the dirty logs and refreshes +
    /// re-persists every VM at (or EWMA-predicted to reach) its staleness
    /// bound. Consults the `HypervisorCrash` gate at three phases
    /// (warm-round, refresh, finalize); when it fires the tick aborts and
    /// the caller should hand the dying hypervisor to
    /// [`UnplannedRecovery::recover`].
    pub fn tick(
        &mut self,
        machine: &mut Machine,
        source: &mut dyn Hypervisor,
        workload_pages: u64,
    ) -> Result<TickReport, HtpError> {
        self.ticks += 1;
        let t = self.ticks;
        let perf = machine.spec().perf();
        let clock = machine.clock().clone();
        let mut report = TickReport {
            tick: t,
            collected_pages: 0,
            refreshed: Vec::new(),
            persisted: false,
            crashed: None,
            patched_sections: 0,
            patched_fields: 0,
            duration: SimDuration::ZERO,
        };

        // The guests keep running; the workload dirties pages first.
        if workload_pages > 0 {
            for &id in &self.ids {
                source.guest_tick(machine, id, workload_pages)?;
            }
        }
        if crash_gate(&self.faults, &format!("ckpt tick {t} warm-round")) {
            report.crashed = Some(CrashPhase::WarmRound);
            self.cadence
                .push(format!("tick {t}: crashed at warm-round"));
            return Ok(report);
        }

        // Collect this interval's dirty pages (per-VM micro-pause; the
        // fleet is never paused as a whole).
        let mut collected = 0u64;
        for (k, &id) in self.ids.iter().enumerate() {
            source.pause_vm(id)?;
            let dirty = source.collect_dirty(id)?;
            source.resume_vm(id)?;
            let vm = &mut self.vms[k];
            collected += dirty.len() as u64;
            vm.persisted_staleness += dirty.len() as u64;
            vm.last_ewma = vm.ewma.observe(dirty.len() as f64);
            vm.pending.extend(dirty);
        }
        report.collected_pages = collected;
        if crash_gate(&self.faults, &format!("ckpt tick {t} refresh")) {
            report.crashed = Some(CrashPhase::Refresh);
            self.cadence.push(format!("tick {t}: crashed at refresh"));
            return Ok(report);
        }

        // Pick the VMs to refresh: at the staleness bound, or EWMA-paced
        // to reach it within the next interval.
        let bound = self.cfg.staleness_bound_pages.max(1);
        let refresh: Vec<usize> = (0..self.vms.len())
            .filter(|&k| {
                let vm = &self.vms[k];
                vm.persisted_staleness > 0
                    && (vm.persisted_staleness >= bound
                        || vm.persisted_staleness as f64 + vm.last_ewma >= bound as f64)
            })
            .collect();

        // Refresh the in-memory caches: fresh UISR (section- or
        // field-level patched) and partials for the dirtied extents.
        let mut delta_list = Vec::with_capacity(refresh.len());
        for &k in &refresh {
            let id = self.ids[k];
            source.pause_vm(id)?;
            let fresh = source.save_uisr(machine, id)?;
            source.resume_vm(id)?;
            let vm = &mut self.vms[k];
            if self.cfg.field_diff {
                let (uisr, fields) = patch_uisr_fields(&vm.uisr, fresh);
                vm.uisr = uisr;
                report.patched_fields += fields;
            } else {
                let (uisr, sections) = patch_uisr(&vm.uisr, fresh);
                vm.uisr = uisr;
                report.patched_sections += sections;
            }
            delta_list.push((
                vm.gb,
                vm.vcpus,
                vm.entries,
                vm.persisted_staleness as f64 / vm.total_pages.max(1) as f64,
            ));
        }
        let dirty_ext: Vec<Vec<usize>> = refresh
            .iter()
            .map(|&k| {
                let vm = &self.vms[k];
                vm.dirty_extent_indices(&vm.pending)
            })
            .collect();
        {
            let machine_ref: &Machine = machine;
            let vms_ref = &self.vms;
            let refresh_ref = &refresh;
            let dirty_ref = &dirty_ext;
            let refreshed_partials = self
                .pool
                .map_indices(refresh.len(), |i| {
                    let vm = &vms_ref[refresh_ref[i]];
                    let mut p = vm.partials.clone();
                    machine_ref.ram().refresh_partials_with_pool(
                        &vm.extents,
                        &mut p,
                        &dirty_ref[i],
                        &WorkerPool::serial(),
                    );
                    p
                })
                .results;
            for (i, p) in refreshed_partials.into_iter().enumerate() {
                self.vms[refresh[i]].partials = p;
            }
        }
        if crash_gate(&self.faults, &format!("ckpt tick {t} finalize")) {
            // Caches are refreshed but the directory is not: the persisted
            // (older) checkpoints stay authoritative for recovery, and the
            // staleness counters deliberately keep counting against them.
            report.crashed = Some(CrashPhase::Finalize);
            self.cadence.push(format!(
                "tick {t}: crashed at finalize ({} refreshes unpersisted)",
                refresh.len()
            ));
            return Ok(report);
        }

        // Persist: re-encode the refreshed blobs, rebuild the directory,
        // re-arm the rescue image.
        if !refresh.is_empty() {
            self.persist(machine, &refresh)?;
            for &k in &refresh {
                let vm = &mut self.vms[k];
                vm.persisted_staleness = 0;
                vm.pending.clear();
                report.refreshed.push(vm.name.clone());
            }
            report.persisted = true;
            self.refreshes += refresh.len() as u64;
            self.patched_sections += report.patched_sections;
            self.patched_fields += report.patched_fields;
        }

        // Background cost: warm delta translation plus the directory
        // rebuild for the refreshed VMs (below the time axis).
        let mut tick_cost = SimDuration::ZERO;
        if !delta_list.is_empty() {
            let build_list: Vec<(f64, u64)> = refresh
                .iter()
                .map(|&k| (self.vms[k].gb, self.vms[k].entries))
                .collect();
            tick_cost = self.cost.warm_translate(&perf, &delta_list)
                + self.cost.pram_build(&perf, &build_list);
        }
        clock.advance(tick_cost);
        self.background += tick_cost;
        report.duration = tick_cost;

        // Bound invariant: every VM ends a completed tick strictly below
        // its staleness bound.
        for vm in &mut self.vms {
            debug_assert!(vm.persisted_staleness < bound);
            vm.staleness_at_tick_end = vm.persisted_staleness;
        }
        self.cadence.push(format!(
            "tick {t}: collected={collected} refreshed=[{}] persisted={}",
            report.refreshed.join(","),
            report.persisted
        ));
        Ok(report)
    }

    /// Rebuilds the PRAM directory with the refreshed VMs' re-encoded
    /// blobs (other VMs' existing blob frames are reused as-is) and
    /// restages the rescue kexec image.
    fn persist(&mut self, machine: &mut Machine, refresh: &[usize]) -> Result<(), HtpError> {
        for &k in refresh {
            let old = std::mem::take(&mut self.vms[k].blob_mappings);
            for (_, e) in &old {
                machine.ram_mut().free(*e)?;
            }
            let mut blob = Vec::new();
            hypertp_uisr::codec::encode_into(&self.vms[k].uisr, &mut blob);
            self.vms[k].blob_mappings = uisr_store::write_blob(machine.ram_mut(), &blob)?;
        }
        // Recycle the old directory's metadata pages, then write a fresh
        // directory over the (mostly unchanged) data frames.
        for &m in &self.handle.meta_frames {
            machine.ram_mut().free(Extent::new(m, PageOrder(0)))?;
        }
        let mut builder = PramBuilder::new().with_pool(self.pool);
        for vm in &self.vms {
            builder.add_file(vm.name.clone(), 0o600, vm.map.clone());
            builder.add_file(
                uisr_store::uisr_file_name(&vm.name),
                0o400,
                vm.blob_mappings.clone(),
            );
        }
        self.handle = builder.write(machine.ram_mut())?;
        // A crashed hypervisor cannot run kexec_load, so the staged rescue
        // image must always point at the freshest directory.
        machine.kexec_load(KexecImage {
            target: self.target.boot_target(),
            cmdline: format!("hypertp {}", self.handle.cmdline_arg()),
        });
        Ok(())
    }
}

/// Per-VM state-loss accounting of one crash recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VmLoss {
    /// VM name.
    pub name: String,
    /// Ground-truth pages whose post-checkpoint content the register
    /// rollback abandons: un-persisted dirty pages at the crash instant
    /// plus the uncollected tail. (The page *contents* survive in place;
    /// this counts how far the restored register/device state trails the
    /// crash-instant memory.)
    pub loss_pages: u64,
    /// Un-persisted dirty pages at the end of the last *completed*
    /// background tick — the quantity the staleness bound provably keeps
    /// below [`CheckpointConfig::staleness_bound_pages`].
    pub checkpoint_lag_pages: u64,
    /// Pages dirtied after the last dirty-log collection (measured by the
    /// post-mortem sweep at the crash instant).
    pub tail_pages: u64,
}

/// Timing and state-loss report of one unplanned transplant.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// VMs restored from warm checkpoints.
    pub vm_count: usize,
    /// Watchdog detection window.
    pub detection: SimDuration,
    /// Rescue micro-reboot (kexec + target boot + PRAM parse).
    pub reboot: SimDuration,
    /// Checkpoint adoption + restore + resume.
    pub restoration: SimDuration,
    /// NIC re-initialization (reported separately, as in Fig. 6).
    pub network: SimDuration,
    /// Crash-to-resumed recovery latency (detection + reboot +
    /// restoration). Warm checkpoints keep translation entirely out of
    /// this critical path.
    pub recovery_latency: SimDuration,
    /// Modeled latency of the cold ablation: the same crash without
    /// always-on checkpoints must salvage-translate every VM's state *and*
    /// build the PRAM directory before the micro-reboot can be taken.
    pub cold_latency: SimDuration,
    /// Per-VM state-loss accounting.
    pub losses: Vec<VmLoss>,
    /// The staleness bound the checkpointer ran with.
    pub loss_bound_pages: u64,
    /// Background ticks the checkpointer completed before the crash.
    pub checkpoint_ticks: u64,
    /// Per-VM checkpoint refreshes persisted before the crash.
    pub checkpoint_refreshes: u64,
    /// Cumulative simulated background checkpointing cost.
    pub background_time: SimDuration,
    /// Frames scrubbed by the rescue boot.
    pub scrubbed_frames: u64,
    /// Compatibility warnings from the target's adoptions.
    pub warnings: Vec<String>,
}

impl RecoveryReport {
    /// True when every VM's checkpoint lag at the last completed tick was
    /// strictly below the staleness bound — the provable half of the
    /// state-loss bound (the other half, the final-interval tail, is
    /// workload-controlled and reported per VM).
    pub fn within_bound(&self) -> bool {
        let bound = self.loss_bound_pages.max(1);
        self.losses.iter().all(|l| l.checkpoint_lag_pages < bound)
    }

    /// Total ground-truth loss pages across all VMs.
    pub fn total_loss_pages(&self) -> u64 {
        self.losses.iter().map(|l| l.loss_pages).sum()
    }

    /// How much faster warm recovery was than the cold ablation, in
    /// percent of the cold latency.
    pub fn warm_speedup_pct(&self) -> f64 {
        let cold = self.cold_latency.as_secs_f64();
        if cold <= 0.0 {
            return 0.0;
        }
        (cold - self.recovery_latency.as_secs_f64()) / cold * 100.0
    }

    /// Byte-stable rendering for replay-determinism assertions.
    pub fn render(&self) -> String {
        let losses: Vec<String> = self
            .losses
            .iter()
            .map(|l| {
                format!(
                    "{}:{}/{}/{}",
                    l.name, l.loss_pages, l.checkpoint_lag_pages, l.tail_pages
                )
            })
            .collect();
        format!(
            "vms={} latency_ns={} cold_ns={} detect_ns={} reboot_ns={} restore_ns={} \
             net_ns={} ticks={} refreshes={} background_ns={} bound={} loss{{{}}}",
            self.vm_count,
            self.recovery_latency.as_nanos(),
            self.cold_latency.as_nanos(),
            self.detection.as_nanos(),
            self.reboot.as_nanos(),
            self.restoration.as_nanos(),
            self.network.as_nanos(),
            self.checkpoint_ticks,
            self.checkpoint_refreshes,
            self.background_time.as_nanos(),
            self.loss_bound_pages,
            losses.join(",")
        )
    }
}

/// Modeled warm (checkpointed) crash-recovery latency: detection + rescue
/// reboot + restore + resume. Translation is absent — the checkpoints are
/// already translated. Used by fleet planners that account for crashes
/// without simulating full hosts.
pub fn warm_recovery_latency(
    cost: &CostModel,
    perf: &MachinePerf,
    target: HypervisorKind,
    detection: SimDuration,
    total_gb: f64,
    entries: u64,
    restore_list: &[(f64, u32)],
) -> SimDuration {
    detection
        + cost.reboot(perf, target.boot_target(), total_gb, entries)
        + cost.restore(perf, restore_list, true)
        + perf.cpu(cost.resume_ghz_s_per_vm * restore_list.len() as f64)
}

/// Modeled cold crash-recovery latency: the same path plus the crash-time
/// salvage translation and PRAM construction that always-on checkpointing
/// moves out of the critical path.
#[allow(clippy::too_many_arguments)] // mirrors the cost-model list shapes
pub fn cold_recovery_latency(
    cost: &CostModel,
    perf: &MachinePerf,
    target: HypervisorKind,
    detection: SimDuration,
    total_gb: f64,
    entries: u64,
    restore_list: &[(f64, u32)],
    build_list: &[(f64, u64)],
    xlate_list: &[(f64, u32, u64)],
) -> SimDuration {
    warm_recovery_latency(
        cost,
        perf,
        target,
        detection,
        total_gb,
        entries,
        restore_list,
    ) + cost.pram_build(perf, build_list)
        + cost.translate(perf, xlate_list)
}

/// Rebuilds a UISR from a warm snapshot by patching individual per-vCPU
/// register blocks (plus the non-vCPU sections whole). The result equals
/// `fresh` by construction — changed blocks are overwritten, unchanged
/// ones are already equal — so toggling field-level diffing on or off
/// never changes the restored state, only the patch granularity the
/// telemetry reports. Returns the patched UISR and the number of patched
/// blocks/sections.
pub fn patch_uisr_fields(warm: &UisrVm, fresh: UisrVm) -> (UisrVm, u64) {
    let mut out = warm.clone();
    let mut patched = 0u64;
    let UisrVm {
        name,
        vcpus,
        ioapic,
        pit,
        devices,
        memory,
    } = fresh;
    if out.name != name {
        out.name = name;
        patched += 1;
    }
    if out.vcpus.len() != vcpus.len() {
        // Topology changed: replace the section whole.
        if out.vcpus != vcpus {
            patched += 1;
        }
        out.vcpus = vcpus;
    } else {
        for (cur, new) in out.vcpus.iter_mut().zip(vcpus) {
            let VcpuState {
                id,
                regs,
                sregs,
                fpu,
                msrs,
                xsave,
                lapic,
                lapic_regs,
                mtrr,
            } = new;
            if cur.id != id {
                cur.id = id;
                patched += 1;
            }
            if cur.regs != regs {
                cur.regs = regs;
                patched += 1;
            }
            if cur.sregs != sregs {
                cur.sregs = sregs;
                patched += 1;
            }
            if cur.fpu != fpu {
                cur.fpu = fpu;
                patched += 1;
            }
            if cur.msrs != msrs {
                cur.msrs = msrs;
                patched += 1;
            }
            if cur.xsave != xsave {
                cur.xsave = xsave;
                patched += 1;
            }
            if cur.lapic != lapic {
                cur.lapic = lapic;
                patched += 1;
            }
            if cur.lapic_regs != lapic_regs {
                cur.lapic_regs = lapic_regs;
                patched += 1;
            }
            if cur.mtrr != mtrr {
                cur.mtrr = mtrr;
                patched += 1;
            }
        }
    }
    if out.ioapic != ioapic {
        out.ioapic = ioapic;
        patched += 1;
    }
    if out.pit != pit {
        out.pit = pit;
        patched += 1;
    }
    if out.devices != devices {
        out.devices = devices;
        patched += 1;
    }
    if out.memory != memory {
        out.memory = memory;
        patched += 1;
    }
    (out, patched)
}

/// The crash-recovery engine: takes the dying hypervisor and the always-on
/// checkpointer, micro-reboots into the rescue hypervisor over the
/// pre-staged kexec+PRAM image, and adopts every VM from its freshest
/// persisted checkpoint.
pub struct UnplannedRecovery<'r> {
    registry: &'r HypervisorRegistry,
    cost: CostModel,
    faults: FaultPlan,
}

impl<'r> UnplannedRecovery<'r> {
    /// Creates a recovery engine over a hypervisor pool.
    pub fn new(registry: &'r HypervisorRegistry) -> Self {
        UnplannedRecovery {
            registry,
            cost: CostModel::paper_calibrated(),
            faults: FaultPlan::disarmed(),
        }
    }

    /// Replaces the cost model.
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Installs a fault plan so `MicroRebooted` / `RestoredFromCheckpoint`
    /// recoveries land in the shared fault log.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Recovers from a hypervisor crash: post-mortem state-loss sweep,
    /// watchdog detection, rescue kexec into the checkpointer's target,
    /// VM discovery from the PRAM UISR blob names alone, adoption of the
    /// in-place guest memory, and resume.
    ///
    /// `crashed` is consumed — its HV State dies with the old kernel.
    /// Guest memory stays in place and survives byte-identical (verified
    /// against a crash-instant checksum built from the checkpointer's
    /// cached per-extent partials).
    pub fn recover(
        &self,
        machine: &mut Machine,
        crashed: Box<dyn Hypervisor>,
        ckpt: WarmCheckpointer,
    ) -> Result<(Box<dyn Hypervisor>, RecoveryReport), HtpError> {
        let target = ckpt.target;
        if !self.registry.contains(target) {
            return Err(HtpError::UnknownHypervisor(target.name().to_string()));
        }
        let perf = machine.spec().perf();
        let clock = machine.clock().clone();
        let pool = ckpt.pool;
        let t_crash = clock.now();

        // Post-mortem sweep: ground-truth staleness at the crash instant.
        // The simulator reads the dying hypervisor's dirty logs directly;
        // a real watchdog extracts the same numbers from the crash dump.
        let mut crashed = crashed;
        let mut losses = Vec::with_capacity(ckpt.vms.len());
        let mut crash_checksums = Vec::with_capacity(ckpt.vms.len());
        for (k, vm) in ckpt.vms.iter().enumerate() {
            let tail = crashed.collect_dirty(ckpt.ids[k]).unwrap_or_default();
            losses.push(VmLoss {
                name: vm.name.clone(),
                loss_pages: vm.persisted_staleness + tail.len() as u64,
                checkpoint_lag_pages: vm.staleness_at_tick_end,
                tail_pages: tail.len() as u64,
            });
            // Crash-instant memory checksum: the cached partials are valid
            // except for extents dirtied since they were computed — which
            // is exactly pending ∪ tail.
            let mut dirty = vm.pending.clone();
            dirty.extend(tail);
            let ext = vm.dirty_extent_indices(&dirty);
            let mut partials = vm.partials.clone();
            machine
                .ram()
                .refresh_partials_with_pool(&vm.extents, &mut partials, &ext, &pool);
            crash_checksums.push(combine_partials(&partials));
        }
        let total_loss: u64 = losses.iter().map(|l| l.loss_pages).sum();
        self.faults.record_recovery(
            InjectionPoint::HypervisorCrash,
            RecoveryAction::MicroRebooted,
            &format!(
                "{} crashed; micro-rebooting into {} with {} warm checkpoints ({} stale pages)",
                crashed.kind().name(),
                target.name(),
                ckpt.vms.len(),
                total_loss
            ),
        );
        // HV State dies with the crashed kernel. Guest memory stays put.
        drop(crashed);

        // Watchdog window, then the pre-staged rescue kexec — a dead
        // hypervisor cannot stage anything, so the image must already be
        // armed (the checkpointer re-arms it on every persist).
        clock.advance(ckpt.cfg.detection);
        machine.kexec()?;
        let total_gb: f64 = ckpt.vms.iter().map(|v| v.gb).sum();
        let total_entries = ckpt.handle.stats().entries;
        let reboot_cost = self
            .cost
            .reboot(&perf, target.boot_target(), total_gb, total_entries);
        clock.advance(reboot_cost);

        // Early boot: locate the freshest checkpoint directory from the
        // rescue command line.
        let pram_ptr = hypertp_pram::fs::pram_ptr_from_cmdline(machine.booted_cmdline()).ok_or(
            HtpError::Pram(hypertp_pram::PramError::BadMagic {
                mfn: hypertp_machine::Mfn(0),
            }),
        )?;
        let image = PramImage::parse(machine.ram(), pram_ptr)?;
        image.verify().map_err(HtpError::Pram)?;
        image.reserve_all(machine.ram_mut())?;
        let scrubbed = machine.ram_mut().scrub_unreserved();

        let mut target_hv = self.registry.create(target, machine)?;

        // Discover the VMs from the UISR blob names alone — there is no
        // source hypervisor left to enumerate them.
        let blob_files: Vec<&PramFile> = image
            .files
            .iter()
            .filter(|f| uisr_store::is_uisr_file(f))
            .collect();
        let decoded = {
            let machine_ref: &Machine = machine;
            let blob_ref = &blob_files;
            pool.map_indices(blob_files.len(), |i| -> Result<UisrVm, HtpError> {
                let blob = uisr_store::load_blob(machine_ref.ram(), blob_ref[i])?;
                Ok(hypertp_uisr::decode(&blob)?)
            })
            .results
        };
        let mut warnings = Vec::new();
        let mut adopted = Vec::new();
        for (file, uisr) in blob_files.iter().zip(decoded) {
            let name = uisr_store::vm_name_from_uisr_file(file).expect("filtered as UISR file");
            let guest = image
                .file(name)
                .ok_or_else(|| HtpError::IncompatibleState {
                    section: "PRAM",
                    detail: format!("no guest-memory file for VM '{name}'"),
                })?;
            let restored = target_hv.adopt_vm(machine, &uisr?, &guest.mappings)?;
            warnings.extend(restored.warnings.iter().cloned());
            adopted.push((name.to_string(), restored.id));
        }
        let restore_list: Vec<(f64, u32)> = ckpt.vms.iter().map(|v| (v.gb, v.vcpus)).collect();
        let restore_cost = self.cost.restore(&perf, &restore_list, true);
        clock.advance(restore_cost);

        // Integrity: crash-instant guest memory must have survived the
        // micro-reboot byte-identical (only registers roll back).
        for (k, vm) in ckpt.vms.iter().enumerate() {
            let id = target_hv
                .find_vm(&vm.name)
                .ok_or_else(|| HtpError::IntegrityViolation {
                    vm_name: vm.name.clone(),
                })?;
            let map = target_hv.guest_memory_map(id)?;
            let extents: Vec<_> = map.iter().map(|(_, e)| *e).collect();
            if machine.ram().checksum_with_pool(&extents, &pool) != crash_checksums[k] {
                return Err(HtpError::IntegrityViolation {
                    vm_name: vm.name.clone(),
                });
            }
            if !extents.iter().all(|e| machine.ram().is_allocated(e.base)) {
                return Err(HtpError::IntegrityViolation {
                    vm_name: vm.name.clone(),
                });
            }
        }

        // Resume every VM and log its restoration.
        for (name, id) in &adopted {
            target_hv.resume_vm(*id)?;
            let loss = losses
                .iter()
                .find(|l| &l.name == name)
                .map(|l| l.loss_pages)
                .unwrap_or(0);
            self.faults.record_recovery(
                InjectionPoint::HypervisorCrash,
                RecoveryAction::RestoredFromCheckpoint,
                &format!("{name}: restored from warm checkpoint ({loss} stale pages lost)"),
            );
        }
        clock.advance(perf.cpu(self.cost.resume_ghz_s_per_vm * adopted.len() as f64));
        let t_resumed = clock.now();

        // Cleanup: blob frames and metadata are ephemeral; guest frames
        // stay allocated (adopted) and only drop their reservations.
        for file in image.files.iter().filter(|f| uisr_store::is_uisr_file(f)) {
            uisr_store::release_blob(machine.ram_mut(), file)?;
        }
        image.release_metadata(machine.ram_mut())?;
        for file in image.files.iter().filter(|f| !uisr_store::is_uisr_file(f)) {
            for (_, e) in &file.mappings {
                machine.ram_mut().unreserve_and_free(e.base, e.pages())?;
            }
        }
        let network = machine.bring_up_nic();

        let recovery_latency = t_resumed.duration_since(t_crash);
        let build_list: Vec<(f64, u64)> = ckpt.vms.iter().map(|v| (v.gb, v.entries)).collect();
        let xlate_list: Vec<(f64, u32, u64)> = ckpt
            .vms
            .iter()
            .map(|v| (v.gb, v.vcpus, v.entries))
            .collect();
        let cold_latency = recovery_latency
            + self.cost.pram_build(&perf, &build_list)
            + self.cost.translate(&perf, &xlate_list);

        let report = RecoveryReport {
            vm_count: adopted.len(),
            detection: ckpt.cfg.detection,
            reboot: reboot_cost,
            restoration: recovery_latency - ckpt.cfg.detection - reboot_cost,
            network,
            recovery_latency,
            cold_latency,
            losses,
            loss_bound_pages: ckpt.cfg.staleness_bound_pages,
            checkpoint_ticks: ckpt.ticks,
            checkpoint_refreshes: ckpt.refreshes,
            background_time: ckpt.background,
            scrubbed_frames: scrubbed,
            warnings,
        };
        Ok((target_hv, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::SimpleHv;
    use crate::vm::{VmConfig, VmState};
    use hypertp_machine::MachineSpec;

    fn registry() -> HypervisorRegistry {
        let mut r = HypervisorRegistry::new();
        r.register(HypervisorKind::Xen, |_m| {
            Box::new(SimpleHv::new(HypervisorKind::Xen))
        });
        r.register(HypervisorKind::Kvm, |_m| {
            Box::new(SimpleHv::new(HypervisorKind::Kvm))
        });
        r
    }

    fn machine_gb(gb: u64) -> Machine {
        let mut spec = MachineSpec::m1();
        spec.ram_gb = gb;
        Machine::new(spec)
    }

    fn cfg_bound(bound: u64) -> CheckpointConfig {
        CheckpointConfig {
            staleness_bound_pages: bound,
            ..CheckpointConfig::default()
        }
    }

    /// Pause/save/resume a VM to snapshot its architectural state without
    /// perturbing it.
    fn snapshot(hv: &mut dyn Hypervisor, m: &Machine, id: VmId) -> UisrVm {
        hv.pause_vm(id).unwrap();
        let u = hv.save_uisr(m, id).unwrap();
        hv.resume_vm(id).unwrap();
        u
    }

    #[test]
    fn crash_recovery_preserves_memory_and_restores_a_legal_state() {
        let reg = registry();
        let mut m = machine_gb(8);
        let mut src: Box<dyn Hypervisor> = Box::new(SimpleHv::new(HypervisorKind::Xen));
        let mut ids = Vec::new();
        for i in 0..3u64 {
            let id = src
                .create_vm(&mut m, &VmConfig::small(format!("svc{i}")))
                .unwrap();
            src.write_guest(&mut m, id, Gfn(100 + i), 0xbeef_0000 + i)
                .unwrap();
            ids.push(id);
        }
        let mut ckpt =
            WarmCheckpointer::start(&mut m, src.as_mut(), HypervisorKind::Kvm, cfg_bound(64))
                .unwrap();

        // Legal pre-crash states: the initial checkpoint plus every
        // completed tick's state.
        let mut legal: Vec<Vec<UisrVm>> = ids
            .iter()
            .map(|&id| vec![snapshot(src.as_mut(), &m, id)])
            .collect();
        for _ in 0..4 {
            let r = ckpt.tick(&mut m, src.as_mut(), 40).unwrap();
            assert!(r.crashed.is_none());
            for (k, &id) in ids.iter().enumerate() {
                legal[k].push(snapshot(src.as_mut(), &m, id));
            }
        }
        assert!(ckpt.refreshes() > 0, "40 pages/tick must cross a 64 bound");

        // Crash-window writes: dirtied after the last tick, preserved in
        // place by the recovery.
        for (i, &id) in ids.iter().enumerate() {
            src.write_guest(&mut m, id, Gfn(200 + i as u64), 0xdead_0000 + i as u64)
                .unwrap();
        }

        let engine = UnplannedRecovery::new(&reg);
        let (hv, report) = engine.recover(&mut m, src, ckpt).unwrap();
        assert_eq!(hv.kind(), HypervisorKind::Kvm);
        assert_eq!(report.vm_count, 3);
        assert_eq!(m.boot_count(), 2);
        assert!(report.within_bound(), "{:?}", report.losses);
        assert!(report.recovery_latency < report.cold_latency);
        let mut hv = hv;
        for i in 0..3u64 {
            let name = format!("svc{i}");
            let id = hv.find_vm(&name).unwrap();
            assert_eq!(hv.vm_state(id).unwrap(), VmState::Running);
            // Memory (including crash-window writes) survived in place.
            assert_eq!(
                hv.read_guest(&m, id, Gfn(100 + i)).unwrap(),
                0xbeef_0000 + i
            );
            assert_eq!(
                hv.read_guest(&m, id, Gfn(200 + i)).unwrap(),
                0xdead_0000 + i
            );
            // Registers rolled back to a legal pre-crash state.
            let restored = snapshot(hv.as_mut(), &m, id);
            let k = i as usize;
            assert!(
                legal[k].iter().any(|u| u.vcpus == restored.vcpus),
                "{name}: restored vCPU state must equal a recorded checkpoint"
            );
        }
    }

    #[test]
    fn crash_phases_all_recover_from_the_persisted_image() {
        // Arm the crash gate at each in-tick phase (the gate is consulted
        // 3× per tick: warm-round, refresh, finalize) and once between
        // ticks (idle), and verify every phase recovers with no VM lost.
        for (ordinal, phase) in [
            (1, Some(CrashPhase::WarmRound)),
            (2, Some(CrashPhase::Refresh)),
            (3, Some(CrashPhase::Finalize)),
            (4, None), // survives the first tick; fires at the idle gate
        ] {
            let reg = registry();
            let mut m = machine_gb(8);
            let mut src: Box<dyn Hypervisor> = Box::new(SimpleHv::new(HypervisorKind::Xen));
            let id = src.create_vm(&mut m, &VmConfig::small("vm0")).unwrap();
            src.write_guest(&mut m, id, Gfn(7), 0x7777).unwrap();
            let plan = FaultPlan::new(0x9e8e);
            plan.arm_calls(InjectionPoint::HypervisorCrash, &[ordinal]);
            let mut ckpt = WarmCheckpointer::start_with(
                &mut m,
                src.as_mut(),
                HypervisorKind::Kvm,
                cfg_bound(8),
                CostModel::paper_calibrated(),
                plan.clone(),
                WorkerPool::from_env(),
            )
            .unwrap();
            let r = ckpt.tick(&mut m, src.as_mut(), 16).unwrap();
            assert_eq!(r.crashed, phase, "ordinal {ordinal}");
            if r.crashed.is_none() {
                assert!(crash_gate(&plan, "idle watchdog"), "ordinal {ordinal}");
            }
            let engine = UnplannedRecovery::new(&reg).with_faults(plan.clone());
            let (hv, report) = engine.recover(&mut m, src, ckpt).unwrap();
            assert_eq!(report.vm_count, 1, "ordinal {ordinal}");
            assert!(report.within_bound(), "ordinal {ordinal}");
            let id2 = hv.find_vm("vm0").expect("vm0 must survive the crash");
            assert_eq!(hv.read_guest(&m, id2, Gfn(7)).unwrap(), 0x7777);
            assert!(plan.log().recovered_via(
                InjectionPoint::HypervisorCrash,
                RecoveryAction::MicroRebooted
            ));
            assert!(plan.log().recovered_via(
                InjectionPoint::HypervisorCrash,
                RecoveryAction::RestoredFromCheckpoint
            ));
        }
    }

    #[test]
    fn finalize_crash_restores_older_persisted_checkpoint() {
        // A crash between cache refresh and persist must restore the
        // *previous* persisted state, and the staleness counters keep
        // counting against it (no bound violation is masked).
        let reg = registry();
        let mut m = machine_gb(8);
        let mut src: Box<dyn Hypervisor> = Box::new(SimpleHv::new(HypervisorKind::Xen));
        let id = src.create_vm(&mut m, &VmConfig::small("vm0")).unwrap();
        let plan = FaultPlan::new(0xf1fa);
        // Tick 1 completes (3 clean gate draws); tick 2 crashes at
        // finalize (6th draw).
        plan.arm_calls(InjectionPoint::HypervisorCrash, &[6]);
        let mut ckpt = WarmCheckpointer::start_with(
            &mut m,
            src.as_mut(),
            HypervisorKind::Kvm,
            cfg_bound(8),
            CostModel::paper_calibrated(),
            plan.clone(),
            WorkerPool::from_env(),
        )
        .unwrap();
        let r1 = ckpt.tick(&mut m, src.as_mut(), 16).unwrap();
        assert!(r1.persisted && r1.crashed.is_none());
        let persisted_state = snapshot(src.as_mut(), &m, id);
        let r2 = ckpt.tick(&mut m, src.as_mut(), 16).unwrap();
        assert_eq!(r2.crashed, Some(CrashPhase::Finalize));
        let engine = UnplannedRecovery::new(&reg).with_faults(plan);
        let (hv, report) = engine.recover(&mut m, src, ckpt).unwrap();
        let mut hv = hv;
        let id2 = hv.find_vm("vm0").unwrap();
        let restored = snapshot(hv.as_mut(), &m, id2);
        assert_eq!(
            restored.vcpus, persisted_state.vcpus,
            "finalize crash restores the last persisted checkpoint"
        );
        // The tick-2 dirt counts as loss (it was refreshed in memory but
        // never persisted).
        assert!(report.losses[0].loss_pages > 0);
    }

    #[test]
    fn field_diff_toggle_is_behavior_identical() {
        let run = |field_diff: bool| {
            let reg = registry();
            let mut m = machine_gb(8);
            let mut src: Box<dyn Hypervisor> = Box::new(SimpleHv::new(HypervisorKind::Xen));
            let id = src
                .create_vm(&mut m, &VmConfig::small("vm0").with_vcpus(2))
                .unwrap();
            src.write_guest(&mut m, id, Gfn(3), 0x33).unwrap();
            let cfg = CheckpointConfig {
                field_diff,
                ..cfg_bound(8)
            };
            let mut ckpt =
                WarmCheckpointer::start(&mut m, src.as_mut(), HypervisorKind::Kvm, cfg).unwrap();
            let mut fields = 0u64;
            let mut sections = 0u64;
            for _ in 0..3 {
                let r = ckpt.tick(&mut m, src.as_mut(), 16).unwrap();
                fields += r.patched_fields;
                sections += r.patched_sections;
            }
            let cadence = ckpt.cadence_render();
            let engine = UnplannedRecovery::new(&reg);
            let (mut hv, report) = engine.recover(&mut m, src, ckpt).unwrap();
            let id2 = hv.find_vm("vm0").unwrap();
            let restored = snapshot(hv.as_mut(), &m, id2);
            (restored, report.render(), cadence, fields, sections)
        };
        let off = run(false);
        let on = run(true);
        // Identical restored state, report and cadence either way.
        assert_eq!(off.0, on.0);
        assert_eq!(off.1, on.1);
        assert_eq!(off.2, on.2);
        // Only the telemetry granularity differs: off counts whole
        // sections, on counts individual per-vCPU blocks.
        assert_eq!(off.3, 0, "field_diff off must not count fields");
        assert_eq!(on.4, 0, "field_diff on must not count whole sections");
        assert!(off.4 > 0 && on.3 > 0, "warm refreshes patched something");
    }

    #[test]
    fn patch_uisr_fields_equals_fresh_and_counts_blocks() {
        let mut warm = UisrVm::new("vm0");
        warm.vcpus = vec![VcpuState::reset(0), VcpuState::reset(1)];
        let mut fresh = warm.clone();
        // Identity: nothing changed → zero patches.
        let (same, n) = patch_uisr_fields(&warm, fresh.clone());
        assert_eq!(same, warm);
        assert_eq!(n, 0);
        // One register block and one LAPIC page changed → exactly 2
        // patches, result equals fresh.
        fresh.vcpus[0].regs.rip = 0xabc;
        fresh.vcpus[1].lapic_regs[0] = 9;
        let (patched, n) = patch_uisr_fields(&warm, fresh.clone());
        assert_eq!(patched, fresh);
        assert_eq!(n, 2);
        // vCPU count change falls back to a whole-section patch.
        fresh.vcpus.push(VcpuState::reset(2));
        let (patched, n) = patch_uisr_fields(&warm, fresh.clone());
        assert_eq!(patched, fresh);
        assert_eq!(n, 1); // topology change collapses into 1 whole-section patch
    }

    #[test]
    fn zero_vm_host_recovers_cleanly() {
        let reg = registry();
        let mut m = machine_gb(4);
        let mut src: Box<dyn Hypervisor> = Box::new(SimpleHv::new(HypervisorKind::Xen));
        let mut ckpt = WarmCheckpointer::start(
            &mut m,
            src.as_mut(),
            HypervisorKind::Kvm,
            CheckpointConfig::default(),
        )
        .unwrap();
        ckpt.tick(&mut m, src.as_mut(), 10).unwrap();
        let engine = UnplannedRecovery::new(&reg);
        let (hv, report) = engine.recover(&mut m, src, ckpt).unwrap();
        assert_eq!(hv.kind(), HypervisorKind::Kvm);
        assert_eq!(report.vm_count, 0);
        assert!(report.within_bound());
    }

    #[test]
    fn recovery_is_deterministic_for_a_seed() {
        let run = || {
            let reg = registry();
            let mut m = machine_gb(8);
            let mut src: Box<dyn Hypervisor> = Box::new(SimpleHv::new(HypervisorKind::Xen));
            for i in 0..2 {
                src.create_vm(&mut m, &VmConfig::small(format!("vm{i}")))
                    .unwrap();
            }
            let plan = FaultPlan::new(0xdede);
            plan.arm_calls(InjectionPoint::HypervisorCrash, &[5]);
            let mut ckpt = WarmCheckpointer::start_with(
                &mut m,
                src.as_mut(),
                HypervisorKind::Kvm,
                cfg_bound(16),
                CostModel::paper_calibrated(),
                plan.clone(),
                WorkerPool::from_env(),
            )
            .unwrap();
            for _ in 0..3 {
                if ckpt
                    .tick(&mut m, src.as_mut(), 12)
                    .unwrap()
                    .crashed
                    .is_some()
                {
                    break;
                }
            }
            let engine = UnplannedRecovery::new(&reg).with_faults(plan.clone());
            let (_hv, report) = engine.recover(&mut m, src, ckpt).unwrap();
            format!("{}\n{}", report.render(), plan.log().render())
        };
        assert_eq!(run(), run());
    }
}
