//! MigrationTP → InPlaceTP fallback.
//!
//! The paper presents the two transplant mechanisms as alternatives chosen
//! per host; operationally they also compose as a *recovery chain*: when a
//! live migration is abandoned (the link failed past its retry budget),
//! the VMs are still running untouched on the source, so the host can
//! shrink its vulnerability window anyway by transplanting **in place**.
//! This module provides the policy glue: try migration, and on a
//! *recoverable* failure run the in-place path instead, recording the
//! decision in the shared [`FaultPlan`]'s log.
//!
//! The module is deliberately mechanism-agnostic (closures, not engine
//! types): `hypertp-migrate` depends on this crate, so the concrete
//! MigrationTP engine cannot appear here. Callers hand in the two attempts
//! and get back which path succeeded.

use hypertp_sim::fault::{FaultPlan, InjectionPoint, RecoveryAction};

use crate::error::HtpError;

/// Which transplant path ultimately succeeded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FallbackOutcome<M, I> {
    /// The migration went through; no fallback was needed.
    Migrated(M),
    /// The migration failed recoverably and the in-place transplant
    /// shrank the window instead.
    FellBack {
        /// The error that ended the migration attempt.
        migration_error: HtpError,
        /// The in-place transplant's result.
        inplace: I,
    },
}

impl<M, I> FallbackOutcome<M, I> {
    /// True when the fallback path ran.
    pub fn fell_back(&self) -> bool {
        matches!(self, FallbackOutcome::FellBack { .. })
    }
}

/// True for migration errors that leave the source VMs intact and running,
/// so an in-place transplant is a sound second attempt.
///
/// A [`HtpError::LinkFailure`] is the canonical case: the engine tears
/// down the half-built destination shell and never pauses the source.
/// Anything else (integrity violations, codec errors after pause, …) may
/// have partially consumed the source state and must propagate.
pub fn migration_error_is_recoverable(err: &HtpError) -> bool {
    matches!(err, HtpError::LinkFailure { .. })
}

/// Attempts `migrate`; on a recoverable failure (see
/// [`migration_error_is_recoverable`]) runs `inplace` instead and records
/// a [`RecoveryAction::FellBackToInPlace`] in `faults`' log.
///
/// Non-recoverable migration errors and in-place errors propagate
/// unchanged.
///
/// Because a recoverable failure leaves the source VMs *running*, the
/// fallback closure may use the incremental pre-pause path
/// ([`crate::Optimizations::incremental_translate`]): the warm UISR
/// snapshot happens after the fallback decision but before the blackout,
/// so a host that just lost its migration window still gets the shortened
/// in-place downtime. `tests/incremental_translate.rs` exercises this
/// chain end to end.
pub fn migrate_or_inplace<M, I>(
    faults: &FaultPlan,
    host: &str,
    migrate: impl FnOnce() -> Result<M, HtpError>,
    inplace: impl FnOnce() -> Result<I, HtpError>,
) -> Result<FallbackOutcome<M, I>, HtpError> {
    match migrate() {
        Ok(m) => Ok(FallbackOutcome::Migrated(m)),
        Err(e) if migration_error_is_recoverable(&e) => {
            faults.record_recovery(
                InjectionPoint::LinkDrop,
                RecoveryAction::FellBackToInPlace,
                &format!("{host}: migration failed ({e}); transplanting in place"),
            );
            let i = inplace()?;
            Ok(FallbackOutcome::FellBack {
                migration_error: e,
                inplace: i,
            })
        }
        Err(e) => Err(e),
    }
}

/// Verdict of one host-upgrade attempt under
/// [`InjectionPoint::HostFailure`] injection — see [`host_failure_gate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostGate {
    /// No fault fired; the upgrade attempt succeeds.
    Proceed,
    /// The attempt faulted within the retry budget: the host goes back in
    /// the queue (or retries in place) with one more failure on record.
    Retry,
    /// The attempt faulted past the retry budget: the host is dropped
    /// from the plan/wave and accounted as residual exposure.
    Exclude,
}

/// The shared retry/requeue/exclude decision for rolling host upgrades.
///
/// Both the campaign's wave orchestrator and the plan executor gate every
/// host-upgrade attempt through this: consult the fault plan at `site`,
/// and on an injection either grant a retry (`prior_failures <
/// max_retries`) or exclude the host, recording the canonical
/// [`RecoveryAction`] either way. Centralizing the wording and the
/// off-by-one (`failures > max_retries` excludes) keeps the two
/// orchestrators' fault logs and accounting consistent.
///
/// Must be called from the orchestrating thread only (the fault plan's
/// consultation order is part of the deterministic replay contract).
pub fn host_failure_gate(
    faults: &FaultPlan,
    site: &str,
    prior_failures: u32,
    max_retries: u32,
) -> HostGate {
    if !faults.should_inject(InjectionPoint::HostFailure, site) {
        return HostGate::Proceed;
    }
    let failures = prior_failures + 1;
    if failures > max_retries {
        faults.record_recovery(
            InjectionPoint::HostFailure,
            RecoveryAction::ExcludedHost,
            &format!("{site}: excluded after {failures} failed attempts"),
        );
        HostGate::Exclude
    } else {
        faults.record_recovery(
            InjectionPoint::HostFailure,
            RecoveryAction::RequeuedHost,
            &format!("{site}: attempt {failures} failed, requeued"),
        );
        HostGate::Retry
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link_failure() -> HtpError {
        HtpError::LinkFailure {
            vm_name: "vm0".into(),
            retries: 4,
        }
    }

    #[test]
    fn migration_success_skips_fallback() {
        let faults = FaultPlan::disarmed();
        let out = migrate_or_inplace(
            &faults,
            "h0",
            || Ok::<_, HtpError>(42u32),
            || -> Result<u32, HtpError> { panic!("fallback must not run") },
        )
        .unwrap();
        assert_eq!(out, FallbackOutcome::Migrated(42));
        assert!(faults.log().is_empty());
    }

    #[test]
    fn link_failure_falls_back_and_logs() {
        let faults = FaultPlan::disarmed();
        let out = migrate_or_inplace(
            &faults,
            "h0",
            || Err::<u32, _>(link_failure()),
            || Ok::<_, HtpError>("inplace-report"),
        )
        .unwrap();
        assert!(out.fell_back());
        match out {
            FallbackOutcome::FellBack {
                migration_error,
                inplace,
            } => {
                assert_eq!(migration_error, link_failure());
                assert_eq!(inplace, "inplace-report");
            }
            _ => unreachable!(),
        }
        assert!(faults
            .log()
            .recovered_via(InjectionPoint::LinkDrop, RecoveryAction::FellBackToInPlace));
    }

    #[test]
    fn non_recoverable_errors_propagate() {
        let faults = FaultPlan::disarmed();
        let err = migrate_or_inplace(
            &faults,
            "h0",
            || {
                Err::<u32, _>(HtpError::IntegrityViolation {
                    vm_name: "vm0".into(),
                })
            },
            || -> Result<u32, HtpError> { panic!("fallback must not run") },
        )
        .unwrap_err();
        assert!(matches!(err, HtpError::IntegrityViolation { .. }));
        assert!(faults.log().is_empty());
    }

    #[test]
    fn gate_proceeds_when_nothing_fires() {
        let faults = FaultPlan::disarmed();
        assert_eq!(
            host_failure_gate(&faults, "wave host c0", 0, 2),
            HostGate::Proceed
        );
        assert!(faults.log().is_empty());
    }

    #[test]
    fn gate_retries_then_excludes_past_budget() {
        let faults = FaultPlan::disarmed();
        faults.arm_calls(InjectionPoint::HostFailure, &[1, 2, 3]);
        assert_eq!(
            host_failure_gate(&faults, "wave host c0", 0, 2),
            HostGate::Retry
        );
        assert_eq!(
            host_failure_gate(&faults, "wave host c0", 1, 2),
            HostGate::Retry
        );
        assert_eq!(
            host_failure_gate(&faults, "wave host c0", 2, 2),
            HostGate::Exclude
        );
        let log = faults.log();
        assert_eq!(
            log.recoveries(InjectionPoint::HostFailure, RecoveryAction::RequeuedHost),
            2
        );
        assert_eq!(
            log.recoveries(InjectionPoint::HostFailure, RecoveryAction::ExcludedHost),
            1
        );
    }

    #[test]
    fn gate_with_zero_retries_excludes_immediately() {
        let faults = FaultPlan::disarmed();
        faults.arm_once(InjectionPoint::HostFailure);
        assert_eq!(host_failure_gate(&faults, "h0", 0, 0), HostGate::Exclude);
    }

    #[test]
    fn inplace_failure_propagates_after_fallback() {
        let faults = FaultPlan::disarmed();
        let err = migrate_or_inplace(
            &faults,
            "h0",
            || Err::<u32, _>(link_failure()),
            || Err::<u32, _>(HtpError::Unsupported("no kexec")),
        )
        .unwrap_err();
        assert_eq!(err, HtpError::Unsupported("no kexec"));
        // The fallback decision was still logged before the attempt.
        assert!(faults
            .log()
            .recovered_via(InjectionPoint::LinkDrop, RecoveryAction::FellBackToInPlace));
    }
}
