//! MigrationTP → InPlaceTP fallback.
//!
//! The paper presents the two transplant mechanisms as alternatives chosen
//! per host; operationally they also compose as a *recovery chain*: when a
//! live migration is abandoned (the link failed past its retry budget),
//! the VMs are still running untouched on the source, so the host can
//! shrink its vulnerability window anyway by transplanting **in place**.
//! This module provides the policy glue: try migration, and on a
//! *recoverable* failure run the in-place path instead, recording the
//! decision in the shared [`FaultPlan`]'s log.
//!
//! The module is deliberately mechanism-agnostic (closures, not engine
//! types): `hypertp-migrate` depends on this crate, so the concrete
//! MigrationTP engine cannot appear here. Callers hand in the two attempts
//! and get back which path succeeded.

use hypertp_sim::fault::{FaultPlan, InjectionPoint, RecoveryAction};

use crate::error::HtpError;

/// Which transplant path ultimately succeeded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FallbackOutcome<M, I> {
    /// The migration went through; no fallback was needed.
    Migrated(M),
    /// The migration failed recoverably and the in-place transplant
    /// shrank the window instead.
    FellBack {
        /// The error that ended the migration attempt.
        migration_error: HtpError,
        /// The in-place transplant's result.
        inplace: I,
    },
}

impl<M, I> FallbackOutcome<M, I> {
    /// True when the fallback path ran.
    pub fn fell_back(&self) -> bool {
        matches!(self, FallbackOutcome::FellBack { .. })
    }
}

/// True for migration errors that leave the source VMs intact and running,
/// so an in-place transplant is a sound second attempt.
///
/// A [`HtpError::LinkFailure`] is the canonical case: the engine tears
/// down the half-built destination shell and never pauses the source.
/// Anything else (integrity violations, codec errors after pause, …) may
/// have partially consumed the source state and must propagate.
pub fn migration_error_is_recoverable(err: &HtpError) -> bool {
    matches!(err, HtpError::LinkFailure { .. })
}

/// Attempts `migrate`; on a recoverable failure (see
/// [`migration_error_is_recoverable`]) runs `inplace` instead and records
/// a [`RecoveryAction::FellBackToInPlace`] in `faults`' log.
///
/// Non-recoverable migration errors and in-place errors propagate
/// unchanged.
///
/// Because a recoverable failure leaves the source VMs *running*, the
/// fallback closure may use the incremental pre-pause path
/// ([`crate::Optimizations::incremental_translate`]): the warm UISR
/// snapshot happens after the fallback decision but before the blackout,
/// so a host that just lost its migration window still gets the shortened
/// in-place downtime. `tests/incremental_translate.rs` exercises this
/// chain end to end.
pub fn migrate_or_inplace<M, I>(
    faults: &FaultPlan,
    host: &str,
    migrate: impl FnOnce() -> Result<M, HtpError>,
    inplace: impl FnOnce() -> Result<I, HtpError>,
) -> Result<FallbackOutcome<M, I>, HtpError> {
    match migrate() {
        Ok(m) => Ok(FallbackOutcome::Migrated(m)),
        Err(e) if migration_error_is_recoverable(&e) => {
            faults.record_recovery(
                InjectionPoint::LinkDrop,
                RecoveryAction::FellBackToInPlace,
                &format!("{host}: migration failed ({e}); transplanting in place"),
            );
            let i = inplace()?;
            Ok(FallbackOutcome::FellBack {
                migration_error: e,
                inplace: i,
            })
        }
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link_failure() -> HtpError {
        HtpError::LinkFailure {
            vm_name: "vm0".into(),
            retries: 4,
        }
    }

    #[test]
    fn migration_success_skips_fallback() {
        let faults = FaultPlan::disarmed();
        let out = migrate_or_inplace(
            &faults,
            "h0",
            || Ok::<_, HtpError>(42u32),
            || -> Result<u32, HtpError> { panic!("fallback must not run") },
        )
        .unwrap();
        assert_eq!(out, FallbackOutcome::Migrated(42));
        assert!(faults.log().is_empty());
    }

    #[test]
    fn link_failure_falls_back_and_logs() {
        let faults = FaultPlan::disarmed();
        let out = migrate_or_inplace(
            &faults,
            "h0",
            || Err::<u32, _>(link_failure()),
            || Ok::<_, HtpError>("inplace-report"),
        )
        .unwrap();
        assert!(out.fell_back());
        match out {
            FallbackOutcome::FellBack {
                migration_error,
                inplace,
            } => {
                assert_eq!(migration_error, link_failure());
                assert_eq!(inplace, "inplace-report");
            }
            _ => unreachable!(),
        }
        assert!(faults
            .log()
            .recovered_via(InjectionPoint::LinkDrop, RecoveryAction::FellBackToInPlace));
    }

    #[test]
    fn non_recoverable_errors_propagate() {
        let faults = FaultPlan::disarmed();
        let err = migrate_or_inplace(
            &faults,
            "h0",
            || {
                Err::<u32, _>(HtpError::IntegrityViolation {
                    vm_name: "vm0".into(),
                })
            },
            || -> Result<u32, HtpError> { panic!("fallback must not run") },
        )
        .unwrap_err();
        assert!(matches!(err, HtpError::IntegrityViolation { .. }));
        assert!(faults.log().is_empty());
    }

    #[test]
    fn inplace_failure_propagates_after_fallback() {
        let faults = FaultPlan::disarmed();
        let err = migrate_or_inplace(
            &faults,
            "h0",
            || Err::<u32, _>(link_failure()),
            || Err::<u32, _>(HtpError::Unsupported("no kexec")),
        )
        .unwrap_err();
        assert_eq!(err, HtpError::Unsupported("no kexec"));
        // The fallback decision was still logged before the attempt.
        assert!(faults
            .log()
            .recovered_via(InjectionPoint::LinkDrop, RecoveryAction::FellBackToInPlace));
    }
}
