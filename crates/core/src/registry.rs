//! The hypervisor pool: named factories for booting an `Htarget`.
//!
//! "The datacenter operators can have several hypervisors in their
//! repertoire, thus increasing the chance to find a safe replacement"
//! (§3.1). The registry maps a [`HypervisorKind`] to a constructor the
//! transplant engine invokes after the micro-reboot; the constructor plays
//! the role of the target hypervisor's boot path.

use std::collections::HashMap;

use hypertp_machine::Machine;
use hypertp_uisr::UisrVm;

use crate::error::HtpError;
use crate::hypervisor::{Hypervisor, HypervisorKind};

/// Constructor for a hypervisor: runs at (simulated) boot time and may
/// allocate HV State from the machine's RAM.
pub type HvFactory = Box<dyn Fn(&mut Machine) -> Box<dyn Hypervisor> + Send + Sync>;

/// A pre-flight compatibility validator: inspects a UISR description and
/// returns the issues the target hypervisor would have restoring it
/// (lossy fixes, unsupported topology). Used by the engine's strict mode
/// to abort *before* the micro-reboot's point of no return.
pub type UisrValidator = Box<dyn Fn(&UisrVm) -> Vec<String> + Send + Sync>;

/// A pool of bootable hypervisors.
#[derive(Default)]
pub struct HypervisorRegistry {
    factories: HashMap<HypervisorKind, HvFactory>,
    validators: HashMap<HypervisorKind, UisrValidator>,
}

impl HypervisorRegistry {
    /// Creates an empty pool.
    pub fn new() -> Self {
        HypervisorRegistry::default()
    }

    /// Registers (or replaces) a factory for `kind`.
    pub fn register(
        &mut self,
        kind: HypervisorKind,
        factory: impl Fn(&mut Machine) -> Box<dyn Hypervisor> + Send + Sync + 'static,
    ) -> &mut Self {
        self.factories.insert(kind, Box::new(factory));
        self
    }

    /// Registers a pre-flight validator for `kind`.
    pub fn register_validator(
        &mut self,
        kind: HypervisorKind,
        validator: impl Fn(&UisrVm) -> Vec<String> + Send + Sync + 'static,
    ) -> &mut Self {
        self.validators.insert(kind, Box::new(validator));
        self
    }

    /// Runs `kind`'s pre-flight validator over a UISR description.
    /// Returns no issues when no validator is registered.
    pub fn validate(&self, kind: HypervisorKind, uisr: &UisrVm) -> Vec<String> {
        self.validators
            .get(&kind)
            .map(|v| v(uisr))
            .unwrap_or_default()
    }

    /// Returns the registered kinds.
    pub fn kinds(&self) -> Vec<HypervisorKind> {
        let mut v: Vec<HypervisorKind> = self.factories.keys().copied().collect();
        v.sort_by_key(|k| k.name());
        v
    }

    /// True if `kind` can be booted.
    pub fn contains(&self, kind: HypervisorKind) -> bool {
        self.factories.contains_key(&kind)
    }

    /// Boots a hypervisor of the given kind on `machine`.
    pub fn create(
        &self,
        kind: HypervisorKind,
        machine: &mut Machine,
    ) -> Result<Box<dyn Hypervisor>, HtpError> {
        let f = self
            .factories
            .get(&kind)
            .ok_or_else(|| HtpError::UnknownHypervisor(kind.name().to_string()))?;
        Ok(f(machine))
    }
}

impl std::fmt::Debug for HypervisorRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HypervisorRegistry")
            .field("kinds", &self.kinds())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_kind_errors() {
        let reg = HypervisorRegistry::new();
        let mut spec = hypertp_machine::MachineSpec::m1();
        spec.ram_gb = 1;
        let mut m = Machine::new(spec);
        assert!(matches!(
            reg.create(HypervisorKind::Xen, &mut m),
            Err(HtpError::UnknownHypervisor(_))
        ));
        assert!(!reg.contains(HypervisorKind::Xen));
        assert!(reg.kinds().is_empty());
    }
}
