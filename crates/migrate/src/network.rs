//! The network link between migration source and destination.

use hypertp_sim::SimDuration;

/// A point-to-point link with a line rate, a streaming efficiency and a
/// fixed per-message latency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Link {
    /// Line rate in Gbit/s.
    pub gbps: f64,
    /// Fraction of line rate achievable for bulk streaming.
    pub efficiency: f64,
    /// One-way latency per message.
    pub latency: SimDuration,
}

impl Link {
    /// The paper's M1↔M1 link: 1 Gbps Ethernet.
    pub fn gigabit() -> Self {
        Link {
            gbps: 1.0,
            efficiency: 0.93,
            latency: SimDuration::from_micros(200),
        }
    }

    /// The cluster testbed's 10 Gbps network (§5.1).
    pub fn ten_gigabit() -> Self {
        Link {
            gbps: 10.0,
            efficiency: 0.93,
            latency: SimDuration::from_micros(50),
        }
    }

    /// A transfer time standing in for "never finishes" on a dead link
    /// (~31 years). Finite so schedule arithmetic cannot overflow, but
    /// large enough that any plan preferring it over an alternative is
    /// obviously wrong.
    pub const DEAD: SimDuration = SimDuration::from_secs(1_000_000_000);

    /// True when the link can actually move bytes (positive, finite
    /// effective rate). A zero-bandwidth or zero-efficiency link is
    /// unusable: planners must fall back to in-place upgrades.
    pub fn is_usable(&self) -> bool {
        let rate = self.gbps * self.efficiency;
        rate.is_finite() && rate > 0.0
    }

    /// Time to transfer `bytes` when `sharers` flows share the link.
    ///
    /// An unusable link (see [`Link::is_usable`]) returns [`Link::DEAD`]
    /// instead of the silent zero that `f64` division would produce.
    pub fn transfer(&self, bytes: u64, sharers: u32) -> SimDuration {
        if !self.is_usable() {
            return Link::DEAD;
        }
        let rate = self.gbps * self.efficiency / sharers.max(1) as f64;
        self.latency + SimDuration::from_secs_f64(bytes as f64 * 8.0 / (rate * 1e9))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gigabit_copies_1gb_in_about_9s() {
        let l = Link::gigabit();
        let t = l.transfer(1 << 30, 1).as_secs_f64();
        assert!((9.0..9.5).contains(&t), "t = {t}");
    }

    #[test]
    fn sharing_divides_bandwidth() {
        let l = Link::gigabit();
        let solo = l.transfer(1 << 20, 1);
        let shared = l.transfer(1 << 20, 4);
        assert!(shared.as_secs_f64() > 3.5 * solo.as_secs_f64());
    }

    #[test]
    fn zero_bandwidth_link_is_dead_not_instant() {
        let dead = Link {
            gbps: 0.0,
            ..Link::gigabit()
        };
        assert!(!dead.is_usable());
        // Regression: f64 division by zero used to clamp to ZERO, making
        // a dead link look *infinitely fast* to the planner.
        assert_eq!(dead.transfer(1 << 30, 1), Link::DEAD);
        assert_eq!(dead.transfer(0, 1), Link::DEAD);
        let no_eff = Link {
            efficiency: 0.0,
            ..Link::gigabit()
        };
        assert!(!no_eff.is_usable());
        assert_eq!(no_eff.transfer(4096, 2), Link::DEAD);
        assert!(Link::gigabit().is_usable());
    }

    #[test]
    fn ten_gig_is_ten_times_faster() {
        let a = Link::gigabit().transfer(1 << 30, 1).as_secs_f64();
        let b = Link::ten_gigabit().transfer(1 << 30, 1).as_secs_f64();
        assert!((a / b) > 9.0 && (a / b) < 11.0);
    }
}
