//! The network link between migration source and destination, and the
//! wire-frame vocabulary of the content-aware migration path.
//!
//! The content-aware wire path (PR 3) never ships a page it can avoid
//! shipping: all-zero pages become a 1-entry [`WireFrame::Zero`] marker,
//! pages whose content the destination already holds (from an earlier
//! round, or from another VM sharing the link in `migrate_many`) become a
//! digest-only [`WireFrame::Dup`], and re-dirtied pages become an XOR+RLE
//! [`WireFrame::Delta`] against the last version the destination acked —
//! falling back to [`WireFrame::Raw`] whenever the delta would not pay.
//! [`WireStats`] accounts bytes per frame kind so reports and benches can
//! state exactly where the savings came from.

use hypertp_machine::PAGE_SIZE;
use hypertp_sim::hash::Digest128;
use hypertp_sim::SimDuration;

/// Framing metadata per wire frame: kind tag, GFN addressing and payload
/// length — the fixed cost of *any* frame, including the 1-entry zero
/// marker.
pub const WIRE_FRAME_HEADER: u64 = 16;

/// Bytes of the 128-bit content digest carried by a [`WireFrame::Dup`].
pub const WIRE_DIGEST_BYTES: u64 = 16;

/// The kind tag of a wire frame (accounting key).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FrameKind {
    /// Full page payload.
    Raw,
    /// All-zero page: header-only marker.
    Zero,
    /// Content the destination already holds, referenced by digest.
    Dup,
    /// XOR+RLE delta against the last version the destination acked.
    Delta,
}

impl FrameKind {
    /// Every kind, in wire-format order (stable for reports).
    pub const ALL: [FrameKind; 4] = [
        FrameKind::Raw,
        FrameKind::Zero,
        FrameKind::Dup,
        FrameKind::Delta,
    ];

    /// Stable short name used in logs and JSON.
    pub fn name(self) -> &'static str {
        match self {
            FrameKind::Raw => "raw",
            FrameKind::Zero => "zero",
            FrameKind::Dup => "dup",
            FrameKind::Delta => "delta",
        }
    }

    /// Dense index for accounting arrays.
    fn index(self) -> usize {
        match self {
            FrameKind::Raw => 0,
            FrameKind::Zero => 1,
            FrameKind::Dup => 2,
            FrameKind::Delta => 3,
        }
    }

    /// The kind's on-wire tag byte (the first byte of a serialized frame
    /// header — see `crate::framing`).
    pub fn tag(self) -> u8 {
        self.index() as u8
    }

    /// Parses an on-wire tag byte; `None` for unknown tags (a corrupted
    /// or truncated frame, surfaced as an integrity fault, not a panic).
    pub fn from_tag(tag: u8) -> Option<FrameKind> {
        FrameKind::ALL.get(tag as usize).copied()
    }
}

/// One page's representation on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireFrame {
    /// Full page payload (the page's content word in the simulator's
    /// one-word-per-page memory model; accounted as a full page).
    Raw {
        /// The page's content word.
        word: u64,
    },
    /// All-zero page; the destination materialises zeros locally.
    Zero,
    /// The destination already holds this content (earlier round or
    /// another VM); it copies from its dedup cache.
    Dup {
        /// 128-bit content digest keying the destination's cache.
        digest: Digest128,
    },
    /// XOR+RLE delta against the destination's current version of this
    /// page (see [`crate::wire::delta_encode`]).
    Delta {
        /// Encoded delta stream.
        delta: Vec<u8>,
    },
}

impl WireFrame {
    /// The frame's accounting kind.
    pub fn kind(&self) -> FrameKind {
        match self {
            WireFrame::Raw { .. } => FrameKind::Raw,
            WireFrame::Zero => FrameKind::Zero,
            WireFrame::Dup { .. } => FrameKind::Dup,
            WireFrame::Delta { .. } => FrameKind::Delta,
        }
    }

    /// Bytes this frame occupies on the wire (header + payload).
    pub fn wire_bytes(&self) -> u64 {
        WIRE_FRAME_HEADER
            + match self {
                WireFrame::Raw { .. } => PAGE_SIZE,
                WireFrame::Zero => 0,
                WireFrame::Dup { .. } => WIRE_DIGEST_BYTES,
                WireFrame::Delta { delta } => delta.len() as u64,
            }
    }
}

/// Per-kind frame and byte accounting for one migration (or an aggregate
/// across migrations — see [`WireStats::merge`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WireStats {
    counts: [u64; 4],
    bytes: [u64; 4],
    /// Page-payload bytes a raw-mode sender would have shipped for the
    /// same page set (the legacy `bytes_sent` accounting).
    raw_equivalent: u64,
    /// Dedup-cache entries held when the migration finished.
    cache_occupancy: u64,
    /// Dedup-cache entry cap in force.
    cache_capacity: u64,
    /// LRU evictions the cache performed during this migration.
    cache_evictions: u64,
    /// Dedup lookups that hit during this migration.
    cache_dup_hits: u64,
    /// Dedup lookups performed during this migration.
    cache_dup_lookups: u64,
}

impl WireStats {
    /// Fresh, all-zero accounting.
    pub fn new() -> Self {
        WireStats::default()
    }

    /// Records one frame.
    pub fn record(&mut self, frame: &WireFrame) {
        self.record_parts(frame.kind(), frame.wire_bytes());
    }

    /// Records one frame by kind and accounted wire bytes — the ring
    /// path's entry point, where frames exist as serialized views rather
    /// than [`WireFrame`] values. Accounting is identical to
    /// [`WireStats::record`] on the equivalent frame.
    pub fn record_parts(&mut self, kind: FrameKind, wire_bytes: u64) {
        let k = kind.index();
        self.counts[k] += 1;
        self.bytes[k] += wire_bytes;
        self.raw_equivalent += PAGE_SIZE;
    }

    /// Frames of `kind` recorded.
    pub fn count(&self, kind: FrameKind) -> u64 {
        self.counts[kind.index()]
    }

    /// Wire bytes of `kind` recorded.
    pub fn bytes(&self, kind: FrameKind) -> u64 {
        self.bytes[kind.index()]
    }

    /// Total frames recorded (= pages that crossed the wire path).
    pub fn frames(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Total bytes actually put on the wire.
    pub fn wire_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Page bytes a raw-mode sender would have shipped for the same pages.
    pub fn raw_equivalent_bytes(&self) -> u64 {
        self.raw_equivalent
    }

    /// Bytes the content-aware path kept off the wire.
    pub fn saved_bytes(&self) -> u64 {
        self.raw_equivalent.saturating_sub(self.wire_bytes())
    }

    /// `wire / raw` — 1.0 means no savings, 0.1 means a 10× reduction.
    /// Returns 1.0 when nothing was recorded.
    pub fn compression_ratio(&self) -> f64 {
        if self.raw_equivalent == 0 {
            1.0
        } else {
            self.wire_bytes() as f64 / self.raw_equivalent as f64
        }
    }

    /// Records the dedup cache's state for this migration: final
    /// occupancy/capacity plus the eviction and hit/lookup deltas
    /// attributable to the migration.
    pub fn record_cache(
        &mut self,
        occupancy: u64,
        capacity: u64,
        evictions: u64,
        dup_hits: u64,
        dup_lookups: u64,
    ) {
        self.cache_occupancy = occupancy;
        self.cache_capacity = capacity;
        self.cache_evictions = evictions;
        self.cache_dup_hits = dup_hits;
        self.cache_dup_lookups = dup_lookups;
    }

    /// Dedup-cache entries held when the migration finished.
    pub fn cache_occupancy(&self) -> u64 {
        self.cache_occupancy
    }

    /// Dedup-cache entry cap in force (0 = never recorded).
    pub fn cache_capacity(&self) -> u64 {
        self.cache_capacity
    }

    /// LRU evictions during this migration (or aggregate).
    pub fn cache_evictions(&self) -> u64 {
        self.cache_evictions
    }

    /// Dedup lookups that hit during this migration (or aggregate).
    pub fn cache_dup_hits(&self) -> u64 {
        self.cache_dup_hits
    }

    /// Dedup lookups performed during this migration (or aggregate).
    pub fn cache_dup_lookups(&self) -> u64 {
        self.cache_dup_lookups
    }

    /// Fraction of dedup lookups that hit (0.0 when none were performed).
    pub fn dedup_hit_rate(&self) -> f64 {
        if self.cache_dup_lookups == 0 {
            0.0
        } else {
            self.cache_dup_hits as f64 / self.cache_dup_lookups as f64
        }
    }

    /// Folds `other` into `self` (campaign-level aggregation). Frame and
    /// cache counters sum; occupancy/capacity take the latest non-zero
    /// snapshot (they describe shared cache state, not per-VM deltas).
    pub fn merge(&mut self, other: &WireStats) {
        for i in 0..4 {
            self.counts[i] += other.counts[i];
            self.bytes[i] += other.bytes[i];
        }
        self.raw_equivalent += other.raw_equivalent;
        self.cache_evictions += other.cache_evictions;
        self.cache_dup_hits += other.cache_dup_hits;
        self.cache_dup_lookups += other.cache_dup_lookups;
        if other.cache_capacity != 0 {
            self.cache_occupancy = other.cache_occupancy;
            self.cache_capacity = other.cache_capacity;
        }
    }
}

/// A point-to-point link with a line rate, a streaming efficiency and a
/// fixed per-message latency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Link {
    /// Line rate in Gbit/s.
    pub gbps: f64,
    /// Fraction of line rate achievable for bulk streaming.
    pub efficiency: f64,
    /// One-way latency per message.
    pub latency: SimDuration,
}

impl Link {
    /// The paper's M1↔M1 link: 1 Gbps Ethernet.
    pub fn gigabit() -> Self {
        Link {
            gbps: 1.0,
            efficiency: 0.93,
            latency: SimDuration::from_micros(200),
        }
    }

    /// The cluster testbed's 10 Gbps network (§5.1).
    pub fn ten_gigabit() -> Self {
        Link {
            gbps: 10.0,
            efficiency: 0.93,
            latency: SimDuration::from_micros(50),
        }
    }

    /// A transfer time standing in for "never finishes" on a dead link
    /// (~31 years). Finite so schedule arithmetic cannot overflow, but
    /// large enough that any plan preferring it over an alternative is
    /// obviously wrong.
    pub const DEAD: SimDuration = SimDuration::from_secs(1_000_000_000);

    /// True when the link can actually move bytes (positive, finite
    /// effective rate). A zero-bandwidth or zero-efficiency link is
    /// unusable: planners must fall back to in-place upgrades.
    pub fn is_usable(&self) -> bool {
        let rate = self.gbps * self.efficiency;
        rate.is_finite() && rate > 0.0
    }

    /// Time to transfer `bytes` when `sharers` flows share the link.
    ///
    /// An unusable link (see [`Link::is_usable`]) returns [`Link::DEAD`]
    /// instead of the silent zero that `f64` division would produce.
    pub fn transfer(&self, bytes: u64, sharers: u32) -> SimDuration {
        if !self.is_usable() {
            return Link::DEAD;
        }
        let rate = self.gbps * self.efficiency / sharers.max(1) as f64;
        self.latency + SimDuration::from_secs_f64(bytes as f64 * 8.0 / (rate * 1e9))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gigabit_copies_1gb_in_about_9s() {
        let l = Link::gigabit();
        let t = l.transfer(1 << 30, 1).as_secs_f64();
        assert!((9.0..9.5).contains(&t), "t = {t}");
    }

    #[test]
    fn sharing_divides_bandwidth() {
        let l = Link::gigabit();
        let solo = l.transfer(1 << 20, 1);
        let shared = l.transfer(1 << 20, 4);
        assert!(shared.as_secs_f64() > 3.5 * solo.as_secs_f64());
    }

    #[test]
    fn zero_bandwidth_link_is_dead_not_instant() {
        let dead = Link {
            gbps: 0.0,
            ..Link::gigabit()
        };
        assert!(!dead.is_usable());
        // Regression: f64 division by zero used to clamp to ZERO, making
        // a dead link look *infinitely fast* to the planner.
        assert_eq!(dead.transfer(1 << 30, 1), Link::DEAD);
        assert_eq!(dead.transfer(0, 1), Link::DEAD);
        let no_eff = Link {
            efficiency: 0.0,
            ..Link::gigabit()
        };
        assert!(!no_eff.is_usable());
        assert_eq!(no_eff.transfer(4096, 2), Link::DEAD);
        assert!(Link::gigabit().is_usable());
    }

    #[test]
    fn ten_gig_is_ten_times_faster() {
        let a = Link::gigabit().transfer(1 << 30, 1).as_secs_f64();
        let b = Link::ten_gigabit().transfer(1 << 30, 1).as_secs_f64();
        assert!((a / b) > 9.0 && (a / b) < 11.0);
    }

    #[test]
    fn frame_wire_bytes_by_kind() {
        use hypertp_sim::hash::digest_words;
        let raw = WireFrame::Raw { word: 7 };
        let zero = WireFrame::Zero;
        let dup = WireFrame::Dup {
            digest: digest_words(&[7]),
        };
        let delta = WireFrame::Delta {
            delta: vec![0u8; 100],
        };
        assert_eq!(raw.wire_bytes(), WIRE_FRAME_HEADER + PAGE_SIZE);
        assert_eq!(zero.wire_bytes(), WIRE_FRAME_HEADER);
        assert_eq!(dup.wire_bytes(), WIRE_FRAME_HEADER + WIRE_DIGEST_BYTES);
        assert_eq!(delta.wire_bytes(), WIRE_FRAME_HEADER + 100);
        assert!(zero.wire_bytes() < dup.wire_bytes());
        assert!(dup.wire_bytes() < raw.wire_bytes());
        assert_eq!(raw.kind().name(), "raw");
        assert_eq!(FrameKind::ALL.len(), 4);
    }

    #[test]
    fn wire_stats_account_per_kind_and_merge() {
        let mut s = WireStats::new();
        s.record(&WireFrame::Zero);
        s.record(&WireFrame::Zero);
        s.record(&WireFrame::Raw { word: 3 });
        assert_eq!(s.frames(), 3);
        assert_eq!(s.count(FrameKind::Zero), 2);
        assert_eq!(s.count(FrameKind::Raw), 1);
        assert_eq!(s.raw_equivalent_bytes(), 3 * PAGE_SIZE);
        assert_eq!(
            s.wire_bytes(),
            3 * WIRE_FRAME_HEADER + PAGE_SIZE,
            "two markers + one full page"
        );
        assert_eq!(s.saved_bytes(), s.raw_equivalent_bytes() - s.wire_bytes());
        assert!(s.compression_ratio() < 0.5);

        let mut agg = WireStats::new();
        agg.merge(&s);
        agg.merge(&s);
        assert_eq!(agg.frames(), 6);
        assert_eq!(agg.wire_bytes(), 2 * s.wire_bytes());
        assert_eq!(WireStats::new().compression_ratio(), 1.0);
    }

    #[test]
    fn cache_stats_record_and_merge() {
        let mut s = WireStats::new();
        assert_eq!(s.dedup_hit_rate(), 0.0, "no lookups yet");
        s.record_cache(10, 64, 2, 3, 12);
        assert_eq!(s.cache_occupancy(), 10);
        assert_eq!(s.cache_capacity(), 64);
        assert_eq!(s.cache_evictions(), 2);
        assert_eq!(s.dedup_hit_rate(), 0.25);

        let mut later = WireStats::new();
        later.record_cache(20, 64, 1, 5, 8);
        let mut agg = WireStats::new();
        agg.merge(&s);
        agg.merge(&later);
        assert_eq!(agg.cache_evictions(), 3, "evictions sum");
        assert_eq!(agg.cache_dup_hits(), 8);
        assert_eq!(agg.cache_dup_lookups(), 20);
        assert_eq!(agg.cache_occupancy(), 20, "latest snapshot wins");
        assert_eq!(agg.cache_capacity(), 64);
    }

    #[test]
    fn zero_denominator_ratios_stay_finite() {
        // A migration that shipped nothing must not divide by zero: the
        // compression ratio degenerates to 1.0 (no savings) and the hit
        // rate to 0.0 (no lookups), both finite.
        let empty = WireStats::new();
        assert_eq!(empty.raw_equivalent_bytes(), 0);
        assert_eq!(empty.compression_ratio(), 1.0);
        assert!(empty.compression_ratio().is_finite());
        assert_eq!(empty.dedup_hit_rate(), 0.0);
        assert!(empty.dedup_hit_rate().is_finite());
        // Merging empties keeps the degenerate values.
        let mut agg = WireStats::new();
        agg.merge(&empty);
        assert_eq!(agg.compression_ratio(), 1.0);
        assert_eq!(agg.dedup_hit_rate(), 0.0);
    }
}
