//! Serialized wire frames and the reusable frame ring.
//!
//! PR 3's wire path materialised every round as a `Vec<WireFrame>` — one
//! heap `Vec` per round per VM, plus one boxed delta stream per `Delta`
//! frame. This module replaces that with a *byte-serialized* stream in a
//! [`FrameRing`]: the engine owns one ring, reuses it across rounds and
//! across VMs, and both sides of the transfer operate on borrowed
//! [`FrameView`]s into the ring — the steady-state hot path never touches
//! the allocator.
//!
//! **Wire format.** Every frame is a fixed 16-byte header followed by a
//! payload ([`WIRE_FRAME_HEADER`] already accounted this header):
//!
//! ```text
//! [kind: u8][pad: 3 zero bytes][gfn: u64 le][payload len: u32 le][payload]
//! ```
//!
//! Payloads by kind: `Raw` carries the page's 8-byte content word (the
//! simulator ships the word standing in for the 4 KiB page — accounting
//! still charges the full page, so `WireStats` match the legacy path
//! byte for byte), `Zero` is empty, `Dup` carries the 16-byte content
//! digest, `Delta` carries the XOR+RLE stream.
//!
//! **Transactional rounds.** The ring mirrors the `TransferCache`
//! journal: [`FrameRing::begin`] records a watermark, and a link drop
//! rolls the ring back to it in lockstep with
//! [`TransferCache::rollback_round`], so `LinkDrop` recovery re-encodes
//! byte-identically to the legacy path.
//!
//! [`TransferCache::rollback_round`]: crate::wire::TransferCache::rollback_round

use hypertp_sim::hash::Digest128;

use crate::network::{FrameKind, WireFrame, WIRE_DIGEST_BYTES, WIRE_FRAME_HEADER};
use hypertp_machine::PAGE_SIZE;

/// A parsed, borrowed view of one serialized frame — the zero-copy
/// counterpart of [`WireFrame`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameView<'a> {
    /// The frame kind.
    pub kind: FrameKind,
    /// The guest frame this page lands on.
    pub gfn: u64,
    /// The payload bytes (word / empty / digest / delta stream).
    pub payload: &'a [u8],
}

impl<'a> FrameView<'a> {
    /// Parses the frame at the start of `buf`. Returns the view and the
    /// number of physical bytes consumed, or `None` when the buffer is
    /// truncated, the tag or padding is corrupt, or a fixed-payload kind
    /// carries the wrong length — total on arbitrary bytes.
    pub fn parse(buf: &'a [u8]) -> Option<(FrameView<'a>, usize)> {
        let header = buf.get(..WIRE_FRAME_HEADER as usize)?;
        let kind = FrameKind::from_tag(header[0])?;
        if header[1] != 0 || header[2] != 0 || header[3] != 0 {
            return None;
        }
        let gfn = u64::from_le_bytes(header[4..12].try_into().ok()?);
        let len = u32::from_le_bytes(header[12..16].try_into().ok()?) as usize;
        let expected = match kind {
            FrameKind::Raw => Some(8),
            FrameKind::Zero => Some(0),
            FrameKind::Dup => Some(WIRE_DIGEST_BYTES as usize),
            FrameKind::Delta => None,
        };
        if expected.is_some_and(|e| e != len) {
            return None;
        }
        let payload = buf.get(WIRE_FRAME_HEADER as usize..WIRE_FRAME_HEADER as usize + len)?;
        Some((
            FrameView { kind, gfn, payload },
            WIRE_FRAME_HEADER as usize + len,
        ))
    }

    /// The content word of a `Raw` frame.
    pub fn raw_word(&self) -> Option<u64> {
        if self.kind != FrameKind::Raw {
            return None;
        }
        Some(u64::from_le_bytes(self.payload.try_into().ok()?))
    }

    /// The content digest of a `Dup` frame.
    pub fn dup_digest(&self) -> Option<Digest128> {
        if self.kind != FrameKind::Dup {
            return None;
        }
        let hi = u64::from_le_bytes(self.payload.get(..8)?.try_into().ok()?);
        let lo = u64::from_le_bytes(self.payload.get(8..16)?.try_into().ok()?);
        Some(Digest128 { hi, lo })
    }

    /// Accounted wire bytes — identical to [`WireFrame::wire_bytes`] on
    /// the equivalent frame (a `Raw` frame is charged the full page its
    /// 8-byte word stands in for).
    pub fn wire_bytes(&self) -> u64 {
        WIRE_FRAME_HEADER
            + match self.kind {
                FrameKind::Raw => PAGE_SIZE,
                FrameKind::Zero => 0,
                FrameKind::Dup => WIRE_DIGEST_BYTES,
                FrameKind::Delta => self.payload.len() as u64,
            }
    }

    /// Physical bytes of the serialized frame (header + payload).
    pub fn frame_bytes(&self) -> usize {
        WIRE_FRAME_HEADER as usize + self.payload.len()
    }

    /// Materialises the equivalent owned [`WireFrame`] (slow path /
    /// tests; the hot path never needs it). `None` on a payload that does
    /// not decode for its kind.
    pub fn to_frame(&self) -> Option<WireFrame> {
        Some(match self.kind {
            FrameKind::Raw => WireFrame::Raw {
                word: self.raw_word()?,
            },
            FrameKind::Zero => WireFrame::Zero,
            FrameKind::Dup => WireFrame::Dup {
                digest: self.dup_digest()?,
            },
            FrameKind::Delta => WireFrame::Delta {
                delta: self.payload.to_vec(),
            },
        })
    }
}

/// Iterator over the serialized frames in a byte region. Stops at the
/// first malformed frame (ring contents are self-produced, so this only
/// matters for defensive termination).
#[derive(Debug, Clone)]
pub struct FrameIter<'a> {
    buf: &'a [u8],
}

impl<'a> FrameIter<'a> {
    /// Walks the serialized frames in an arbitrary byte region (e.g. the
    /// frame stream of a received proxy round message).
    pub fn over(buf: &'a [u8]) -> Self {
        FrameIter { buf }
    }
}

impl<'a> Iterator for FrameIter<'a> {
    type Item = FrameView<'a>;

    fn next(&mut self) -> Option<FrameView<'a>> {
        if self.buf.is_empty() {
            return None;
        }
        match FrameView::parse(self.buf) {
            Some((view, consumed)) => {
                self.buf = &self.buf[consumed..];
                Some(view)
            }
            None => {
                self.buf = &[];
                None
            }
        }
    }
}

/// A reusable serialized-frame buffer with begin/commit watermarks.
///
/// The engine owns one ring (shared across rounds and across the VMs of
/// `migrate_many`/`migrate_fleet` through the engine scratch): each round
/// [`FrameRing::restart`]s it — truncating length, keeping capacity — so
/// after the first round of the first VM the encode path performs zero
/// heap allocations. [`FrameRing::grows`] counts capacity growth events,
/// which is what the allocation-probe regression asserts stays flat in
/// steady state.
#[derive(Debug, Default)]
pub struct FrameRing {
    buf: Vec<u8>,
    /// Byte watermark recorded by [`FrameRing::begin`]; rollback
    /// truncates to it.
    watermark: usize,
    /// Frames currently in the ring.
    frames: u64,
    /// Frames at the last watermark (restored on rollback).
    watermark_frames: u64,
    /// Capacity growth events since creation (allocation probe).
    grows: u64,
    /// Largest byte length the ring ever reached.
    high_water: usize,
}

impl FrameRing {
    /// An empty ring.
    pub fn new() -> Self {
        FrameRing::default()
    }

    /// Truncates the ring for a new round, keeping its capacity — the
    /// reuse step that takes the allocator off the hot path.
    pub fn restart(&mut self) {
        self.buf.clear();
        self.watermark = 0;
        self.frames = 0;
        self.watermark_frames = 0;
    }

    /// Records the begin watermark for a transactional batch; a
    /// subsequent [`FrameRing::rollback`] truncates back to this point
    /// (in lockstep with the `TransferCache` journal).
    pub fn begin(&mut self) {
        self.watermark = self.buf.len();
        self.watermark_frames = self.frames;
    }

    /// Seals the batch: the watermark advances to the current end.
    pub fn commit(&mut self) {
        self.watermark = self.buf.len();
        self.watermark_frames = self.frames;
    }

    /// Drops every frame pushed since [`FrameRing::begin`] (the round was
    /// lost on the wire).
    pub fn rollback(&mut self) {
        self.buf.truncate(self.watermark);
        self.frames = self.watermark_frames;
    }

    fn header(&mut self, kind: FrameKind, gfn: u64, len: u32) {
        let need = WIRE_FRAME_HEADER as usize + len as usize;
        if self.buf.capacity() - self.buf.len() < need {
            self.grows += 1;
            self.buf.reserve(need);
        }
        self.buf.push(kind.tag());
        self.buf.extend_from_slice(&[0u8; 3]);
        self.buf.extend_from_slice(&gfn.to_le_bytes());
        self.buf.extend_from_slice(&len.to_le_bytes());
        self.frames += 1;
    }

    fn finish(&mut self) {
        self.high_water = self.high_water.max(self.buf.len());
    }

    /// Appends a `Raw` frame; returns its accounted wire bytes.
    pub fn push_raw(&mut self, gfn: u64, word: u64) -> u64 {
        self.header(FrameKind::Raw, gfn, 8);
        self.buf.extend_from_slice(&word.to_le_bytes());
        self.finish();
        WIRE_FRAME_HEADER + PAGE_SIZE
    }

    /// Appends a `Zero` marker; returns its accounted wire bytes.
    pub fn push_zero(&mut self, gfn: u64) -> u64 {
        self.header(FrameKind::Zero, gfn, 0);
        self.finish();
        WIRE_FRAME_HEADER
    }

    /// Appends a `Dup` frame; returns its accounted wire bytes.
    pub fn push_dup(&mut self, gfn: u64, digest: Digest128) -> u64 {
        self.header(FrameKind::Dup, gfn, WIRE_DIGEST_BYTES as u32);
        self.buf.extend_from_slice(&digest.hi.to_le_bytes());
        self.buf.extend_from_slice(&digest.lo.to_le_bytes());
        self.finish();
        WIRE_FRAME_HEADER + WIRE_DIGEST_BYTES
    }

    /// Appends a `Delta` frame with an already-encoded stream; returns
    /// its accounted wire bytes.
    pub fn push_delta(&mut self, gfn: u64, delta: &[u8]) -> u64 {
        self.header(FrameKind::Delta, gfn, delta.len() as u32);
        self.buf.extend_from_slice(delta);
        self.finish();
        WIRE_FRAME_HEADER + delta.len() as u64
    }

    /// Delta-encodes two uniform pages straight into the ring — no
    /// intermediate stream buffer. Byte-identical payload to
    /// [`crate::wire::delta_encode_words_into`]; returns the accounted
    /// wire bytes.
    pub fn push_delta_words(&mut self, gfn: u64, old_word: u64, new_word: u64) -> u64 {
        let mut stream = [0u8; 11];
        let mut scratch = ElevenBytes {
            buf: &mut stream,
            len: 0,
        };
        delta_encode_words_into_buf(old_word, new_word, &mut scratch);
        let len = scratch.len;
        self.push_delta(gfn, &stream[..len])
    }

    /// Serialized bytes currently in the ring (the physical stream a
    /// transport ships).
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Serialized bytes pushed since byte offset `from`.
    pub fn bytes_from(&self, from: usize) -> &[u8] {
        &self.buf[from..]
    }

    /// Current byte length (pass to [`FrameRing::bytes_from`] later to
    /// iterate a sub-batch).
    pub fn len_bytes(&self) -> usize {
        self.buf.len()
    }

    /// Frames currently in the ring.
    pub fn frame_count(&self) -> u64 {
        self.frames
    }

    /// Iterates every frame currently in the ring.
    pub fn iter(&self) -> FrameIter<'_> {
        FrameIter { buf: &self.buf }
    }

    /// Iterates the frames pushed since byte offset `from`.
    pub fn iter_from(&self, from: usize) -> FrameIter<'_> {
        FrameIter {
            buf: &self.buf[from..],
        }
    }

    /// Capacity growth events since creation — flat in steady state.
    pub fn grows(&self) -> u64 {
        self.grows
    }

    /// Current backing capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Largest byte length the ring ever reached.
    pub fn high_water(&self) -> usize {
        self.high_water
    }
}

/// Minimal fixed-buffer sink for the 3/11-byte word-level delta streams.
struct ElevenBytes<'a> {
    buf: &'a mut [u8; 11],
    len: usize,
}

/// Writes the [`crate::wire::delta_encode_words_into`] stream into a
/// stack buffer.
fn delta_encode_words_into_buf(old_word: u64, new_word: u64, out: &mut ElevenBytes<'_>) {
    // Reuse the Vec encoder via a tiny thread-free shim would still
    // allocate; the stream is at most 11 bytes, so mirror it directly.
    // Byte-for-byte equality with `delta_encode_words_into` is pinned by
    // a test below.
    let x = old_word ^ new_word;
    if x == 0 {
        out.buf[0] = crate::wire::OP_ZERO_RUN;
        out.buf[1..3].copy_from_slice(&(PAGE_SIZE as u16).to_le_bytes());
        out.len = 3;
    } else {
        out.buf[0] = crate::wire::OP_PATTERN8;
        out.buf[1..3].copy_from_slice(&((PAGE_SIZE / 8) as u16).to_le_bytes());
        out.buf[3..11].copy_from_slice(&x.to_le_bytes());
        out.len = 11;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{delta_encode, delta_encode_words_into, expand_word};
    use hypertp_sim::hash::digest_words;
    use hypertp_sim::SimRng;

    #[test]
    fn push_parse_roundtrip_all_kinds() {
        let mut ring = FrameRing::new();
        let digest = digest_words(&[0xbeef]);
        assert_eq!(ring.push_raw(7, 0xbeef), WIRE_FRAME_HEADER + PAGE_SIZE);
        assert_eq!(ring.push_zero(8), WIRE_FRAME_HEADER);
        assert_eq!(
            ring.push_dup(9, digest),
            WIRE_FRAME_HEADER + WIRE_DIGEST_BYTES
        );
        let delta = delta_encode(&expand_word(1), &expand_word(2));
        assert_eq!(
            ring.push_delta(10, &delta),
            WIRE_FRAME_HEADER + delta.len() as u64
        );
        assert_eq!(ring.frame_count(), 4);
        let views: Vec<FrameView<'_>> = ring.iter().collect();
        assert_eq!(views.len(), 4);
        assert_eq!(views[0].kind, FrameKind::Raw);
        assert_eq!(views[0].gfn, 7);
        assert_eq!(views[0].raw_word(), Some(0xbeef));
        assert_eq!(views[1].kind, FrameKind::Zero);
        assert_eq!(views[2].dup_digest(), Some(digest));
        assert_eq!(views[3].payload, &delta[..]);
        // Accounted wire bytes match the owned-frame accounting exactly.
        for v in &views {
            assert_eq!(v.wire_bytes(), v.to_frame().unwrap().wire_bytes());
        }
        // Physical stream length is the sum of frame_bytes.
        assert_eq!(
            ring.len_bytes(),
            views.iter().map(|v| v.frame_bytes()).sum::<usize>()
        );
    }

    #[test]
    fn push_delta_words_matches_vec_encoder() {
        let mut rng = SimRng::new(0x11b5);
        let mut ring = FrameRing::new();
        let mut want = Vec::new();
        for case in 0..200 {
            let old = rng.next_u64();
            let new = if case % 5 == 0 { old } else { rng.next_u64() };
            ring.restart();
            ring.push_delta_words(3, old, new);
            delta_encode_words_into(old, new, &mut want);
            let v = ring.iter().next().unwrap();
            assert_eq!(v.payload, &want[..], "case {case}");
            assert_eq!(
                v.payload,
                &delta_encode(&expand_word(old), &expand_word(new))[..],
                "case {case}"
            );
        }
    }

    #[test]
    fn parse_rejects_corruption() {
        let mut ring = FrameRing::new();
        ring.push_raw(1, 42);
        let good = ring.bytes().to_vec();
        assert!(FrameView::parse(&good).is_some());
        // Truncated header / payload.
        assert!(FrameView::parse(&good[..10]).is_none());
        assert!(FrameView::parse(&good[..good.len() - 1]).is_none());
        // Bad tag.
        let mut bad = good.clone();
        bad[0] = 0x7f;
        assert!(FrameView::parse(&bad).is_none());
        // Dirty padding.
        let mut bad = good.clone();
        bad[2] = 1;
        assert!(FrameView::parse(&bad).is_none());
        // Raw payload length must be exactly 8.
        let mut bad = good.clone();
        bad[12] = 4;
        assert!(FrameView::parse(&bad).is_none());
        // Arbitrary bytes never panic.
        let mut rng = SimRng::new(0xf4a3);
        for _ in 0..500 {
            let len = rng.gen_range(40) as usize;
            let junk: Vec<u8> = (0..len).map(|_| rng.gen_range(256) as u8).collect();
            let _ = FrameView::parse(&junk);
        }
    }

    #[test]
    fn watermark_rollback_and_restart() {
        let mut ring = FrameRing::new();
        ring.push_zero(1);
        ring.commit();
        let sealed = ring.len_bytes();
        ring.begin();
        ring.push_raw(2, 9);
        ring.push_zero(3);
        assert_eq!(ring.frame_count(), 3);
        ring.rollback();
        assert_eq!(ring.len_bytes(), sealed, "rolled back to the watermark");
        assert_eq!(ring.frame_count(), 1);
        // Restart clears contents but keeps capacity — no regrow.
        for _ in 0..16 {
            ring.push_raw(4, 0xffff);
        }
        let cap = ring.capacity();
        let grows = ring.grows();
        for _ in 0..8 {
            ring.restart();
            for i in 0..16 {
                ring.push_raw(i, 0xffff);
            }
        }
        assert_eq!(ring.capacity(), cap);
        assert_eq!(ring.grows(), grows, "steady-state rounds never grow");
        assert!(ring.high_water() >= ring.len_bytes());
    }

    #[test]
    fn iter_from_walks_sub_batches() {
        let mut ring = FrameRing::new();
        ring.push_zero(1);
        let mid = ring.len_bytes();
        ring.push_raw(2, 5);
        ring.push_zero(3);
        let tail: Vec<u64> = ring.iter_from(mid).map(|v| v.gfn).collect();
        assert_eq!(tail, vec![2, 3]);
        let all: Vec<u64> = ring.iter().map(|v| v.gfn).collect();
        assert_eq!(all, vec![1, 2, 3]);
    }
}
