//! MigrationTP: live-migration-based hypervisor transplant (§3.3, §4.3).
//!
//! MigrationTP follows a normal pre-copy live migration — a copy loop while
//! the VM runs, then a stop-and-copy — with one addition: *proxies* on both
//! machines translate the VM's VMi State through UISR, so the destination
//! can run a different hypervisor. Guest pages are not translated (they are
//! hypervisor-independent), and PRAM is unnecessary because memory maps are
//! implicitly rebuilt on the destination (§4.3).
//!
//! * [`network`] — the link model carrying pages and UISR blobs, plus the
//!   wire-frame vocabulary ([`network::WireFrame`], [`network::WireStats`])
//!   of the content-aware path.
//! * [`wire`] — the XOR+RLE delta codec and the destination-synchronised
//!   [`wire::TransferCache`] (zero elision, cross-round/cross-VM dedup,
//!   transactional rollback under link faults).
//! * [`engine`] — [`engine::MigrationTp`]: single-VM migration, plus
//!   [`engine::migrate_many`] reproducing the multi-VM behaviour of §5.2.2
//!   (parallel sends sharing the link, with Xen's sequential receive side
//!   producing high downtime variance while kvmtool's stays constant) and
//!   [`engine::migrate_fleet`], its convergence-aware generalisation
//!   (bounded concurrency, predicted-downtime admission ordering).
//! * [`control`] — the adaptive pre-copy control plane (PR 4):
//!   [`control::PrecopyController`] with per-round EWMA estimators,
//!   downtime budgets and auto-converge throttling, plus the fleet
//!   scheduler vocabulary ([`control::FleetPolicy`],
//!   [`control::predict_migration`]).
//! * [`framing`] — the serialized wire format: [`framing::FrameRing`], the
//!   engine-owned reusable encode buffer (begin/commit/rollback watermarks
//!   in lockstep with the [`wire::TransferCache`] journal), and
//!   [`framing::FrameView`], the zero-copy parse of one frame.
//! * [`transport`] — the pluggable byte transport: the deterministic
//!   in-process pair used by tests and the engine-equivalence harness, and
//!   a length-prefixed Unix-domain-socket backend for real two-process
//!   runs.
//! * [`proxy`] — the §4.2 source/destination proxy pair speaking the
//!   framed protocol over any [`transport::Transport`], byte-identical to
//!   the in-process engine in fault-free runs.

pub mod control;
pub mod engine;
pub mod framing;
pub mod network;
pub mod proxy;
pub mod transport;
pub mod wire;

pub use control::{
    predict_migration, ControlConfig, FleetOrder, FleetPolicy, FleetVm, LinkContention,
    MigrationPrediction, PrecopyController, PredictInput, SloVm, TrafficCurve, VmSloOutcome,
    UISR_BYTES_ALLOWANCE,
};
pub use engine::{
    migrate_fleet, migrate_many, EngineScratch, FleetReport, MigrationConfig, MigrationReport,
    MigrationTp, RoundStats, ScratchStats, WireMode,
};
pub use framing::{FrameIter, FrameRing, FrameView};
pub use network::{FrameKind, Link, WireFrame, WireStats};
pub use proxy::{guest_checksum, run_dest, run_source, DestProxy, DestReport, ProxyReport};
pub use transport::{
    InProcTransport, Transport, TransportError, UdsServerTransport, UdsTransport, MAX_FRAME_BYTES,
};
pub use wire::{CacheStats, TransferCache, DEFAULT_CACHE_CAPACITY};
