//! Adaptive pre-copy control plane: per-migration feedback controller and
//! the fleet-level scheduler vocabulary.
//!
//! Classic pre-copy (Clark et al., NSDI'05) converges only when the link
//! drains pages faster than the guest dirties them; the static knobs the
//! engine shipped with (`stop_threshold_pages: 64`, a fixed `max_rounds`)
//! ignore everything the migration *observes* while it runs. This module
//! closes the loop:
//!
//! * [`PrecopyController`] keeps per-round EWMA estimators (dirty rate,
//!   drain rate, effective link throughput, wire compression) and turns a
//!   [`crate::MigrationConfig::downtime_budget`] into a max stop-and-copy
//!   page count using the *observed* per-page wire cost — compressed
//!   pages are cheap, so the same budget covers more of them. A
//!   non-convergence detector (dirtying keeps pace with draining for K
//!   consecutive rounds) triggers auto-converge guest throttling — a
//!   budget implies permission to throttle, since an over-threshold
//!   steady-state dirty set can never shrink on its own — or an early
//!   stop-and-copy when throttling is exhausted or unavailable, instead
//!   of burning every round the cap allows.
//! * [`FleetPolicy`]/[`FleetOrder`] describe how `migrate_fleet` admits
//!   and orders a fleet: FIFO (the legacy `migrate_many` behaviour) or
//!   shortest-predicted-downtime-first, with bounded concurrency so the
//!   link is shared by at most `max_concurrent` streams at a time.
//! * [`predict_migration`] is the shared analytic round model used for
//!   scheduler ordering and the predicted-vs-actual telemetry in
//!   [`crate::engine::FleetReport`].
//!
//! The controller is **inactive by default**: with `downtime_budget: None`
//! and `auto_converge: false` every decision collapses to the static
//! configuration, keeping the pinned §5.2 timing tests byte-identical.

use hypertp_core::VmId;
use hypertp_machine::PAGE_SIZE;
use hypertp_sim::cost::MachinePerf;
use hypertp_sim::{Ewma, SimDuration};

use crate::network::{Link, WIRE_FRAME_HEADER};
use crate::{MigrationConfig, WireMode};

/// Bytes budgeted for the UISR blob in the stop-and-copy fixed-cost
/// estimate. Real blobs for the simulated VMs are smaller; overestimating
/// only makes the budget→pages conversion more conservative.
pub const UISR_BYTES_ALLOWANCE: u64 = 4096;

/// Controller tuning. Nested in [`MigrationConfig`]; the defaults leave
/// the controller **disabled** so default-config migrations stay
/// byte-identical to the pre-controller engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControlConfig {
    /// Throttle the guest when pre-copy is not converging (QEMU-style
    /// auto-converge). Off by default.
    pub auto_converge: bool,
    /// Smoothing factor of every per-round EWMA estimator.
    pub ewma_alpha: f64,
    /// Consecutive non-convergent rounds (dirtying ≥ 90% of the drain)
    /// before the detector acts.
    pub nonconvergence_rounds: u32,
    /// Multiplier applied to the guest's dirty rate each time the
    /// detector fires (auto-converge enabled or a downtime budget set).
    pub throttle_step: f64,
    /// Throttle floor; at the floor a still-non-convergent guest forces
    /// an early stop-and-copy instead.
    pub min_throttle: f64,
    /// Safety factor on the observed per-page wire cost when converting a
    /// downtime budget into pages (guards against the stop set encoding
    /// worse than the rounds the estimate was trained on).
    pub budget_safety: f64,
}

impl Default for ControlConfig {
    fn default() -> Self {
        ControlConfig {
            auto_converge: false,
            ewma_alpha: 0.5,
            nonconvergence_rounds: 2,
            throttle_step: 0.25,
            min_throttle: 1.0 / 256.0,
            budget_safety: 2.0,
        }
    }
}

/// Per-migration feedback controller. Constructed by the engine at the
/// start of every migration; observes each round; decides the stop
/// threshold, the guest throttle and forced stops.
#[derive(Debug, Clone)]
pub struct PrecopyController {
    control: ControlConfig,
    budget: Option<SimDuration>,
    static_threshold: u64,
    link: Link,
    sharers: u32,
    /// Stop-and-copy costs no page count can shrink: destination
    /// activation, the UISR transfer and per-message latency.
    stop_fixed: SimDuration,
    active: bool,
    dirty_rate: Ewma,
    drain_rate: Ewma,
    /// Observed effective link throughput, bytes/second (wire bytes over
    /// transfer time — includes sharing and latency, so it is what the
    /// stop-and-copy will actually experience).
    throughput: Ewma,
    /// Observed wire bytes per page.
    per_page_wire: Ewma,
    /// Observed wire/raw compression ratio (1.0 = raw).
    compression: Ewma,
    throttle: f64,
    streak: u32,
    force_stop: bool,
}

impl PrecopyController {
    /// Builds the controller for one migration. `stop_fixed` is the
    /// incompressible part of the stop-and-copy (activation + UISR +
    /// latency), subtracted from the budget before converting to pages.
    pub fn new(config: &MigrationConfig, sharers: u32, stop_fixed: SimDuration) -> Self {
        let control = config.control;
        PrecopyController {
            control,
            budget: config.downtime_budget,
            static_threshold: config.stop_threshold_pages,
            link: config.link,
            sharers,
            stop_fixed,
            active: config.downtime_budget.is_some() || control.auto_converge,
            dirty_rate: Ewma::new(control.ewma_alpha),
            drain_rate: Ewma::new(control.ewma_alpha),
            throughput: Ewma::new(control.ewma_alpha),
            per_page_wire: Ewma::new(control.ewma_alpha),
            compression: Ewma::new(control.ewma_alpha),
            throttle: 1.0,
            streak: 0,
            force_stop: false,
        }
    }

    /// True when the controller influences engine decisions (a budget is
    /// set or auto-converge is enabled). Inactive controllers still
    /// observe — the estimators feed telemetry — but never change the
    /// threshold, the throttle or the stop decision.
    pub fn active(&self) -> bool {
        self.active
    }

    /// Current guest dirty-rate multiplier (1.0 = unthrottled; always 1.0
    /// while inactive).
    pub fn throttle(&self) -> f64 {
        if self.active {
            self.throttle
        } else {
            1.0
        }
    }

    /// True when the non-convergence detector decided further rounds are
    /// pointless: go to stop-and-copy now.
    pub fn force_stop(&self) -> bool {
        self.active && self.force_stop
    }

    /// Folds one finished round into the estimators and runs the
    /// non-convergence detector. `pages` were shipped as `wire_bytes`
    /// taking `transfer` on the link out of `duration` total; the guest
    /// dirtied `dirtied` pages meanwhile.
    pub fn observe_round(
        &mut self,
        pages: u64,
        wire_bytes: u64,
        transfer: SimDuration,
        duration: SimDuration,
        dirtied: u64,
    ) {
        let secs = duration.as_secs_f64();
        if secs > 0.0 {
            self.dirty_rate.observe(dirtied as f64 / secs);
            self.drain_rate.observe(pages as f64 / secs);
        }
        let t = transfer.as_secs_f64();
        if t > 0.0 && wire_bytes > 0 {
            self.throughput.observe(wire_bytes as f64 / t);
        }
        if pages > 0 {
            self.per_page_wire.observe(wire_bytes as f64 / pages as f64);
            self.compression
                .observe(wire_bytes as f64 / (pages * PAGE_SIZE) as f64);
        }

        // Non-convergence: the guest re-dirtied at least 90% of what the
        // round drained (integer compare keeps this deterministic).
        if pages > 0 && dirtied.saturating_mul(10) >= pages.saturating_mul(9) {
            self.streak += 1;
        } else {
            self.streak = 0;
        }
        if self.active && self.streak >= self.control.nonconvergence_rounds {
            // A budget implies permission to throttle even when
            // auto-converge was not explicitly requested: a steady-state
            // dirty set above the budget threshold can never shrink on
            // its own, so forcing an early stop there would ship an
            // over-budget stop set. Throttling is the only mechanism
            // that makes the budget reachable.
            let may_throttle = self.control.auto_converge || self.budget.is_some();
            if may_throttle && self.throttle > self.control.min_throttle {
                self.throttle =
                    (self.throttle * self.control.throttle_step).max(self.control.min_throttle);
                self.streak = 0;
            } else {
                // Throttle exhausted (or disabled): every further round
                // re-ships the same steady-state set. Stop now — the
                // residual is no bigger than it will ever be.
                self.force_stop = true;
            }
        }
    }

    /// The stop threshold in force for the next stop check: the static
    /// threshold while inactive or unbudgeted, otherwise the budget
    /// converted to pages at the observed effective throughput and
    /// per-page wire cost ([`PrecopyController::budget_pages`]).
    pub fn stop_threshold(&self) -> u64 {
        match (self.active, self.budget) {
            (true, Some(_)) => self.budget_pages(),
            _ => self.static_threshold,
        }
    }

    /// Converts the downtime budget into a max stop-and-copy page count.
    ///
    /// `budget − stop_fixed` seconds of transfer at the observed
    /// throughput gives the byte allowance; pages follow from the *worse*
    /// of (a) full raw frames — always safe — and (b) the observed
    /// per-page wire cost inflated by [`ControlConfig::budget_safety`].
    /// Taking the max lets good compression raise the allowance (cheap
    /// pages ⇒ more pages per millisecond) while (a) guarantees the
    /// conversion never goes below what raw frames could deliver.
    pub fn budget_pages(&self) -> u64 {
        let Some(budget) = self.budget else {
            return self.static_threshold;
        };
        let avail = budget.saturating_sub(self.stop_fixed);
        let bps = self.throughput.get_or(self.default_throughput());
        if bps <= 0.0 {
            return 0;
        }
        let budget_bytes = avail.as_secs_f64() * bps;
        let raw_frame = (WIRE_FRAME_HEADER + PAGE_SIZE) as f64;
        let safe = budget_bytes / raw_frame;
        let per_page =
            self.per_page_wire.get_or(raw_frame).max(1.0) * self.control.budget_safety.max(1.0);
        let refined = budget_bytes / per_page.max(1.0);
        safe.max(refined).floor() as u64
    }

    /// Link-model throughput used before the first observation: effective
    /// shared rate in bytes/second.
    fn default_throughput(&self) -> f64 {
        self.link.gbps * self.link.efficiency * 1e9 / 8.0 / self.sharers.max(1) as f64
    }

    /// Resets every estimator and the non-convergence streak. Called when
    /// a link fault invalidated what the samples were measuring; the
    /// throttle is kept (it reflects state already applied to the guest).
    pub fn reset_estimators(&mut self) {
        self.dirty_rate.reset();
        self.drain_rate.reset();
        self.throughput.reset();
        self.per_page_wire.reset();
        self.compression.reset();
        self.streak = 0;
    }

    /// Observed dirty rate, pages/second (0.0 before the first round).
    pub fn dirty_rate_est(&self) -> f64 {
        self.dirty_rate.get_or(0.0)
    }

    /// Observed drain rate, pages/second (0.0 before the first round).
    pub fn drain_rate_est(&self) -> f64 {
        self.drain_rate.get_or(0.0)
    }

    /// Observed effective throughput, bytes/second (0.0 before the first
    /// round).
    pub fn throughput_est(&self) -> f64 {
        self.throughput.get_or(0.0)
    }

    /// Observed wire/raw compression ratio (1.0 before the first round).
    pub fn compression_est(&self) -> f64 {
        self.compression.get_or(1.0)
    }
}

/// Admission/ordering policy of a fleet migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FleetOrder {
    /// Input order (the legacy `migrate_many` behaviour).
    #[default]
    Fifo,
    /// Shortest-predicted-downtime-first: VMs whose stop-and-copy is
    /// predicted smallest are admitted (and therefore reach the receiver)
    /// first, which minimises mean downtime behind a sequential receiver
    /// and drains the fleet's exposure window fastest.
    ShortestPredictedFirst,
    /// [`FleetOrder::ShortestPredictedFirst`] with feedback: after every
    /// completed migration the scheduler folds the *observed* dirty rate
    /// and wire compression into fleet-level EWMA estimators
    /// ([`ControlConfig::ewma_alpha`]) and re-runs [`predict_migration`]
    /// over the still-waiting VMs before picking the next admission. The
    /// cold-start prediction only governs the first pick; everything after
    /// is ordered by warmed estimates, so a mis-calibrated
    /// [`FleetPolicy::compression_hint`] or stale dirty-rate profile
    /// corrects itself within a couple of admissions. The admission-time
    /// predictions are reported in
    /// [`crate::engine::FleetReport::admission_predictions`] for
    /// predicted-vs-actual telemetry.
    Repredict,
}

impl FleetOrder {
    /// Stable short name used in logs and JSON.
    pub fn name(self) -> &'static str {
        match self {
            FleetOrder::Fifo => "fifo",
            FleetOrder::ShortestPredictedFirst => "spdf",
            FleetOrder::Repredict => "repredict",
        }
    }
}

/// How `migrate_fleet` runs a fleet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetPolicy {
    /// Admission order.
    pub order: FleetOrder,
    /// Max concurrent pre-copy streams sharing the link (0 = all at once,
    /// the legacy behaviour). Bounding concurrency shortens rounds, which
    /// shrinks per-round dirtying — the fleet-level convergence win.
    pub max_concurrent: usize,
    /// Wire/raw byte ratio assumed by the scheduler's predictions (1.0
    /// for [`WireMode::Raw`]; feed an observed
    /// [`crate::WireStats::compression_ratio`] for content-aware fleets).
    pub compression_hint: f64,
}

impl Default for FleetPolicy {
    /// The legacy `migrate_many` behaviour: FIFO, unbounded concurrency.
    fn default() -> Self {
        FleetPolicy {
            order: FleetOrder::Fifo,
            max_concurrent: 0,
            compression_hint: 1.0,
        }
    }
}

/// One fleet member: the VM plus an optional per-VM dirty-rate override
/// (pages/second) for heterogeneous fleets; `None` uses the engine
/// config's global rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetVm {
    /// The VM to migrate.
    pub id: VmId,
    /// Per-VM dirty rate override.
    pub dirty_rate: Option<f64>,
}

impl FleetVm {
    /// A fleet member using the engine config's dirty rate.
    pub fn new(id: VmId) -> Self {
        FleetVm {
            id,
            dirty_rate: None,
        }
    }

    /// A fleet member with its own dirty rate.
    pub fn with_dirty_rate(id: VmId, rate: f64) -> Self {
        FleetVm {
            id,
            dirty_rate: Some(rate),
        }
    }
}

/// Inputs of the analytic pre-copy round model.
#[derive(Debug, Clone, Copy)]
pub struct PredictInput<'a> {
    /// Guest pages of the VM.
    pub pages: u64,
    /// Guest dirty rate, pages/second.
    pub dirty_rate: f64,
    /// The migration configuration (link, rounds, threshold, wire mode).
    pub config: &'a MigrationConfig,
    /// Concurrent streams sharing the link.
    pub sharers: u32,
    /// Source machine performance (per-page CPU cost scaling).
    pub perf: MachinePerf,
    /// CPU cost per page, GHz-seconds
    /// ([`hypertp_sim::CostModel::migrate_ghz_s_per_page`]).
    pub ghz_s_per_page: f64,
    /// Per-round protocol overhead, seconds
    /// ([`hypertp_sim::CostModel::migrate_round_overhead_s`]).
    pub round_overhead_s: f64,
    /// Wire/raw ratio assumed for page bytes (1.0 = raw).
    pub compression_hint: f64,
    /// Fixed stop-and-copy cost (activation + UISR + latency).
    pub stop_fixed: SimDuration,
}

/// Output of [`predict_migration`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationPrediction {
    /// Predicted pre-copy rounds.
    pub rounds: u32,
    /// Predicted pre-copy duration.
    pub precopy: SimDuration,
    /// Predicted stop-and-copy duration (= predicted solo downtime).
    pub stop_copy: SimDuration,
    /// Predicted residual page count at pause.
    pub stop_pages: u64,
}

/// Analytic pre-copy round model: replays the engine's round loop on
/// paper (same transfer/CPU/overhead formulas, same dirtying formula,
/// static threshold) without touching guest memory. Under
/// [`WireMode::Raw`] with no controller this reproduces the engine's
/// timings exactly; under [`WireMode::ContentAware`] page bytes scale by
/// `compression_hint`. Used for scheduler ordering and predicted-vs-
/// actual telemetry — a cheap model, not a promise.
pub fn predict_migration(input: &PredictInput<'_>) -> MigrationPrediction {
    let cfg = input.config;
    let page_bytes = |pages: u64| -> u64 {
        match cfg.wire_mode {
            WireMode::Raw => pages * PAGE_SIZE,
            WireMode::ContentAware => {
                let per_page =
                    (WIRE_FRAME_HEADER + PAGE_SIZE) as f64 * input.compression_hint.clamp(0.0, 1.0);
                (pages as f64 * per_page) as u64
            }
        }
    };
    let mut to_send = input.pages;
    let mut precopy = SimDuration::ZERO;
    let mut rounds = 0u32;
    let stop_pages = loop {
        let duration = cfg.link.transfer(page_bytes(to_send), input.sharers)
            + input.perf.cpu(input.ghz_s_per_page * to_send as f64)
            + SimDuration::from_secs_f64(input.round_overhead_s);
        precopy += duration;
        rounds += 1;
        let dirtied = ((input.dirty_rate * duration.as_secs_f64()) as u64).min(input.pages);
        if dirtied <= cfg.stop_threshold_pages || rounds >= cfg.max_rounds {
            break dirtied;
        }
        to_send = dirtied;
    };
    let stop_copy = cfg.link.transfer(page_bytes(stop_pages), input.sharers) + input.stop_fixed;
    MigrationPrediction {
        rounds,
        precopy,
        stop_copy,
        stop_pages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn perf() -> MachinePerf {
        MachinePerf {
            freq_ghz: 2.5,
            threads: 8,
            reserved_threads: 2,
            host_ram_gb: 16.0,
            nic_gbps: 1.0,
            nic_init: SimDuration::from_secs_f64(6.6),
        }
    }

    #[test]
    fn default_controller_is_inactive_and_static() {
        let cfg = MigrationConfig::default();
        let mut c = PrecopyController::new(&cfg, 1, SimDuration::from_millis(5));
        assert!(!c.active());
        assert_eq!(c.throttle(), 1.0);
        assert_eq!(c.stop_threshold(), cfg.stop_threshold_pages);
        // Even hammered with non-convergent rounds: no throttle, no stop.
        for _ in 0..10 {
            c.observe_round(
                1000,
                1000 * 4096,
                SimDuration::from_millis(30),
                SimDuration::from_millis(80),
                1000,
            );
        }
        assert_eq!(c.throttle(), 1.0);
        assert!(!c.force_stop());
        assert_eq!(c.stop_threshold(), 64);
        // But telemetry still observes.
        assert!(c.dirty_rate_est() > 0.0);
        assert!(c.throughput_est() > 0.0);
    }

    #[test]
    fn auto_converge_throttles_then_forces_stop() {
        let mut cfg = MigrationConfig::default();
        cfg.control.auto_converge = true;
        let mut c = PrecopyController::new(&cfg, 1, SimDuration::ZERO);
        assert!(c.active());
        let hammer = |c: &mut PrecopyController| {
            c.observe_round(
                1000,
                1000 * 4096,
                SimDuration::from_millis(30),
                SimDuration::from_millis(80),
                1000,
            )
        };
        hammer(&mut c);
        assert_eq!(c.throttle(), 1.0, "one round is not a streak");
        hammer(&mut c);
        assert_eq!(c.throttle(), 0.25, "K=2 rounds trigger the first step");
        // Keep hammering: throttle walks down to the floor, then the
        // detector gives up and forces a stop.
        for _ in 0..20 {
            hammer(&mut c);
        }
        assert_eq!(c.throttle(), cfg.control.min_throttle);
        assert!(c.force_stop());
    }

    #[test]
    fn convergent_rounds_reset_the_streak() {
        let mut cfg = MigrationConfig::default();
        cfg.control.auto_converge = true;
        let mut c = PrecopyController::new(&cfg, 1, SimDuration::ZERO);
        c.observe_round(
            1000,
            4_096_000,
            SimDuration::from_millis(30),
            SimDuration::from_millis(80),
            1000,
        );
        // 50% re-dirtying is convergent: streak resets.
        c.observe_round(
            1000,
            4_096_000,
            SimDuration::from_millis(30),
            SimDuration::from_millis(80),
            500,
        );
        c.observe_round(
            1000,
            4_096_000,
            SimDuration::from_millis(30),
            SimDuration::from_millis(80),
            1000,
        );
        assert_eq!(c.throttle(), 1.0, "streak never reached K");
    }

    #[test]
    fn budget_converts_to_pages_via_observed_throughput() {
        let cfg = MigrationConfig {
            downtime_budget: Some(SimDuration::from_millis(10)),
            ..MigrationConfig::default()
        };
        let fixed = SimDuration::from_millis(5);
        let mut c = PrecopyController::new(&cfg, 1, fixed);
        assert!(c.active());
        // Before any observation: link-model throughput, raw frames.
        // 5 ms at ~116 MB/s ≈ 581 KB ≈ 141 raw frames.
        let cold = c.budget_pages();
        assert!((100..200).contains(&cold), "cold budget pages = {cold}");
        // Observe rounds shipping ~32 B/page (dedup-heavy): the refined
        // conversion allows far more pages for the same 5 ms.
        for _ in 0..4 {
            c.observe_round(
                10_000,
                320_000,
                SimDuration::from_millis(3),
                SimDuration::from_millis(55),
                0,
            );
        }
        let warm = c.budget_pages();
        assert!(warm > 4 * cold, "compression raises the allowance: {warm}");
        // Safety factor 2 halves what pure per-page maths would allow.
        // budget_bytes ≈ 0.005 s × (320000/0.003) B/s ≈ 533 KB;
        // per-page = 32 × 2 = 64 B ⇒ ≈ 8.3 k pages.
        assert!(warm < 20_000, "safety factor caps the allowance: {warm}");
        assert_eq!(c.stop_threshold(), warm);
    }

    #[test]
    fn budget_below_fixed_floor_demands_empty_stop_set() {
        let cfg = MigrationConfig {
            downtime_budget: Some(SimDuration::from_millis(2)),
            ..MigrationConfig::default()
        };
        let c = PrecopyController::new(&cfg, 1, SimDuration::from_millis(5));
        assert_eq!(c.budget_pages(), 0, "nothing fits under the floor");
    }

    #[test]
    fn reset_estimators_clears_observations_keeps_throttle() {
        let mut cfg = MigrationConfig::default();
        cfg.control.auto_converge = true;
        let mut c = PrecopyController::new(&cfg, 1, SimDuration::ZERO);
        for _ in 0..4 {
            c.observe_round(
                1000,
                1000 * 4096,
                SimDuration::from_millis(30),
                SimDuration::from_millis(80),
                1000,
            );
        }
        let throttled = c.throttle();
        assert!(throttled < 1.0);
        c.reset_estimators();
        assert_eq!(c.dirty_rate_est(), 0.0);
        assert_eq!(c.throughput_est(), 0.0);
        assert_eq!(c.compression_est(), 1.0);
        assert_eq!(c.throttle(), throttled, "guest throttle survives");
    }

    #[test]
    fn prediction_converges_for_idle_and_caps_for_hot() {
        let cfg = MigrationConfig::default();
        let mk = |rate: f64| PredictInput {
            pages: 262_144,
            dirty_rate: rate,
            config: &cfg,
            sharers: 1,
            perf: perf(),
            ghz_s_per_page: 1.0e-6,
            round_overhead_s: 0.05,
            compression_hint: 1.0,
            stop_fixed: SimDuration::from_millis(5),
        };
        let idle = predict_migration(&mk(1.0));
        assert_eq!(idle.rounds, 1, "idle VM stops after the full copy");
        assert!(idle.stop_pages <= cfg.stop_threshold_pages);
        assert!((9.0..11.0).contains(&idle.precopy.as_secs_f64()));

        let hot = predict_migration(&mk(1e7));
        assert_eq!(hot.rounds, cfg.max_rounds, "non-convergent hits the cap");
        assert!(hot.stop_pages > 100_000);
        assert!(hot.stop_copy > idle.stop_copy);

        // Rate 1000 pages/s: steady-state dirty set ≈ 52 pages < the
        // 64-page threshold, so the prediction converges in a few rounds.
        let busy = predict_migration(&mk(1000.0));
        assert!(
            busy.rounds > 1 && busy.rounds < cfg.max_rounds,
            "busy rounds = {}",
            busy.rounds
        );
    }

    #[test]
    fn prediction_orders_by_size_and_rate() {
        let cfg = MigrationConfig::default();
        let mk = |pages: u64, rate: f64| {
            predict_migration(&PredictInput {
                pages,
                dirty_rate: rate,
                config: &cfg,
                sharers: 2,
                perf: perf(),
                ghz_s_per_page: 1.0e-6,
                round_overhead_s: 0.05,
                compression_hint: 1.0,
                stop_fixed: SimDuration::from_millis(5),
            })
        };
        let small = mk(65_536, 1.0);
        let large = mk(262_144, 1.0);
        assert!(small.precopy < large.precopy);
        let idle = mk(262_144, 1.0);
        let hot = mk(262_144, 1e6);
        assert!(idle.stop_copy < hot.stop_copy);
    }

    #[test]
    fn fleet_policy_defaults_are_legacy() {
        let p = FleetPolicy::default();
        assert_eq!(p.order, FleetOrder::Fifo);
        assert_eq!(p.max_concurrent, 0);
        assert_eq!(p.compression_hint, 1.0);
        assert_eq!(FleetOrder::Fifo.name(), "fifo");
        assert_eq!(FleetOrder::ShortestPredictedFirst.name(), "spdf");
    }
}
