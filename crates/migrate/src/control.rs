//! Adaptive pre-copy control plane: per-migration feedback controller and
//! the fleet-level scheduler vocabulary.
//!
//! Classic pre-copy (Clark et al., NSDI'05) converges only when the link
//! drains pages faster than the guest dirties them; the static knobs the
//! engine shipped with (`stop_threshold_pages: 64`, a fixed `max_rounds`)
//! ignore everything the migration *observes* while it runs. This module
//! closes the loop:
//!
//! * [`PrecopyController`] keeps per-round EWMA estimators (dirty rate,
//!   drain rate, effective link throughput, wire compression) and turns a
//!   [`crate::MigrationConfig::downtime_budget`] into a max stop-and-copy
//!   page count using the *observed* per-page wire cost — compressed
//!   pages are cheap, so the same budget covers more of them. A
//!   non-convergence detector (dirtying keeps pace with draining for K
//!   consecutive rounds) triggers auto-converge guest throttling — a
//!   budget implies permission to throttle, since an over-threshold
//!   steady-state dirty set can never shrink on its own — or an early
//!   stop-and-copy when throttling is exhausted or unavailable, instead
//!   of burning every round the cap allows.
//! * [`FleetPolicy`]/[`FleetOrder`] describe how `migrate_fleet` admits
//!   and orders a fleet: FIFO (the legacy `migrate_many` behaviour) or
//!   shortest-predicted-downtime-first, with bounded concurrency so the
//!   link is shared by at most `max_concurrent` streams at a time.
//! * [`predict_migration`] is the shared analytic round model used for
//!   scheduler ordering and the predicted-vs-actual telemetry in
//!   [`crate::engine::FleetReport`].
//!
//! The controller is **inactive by default**: with `downtime_budget: None`
//! and `auto_converge: false` every decision collapses to the static
//! configuration, keeping the pinned §5.2 timing tests byte-identical.
//!
//! The SLO-aware layer (PR 9) adds the *user-visible* harm vocabulary on
//! top of the hardware-side one:
//!
//! * [`LinkContention`] models workload traffic sharing the migration
//!   NIC: the pre-copy stream only gets what the guests leave over (with
//!   a TCP-fairness floor), so transfers stretch — and because the
//!   engine feeds the stretched transfers straight into
//!   [`PrecopyController::observe_round`], the throughput/drain
//!   estimators and the budget→pages conversion degrade honestly under
//!   contention instead of assuming an idle link.
//! * [`TrafficCurve`] is the scheduler's view of one VM's deterministic
//!   diurnal load; [`SloVm`] couples it to the VM's degraded capacity
//!   and error budget, and prices a migration window in
//!   *violation-seconds* ([`SloVm::outcome`]).
//! * [`FleetOrder::SloAware`] admits by predicted harm: at every free
//!   slot the waiting VM whose migration would violate least *right
//!   now* goes first, which pushes hot-traffic VMs toward their
//!   low-QPS windows as the fleet drains.
//!
//! Everything here is opt-in: a [`FleetVm`] without an [`SloVm`] carries
//! no traffic, contends with nothing and accounts nothing, so default
//! fleets stay byte-identical.

use hypertp_core::VmId;
use hypertp_machine::PAGE_SIZE;
use hypertp_sim::cost::MachinePerf;
use hypertp_sim::{Ewma, SimDuration};

use crate::network::{Link, WIRE_FRAME_HEADER};
use crate::{MigrationConfig, WireMode};

/// Bytes budgeted for the UISR blob in the stop-and-copy fixed-cost
/// estimate. Real blobs for the simulated VMs are smaller; overestimating
/// only makes the budget→pages conversion more conservative.
pub const UISR_BYTES_ALLOWANCE: u64 = 4096;

/// Controller tuning. Nested in [`MigrationConfig`]; the defaults leave
/// the controller **disabled** so default-config migrations stay
/// byte-identical to the pre-controller engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControlConfig {
    /// Throttle the guest when pre-copy is not converging (QEMU-style
    /// auto-converge). Off by default.
    pub auto_converge: bool,
    /// Smoothing factor of every per-round EWMA estimator.
    pub ewma_alpha: f64,
    /// Consecutive non-convergent rounds (dirtying ≥ 90% of the drain)
    /// before the detector acts.
    pub nonconvergence_rounds: u32,
    /// Multiplier applied to the guest's dirty rate each time the
    /// detector fires (auto-converge enabled or a downtime budget set).
    pub throttle_step: f64,
    /// Throttle floor; at the floor a still-non-convergent guest forces
    /// an early stop-and-copy instead.
    pub min_throttle: f64,
    /// Safety factor on the observed per-page wire cost when converting a
    /// downtime budget into pages (guards against the stop set encoding
    /// worse than the rounds the estimate was trained on).
    pub budget_safety: f64,
}

impl Default for ControlConfig {
    fn default() -> Self {
        ControlConfig {
            auto_converge: false,
            ewma_alpha: 0.5,
            nonconvergence_rounds: 2,
            throttle_step: 0.25,
            min_throttle: 1.0 / 256.0,
            budget_safety: 2.0,
        }
    }
}

/// Per-migration feedback controller. Constructed by the engine at the
/// start of every migration; observes each round; decides the stop
/// threshold, the guest throttle and forced stops.
#[derive(Debug, Clone)]
pub struct PrecopyController {
    control: ControlConfig,
    budget: Option<SimDuration>,
    static_threshold: u64,
    link: Link,
    sharers: u32,
    /// Stop-and-copy costs no page count can shrink: destination
    /// activation, the UISR transfer and per-message latency.
    stop_fixed: SimDuration,
    active: bool,
    dirty_rate: Ewma,
    drain_rate: Ewma,
    /// Observed effective link throughput, bytes/second (wire bytes over
    /// transfer time — includes sharing and latency, so it is what the
    /// stop-and-copy will actually experience).
    throughput: Ewma,
    /// Observed wire bytes per page.
    per_page_wire: Ewma,
    /// Observed wire/raw compression ratio (1.0 = raw).
    compression: Ewma,
    throttle: f64,
    streak: u32,
    force_stop: bool,
}

impl PrecopyController {
    /// Builds the controller for one migration. `stop_fixed` is the
    /// incompressible part of the stop-and-copy (activation + UISR +
    /// latency), subtracted from the budget before converting to pages.
    pub fn new(config: &MigrationConfig, sharers: u32, stop_fixed: SimDuration) -> Self {
        let control = config.control;
        PrecopyController {
            control,
            budget: config.downtime_budget,
            static_threshold: config.stop_threshold_pages,
            link: config.link,
            sharers,
            stop_fixed,
            active: config.downtime_budget.is_some() || control.auto_converge,
            dirty_rate: Ewma::new(control.ewma_alpha),
            drain_rate: Ewma::new(control.ewma_alpha),
            throughput: Ewma::new(control.ewma_alpha),
            per_page_wire: Ewma::new(control.ewma_alpha),
            compression: Ewma::new(control.ewma_alpha),
            throttle: 1.0,
            streak: 0,
            force_stop: false,
        }
    }

    /// True when the controller influences engine decisions (a budget is
    /// set or auto-converge is enabled). Inactive controllers still
    /// observe — the estimators feed telemetry — but never change the
    /// threshold, the throttle or the stop decision.
    pub fn active(&self) -> bool {
        self.active
    }

    /// Current guest dirty-rate multiplier (1.0 = unthrottled; always 1.0
    /// while inactive).
    pub fn throttle(&self) -> f64 {
        if self.active {
            self.throttle
        } else {
            1.0
        }
    }

    /// True when the non-convergence detector decided further rounds are
    /// pointless: go to stop-and-copy now.
    pub fn force_stop(&self) -> bool {
        self.active && self.force_stop
    }

    /// Folds one finished round into the estimators and runs the
    /// non-convergence detector. `pages` were shipped as `wire_bytes`
    /// taking `transfer` on the link out of `duration` total; the guest
    /// dirtied `dirtied` pages meanwhile.
    pub fn observe_round(
        &mut self,
        pages: u64,
        wire_bytes: u64,
        transfer: SimDuration,
        duration: SimDuration,
        dirtied: u64,
    ) {
        let secs = duration.as_secs_f64();
        if secs > 0.0 {
            self.dirty_rate.observe(dirtied as f64 / secs);
            self.drain_rate.observe(pages as f64 / secs);
        }
        let t = transfer.as_secs_f64();
        if t > 0.0 && wire_bytes > 0 {
            self.throughput.observe(wire_bytes as f64 / t);
        }
        if pages > 0 {
            self.per_page_wire.observe(wire_bytes as f64 / pages as f64);
            self.compression
                .observe(wire_bytes as f64 / (pages * PAGE_SIZE) as f64);
        }

        // Non-convergence: the guest re-dirtied at least 90% of what the
        // round drained (integer compare keeps this deterministic).
        if pages > 0 && dirtied.saturating_mul(10) >= pages.saturating_mul(9) {
            self.streak += 1;
        } else {
            self.streak = 0;
        }
        if self.active && self.streak >= self.control.nonconvergence_rounds {
            // A budget implies permission to throttle even when
            // auto-converge was not explicitly requested: a steady-state
            // dirty set above the budget threshold can never shrink on
            // its own, so forcing an early stop there would ship an
            // over-budget stop set. Throttling is the only mechanism
            // that makes the budget reachable.
            let may_throttle = self.control.auto_converge || self.budget.is_some();
            if may_throttle && self.throttle > self.control.min_throttle {
                self.throttle =
                    (self.throttle * self.control.throttle_step).max(self.control.min_throttle);
                self.streak = 0;
            } else {
                // Throttle exhausted (or disabled): every further round
                // re-ships the same steady-state set. Stop now — the
                // residual is no bigger than it will ever be.
                self.force_stop = true;
            }
        }
    }

    /// The stop threshold in force for the next stop check: the static
    /// threshold while inactive or unbudgeted, otherwise the budget
    /// converted to pages at the observed effective throughput and
    /// per-page wire cost ([`PrecopyController::budget_pages`]).
    pub fn stop_threshold(&self) -> u64 {
        match (self.active, self.budget) {
            (true, Some(_)) => self.budget_pages(),
            _ => self.static_threshold,
        }
    }

    /// Converts the downtime budget into a max stop-and-copy page count.
    ///
    /// `budget − stop_fixed` seconds of transfer at the observed
    /// throughput gives the byte allowance; pages follow from the *worse*
    /// of (a) full raw frames — always safe — and (b) the observed
    /// per-page wire cost inflated by [`ControlConfig::budget_safety`].
    /// Taking the max lets good compression raise the allowance (cheap
    /// pages ⇒ more pages per millisecond) while (a) guarantees the
    /// conversion never goes below what raw frames could deliver.
    pub fn budget_pages(&self) -> u64 {
        let Some(budget) = self.budget else {
            return self.static_threshold;
        };
        let avail = budget.saturating_sub(self.stop_fixed);
        let bps = self.throughput.get_or(self.default_throughput());
        if bps <= 0.0 {
            return 0;
        }
        let budget_bytes = avail.as_secs_f64() * bps;
        let raw_frame = (WIRE_FRAME_HEADER + PAGE_SIZE) as f64;
        let safe = budget_bytes / raw_frame;
        let per_page =
            self.per_page_wire.get_or(raw_frame).max(1.0) * self.control.budget_safety.max(1.0);
        let refined = budget_bytes / per_page.max(1.0);
        safe.max(refined).floor() as u64
    }

    /// Link-model throughput used before the first observation: effective
    /// shared rate in bytes/second.
    fn default_throughput(&self) -> f64 {
        self.link.gbps * self.link.efficiency * 1e9 / 8.0 / self.sharers.max(1) as f64
    }

    /// Resets every estimator and the non-convergence streak. Called when
    /// a link fault invalidated what the samples were measuring; the
    /// throttle is kept (it reflects state already applied to the guest).
    pub fn reset_estimators(&mut self) {
        self.dirty_rate.reset();
        self.drain_rate.reset();
        self.throughput.reset();
        self.per_page_wire.reset();
        self.compression.reset();
        self.streak = 0;
    }

    /// Observed dirty rate, pages/second (0.0 before the first round).
    pub fn dirty_rate_est(&self) -> f64 {
        self.dirty_rate.get_or(0.0)
    }

    /// Observed drain rate, pages/second (0.0 before the first round).
    pub fn drain_rate_est(&self) -> f64 {
        self.drain_rate.get_or(0.0)
    }

    /// Observed effective throughput, bytes/second (0.0 before the first
    /// round).
    pub fn throughput_est(&self) -> f64 {
        self.throughput.get_or(0.0)
    }

    /// Observed wire/raw compression ratio (1.0 before the first round).
    pub fn compression_est(&self) -> f64 {
        self.compression.get_or(1.0)
    }
}

/// Shared-NIC contention: workload traffic and the pre-copy stream split
/// one link. The stream gets the *leftover* bandwidth — line rate minus
/// the guests' traffic — but never less than
/// [`LinkContention::min_migration_share`] of the link (TCP fairness: a
/// bulk stream is never starved outright). `workload_bps: 0.0` (the
/// default) reproduces the uncontended link bit-for-bit, so every pinned
/// §5.2 timing test is untouched.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkContention {
    /// Workload traffic sharing the NIC with this migration, bytes/second.
    pub workload_bps: f64,
    /// Floor fraction of the effective link the pre-copy stream always
    /// keeps, however hot the workload runs.
    pub min_migration_share: f64,
}

impl LinkContention {
    /// No workload traffic: the uncontended link, byte-identical.
    pub const NONE: LinkContention = LinkContention {
        workload_bps: 0.0,
        min_migration_share: 0.25,
    };

    /// Contention from `workload_bps` bytes/second of guest traffic.
    pub fn new(workload_bps: f64) -> Self {
        LinkContention {
            workload_bps,
            ..LinkContention::NONE
        }
    }

    /// Fraction of the effective link left to the pre-copy stream
    /// (1.0 when uncontended, floored at `min_migration_share`).
    pub fn share(&self, link: &Link) -> f64 {
        if self.workload_bps <= 0.0 {
            return 1.0;
        }
        let line_bps = link.gbps * link.efficiency * 1e9 / 8.0;
        if line_bps <= 0.0 {
            return 1.0;
        }
        ((line_bps - self.workload_bps) / line_bps)
            .max(self.min_migration_share.clamp(0.01, 1.0))
            .min(1.0)
    }

    /// The link as the migration experiences it: efficiency scaled by the
    /// migration's bandwidth share. Returns the link unchanged when
    /// uncontended (same bits, not just the same value).
    pub fn contended(&self, link: &Link) -> Link {
        let share = self.share(link);
        if share >= 1.0 {
            *link
        } else {
            Link {
                efficiency: link.efficiency * share,
                ..*link
            }
        }
    }
}

impl Default for LinkContention {
    fn default() -> Self {
        LinkContention::NONE
    }
}

/// One VM's deterministic diurnal load as the fleet scheduler sees it: a
/// raised-cosine hump of `period` (a simulated day) peaking at
/// `peak_offset`, scaled between `trough_fraction · peak_qps` and
/// `peak_qps`. `sharpness` raises the hump to a power, narrowing the
/// peak (real diurnal mixes spend most of the day off-peak). Pure
/// arithmetic on the query clock — no RNG, no global state — so every
/// evaluation is deterministic and worker-count invariant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficCurve {
    /// Peak load, queries/second.
    pub peak_qps: f64,
    /// Trough load as a fraction of peak (0 = dead at night, 1 = flat).
    pub trough_fraction: f64,
    /// When in the period the peak occurs.
    pub peak_offset: SimDuration,
    /// Length of the diurnal cycle (24 h for a real day).
    pub period: SimDuration,
    /// Cosine-hump exponent; 1 = plain cosine, larger = narrower peak.
    pub sharpness: u32,
    /// Wire bytes each query puts on the shared NIC (couples QPS to
    /// [`LinkContention::workload_bps`]).
    pub bytes_per_query: f64,
}

impl TrafficCurve {
    /// A 24-hour simulated day.
    pub const DAY: SimDuration = SimDuration::from_secs(86_400);

    /// A flat (traffic-free) curve: utilization 0 everywhere.
    pub const IDLE: TrafficCurve = TrafficCurve {
        peak_qps: 0.0,
        trough_fraction: 0.0,
        peak_offset: SimDuration::ZERO,
        period: TrafficCurve::DAY,
        sharpness: 1,
        bytes_per_query: 0.0,
    };

    /// Utilization (0..=1, fraction of peak) at `t` from the curve's
    /// epoch; wraps modulo the period.
    pub fn utilization_at(&self, t: SimDuration) -> f64 {
        if self.peak_qps <= 0.0 {
            return 0.0;
        }
        let p = self.period.as_nanos();
        if p == 0 {
            return 1.0;
        }
        let off = self.peak_offset.as_nanos() % p;
        let x = (t.as_nanos() % p + p - off) % p;
        let frac = x as f64 / p as f64;
        let hump = 0.5 + 0.5 * (core::f64::consts::TAU * frac).cos();
        let hump = hump.powi(self.sharpness.max(1) as i32);
        let tf = self.trough_fraction.clamp(0.0, 1.0);
        tf + (1.0 - tf) * hump
    }

    /// Load at `t`, queries/second.
    pub fn qps_at(&self, t: SimDuration) -> f64 {
        self.peak_qps * self.utilization_at(t)
    }

    /// NIC bytes/second the workload puts on the shared link at `t`.
    pub fn bps_at(&self, t: SimDuration) -> f64 {
        self.qps_at(t) * self.bytes_per_query
    }

    /// Start offset (within one period, stepped at `step`) of the
    /// `window`-long interval with the lowest mean utilization — the
    /// VM's predicted low-QPS window. Deterministic first-minimum rule.
    pub fn min_window_start(&self, window: SimDuration, step: SimDuration) -> SimDuration {
        let p = self.period.as_nanos();
        let s = step.as_nanos().max(1);
        let mut best = (f64::INFINITY, SimDuration::ZERO);
        let mut t = 0u64;
        while t < p.max(1) {
            let start = SimDuration::from_nanos(t);
            let mid = start + SimDuration::from_nanos(window.as_nanos() / 2);
            let u = (self.utilization_at(start)
                + self.utilization_at(mid)
                + self.utilization_at(start + window))
                / 3.0;
            if u < best.0 {
                best = (u, start);
            }
            t += s;
        }
        best.1
    }
}

/// Result of pricing one VM's migration window against its SLO.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VmSloOutcome {
    /// Seconds of the migration during which the VM could not meet its
    /// SLO: pre-copy seconds where offered load exceeded the degraded
    /// capacity, plus the blackout whenever the VM was serving at all.
    pub violation: SimDuration,
    /// `violation` as a fraction of the VM's error budget (>1 = budget
    /// blown by this migration alone).
    pub budget_burn: f64,
    /// Mean utilization over the pre-copy window (scheduling telemetry:
    /// low means the scheduler found a quiet window).
    pub mean_utilization: f64,
}

/// Per-VM SLO attachment of a [`FleetVm`]: the VM's traffic curve plus
/// the two numbers that turn a migration window into harm. Derived from
/// a workload profile by `hypertp-workloads`' `SloSpec`/`TrafficModel`;
/// this crate only consumes the distilled form.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloVm {
    /// The VM's diurnal load.
    pub traffic: TrafficCurve,
    /// Fraction of peak capacity still available while a pre-copy stream
    /// degrades the guest (1 − migration degradation, tightened further
    /// by a strict p99 target). Offered load above this violates.
    pub degraded_capacity: f64,
    /// Violation-seconds allowance per day (the SLO's error budget).
    pub error_budget: SimDuration,
}

impl SloVm {
    /// True when migrating at `t` would violate the SLO: the offered
    /// load exceeds what the degraded guest can serve.
    pub fn violates_at(&self, t: SimDuration) -> bool {
        self.traffic.utilization_at(t) > self.degraded_capacity.clamp(0.0, 1.0)
    }

    /// Prices a migration scheduled at `start` with the given pre-copy
    /// and blackout durations: per-second sampling of the pre-copy
    /// window (deterministic — pure curve arithmetic, fractional tail
    /// weighted), blackout counted in full whenever the VM had traffic.
    pub fn outcome(
        &self,
        start: SimDuration,
        precopy: SimDuration,
        downtime: SimDuration,
    ) -> VmSloOutcome {
        let total = precopy.as_secs_f64();
        let whole = total.floor() as u64;
        let frac = total - whole as f64;
        let mut violated = 0.0f64;
        let mut util_sum = 0.0f64;
        for k in 0..whole {
            let t = start + SimDuration::from_secs(k);
            util_sum += self.traffic.utilization_at(t);
            if self.violates_at(t) {
                violated += 1.0;
            }
        }
        if frac > 0.0 {
            let t = start + SimDuration::from_secs(whole);
            util_sum += self.traffic.utilization_at(t) * frac;
            if self.violates_at(t) {
                violated += frac;
            }
        }
        // Blackout: the VM serves nothing, so any offered load violates.
        if self.traffic.qps_at(start + precopy) > 1e-9 {
            violated += downtime.as_secs_f64();
        }
        let denom = whole as f64 + frac;
        VmSloOutcome {
            violation: SimDuration::from_secs_f64(violated),
            budget_burn: violated / self.error_budget.as_secs_f64().max(1e-9),
            mean_utilization: if denom > 0.0 {
                util_sum / denom
            } else {
                self.traffic.utilization_at(start)
            },
        }
    }
}

/// Admission/ordering policy of a fleet migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FleetOrder {
    /// Input order (the legacy `migrate_many` behaviour).
    #[default]
    Fifo,
    /// Shortest-predicted-downtime-first: VMs whose stop-and-copy is
    /// predicted smallest are admitted (and therefore reach the receiver)
    /// first, which minimises mean downtime behind a sequential receiver
    /// and drains the fleet's exposure window fastest.
    ShortestPredictedFirst,
    /// [`FleetOrder::ShortestPredictedFirst`] with feedback: after every
    /// completed migration the scheduler folds the *observed* dirty rate
    /// and wire compression into fleet-level EWMA estimators
    /// ([`ControlConfig::ewma_alpha`]) and re-runs [`predict_migration`]
    /// over the still-waiting VMs before picking the next admission. The
    /// cold-start prediction only governs the first pick; everything after
    /// is ordered by warmed estimates, so a mis-calibrated
    /// [`FleetPolicy::compression_hint`] or stale dirty-rate profile
    /// corrects itself within a couple of admissions. The admission-time
    /// predictions are reported in
    /// [`crate::engine::FleetReport::admission_predictions`] for
    /// predicted-vs-actual telemetry.
    Repredict,
    /// Least-predicted-harm-first: at every free slot the scheduler
    /// re-prices each waiting VM's migration *at the slot's current
    /// time* — contended pre-copy prediction ([`LinkContention`] from
    /// the VM's own traffic) fed through [`SloVm::outcome`] — and admits
    /// the one whose predicted SLO violation-seconds are smallest
    /// (predicted stop-and-copy, then input index, break ties). VMs in
    /// their low-QPS window cost nothing and drain first; hot-traffic
    /// VMs are pushed back and picked up when the fleet drain reaches
    /// their quiet window. VMs without an [`SloVm`] attachment are
    /// harmless by definition and admit ahead of any violating VM, in
    /// SPDF order. Work-conserving: a slot never idles waiting for a
    /// window, so the makespan stays within a whisker of SPDF.
    SloAware,
}

impl FleetOrder {
    /// Stable short name used in logs and JSON.
    pub fn name(self) -> &'static str {
        match self {
            FleetOrder::Fifo => "fifo",
            FleetOrder::ShortestPredictedFirst => "spdf",
            FleetOrder::Repredict => "repredict",
            FleetOrder::SloAware => "slo",
        }
    }
}

/// How `migrate_fleet` runs a fleet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetPolicy {
    /// Admission order.
    pub order: FleetOrder,
    /// Max concurrent pre-copy streams sharing the link (0 = all at once,
    /// the legacy behaviour). Bounding concurrency shortens rounds, which
    /// shrinks per-round dirtying — the fleet-level convergence win.
    pub max_concurrent: usize,
    /// Wire/raw byte ratio assumed by the scheduler's predictions (1.0
    /// for [`WireMode::Raw`]; feed an observed
    /// [`crate::WireStats::compression_ratio`] for content-aware fleets).
    pub compression_hint: f64,
}

impl Default for FleetPolicy {
    /// The legacy `migrate_many` behaviour: FIFO, unbounded concurrency.
    fn default() -> Self {
        FleetPolicy {
            order: FleetOrder::Fifo,
            max_concurrent: 0,
            compression_hint: 1.0,
        }
    }
}

/// One fleet member: the VM plus an optional per-VM dirty-rate override
/// (pages/second) for heterogeneous fleets (`None` uses the engine
/// config's global rate) and an optional SLO attachment. A VM with an
/// [`SloVm`] contends its own traffic against its pre-copy stream on the
/// shared NIC and has its violation-seconds accounted in the fleet
/// report, under *every* order — the physics applies whether or not the
/// scheduler looks at it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetVm {
    /// The VM to migrate.
    pub id: VmId,
    /// Per-VM dirty rate override.
    pub dirty_rate: Option<f64>,
    /// Traffic curve + SLO of the VM (`None` = no traffic, no
    /// contention, no accounting — the legacy behaviour).
    pub slo: Option<SloVm>,
}

impl FleetVm {
    /// A fleet member using the engine config's dirty rate.
    pub fn new(id: VmId) -> Self {
        FleetVm {
            id,
            dirty_rate: None,
            slo: None,
        }
    }

    /// A fleet member with its own dirty rate.
    pub fn with_dirty_rate(id: VmId, rate: f64) -> Self {
        FleetVm {
            id,
            dirty_rate: Some(rate),
            slo: None,
        }
    }

    /// Builder-style: attach a traffic curve + SLO.
    pub fn with_slo(mut self, slo: SloVm) -> Self {
        self.slo = Some(slo);
        self
    }
}

/// Inputs of the analytic pre-copy round model.
#[derive(Debug, Clone, Copy)]
pub struct PredictInput<'a> {
    /// Guest pages of the VM.
    pub pages: u64,
    /// Guest dirty rate, pages/second.
    pub dirty_rate: f64,
    /// The migration configuration (link, rounds, threshold, wire mode).
    pub config: &'a MigrationConfig,
    /// Concurrent streams sharing the link.
    pub sharers: u32,
    /// Source machine performance (per-page CPU cost scaling).
    pub perf: MachinePerf,
    /// CPU cost per page, GHz-seconds
    /// ([`hypertp_sim::CostModel::migrate_ghz_s_per_page`]).
    pub ghz_s_per_page: f64,
    /// Per-round protocol overhead, seconds
    /// ([`hypertp_sim::CostModel::migrate_round_overhead_s`]).
    pub round_overhead_s: f64,
    /// Wire/raw ratio assumed for page bytes (1.0 = raw).
    pub compression_hint: f64,
    /// Fixed stop-and-copy cost (activation + UISR + latency).
    pub stop_fixed: SimDuration,
    /// Workload traffic contending for the link
    /// ([`LinkContention::NONE`] reproduces the uncontended model
    /// bit-for-bit).
    pub contention: LinkContention,
}

/// Output of [`predict_migration`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationPrediction {
    /// Predicted pre-copy rounds.
    pub rounds: u32,
    /// Predicted pre-copy duration.
    pub precopy: SimDuration,
    /// Predicted stop-and-copy duration (= predicted solo downtime).
    pub stop_copy: SimDuration,
    /// Predicted residual page count at pause.
    pub stop_pages: u64,
}

/// Analytic pre-copy round model: replays the engine's round loop on
/// paper (same transfer/CPU/overhead formulas, same dirtying formula,
/// static threshold) without touching guest memory. Under
/// [`WireMode::Raw`] with no controller this reproduces the engine's
/// timings exactly; under [`WireMode::ContentAware`] page bytes scale by
/// `compression_hint`. Used for scheduler ordering and predicted-vs-
/// actual telemetry — a cheap model, not a promise.
pub fn predict_migration(input: &PredictInput<'_>) -> MigrationPrediction {
    let cfg = input.config;
    let link = input.contention.contended(&cfg.link);
    let page_bytes = |pages: u64| -> u64 {
        match cfg.wire_mode {
            WireMode::Raw => pages * PAGE_SIZE,
            WireMode::ContentAware => {
                let per_page =
                    (WIRE_FRAME_HEADER + PAGE_SIZE) as f64 * input.compression_hint.clamp(0.0, 1.0);
                (pages as f64 * per_page) as u64
            }
        }
    };
    let mut to_send = input.pages;
    let mut precopy = SimDuration::ZERO;
    let mut rounds = 0u32;
    let stop_pages = loop {
        let duration = link.transfer(page_bytes(to_send), input.sharers)
            + input.perf.cpu(input.ghz_s_per_page * to_send as f64)
            + SimDuration::from_secs_f64(input.round_overhead_s);
        precopy += duration;
        rounds += 1;
        let dirtied = ((input.dirty_rate * duration.as_secs_f64()) as u64).min(input.pages);
        if dirtied <= cfg.stop_threshold_pages || rounds >= cfg.max_rounds {
            break dirtied;
        }
        to_send = dirtied;
    };
    let stop_copy = link.transfer(page_bytes(stop_pages), input.sharers) + input.stop_fixed;
    MigrationPrediction {
        rounds,
        precopy,
        stop_copy,
        stop_pages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn perf() -> MachinePerf {
        MachinePerf {
            freq_ghz: 2.5,
            threads: 8,
            reserved_threads: 2,
            host_ram_gb: 16.0,
            nic_gbps: 1.0,
            nic_init: SimDuration::from_secs_f64(6.6),
        }
    }

    #[test]
    fn default_controller_is_inactive_and_static() {
        let cfg = MigrationConfig::default();
        let mut c = PrecopyController::new(&cfg, 1, SimDuration::from_millis(5));
        assert!(!c.active());
        assert_eq!(c.throttle(), 1.0);
        assert_eq!(c.stop_threshold(), cfg.stop_threshold_pages);
        // Even hammered with non-convergent rounds: no throttle, no stop.
        for _ in 0..10 {
            c.observe_round(
                1000,
                1000 * 4096,
                SimDuration::from_millis(30),
                SimDuration::from_millis(80),
                1000,
            );
        }
        assert_eq!(c.throttle(), 1.0);
        assert!(!c.force_stop());
        assert_eq!(c.stop_threshold(), 64);
        // But telemetry still observes.
        assert!(c.dirty_rate_est() > 0.0);
        assert!(c.throughput_est() > 0.0);
    }

    #[test]
    fn auto_converge_throttles_then_forces_stop() {
        let mut cfg = MigrationConfig::default();
        cfg.control.auto_converge = true;
        let mut c = PrecopyController::new(&cfg, 1, SimDuration::ZERO);
        assert!(c.active());
        let hammer = |c: &mut PrecopyController| {
            c.observe_round(
                1000,
                1000 * 4096,
                SimDuration::from_millis(30),
                SimDuration::from_millis(80),
                1000,
            )
        };
        hammer(&mut c);
        assert_eq!(c.throttle(), 1.0, "one round is not a streak");
        hammer(&mut c);
        assert_eq!(c.throttle(), 0.25, "K=2 rounds trigger the first step");
        // Keep hammering: throttle walks down to the floor, then the
        // detector gives up and forces a stop.
        for _ in 0..20 {
            hammer(&mut c);
        }
        assert_eq!(c.throttle(), cfg.control.min_throttle);
        assert!(c.force_stop());
    }

    #[test]
    fn convergent_rounds_reset_the_streak() {
        let mut cfg = MigrationConfig::default();
        cfg.control.auto_converge = true;
        let mut c = PrecopyController::new(&cfg, 1, SimDuration::ZERO);
        c.observe_round(
            1000,
            4_096_000,
            SimDuration::from_millis(30),
            SimDuration::from_millis(80),
            1000,
        );
        // 50% re-dirtying is convergent: streak resets.
        c.observe_round(
            1000,
            4_096_000,
            SimDuration::from_millis(30),
            SimDuration::from_millis(80),
            500,
        );
        c.observe_round(
            1000,
            4_096_000,
            SimDuration::from_millis(30),
            SimDuration::from_millis(80),
            1000,
        );
        assert_eq!(c.throttle(), 1.0, "streak never reached K");
    }

    #[test]
    fn budget_converts_to_pages_via_observed_throughput() {
        let cfg = MigrationConfig {
            downtime_budget: Some(SimDuration::from_millis(10)),
            ..MigrationConfig::default()
        };
        let fixed = SimDuration::from_millis(5);
        let mut c = PrecopyController::new(&cfg, 1, fixed);
        assert!(c.active());
        // Before any observation: link-model throughput, raw frames.
        // 5 ms at ~116 MB/s ≈ 581 KB ≈ 141 raw frames.
        let cold = c.budget_pages();
        assert!((100..200).contains(&cold), "cold budget pages = {cold}");
        // Observe rounds shipping ~32 B/page (dedup-heavy): the refined
        // conversion allows far more pages for the same 5 ms.
        for _ in 0..4 {
            c.observe_round(
                10_000,
                320_000,
                SimDuration::from_millis(3),
                SimDuration::from_millis(55),
                0,
            );
        }
        let warm = c.budget_pages();
        assert!(warm > 4 * cold, "compression raises the allowance: {warm}");
        // Safety factor 2 halves what pure per-page maths would allow.
        // budget_bytes ≈ 0.005 s × (320000/0.003) B/s ≈ 533 KB;
        // per-page = 32 × 2 = 64 B ⇒ ≈ 8.3 k pages.
        assert!(warm < 20_000, "safety factor caps the allowance: {warm}");
        assert_eq!(c.stop_threshold(), warm);
    }

    #[test]
    fn budget_below_fixed_floor_demands_empty_stop_set() {
        let cfg = MigrationConfig {
            downtime_budget: Some(SimDuration::from_millis(2)),
            ..MigrationConfig::default()
        };
        let c = PrecopyController::new(&cfg, 1, SimDuration::from_millis(5));
        assert_eq!(c.budget_pages(), 0, "nothing fits under the floor");
    }

    #[test]
    fn reset_estimators_clears_observations_keeps_throttle() {
        let mut cfg = MigrationConfig::default();
        cfg.control.auto_converge = true;
        let mut c = PrecopyController::new(&cfg, 1, SimDuration::ZERO);
        for _ in 0..4 {
            c.observe_round(
                1000,
                1000 * 4096,
                SimDuration::from_millis(30),
                SimDuration::from_millis(80),
                1000,
            );
        }
        let throttled = c.throttle();
        assert!(throttled < 1.0);
        c.reset_estimators();
        assert_eq!(c.dirty_rate_est(), 0.0);
        assert_eq!(c.throughput_est(), 0.0);
        assert_eq!(c.compression_est(), 1.0);
        assert_eq!(c.throttle(), throttled, "guest throttle survives");
    }

    #[test]
    fn prediction_converges_for_idle_and_caps_for_hot() {
        let cfg = MigrationConfig::default();
        let mk = |rate: f64| PredictInput {
            pages: 262_144,
            dirty_rate: rate,
            config: &cfg,
            sharers: 1,
            perf: perf(),
            ghz_s_per_page: 1.0e-6,
            round_overhead_s: 0.05,
            compression_hint: 1.0,
            stop_fixed: SimDuration::from_millis(5),
            contention: LinkContention::NONE,
        };
        let idle = predict_migration(&mk(1.0));
        assert_eq!(idle.rounds, 1, "idle VM stops after the full copy");
        assert!(idle.stop_pages <= cfg.stop_threshold_pages);
        assert!((9.0..11.0).contains(&idle.precopy.as_secs_f64()));

        let hot = predict_migration(&mk(1e7));
        assert_eq!(hot.rounds, cfg.max_rounds, "non-convergent hits the cap");
        assert!(hot.stop_pages > 100_000);
        assert!(hot.stop_copy > idle.stop_copy);

        // Rate 1000 pages/s: steady-state dirty set ≈ 52 pages < the
        // 64-page threshold, so the prediction converges in a few rounds.
        let busy = predict_migration(&mk(1000.0));
        assert!(
            busy.rounds > 1 && busy.rounds < cfg.max_rounds,
            "busy rounds = {}",
            busy.rounds
        );
    }

    #[test]
    fn prediction_orders_by_size_and_rate() {
        let cfg = MigrationConfig::default();
        let mk = |pages: u64, rate: f64| {
            predict_migration(&PredictInput {
                pages,
                dirty_rate: rate,
                config: &cfg,
                sharers: 2,
                perf: perf(),
                ghz_s_per_page: 1.0e-6,
                round_overhead_s: 0.05,
                compression_hint: 1.0,
                stop_fixed: SimDuration::from_millis(5),
                contention: LinkContention::NONE,
            })
        };
        let small = mk(65_536, 1.0);
        let large = mk(262_144, 1.0);
        assert!(small.precopy < large.precopy);
        let idle = mk(262_144, 1.0);
        let hot = mk(262_144, 1e6);
        assert!(idle.stop_copy < hot.stop_copy);
    }

    #[test]
    fn fleet_policy_defaults_are_legacy() {
        let p = FleetPolicy::default();
        assert_eq!(p.order, FleetOrder::Fifo);
        assert_eq!(p.max_concurrent, 0);
        assert_eq!(p.compression_hint, 1.0);
        assert_eq!(FleetOrder::Fifo.name(), "fifo");
        assert_eq!(FleetOrder::ShortestPredictedFirst.name(), "spdf");
        assert_eq!(FleetOrder::SloAware.name(), "slo");
    }

    #[test]
    fn uncontended_link_is_bit_identical() {
        let link = Link::gigabit();
        let c = LinkContention::NONE;
        let out = c.contended(&link);
        assert_eq!(out.gbps.to_bits(), link.gbps.to_bits());
        assert_eq!(out.efficiency.to_bits(), link.efficiency.to_bits());
        assert_eq!(out.latency, link.latency);
        assert_eq!(c.share(&link), 1.0);
        // Negative traffic is treated as none.
        let neg = LinkContention::new(-5.0).contended(&link);
        assert_eq!(neg.efficiency.to_bits(), link.efficiency.to_bits());
    }

    #[test]
    fn contention_scales_and_floors_the_link() {
        let link = Link::gigabit(); // 0.93 × 1 Gbps ≈ 116 MB/s effective
        let line = link.gbps * link.efficiency * 1e9 / 8.0;
        // Half the line busy: the stream keeps the other half.
        let half = LinkContention::new(line / 2.0);
        assert!((half.share(&link) - 0.5).abs() < 1e-12);
        let t_idle = link.transfer(1 << 30, 1);
        let t_half = half.contended(&link).transfer(1 << 30, 1);
        let ratio = t_half.as_secs_f64() / t_idle.as_secs_f64();
        assert!((1.9..2.1).contains(&ratio), "ratio = {ratio}");
        // Saturated workload: the fairness floor keeps 25%.
        let hog = LinkContention::new(line * 10.0);
        assert_eq!(hog.share(&link), 0.25);
    }

    #[test]
    fn contended_prediction_is_slower_and_monotone() {
        let cfg = MigrationConfig::default();
        let mk = |bps: f64| {
            predict_migration(&PredictInput {
                pages: 262_144,
                dirty_rate: 1.0,
                config: &cfg,
                sharers: 1,
                perf: perf(),
                ghz_s_per_page: 1.0e-6,
                round_overhead_s: 0.05,
                compression_hint: 1.0,
                stop_fixed: SimDuration::from_millis(5),
                contention: LinkContention::new(bps),
            })
        };
        let idle = mk(0.0);
        let busy = mk(50e6);
        let hot = mk(100e6);
        assert!(idle.precopy < busy.precopy);
        assert!(busy.precopy < hot.precopy);
    }

    #[test]
    fn traffic_curve_peaks_and_troughs_where_told() {
        let c = TrafficCurve {
            peak_qps: 1000.0,
            trough_fraction: 0.1,
            peak_offset: SimDuration::from_secs(6 * 3600),
            period: TrafficCurve::DAY,
            sharpness: 1,
            bytes_per_query: 100.0,
        };
        let at = |h: u64| c.utilization_at(SimDuration::from_secs(h * 3600));
        assert!((at(6) - 1.0).abs() < 1e-9, "peak at its offset");
        assert!((at(18) - 0.1).abs() < 1e-9, "trough half a day later");
        assert!((c.qps_at(SimDuration::from_secs(6 * 3600)) - 1000.0).abs() < 1e-9);
        assert!((c.bps_at(SimDuration::from_secs(6 * 3600)) - 100_000.0).abs() < 1e-6);
        // Wraps modulo the period.
        assert!((at(6 + 24) - 1.0).abs() < 1e-9);
        // Sharpening narrows the peak but keeps its height.
        let sharp = TrafficCurve { sharpness: 3, ..c };
        assert!((sharp.utilization_at(SimDuration::from_secs(6 * 3600)) - 1.0).abs() < 1e-9);
        assert!(
            sharp.utilization_at(SimDuration::from_secs(9 * 3600))
                < c.utilization_at(SimDuration::from_secs(9 * 3600))
        );
        // The min window lands in the trough.
        let w = c.min_window_start(SimDuration::from_secs(600), SimDuration::from_secs(900));
        let hours = w.as_secs_f64() / 3600.0;
        assert!((16.0..20.0).contains(&hours), "min window at {hours}h");
        assert_eq!(TrafficCurve::IDLE.utilization_at(SimDuration::ZERO), 0.0);
    }

    #[test]
    fn slo_outcome_prices_hot_windows_not_quiet_ones() {
        let slo = SloVm {
            traffic: TrafficCurve {
                peak_qps: 1000.0,
                trough_fraction: 0.05,
                peak_offset: SimDuration::ZERO,
                period: TrafficCurve::DAY,
                sharpness: 1,
                bytes_per_query: 100.0,
            },
            degraded_capacity: 0.6,
            error_budget: SimDuration::from_secs(120),
        };
        let precopy = SimDuration::from_secs(100);
        let dt = SimDuration::from_millis(500);
        // At the peak the whole pre-copy violates, plus the blackout.
        let hot = slo.outcome(SimDuration::ZERO, precopy, dt);
        assert!((hot.violation.as_secs_f64() - 100.5).abs() < 1e-6);
        assert!((hot.budget_burn - 100.5 / 120.0).abs() < 1e-6);
        assert!(hot.mean_utilization > 0.99);
        // In the trough nothing violates but the blackout (traffic > 0).
        let quiet = slo.outcome(SimDuration::from_secs(12 * 3600), precopy, dt);
        assert!((quiet.violation.as_secs_f64() - 0.5).abs() < 1e-6);
        assert!(quiet.mean_utilization < 0.1);
        // Zero-length pre-copy still reports a defined utilization.
        let point = slo.outcome(SimDuration::ZERO, SimDuration::ZERO, SimDuration::ZERO);
        assert!((point.mean_utilization - 1.0).abs() < 1e-9);
        assert_eq!(point.violation, SimDuration::ZERO);
    }
}
