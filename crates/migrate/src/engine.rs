//! The pre-copy migration engine with UISR proxies.

use hypertp_core::{HtpError, Hypervisor, HypervisorKind, VmId};
use hypertp_machine::{Gfn, Machine, PAGE_SIZE};
use hypertp_sim::{CostModel, SimDuration, SimTime};

use crate::network::Link;

/// Pre-copy tuning parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationConfig {
    /// The link between source and destination.
    pub link: Link,
    /// Maximum pre-copy rounds before forcing stop-and-copy.
    pub max_rounds: u32,
    /// Go to stop-and-copy once a round's dirty set is at most this many
    /// pages.
    pub stop_threshold_pages: u64,
    /// Guest write rate while migrating, in pages/second (drives pre-copy
    /// convergence; idle VMs in §5.2 have a near-zero rate).
    pub dirty_rate_pages_per_sec: f64,
    /// Verify that destination guest memory equals the source at pause
    /// time (tests; costs a full extra pass).
    pub verify_contents: bool,
}

impl Default for MigrationConfig {
    fn default() -> Self {
        MigrationConfig {
            link: Link::gigabit(),
            max_rounds: 30,
            stop_threshold_pages: 64,
            dirty_rate_pages_per_sec: 10.0,
            verify_contents: false,
        }
    }
}

/// Statistics of one pre-copy round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundStats {
    /// Round number (0 = full copy).
    pub round: u32,
    /// Pages transferred.
    pub pages: u64,
    /// Simulated duration of the round.
    pub duration: SimDuration,
}

/// Result of one VM migration.
#[derive(Debug, Clone)]
pub struct MigrationReport {
    /// Migrated VM's name.
    pub vm_name: String,
    /// Instant the migration started.
    pub start: SimTime,
    /// Per-round statistics.
    pub rounds: Vec<RoundStats>,
    /// VM downtime (pause on source → resume on destination, including
    /// any destination queueing).
    pub downtime: SimDuration,
    /// Total migration time.
    pub total: SimDuration,
    /// Guest page bytes sent.
    pub bytes_sent: u64,
    /// Encoded UISR bytes sent through the proxies.
    pub uisr_bytes: u64,
    /// Compatibility warnings from the destination proxy.
    pub warnings: Vec<String>,
}

/// Outcome of the data phase, before scheduling adjustments.
struct DataPhase {
    report: MigrationReport,
    precopy: SimDuration,
    stop_copy: SimDuration,
    dst_id: VmId,
}

/// The MigrationTP engine.
#[derive(Debug, Clone, Default)]
pub struct MigrationTp {
    /// Cost model for CPU-side costs and activation.
    pub cost: CostModel,
    /// Pre-copy configuration.
    pub config: MigrationConfig,
}

impl MigrationTp {
    /// Creates an engine with defaults.
    pub fn new() -> Self {
        MigrationTp::default()
    }

    /// Replaces the configuration.
    pub fn with_config(mut self, config: MigrationConfig) -> Self {
        self.config = config;
        self
    }

    /// Migrates one VM from `src_hv` on `src_machine` to `dst_hv` on
    /// `dst_machine`, advancing the source clock through the whole
    /// migration. The source VM is destroyed on success, as in a normal
    /// live migration.
    #[allow(clippy::too_many_arguments)]
    pub fn migrate(
        &self,
        src_machine: &mut Machine,
        src_hv: &mut dyn Hypervisor,
        src_id: VmId,
        dst_machine: &mut Machine,
        dst_hv: &mut dyn Hypervisor,
    ) -> Result<MigrationReport, HtpError> {
        let phase = self.migrate_data(
            src_machine,
            src_hv,
            src_id,
            dst_machine,
            dst_hv,
            1,
            SimDuration::ZERO,
        )?;
        // Critical path: pre-copy then stop-and-copy.
        src_machine.clock().advance(phase.precopy + phase.stop_copy);
        dst_machine.clock().advance_to(src_machine.clock().now());
        dst_hv.resume_vm(phase.dst_id)?;
        src_hv.destroy_vm(src_machine, src_id)?;
        Ok(phase.report)
    }

    /// The data phase: performs every page and state transfer and computes
    /// durations, without advancing machine clocks (the caller schedules).
    ///
    /// `sharers` models concurrent migrations dividing the link;
    /// `receiver_queue_wait` is added to the downtime before destination
    /// activation (Xen's sequential receive side, §5.2.2).
    #[allow(clippy::too_many_arguments)]
    fn migrate_data(
        &self,
        src_machine: &mut Machine,
        src_hv: &mut dyn Hypervisor,
        src_id: VmId,
        dst_machine: &mut Machine,
        dst_hv: &mut dyn Hypervisor,
        sharers: u32,
        receiver_queue_wait: SimDuration,
    ) -> Result<DataPhase, HtpError> {
        let cfg = src_hv.vm_config(src_id)?.clone();
        let start = src_machine.clock().now();
        let perf = src_machine.spec().perf();
        let dst_id = dst_hv.prepare_incoming(dst_machine, &cfg)?;
        src_hv.enable_dirty_log(src_id)?;

        let mut rounds = Vec::new();
        let mut bytes_sent = 0u64;
        let mut precopy = SimDuration::ZERO;

        // Round 0: full copy of every mapped page.
        let map = src_hv.guest_memory_map(src_id)?;
        let all_gfns: Vec<Gfn> = map
            .iter()
            .flat_map(|(gfn, e)| (gfn.0..gfn.0 + e.pages()).map(Gfn))
            .collect();
        let mut round = 0u32;
        let mut to_send: Vec<Gfn> = all_gfns;
        let stop_set;
        loop {
            let pages = to_send.len() as u64;
            let bytes = pages * PAGE_SIZE;
            let duration = self.config.link.transfer(bytes, sharers)
                + perf.cpu(self.cost.migrate_ghz_s_per_page * pages as f64)
                + SimDuration::from_secs_f64(self.cost.migrate_round_overhead_s);
            self.copy_pages(
                src_machine,
                src_hv,
                src_id,
                dst_machine,
                dst_hv,
                dst_id,
                &to_send,
            )?;
            bytes_sent += bytes;
            precopy += duration;
            rounds.push(RoundStats {
                round,
                pages,
                duration,
            });
            // The guest keeps running and dirtying pages during the round.
            // A guest cannot dirty more distinct pages than it has.
            let dirtied = ((self.config.dirty_rate_pages_per_sec * duration.as_secs_f64()) as u64)
                .min(cfg.pages());
            if dirtied > 0 {
                src_hv.guest_tick(src_machine, src_id, dirtied)?;
            }
            round += 1;
            let dirty = src_hv.collect_dirty(src_id)?;
            if dirty.len() as u64 <= self.config.stop_threshold_pages
                || round >= self.config.max_rounds
            {
                stop_set = dirty;
                break;
            }
            to_send = dirty;
        }

        // Stop-and-copy: quiesce devices (§4.2.3 — the guest is still
        // running, so this extends pre-copy, not downtime), then pause and
        // send the residual dirty set, translate the VMi State through the
        // UISR proxies, and activate on the destination.
        precopy += src_hv.notify_prepare_transplant(src_machine, src_id)?;
        src_hv.pause_vm(src_id)?;
        self.copy_pages(
            src_machine,
            src_hv,
            src_id,
            dst_machine,
            dst_hv,
            dst_id,
            &stop_set,
        )?;
        let final_bytes = stop_set.len() as u64 * PAGE_SIZE;
        bytes_sent += final_bytes;

        let uisr = src_hv.save_uisr(src_machine, src_id)?; // Source proxy.
        let blob = hypertp_uisr::encode(&uisr);
        let uisr_vm = hypertp_uisr::decode(&blob)?; // Destination proxy.
        let restored = dst_hv.restore_uisr(dst_machine, dst_id, &uisr_vm)?;

        let stop_copy = self.config.link.transfer(final_bytes, sharers)
            + self.config.link.transfer(blob.len() as u64, sharers)
            + receiver_queue_wait
            + self.cost.activate(dst_hv.kind().boot_target(), cfg.vcpus);

        if self.config.verify_contents {
            for (gfn, e) in &map {
                for off in 0..e.pages() {
                    let g = Gfn(gfn.0 + off);
                    if src_hv.read_guest(src_machine, src_id, g)?
                        != dst_hv.read_guest(dst_machine, dst_id, g)?
                    {
                        return Err(HtpError::IntegrityViolation {
                            vm_name: cfg.name.clone(),
                        });
                    }
                }
            }
        }

        let report = MigrationReport {
            vm_name: cfg.name.clone(),
            start,
            rounds,
            downtime: stop_copy,
            total: precopy + stop_copy,
            bytes_sent,
            uisr_bytes: blob.len() as u64,
            warnings: restored.warnings,
        };
        Ok(DataPhase {
            report,
            precopy,
            stop_copy,
            dst_id,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn copy_pages(
        &self,
        src_machine: &Machine,
        src_hv: &dyn Hypervisor,
        src_id: VmId,
        dst_machine: &mut Machine,
        dst_hv: &mut dyn Hypervisor,
        dst_id: VmId,
        gfns: &[Gfn],
    ) -> Result<(), HtpError> {
        for &g in gfns {
            let v = src_hv.read_guest(src_machine, src_id, g)?;
            dst_hv.write_guest(dst_machine, dst_id, g, v)?;
        }
        Ok(())
    }
}

/// Migrates several VMs from one host to another, reproducing §5.2.2's
/// multi-VM behaviour: sends run in parallel and share the link; the
/// receive side is **sequential** when the destination is Xen (each VM's
/// stop-and-copy queues behind the previous one, inflating later VMs'
/// downtime) and parallel when it is kvmtool.
pub fn migrate_many(
    tp: &MigrationTp,
    src_machine: &mut Machine,
    src_hv: &mut dyn Hypervisor,
    vm_ids: &[VmId],
    dst_machine: &mut Machine,
    dst_hv: &mut dyn Hypervisor,
) -> Result<Vec<MigrationReport>, HtpError> {
    let sharers = vm_ids.len() as u32;
    let sequential_receive = dst_hv.kind() == HypervisorKind::Xen;
    let mut phases = Vec::new();
    for &id in vm_ids {
        let phase = tp.migrate_data(
            src_machine,
            src_hv,
            id,
            dst_machine,
            dst_hv,
            sharers,
            SimDuration::ZERO,
        )?;
        phases.push((id, phase));
    }
    // Schedule: all pre-copies start together; stop-and-copies queue on a
    // sequential receiver in pre-copy completion order.
    let mut order: Vec<usize> = (0..phases.len()).collect();
    order.sort_by_key(|&i| phases[i].1.precopy);
    let mut receiver_free = SimDuration::ZERO;
    let mut makespan = SimDuration::ZERO;
    let mut out: Vec<Option<MigrationReport>> = (0..phases.len()).map(|_| None).collect();
    for &i in &order {
        let (_, phase) = &phases[i];
        let (finish, downtime) = if sequential_receive {
            let begin = phase.precopy.max(receiver_free);
            let finish = begin + phase.stop_copy;
            receiver_free = finish;
            (finish, finish - phase.precopy)
        } else {
            (phase.precopy + phase.stop_copy, phase.stop_copy)
        };
        makespan = makespan.max(finish);
        let mut report = phase.report.clone();
        report.downtime = downtime;
        report.total = finish;
        out[i] = Some(report);
    }
    src_machine.clock().advance(makespan);
    dst_machine.clock().advance_to(src_machine.clock().now());
    for (id, phase) in &phases {
        dst_hv.resume_vm(phase.dst_id)?;
        src_hv.destroy_vm(src_machine, *id)?;
    }
    Ok(out.into_iter().map(|r| r.expect("all scheduled")).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypertp_core::testing::SimpleHv;
    use hypertp_core::VmConfig;
    use hypertp_machine::MachineSpec;
    use hypertp_sim::SimClock;

    fn pair() -> (Machine, Machine) {
        let clock = SimClock::new();
        let mut spec = MachineSpec::m1();
        spec.ram_gb = 4;
        (
            Machine::with_clock(spec.clone(), clock.clone()),
            Machine::with_clock(spec, clock),
        )
    }

    #[test]
    fn migration_preserves_memory_and_state() {
        let (mut src_m, mut dst_m) = pair();
        let mut src = SimpleHv::new(HypervisorKind::Xen);
        let mut dst = SimpleHv::new(HypervisorKind::Kvm);
        let id = src.create_vm(&mut src_m, &VmConfig::small("vm0")).unwrap();
        src.write_guest(&mut src_m, id, Gfn(777), 0xfeed).unwrap();
        src.guest_tick(&mut src_m, id, 100).unwrap();
        let tp = MigrationTp::new().with_config(MigrationConfig {
            verify_contents: true,
            ..MigrationConfig::default()
        });
        let report = tp
            .migrate(&mut src_m, &mut src, id, &mut dst_m, &mut dst)
            .unwrap();
        assert!(src.vm_ids().is_empty(), "source VM destroyed");
        let new_id = dst.find_vm("vm0").unwrap();
        assert_eq!(dst.read_guest(&dst_m, new_id, Gfn(777)).unwrap(), 0xfeed);
        assert_eq!(
            dst.vm_state(new_id).unwrap(),
            hypertp_core::VmState::Running
        );
        assert!(report.rounds[0].pages == 262_144, "full first round");
        assert!(report.bytes_sent >= 1 << 30);
    }

    #[test]
    fn table4_downtime_and_total() {
        // 1 vCPU / 1 GB idle VM over 1 Gbps: total ≈ 9.6 s; downtime
        // ≈ 5 ms to kvmtool, ≈ 134 ms to Xen (27× more).
        let run = |dst_kind: HypervisorKind| {
            let (mut src_m, mut dst_m) = pair();
            let mut src = SimpleHv::new(HypervisorKind::Xen);
            let mut dst = SimpleHv::new(dst_kind);
            let id = src.create_vm(&mut src_m, &VmConfig::small("vm0")).unwrap();
            let tp = MigrationTp::new().with_config(MigrationConfig {
                dirty_rate_pages_per_sec: 1.0, // idle
                ..MigrationConfig::default()
            });
            tp.migrate(&mut src_m, &mut src, id, &mut dst_m, &mut dst)
                .unwrap()
        };
        let to_kvm = run(HypervisorKind::Kvm);
        let total = to_kvm.total.as_secs_f64();
        assert!((9.0..10.5).contains(&total), "total = {total}");
        let dt = to_kvm.downtime.as_millis_f64();
        assert!((3.0..10.0).contains(&dt), "downtime = {dt} ms");

        let to_xen = run(HypervisorKind::Xen);
        let ratio = to_xen.downtime.as_secs_f64() / to_kvm.downtime.as_secs_f64();
        assert!((15.0..35.0).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn dirty_rate_extends_migration() {
        let run = |rate: f64| {
            let (mut src_m, mut dst_m) = pair();
            let mut src = SimpleHv::new(HypervisorKind::Xen);
            let mut dst = SimpleHv::new(HypervisorKind::Kvm);
            let id = src.create_vm(&mut src_m, &VmConfig::small("vm0")).unwrap();
            let tp = MigrationTp::new().with_config(MigrationConfig {
                dirty_rate_pages_per_sec: rate,
                ..MigrationConfig::default()
            });
            tp.migrate(&mut src_m, &mut src, id, &mut dst_m, &mut dst)
                .unwrap()
        };
        let idle = run(1.0);
        let busy = run(2000.0);
        assert!(busy.rounds.len() > idle.rounds.len());
        assert!(busy.total > idle.total);
        assert!(busy.bytes_sent > idle.bytes_sent);
    }

    #[test]
    fn nonconvergent_guest_hits_round_cap() {
        let (mut src_m, mut dst_m) = pair();
        let mut src = SimpleHv::new(HypervisorKind::Xen);
        let mut dst = SimpleHv::new(HypervisorKind::Kvm);
        let id = src.create_vm(&mut src_m, &VmConfig::small("vm0")).unwrap();
        let tp = MigrationTp::new().with_config(MigrationConfig {
            dirty_rate_pages_per_sec: 1e7, // Dirties faster than the link.
            max_rounds: 6,
            ..MigrationConfig::default()
        });
        let r = tp
            .migrate(&mut src_m, &mut src, id, &mut dst_m, &mut dst)
            .unwrap();
        assert_eq!(r.rounds.len(), 6);
        // Forced stop-and-copy carries a large residual set.
        assert!(r.downtime.as_secs_f64() > 1.0);
    }

    #[test]
    fn migrate_many_xen_receive_serializes() {
        let run = |dst_kind: HypervisorKind| {
            let (mut src_m, mut dst_m) = pair();
            let mut src = SimpleHv::new(HypervisorKind::Xen);
            let mut dst = SimpleHv::new(dst_kind);
            let ids: Vec<VmId> = (0..4)
                .map(|i| {
                    src.create_vm(&mut src_m, &VmConfig::small(format!("vm{i}")))
                        .unwrap()
                })
                .collect();
            let tp = MigrationTp::new().with_config(MigrationConfig {
                dirty_rate_pages_per_sec: 1.0,
                ..MigrationConfig::default()
            });
            migrate_many(&tp, &mut src_m, &mut src, &ids, &mut dst_m, &mut dst).unwrap()
        };
        let to_xen = run(HypervisorKind::Xen);
        let to_kvm = run(HypervisorKind::Kvm);
        let spread = |rs: &[MigrationReport]| {
            let ds: Vec<f64> = rs.iter().map(|r| r.downtime.as_secs_f64()).collect();
            ds.iter().cloned().fold(f64::MIN, f64::max)
                - ds.iter().cloned().fold(f64::MAX, f64::min)
        };
        assert!(
            spread(&to_xen) > 10.0 * spread(&to_kvm).max(1e-9),
            "xen spread {} vs kvm spread {}",
            spread(&to_xen),
            spread(&to_kvm)
        );
        // All four guests actually arrived.
        assert_eq!(to_kvm.len(), 4);
    }
}
